#include <gtest/gtest.h>

#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;

class DmvTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    dmv::GenConfig gen;
    gen.scale = 0.2;  // Small but structurally identical.
    ASSERT_TRUE(dmv::BuildCatalog(gen, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* DmvTest::catalog_ = nullptr;

TEST_F(DmvTest, AllTablesPresent) {
  for (const char* name : {"owner", "car", "registration", "accident",
                           "insurance", "violation", "inspection",
                           "dealer"}) {
    EXPECT_NE(nullptr, catalog_->GetTable(name)) << name;
    EXPECT_NE(nullptr, catalog_->GetStats(name)) << name;
  }
}

TEST_F(DmvTest, ModelDeterminesMakeAndWeight) {
  const Table* car = catalog_->GetTable("car");
  for (int64_t i = 0; i < car->num_rows(); ++i) {
    const Row& r = car->row(i);
    const int64_t model = r[dmv::Car::kModel].AsInt();
    EXPECT_EQ(model / dmv::kModelsPerMake, r[dmv::Car::kMake].AsInt());
    EXPECT_EQ(model % dmv::kNumWeights, r[dmv::Car::kWeight].AsInt());
  }
}

TEST_F(DmvTest, ColorFollowsModelMostOfTheTime) {
  const Table* car = catalog_->GetTable("car");
  int64_t follows = 0;
  for (int64_t i = 0; i < car->num_rows(); ++i) {
    const Row& r = car->row(i);
    if (r[dmv::Car::kColor].AsInt() ==
        (r[dmv::Car::kModel].AsInt() * 7) % dmv::kNumColors) {
      ++follows;
    }
  }
  const double rate =
      static_cast<double>(follows) / static_cast<double>(car->num_rows());
  EXPECT_GT(rate, 0.72);  // Configured 0.8 plus random coincidences.
}

TEST_F(DmvTest, ZipMakeJoinCorrelationHolds) {
  const Table* car = catalog_->GetTable("car");
  const Table* owner = catalog_->GetTable("owner");
  const int64_t band = dmv::kNumZips / dmv::kNumMakes;
  int64_t in_band = 0;
  for (int64_t i = 0; i < car->num_rows(); ++i) {
    const Row& r = car->row(i);
    const int64_t make = r[dmv::Car::kMake].AsInt();
    const int64_t zip =
        owner->row(r[dmv::Car::kOwnerId].AsInt())[dmv::Owner::kZip].AsInt();
    if (zip >= make * band && zip < (make + 1) * band) ++in_band;
  }
  const double rate =
      static_cast<double>(in_band) / static_cast<double>(car->num_rows());
  // Configured correlation 0.8 (minus empty-bucket fallbacks at small
  // scales); uncorrelated owners land in-band only 2% of the time, so
  // anything above 0.6 confirms the trap exists.
  EXPECT_GT(rate, 0.6);
}

TEST_F(DmvTest, AgeCorrelatedWithZip) {
  const Table* owner = catalog_->GetTable("owner");
  for (int64_t i = 0; i < owner->num_rows(); ++i) {
    const Row& r = owner->row(i);
    const int64_t zip = r[dmv::Owner::kZip].AsInt();
    const int64_t age = r[dmv::Owner::kAge].AsInt();
    EXPECT_GE(age, 18 + (zip % 50));
    EXPECT_LE(age, 18 + (zip % 50) + 9);
  }
}

TEST_F(DmvTest, EstimatorUnderestimatesCorrelatedBundle) {
  // The engineered trap: make+model+weight estimated orders of magnitude
  // below the actual count.
  QuerySpec q("bundle");
  const int car = q.AddTable("car");
  const int64_t model = 500;
  q.AddPred({car, dmv::Car::kMake}, PredKind::kEq,
            Value::Int(model / dmv::kModelsPerMake));
  q.AddPred({car, dmv::Car::kModel}, PredKind::kEq, Value::Int(model));
  q.AddPred({car, dmv::Car::kWeight}, PredKind::kEq,
            Value::Int(model % dmv::kNumWeights));
  EstimatorConfig config;
  CardinalityEstimator est(*catalog_, q, nullptr, config);
  const double estimated = est.SubsetCard(TableBit(car));

  ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.ExecuteStatic(q);
  ASSERT_TRUE(rows.ok());
  const double actual = static_cast<double>(rows.value().size());
  EXPECT_GT(actual, 0);
  EXPECT_GT(actual / estimated, 100.0)
      << "estimated " << estimated << " actual " << actual;
}

TEST_F(DmvTest, WorkloadHasRequestedShape) {
  const std::vector<QuerySpec> workload = dmv::MakeWorkload();
  ASSERT_EQ(39u, workload.size());
  for (const QuerySpec& q : workload) {
    EXPECT_GE(q.num_tables(), 3) << q.name();
    EXPECT_FALSE(q.join_preds().empty()) << q.name();
    EXPECT_TRUE(q.has_aggregation()) << q.name();
  }
}

TEST_F(DmvTest, WorkloadIsDeterministic) {
  const std::vector<QuerySpec> a = dmv::MakeWorkload();
  const std::vector<QuerySpec> b = dmv::MakeWorkload();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString());
  }
}

TEST_F(DmvTest, PopMatchesStaticOnWorkloadSample) {
  const std::vector<QuerySpec> workload = dmv::MakeWorkload();
  for (size_t i = 0; i < workload.size(); i += 7) {
    SCOPED_TRACE(workload[i].name());
    ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
    Result<std::vector<Row>> s = exec.ExecuteStatic(workload[i]);
    Result<std::vector<Row>> p = exec.Execute(workload[i]);
    ASSERT_TRUE(s.ok() && p.ok());
    EXPECT_EQ(Canonicalize(s.value()), Canonicalize(p.value()));
  }
}

TEST_F(DmvTest, SomeWorkloadQueryTriggersReopt) {
  const std::vector<QuerySpec> workload = dmv::MakeWorkload();
  int total_reopts = 0;
  for (size_t i = 0; i < workload.size(); i += 3) {
    ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
    ExecutionStats stats;
    ASSERT_TRUE(exec.Execute(workload[i], &stats).ok());
    total_reopts += stats.reopts;
  }
  EXPECT_GT(total_reopts, 0);
}

}  // namespace
}  // namespace popdb
