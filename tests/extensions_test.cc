#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/rng.h"
#include "core/executor_builder.h"
#include "core/leo.h"
#include "opt/optimizer.h"
#include "core/pop.h"
#include "exec/check.h"
#include "exec/scan.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------- BufCheckOp.

class BufCheckTest : public ::testing::Test {
 protected:
  BufCheckTest() : table_("t", Schema({{"v", ValueType::kInt}})) {
    for (int64_t i = 0; i < 50; ++i) table_.AppendRow({Value::Int(i)});
  }

  std::unique_ptr<TableScanOp> Scan() {
    return std::make_unique<TableScanOp>(&table_, 0,
                                         std::vector<ResolvedPredicate>{});
  }

  static CheckSpec Spec(double lo, double hi) {
    CheckSpec c;
    c.enabled = true;
    c.lo = lo;
    c.hi = hi;
    c.flavor = CheckFlavor::kEagerBuffered;
    c.edge_set = TableBit(0);
    return c;
  }

  Table table_;
};

TEST_F(BufCheckTest, PassesWhenWithinFiniteRange) {
  ExecContext ctx;
  BufCheckOp buf(Scan(), Spec(10, 100));
  std::vector<Row> rows;
  EXPECT_EQ(ExecStatus::kEof, RunToCompletion(&buf, &ctx, &rows));
  EXPECT_EQ(50u, rows.size());
  EXPECT_FALSE(ctx.reopt.triggered);
}

TEST_F(BufCheckTest, PreservesRowOrder) {
  ExecContext ctx;
  BufCheckOp buf(Scan(), Spec(0, 1000));
  std::vector<Row> rows;
  RunToCompletion(&buf, &ctx, &rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(Value::Int(static_cast<int64_t>(i)), rows[i][0]);
  }
}

TEST_F(BufCheckTest, FiresDuringOpenWhenUpperBoundExceeded) {
  ExecContext ctx;
  BufCheckOp buf(Scan(), Spec(0, 19.5));
  EXPECT_EQ(ExecStatus::kReoptimize, buf.Open(&ctx));
  EXPECT_TRUE(ctx.reopt.triggered);
  EXPECT_FALSE(ctx.reopt.exact);  // Lower bound only.
  EXPECT_EQ(20, ctx.reopt.observed_rows);
  // Nothing was emitted: the buffer held everything back.
  EXPECT_EQ(0, buf.rows_produced());
}

TEST_F(BufCheckTest, FiresExactlyAtEofWhenBelowLowerBound) {
  ExecContext ctx;
  BufCheckOp buf(Scan(), Spec(60, kInf));
  EXPECT_EQ(ExecStatus::kReoptimize, buf.Open(&ctx));
  EXPECT_TRUE(ctx.reopt.exact);
  EXPECT_EQ(50, ctx.reopt.observed_rows);
}

TEST_F(BufCheckTest, LowerBoundOnlyRangeReleasesValveEarly) {
  // [lo, inf): success certain at the lo-th row; buffer is bounded by lo.
  ExecContext ctx;
  BufCheckOp buf(Scan(), Spec(5, kInf));
  EXPECT_EQ(ExecStatus::kOk, buf.Open(&ctx));
  // Only 5 rows were pulled during Open (the valve released at lo).
  Row row;
  std::vector<Row> rows;
  ExecStatus s;
  while ((s = buf.Next(&ctx, &row)) == ExecStatus::kRow) rows.push_back(row);
  EXPECT_EQ(ExecStatus::kEof, s);
  EXPECT_EQ(50u, rows.size());  // Buffer prefix + streamed remainder.
  EXPECT_FALSE(ctx.reopt.triggered);
}

TEST_F(BufCheckTest, ObserveOnlyRecordsButStreams) {
  ExecContext ctx;
  CheckSpec spec = Spec(0, 3);
  spec.observe_only = true;
  BufCheckOp buf(Scan(), spec);
  std::vector<Row> rows;
  EXPECT_EQ(ExecStatus::kEof, RunToCompletion(&buf, &ctx, &rows));
  EXPECT_EQ(50u, rows.size());
  ASSERT_EQ(1u, ctx.check_events.size());
  EXPECT_TRUE(ctx.check_events[0].fired);
}

TEST_F(BufCheckTest, HarvestReportsExactCountAfterEof) {
  ExecContext ctx;
  BufCheckOp buf(Scan(), Spec(0, 1000));
  std::vector<Row> rows;
  RunToCompletion(&buf, &ctx, &rows);
  HarvestedResult info;
  ASSERT_TRUE(buf.HarvestInfo(&info));
  EXPECT_TRUE(info.complete);
  EXPECT_EQ(50, info.count);
  EXPECT_EQ(nullptr, info.rows);  // Buffers are never offered for reuse.
}

// ------------------------------------------------------------ WorkBoundOp.

TEST_F(BufCheckTest, WorkBoundFiresWhenBudgetExceeded) {
  ExecContext ctx;
  WorkBoundOp guard(Scan(), /*work_budget=*/10, TableBit(0));
  std::vector<Row> rows;
  EXPECT_EQ(ExecStatus::kReoptimize, RunToCompletion(&guard, &ctx, &rows));
  EXPECT_TRUE(ctx.reopt.triggered);
  EXPECT_EQ(CheckFlavor::kWorkBound, ctx.reopt.flavor);
  EXPECT_FALSE(ctx.reopt.exact);
  EXPECT_LT(rows.size(), 50u);
}

TEST_F(BufCheckTest, WorkBoundPassesWithinBudget) {
  ExecContext ctx;
  WorkBoundOp guard(Scan(), /*work_budget=*/1e9, TableBit(0));
  std::vector<Row> rows;
  EXPECT_EQ(ExecStatus::kEof, RunToCompletion(&guard, &ctx, &rows));
  EXPECT_EQ(50u, rows.size());
}

// -------------------------------------------------- Work-bound end-to-end.

/// Catalog with the orders/items cardinality trap (see pop_test.cc).
void BuildTrapCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"clazz", ValueType::kInt},
                                 {"subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

QuerySpec TrapQuery() {
  QuerySpec q("trap");
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

TEST(WorkBoundEndToEnd, RescuesRunawayPlanWithoutCardinalityChecks) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  // Cardinality checks off: only the work budget can save this query.
  PopConfig pop;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.work_bound_factor = 3.0;
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(stats.reopts, 1);
  EXPECT_EQ(CheckFlavor::kWorkBound, stats.attempts[0].signal.flavor);

  ExecutionStats static_stats;
  ASSERT_TRUE(exec.ExecuteStatic(TrapQuery(), &static_stats).ok());
  EXPECT_LT(stats.total_work, static_stats.total_work);
  // And the results are still right.
  EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, TrapQuery())),
            Canonicalize(rows.value()));
}

TEST(WorkBoundEndToEnd, SpjWithCompensationStaysCorrect) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  QuerySpec q("spj");
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddProjection({it, 1});
  PopConfig pop;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.work_bound_factor = 3.0;
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, q)),
            Canonicalize(rows.value()));
}

// --------------------------------------------------------------- ECB e2e.

TEST(BufCheckEndToEnd, EcbFiresBeforeLcemWouldMaterializeEverything) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  PopConfig pop;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.enable_ecb = true;
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(stats.reopts, 1);
  EXPECT_EQ(CheckFlavor::kEagerBuffered, stats.attempts[0].signal.flavor);
  EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, TrapQuery())),
            Canonicalize(rows.value()));
}

// ------------------------------------------------------- Confidence filter.

TEST(ConfidenceFilterEndToEnd, ChecksOnlyWhereAssumptionsPileUp) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  // The trap edge rests on 1 assumption (one independence multiplication
  // between two predicates); requiring at least 1 keeps its check,
  // requiring 5 removes all checks.
  for (const auto& [min_assumptions, expect_reopt] :
       std::vector<std::pair<int, bool>>{{1, true}, {5, false}}) {
    PopConfig pop;
    pop.min_assumptions_for_checks = min_assumptions;
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
    ExecutionStats stats;
    ASSERT_TRUE(exec.Execute(TrapQuery(), &stats).ok());
    EXPECT_EQ(expect_reopt, stats.reopts > 0)
        << "min_assumptions=" << min_assumptions;
  }
}

// ------------------------------------------------------------ LEO storage.

TEST(QueryFeedbackStoreTest, SignatureStableAcrossTableIdOrder) {
  QuerySpec a("a");
  const int a_o = a.AddTable("orders");
  const int a_i = a.AddTable("items");
  a.AddJoin({a_o, 0}, {a_i, 0});
  a.AddPred({a_o, 1}, PredKind::kEq, Value::Int(7));

  QuerySpec b("b");
  const int b_i = b.AddTable("items");  // Reversed declaration order.
  const int b_o = b.AddTable("orders");
  b.AddJoin({b_o, 0}, {b_i, 0});
  b.AddPred({b_o, 1}, PredKind::kEq, Value::Int(7));

  EXPECT_EQ(QueryFeedbackStore::SubplanSignature(a, a.AllTables()),
            QueryFeedbackStore::SubplanSignature(b, b.AllTables()));
  EXPECT_EQ(QueryFeedbackStore::SubplanSignature(a, TableBit(a_o)),
            QueryFeedbackStore::SubplanSignature(b, TableBit(b_o)));
}

TEST(QueryFeedbackStoreTest, SignatureDependsOnLiterals) {
  QuerySpec a("a"), b("b");
  const int at = a.AddTable("orders");
  const int bt = b.AddTable("orders");
  a.AddPred({at, 1}, PredKind::kEq, Value::Int(7));
  b.AddPred({bt, 1}, PredKind::kEq, Value::Int(8));
  EXPECT_NE(QueryFeedbackStore::SubplanSignature(a, TableBit(at)),
            QueryFeedbackStore::SubplanSignature(b, TableBit(bt)));
}

TEST(QueryFeedbackStoreTest, MarkerResolvedToBinding) {
  QuerySpec lit("lit"), mark("mark");
  const int lt = lit.AddTable("orders");
  lit.AddPred({lt, 1}, PredKind::kEq, Value::Int(7));
  const int mt = mark.AddTable("orders");
  mark.AddParamPred({mt, 1}, PredKind::kEq, 0);
  mark.BindParam(Value::Int(7));
  EXPECT_EQ(QueryFeedbackStore::SubplanSignature(lit, TableBit(lt)),
            QueryFeedbackStore::SubplanSignature(mark, TableBit(mt)));
}

TEST(QueryFeedbackStoreTest, AbsorbAndSeedRoundTrip) {
  QuerySpec q("q");
  const int t = q.AddTable("orders");
  q.AddPred({t, 1}, PredKind::kEq, Value::Int(7));
  FeedbackMap fb;
  fb[TableBit(t)].exact = 123.0;
  QueryFeedbackStore store;
  store.Absorb(q, fb);
  EXPECT_EQ(1, store.size());
  FeedbackCache seeded;
  store.Seed(q, &seeded);
  ASSERT_EQ(1u, seeded.Snapshot().size());
  EXPECT_DOUBLE_EQ(123.0, seeded.Snapshot().at(TableBit(t)).exact);
}

TEST(QueryFeedbackStoreTest, SecondExecutionAvoidsReoptimization) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  QueryFeedbackStore store;
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  exec.set_cross_query_store(&store);

  ExecutionStats first;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &first).ok());
  ASSERT_GE(first.reopts, 1);  // Learned the hard way.

  ExecutionStats second;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &second).ok());
  EXPECT_EQ(0, second.reopts);  // Planned right from the start.
  EXPECT_LT(second.total_work, first.total_work);
}

TEST(QueryFeedbackStoreTest, LearningTransfersAcrossMarkersAndLiterals) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  QueryFeedbackStore store;
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  exec.set_cross_query_store(&store);
  ASSERT_TRUE(exec.Execute(TrapQuery(), nullptr).ok());

  // The same restriction phrased with parameter markers benefits too: the
  // signature resolves markers to their bindings.
  QuerySpec marked("marked");
  const int o = marked.AddTable("orders");
  const int it = marked.AddTable("items");
  marked.AddJoin({o, 0}, {it, 0});
  marked.AddParamPred({o, 1}, PredKind::kEq, 0);
  marked.AddParamPred({o, 2}, PredKind::kEq, 1);
  marked.BindParam(Value::Int(7));
  marked.BindParam(Value::Int(77));
  marked.AddGroupBy({o, 1});
  marked.AddAgg(AggFunc::kCount);
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(marked, &stats).ok());
  EXPECT_EQ(0, stats.reopts);
}

// --------------------------------------------------- HSJN build reuse flag.

TEST(HsjnBuildReuse, ExtensionHarvestsBuildsAsMatViews) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  // Force checks to fail late so a hash-join build exists when harvesting.
  for (const bool reuse : {false, true}) {
    PopConfig pop;
    pop.reuse_hsjn_builds = reuse;
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, TrapQuery())),
              Canonicalize(rows.value()));
  }
}

// ------------------------------------- Indexed materialized-view reuse.

TEST(MatViewIndexing, OptimizerIndexesViewForNljnProbes) {
  // Paper Section 2.3: "The optimizer could even create an index on the
  // materialized view before re-using it if worthwhile." Join on a column
  // with no base-table index: probing an indexed copy of the inner beats
  // both scanning it per outer row and hash-joining it.
  Catalog catalog;
  testing::BuildToyCatalog(&catalog);
  QuerySpec q("mvix");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 2}, {e, 2});  // d_region = e_age: no index on e_age.

  // Offer a materialized view that is an exact copy of emp.
  const Table* emp = catalog.GetTable("emp");
  std::vector<Row> mv_rows;
  for (int64_t r = 0; r < emp->num_rows(); ++r) mv_rows.push_back(emp->row(r));
  std::vector<AvailableMatView> mvs = {
      {"mv_emp", TableBit(e), static_cast<double>(mv_rows.size()),
       &mv_rows, {}}};

  Optimizer opt(catalog, OptimizerConfig{});
  Result<OptimizedPlan> planned = opt.Optimize(q, nullptr, &mvs, nullptr);
  ASSERT_TRUE(planned.ok());
  const PlanNode* join = planned.value().root.get();
  while (join->set == 0) join = join->children[0].get();
  ASSERT_EQ(PlanOpKind::kNljn, join->kind);
  EXPECT_EQ(PlanOpKind::kMatViewScan, join->children[1]->kind);
  EXPECT_TRUE(join->use_index);
  EXPECT_EQ(2, join->index_col);

  // The executor builds the index and produces correct results.
  ExecutorBuilder builder(catalog, q, nullptr, false);
  Result<BuiltPlan> built = builder.Build(*planned.value().root);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(1u, built.value().owned_indexes.size());
  ExecContext ctx;
  std::vector<Row> rows;
  ASSERT_EQ(ExecStatus::kEof,
            RunToCompletion(built.value().root.get(), &ctx, &rows));
  EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, q)), Canonicalize(rows));
}

TEST(MatViewIndexing, BaseIndexStillPreferredWhenPresent) {
  // With an index on the base join column, probing the base table avoids
  // the view's index build cost.
  Catalog catalog;
  testing::BuildToyCatalog(&catalog);
  QuerySpec q("mvix2");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});  // e_dept has a base index.
  q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
  const Table* emp = catalog.GetTable("emp");
  std::vector<Row> mv_rows;
  for (int64_t r = 0; r < emp->num_rows(); ++r) mv_rows.push_back(emp->row(r));
  std::vector<AvailableMatView> mvs = {
      {"mv_emp", TableBit(e), static_cast<double>(mv_rows.size()),
       &mv_rows, {}}};
  Optimizer opt(catalog, OptimizerConfig{});
  Result<OptimizedPlan> planned = opt.Optimize(q, nullptr, &mvs, nullptr);
  ASSERT_TRUE(planned.ok());
  const PlanNode* join = planned.value().root.get();
  while (join->set == 0) join = join->children[0].get();
  ASSERT_EQ(PlanOpKind::kNljn, join->kind);
  EXPECT_EQ(PlanOpKind::kTableScan, join->children[1]->kind);
}

// ------------------------------------------------ Volatile ("conservative
// mode") plan bias — paper Section 7, Checking Opportunities.

TEST(VolatileMode, BiasShiftsPlansTowardReoptimizableOperators) {
  Catalog catalog;
  testing::BuildToyCatalog(&catalog, /*emp_rows=*/500, /*sale_rows=*/4000);
  QuerySpec q("vm");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({s, 0}, {e, 0});  // s_emp = e_id (indexed).
  q.AddGroupBy({e, 1});
  q.AddAgg(AggFunc::kCount);

  auto join_kind = [&](double bias) {
    OptimizerConfig opt;
    opt.methods.volatile_mode_bias = bias;
    Optimizer optimizer(catalog, opt);
    Result<OptimizedPlan> planned = optimizer.Optimize(q);
    EXPECT_TRUE(planned.ok());
    const PlanNode* join = planned.value().root.get();
    while (join->set == 0) join = join->children[0].get();
    return join->kind;
  };
  const PlanOpKind unbiased = join_kind(0.0);
  const PlanOpKind biased = join_kind(50.0);
  // A huge bias forces the most re-optimizable operator available.
  EXPECT_EQ(PlanOpKind::kMgjn, biased);
  (void)unbiased;  // Typically NLJN or HSJN; documented, not asserted.

  // Results are identical either way.
  OptimizerConfig opt_biased;
  opt_biased.methods.volatile_mode_bias = 50.0;
  ProgressiveExecutor plain(catalog, OptimizerConfig{}, PopConfig{});
  ProgressiveExecutor conservative(catalog, opt_biased, PopConfig{});
  Result<std::vector<Row>> a = plain.Execute(q);
  Result<std::vector<Row>> b = conservative.Execute(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Canonicalize(a.value()), Canonicalize(b.value()));
}

}  // namespace
}  // namespace popdb
