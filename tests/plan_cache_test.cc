// Plan-cache unit tests: signature canonicalization (marker abstraction,
// normalized predicate order), epoch counters on the feedback stores and
// the catalog, the Lookup gating ladder (hit / cold / stale / epoch /
// validity), LRU bounds, reinstall semantics, and the warm-up sequence of
// an executor-attached cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/feedback.h"
#include "core/leo.h"
#include "core/matview.h"
#include "core/pop.h"
#include "opt/plan_cache.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;
using ::popdb::testing::Canonicalize;

// ------------------------------------------------------- signature shape

/// emp JOIN sale with one literal and one marker restriction.
QuerySpec MarkerQuery(Value bound) {
  QuerySpec q("marker");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 0}, {s, 0});
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(40));
  q.AddParamPred({s, 2}, PredKind::kEq, /*param_index=*/0);
  q.BindParam(std::move(bound));
  q.AddGroupBy({e, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

TEST(PlanCacheSignatureTest, StableAcrossIdenticalRebuilds) {
  EXPECT_EQ(QueryCacheSignature(MarkerQuery(Value::Int(2020))),
            QueryCacheSignature(MarkerQuery(Value::Int(2020))));
}

TEST(PlanCacheSignatureTest, MarkerBindingsShareOneSignature) {
  // The whole point of caching prepared statements: re-binding a marker
  // must map to the same entry.
  EXPECT_EQ(QueryCacheSignature(MarkerQuery(Value::Int(2020))),
            QueryCacheSignature(MarkerQuery(Value::Int(1999))));
}

TEST(PlanCacheSignatureTest, LiteralsAndClausesDistinguish) {
  const std::string base = QueryCacheSignature(MarkerQuery(Value::Int(1)));

  {
    // A different literal can change the plan, so it changes the key.
    QuerySpec q = MarkerQuery(Value::Int(1));
    QuerySpec q2("marker");
    const int e = q2.AddTable("emp");
    const int s = q2.AddTable("sale");
    q2.AddJoin({e, 0}, {s, 0});
    q2.AddPred({e, 2}, PredKind::kLt, Value::Int(65));  // 40 -> 65
    q2.AddParamPred({s, 2}, PredKind::kEq, 0);
    q2.BindParam(Value::Int(1));
    q2.AddGroupBy({e, 1});
    q2.AddAgg(AggFunc::kCount);
    EXPECT_NE(base, QueryCacheSignature(q2));
  }
  {
    QuerySpec q = MarkerQuery(Value::Int(1));
    q.SetLimit(10);
    EXPECT_NE(base, QueryCacheSignature(q));
  }
  {
    QuerySpec q = MarkerQuery(Value::Int(1));
    q.SetDistinct(true);
    EXPECT_NE(base, QueryCacheSignature(q));
  }
  {
    QuerySpec q = MarkerQuery(Value::Int(1));
    q.AddOrderBy(0, /*descending=*/true);
    EXPECT_NE(base, QueryCacheSignature(q));
  }
}

TEST(PlanCacheSignatureTest, InListOrderIsNormalized) {
  QuerySpec a("in");
  a.AddTable("emp");
  a.AddInPred({0, 2}, {Value::Int(3), Value::Int(1), Value::Int(2)});
  QuerySpec b("in");
  b.AddTable("emp");
  b.AddInPred({0, 2}, {Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_EQ(QueryCacheSignature(a), QueryCacheSignature(b));
}

TEST(PlanCacheSignatureTest, DigestDependsOnContentOnly) {
  FeedbackMap a;
  a[1] = CardFeedback{/*exact=*/100.0, /*lower_bound=*/-1.0};
  a[3] = CardFeedback{/*exact=*/-1.0, /*lower_bound=*/50.0};
  FeedbackMap b = a;
  EXPECT_EQ(DigestFeedback(a), DigestFeedback(b));
  EXPECT_NE(DigestFeedback(a), DigestFeedback(FeedbackMap{}));
  b[3].lower_bound = 51.0;
  EXPECT_NE(DigestFeedback(a), DigestFeedback(b));
}

// ------------------------------------------------------- epoch counters

TEST(PlanCacheEpochTest, FeedbackCacheBumpsOnlyOnChange) {
  FeedbackCache fb;
  EXPECT_EQ(0, fb.epoch());
  fb.RecordExact(1, 5.0);
  const int64_t e1 = fb.epoch();
  EXPECT_GT(e1, 0);
  fb.RecordExact(1, 5.0);  // Same value: estimates did not move.
  EXPECT_EQ(e1, fb.epoch());
  fb.RecordExact(1, 6.0);
  EXPECT_GT(fb.epoch(), e1);
  const int64_t e2 = fb.epoch();
  fb.RecordLowerBound(1, 100.0);  // Exact dominates: ignored.
  EXPECT_EQ(e2, fb.epoch());
  fb.RecordLowerBound(2, 7.0);
  EXPECT_GT(fb.epoch(), e2);
  const int64_t e3 = fb.epoch();
  fb.RecordLowerBound(2, 6.0);  // Not an improvement.
  EXPECT_EQ(e3, fb.epoch());
  fb.Clear();
  EXPECT_GT(fb.epoch(), e3);
  const int64_t e4 = fb.epoch();
  fb.Clear();  // Already empty.
  EXPECT_EQ(e4, fb.epoch());
}

TEST(PlanCacheEpochTest, StoreAbsorbOfIdenticalActualsKeepsEpoch) {
  QuerySpec q("q");
  q.AddTable("t");
  FeedbackMap observed;
  observed[1] = CardFeedback{/*exact=*/42.0, /*lower_bound=*/-1.0};

  QueryFeedbackStore store;
  EXPECT_EQ(0, store.epoch());
  store.Absorb(q, observed);
  const int64_t e1 = store.epoch();
  EXPECT_EQ(1, e1);
  // The repeat-query steady state: same actuals, nothing learned.
  store.Absorb(q, observed);
  EXPECT_EQ(e1, store.epoch());
  observed[1].exact = 43.0;
  store.Absorb(q, observed);
  EXPECT_GT(store.epoch(), e1);
}

TEST(PlanCacheEpochTest, StoreExternalEpochIsSeparate) {
  QueryFeedbackStore store;
  EXPECT_EQ(0, store.external_epoch());
  store.BumpEpoch();
  EXPECT_EQ(1, store.external_epoch());
  EXPECT_EQ(1, store.epoch());  // External bumps count in the total too.

  QuerySpec q("q");
  q.AddTable("t");
  FeedbackMap observed;
  observed[1] = CardFeedback{10.0, -1.0};
  store.Absorb(q, observed);
  // Content changes move epoch() but never external_epoch().
  EXPECT_EQ(1, store.external_epoch());
  EXPECT_EQ(2, store.epoch());
}

TEST(PlanCacheEpochTest, MatViewRegistryBumpsOnCreateAndDrop) {
  MatViewRegistry mv;
  EXPECT_EQ(0, mv.epoch());
  mv.Clear();  // Empty: nothing dropped.
  EXPECT_EQ(0, mv.epoch());
  mv.Register(3, {});
  EXPECT_EQ(1, mv.epoch());
  mv.Clear();
  EXPECT_EQ(2, mv.epoch());
}

TEST(PlanCacheEpochTest, CatalogStatsVersionBumps) {
  Catalog catalog;
  const int64_t v0 = catalog.stats_version();
  Table t("t", Schema({{"a", ValueType::kInt}}));
  t.AppendRow({Value::Int(1)});
  ASSERT_TRUE(catalog.AddTable(std::move(t)).ok());
  const int64_t v1 = catalog.stats_version();
  EXPECT_GT(v1, v0);
  catalog.AnalyzeAll();
  const int64_t v2 = catalog.stats_version();
  EXPECT_GT(v2, v1);
  ASSERT_TRUE(catalog.CreateIndex("t", "a").ok());
  EXPECT_GT(catalog.stats_version(), v2);
}

// ------------------------------------------------------- direct cache API

std::shared_ptr<PlanNode> ScanPlan(int table_id = 0) {
  auto scan = std::make_shared<PlanNode>();
  scan->kind = PlanOpKind::kTableScan;
  scan->set = TableSet{1} << table_id;
  scan->table_id = table_id;
  scan->table_name = "t";
  return scan;
}

/// Temp(Scan) with a narrowed validity range [10, 100] on the scan edge.
std::shared_ptr<PlanNode> GuardedPlan() {
  auto root = std::make_shared<PlanNode>();
  root->kind = PlanOpKind::kTemp;
  root->children.push_back(ScanPlan());
  root->child_validity.push_back(ValidityRange{10.0, 100.0});
  root->set = 1;
  return root;
}

TEST(PlanCacheTest, HitRequiresAllGatesToMatch) {
  PlanCache cache;
  cache.Install("sig", ScanPlan(), /*external_epoch=*/5,
                /*catalog_version=*/7, /*feedback_digest=*/99, 3, 1.0, 2.0);

  PlanCache::LookupResult hit = cache.Lookup("sig", 5, 7, 99, {});
  EXPECT_EQ(PlanCacheOutcome::kHit, hit.outcome);
  ASSERT_NE(nullptr, hit.plan);
  EXPECT_EQ(3, hit.candidates);
  EXPECT_DOUBLE_EQ(1.0, hit.est_cost);
  EXPECT_GE(hit.age_ms, 0.0);

  EXPECT_EQ(PlanCacheOutcome::kMissCold,
            cache.Lookup("other", 5, 7, 99, {}).outcome);
  // Digest moved, no validity data recorded: conservative stale miss.
  EXPECT_EQ(PlanCacheOutcome::kMissStale,
            cache.Lookup("sig", 5, 7, 100, {}).outcome);
  // Stale misses keep the entry resident (it may match again later).
  EXPECT_EQ(PlanCacheOutcome::kHit, cache.Lookup("sig", 5, 7, 99, {}).outcome);

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(4, stats.lookups);
  EXPECT_EQ(2, stats.hits);
  EXPECT_EQ(1, stats.misses_cold);
  EXPECT_EQ(1, stats.misses_stale);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses());
}

TEST(PlanCacheTest, EpochMismatchEvicts) {
  PlanCache cache;
  cache.Install("sig", ScanPlan(), 1, 1, 42, 0, 0.0, 0.0);
  // External epoch moved (stats refresh / matview DDL): hard invalidation.
  EXPECT_EQ(PlanCacheOutcome::kMissEpoch,
            cache.Lookup("sig", 2, 1, 42, {}).outcome);
  EXPECT_EQ(0, cache.size());
  // The entry is gone even for the original epoch.
  EXPECT_EQ(PlanCacheOutcome::kMissCold,
            cache.Lookup("sig", 1, 1, 42, {}).outcome);
  EXPECT_EQ(1, cache.stats().evictions_invalid);

  cache.Install("sig", ScanPlan(), 2, 1, 42, 0, 0.0, 0.0);
  // Catalog stats version gates the same way.
  EXPECT_EQ(PlanCacheOutcome::kMissEpoch,
            cache.Lookup("sig", 2, 9, 42, {}).outcome);
  EXPECT_EQ(0, cache.size());
}

TEST(PlanCacheTest, ValidityViolationEvictsStrictAndRelaxed) {
  for (const bool relaxed : {false, true}) {
    PlanCacheConfig config;
    config.validity_hits = relaxed;
    PlanCache cache(config);
    cache.Install("sig", GuardedPlan(), 0, 0, 42, 0, 0.0, 0.0);

    // Exact cardinality outside [10, 100]: provably suboptimal plan.
    FeedbackMap outside;
    outside[1] = CardFeedback{/*exact=*/500.0, /*lower_bound=*/-1.0};
    EXPECT_EQ(PlanCacheOutcome::kMissValidity,
              cache.Lookup("sig", 0, 0, /*digest=*/7, outside).outcome)
        << "relaxed=" << relaxed;
    EXPECT_EQ(0, cache.size());

    // A lower bound above hi violates too (the count can only grow).
    cache.Install("sig", GuardedPlan(), 0, 0, 42, 0, 0.0, 0.0);
    FeedbackMap bound;
    bound[1] = CardFeedback{/*exact=*/-1.0, /*lower_bound=*/101.0};
    EXPECT_EQ(PlanCacheOutcome::kMissValidity,
              cache.Lookup("sig", 0, 0, 7, bound).outcome);
    EXPECT_EQ(0, cache.size());
  }
}

TEST(PlanCacheTest, InRangeFeedbackHitsOnlyInRelaxedMode) {
  FeedbackMap inside;
  inside[1] = CardFeedback{/*exact=*/50.0, /*lower_bound=*/-1.0};

  PlanCache strict;
  strict.Install("sig", GuardedPlan(), 0, 0, 42, 0, 0.0, 0.0);
  EXPECT_EQ(PlanCacheOutcome::kMissStale,
            strict.Lookup("sig", 0, 0, /*digest=*/7, inside).outcome);

  PlanCacheConfig config;
  config.validity_hits = true;
  PlanCache relaxed(config);
  relaxed.Install("sig", GuardedPlan(), 0, 0, 42, 0, 0.0, 0.0);
  PlanCache::LookupResult r = relaxed.Lookup("sig", 0, 0, 7, inside);
  EXPECT_EQ(PlanCacheOutcome::kValidityHit, r.outcome);
  EXPECT_TRUE(r.hit());
  ASSERT_NE(nullptr, r.plan);
  EXPECT_EQ(1, relaxed.stats().validity_hits);
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PlanCacheConfig config;
  config.max_entries = 2;
  config.shards = 1;  // One LRU list so the order is fully observable.
  PlanCache cache(config);

  cache.Install("a", ScanPlan(), 0, 0, 1, 0, 0.0, 0.0);
  cache.Install("b", ScanPlan(), 0, 0, 1, 0, 0.0, 0.0);
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_EQ(PlanCacheOutcome::kHit, cache.Lookup("a", 0, 0, 1, {}).outcome);
  cache.Install("c", ScanPlan(), 0, 0, 1, 0, 0.0, 0.0);

  EXPECT_EQ(2, cache.size());
  EXPECT_EQ(PlanCacheOutcome::kMissCold,
            cache.Lookup("b", 0, 0, 1, {}).outcome);
  EXPECT_EQ(PlanCacheOutcome::kHit, cache.Lookup("a", 0, 0, 1, {}).outcome);
  EXPECT_EQ(PlanCacheOutcome::kHit, cache.Lookup("c", 0, 0, 1, {}).outcome);
  EXPECT_EQ(1, cache.stats().evictions_lru);
}

TEST(PlanCacheTest, ReinstallServesTheNewPlan) {
  PlanCache cache;
  cache.Install("sig", ScanPlan(), 0, 0, 1, 0, /*est_cost=*/1.0, 0.0);
  std::shared_ptr<const PlanNode> second = ScanPlan();
  cache.Install("sig", second, 0, 0, 2, 0, /*est_cost=*/2.0, 0.0);
  EXPECT_EQ(1, cache.size());

  PlanCache::LookupResult r = cache.Lookup("sig", 0, 0, 2, {});
  EXPECT_EQ(PlanCacheOutcome::kHit, r.outcome);
  EXPECT_EQ(second.get(), r.plan.get());
  EXPECT_DOUBLE_EQ(2.0, r.est_cost);
}

TEST(PlanCacheTest, MatviewPlansAndOversizedPlansAreNotInstalled) {
  PlanCacheConfig config;
  config.max_plan_nodes = 2;
  PlanCache cache(config);

  auto mv = std::make_shared<PlanNode>();
  mv->kind = PlanOpKind::kMatViewScan;
  cache.Install("mv", mv, 0, 0, 1, 0, 0.0, 0.0);
  EXPECT_EQ(0, cache.size());

  auto big = std::make_shared<PlanNode>();
  big->children.push_back(ScanPlan());
  big->children.push_back(ScanPlan(1));
  big->child_validity.resize(2);
  cache.Install("big", big, 0, 0, 1, 0, 0.0, 0.0);
  EXPECT_EQ(0, cache.size());
  EXPECT_EQ(0, cache.stats().installs);
}

TEST(PlanCacheTest, InvalidateAllDropsEverything) {
  PlanCache cache;
  cache.Install("a", ScanPlan(), 0, 0, 1, 0, 0.0, 0.0);
  cache.Install("b", ScanPlan(), 0, 0, 1, 0, 0.0, 0.0);
  cache.InvalidateAll();
  EXPECT_EQ(0, cache.size());
  EXPECT_EQ(2, cache.stats().evictions_invalid);
  EXPECT_EQ(PlanCacheOutcome::kMissCold,
            cache.Lookup("a", 0, 0, 1, {}).outcome);
}

// ------------------------------------------------- executor integration

class PlanCacheExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildToyCatalog(&catalog_); }

  QuerySpec JoinQuery() {
    QuerySpec q("join");
    const int e = q.AddTable("emp");
    const int s = q.AddTable("sale");
    q.AddJoin({e, 0}, {s, 0});
    q.AddPred({e, 2}, PredKind::kLt, Value::Int(45));
    q.AddGroupBy({e, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  }

  PlanCacheOutcome RunOnce(ProgressiveExecutor* exec,
                           std::vector<std::string>* rows_out = nullptr,
                           std::string* plan_out = nullptr) {
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec->Execute(JoinQuery(), &stats);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (rows_out != nullptr) *rows_out = Canonicalize(rows.value());
    if (plan_out != nullptr) *plan_out = stats.attempts[0].plan_text;
    return stats.plan_cache;
  }

  Catalog catalog_;
};

TEST_F(PlanCacheExecutorTest, WarmupThenSteadyStateHits) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  QueryFeedbackStore store;
  PlanCache cache;
  exec.set_cross_query_store(&store);
  exec.set_plan_cache(&cache);

  std::vector<std::string> rows1, rows2, rows3;
  std::string plan1, plan2, plan3;
  // Run 1 installs under the empty-seed digest; its completion feeds the
  // store, so run 2 is seeded differently (stale), reinstalls, and run 3
  // reaches the steady state where every resubmission hits.
  EXPECT_EQ(PlanCacheOutcome::kMissCold, RunOnce(&exec, &rows1, &plan1));
  EXPECT_EQ(PlanCacheOutcome::kMissStale, RunOnce(&exec, &rows2, &plan2));
  EXPECT_EQ(PlanCacheOutcome::kHit, RunOnce(&exec, &rows3, &plan3));
  EXPECT_EQ(PlanCacheOutcome::kHit, RunOnce(&exec));

  EXPECT_EQ(rows1, rows2);
  EXPECT_EQ(rows1, rows3);
  // A hit reproduces the exact plan the miss path would have chosen.
  EXPECT_EQ(plan2, plan3);
  EXPECT_EQ(2, cache.stats().installs);
  EXPECT_EQ(2, cache.stats().hits);
}

TEST_F(PlanCacheExecutorTest, ExternalEpochBumpInvalidates) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  QueryFeedbackStore store;
  PlanCache cache;
  exec.set_cross_query_store(&store);
  exec.set_plan_cache(&cache);

  EXPECT_EQ(PlanCacheOutcome::kMissCold, RunOnce(&exec));
  EXPECT_EQ(PlanCacheOutcome::kMissStale, RunOnce(&exec));
  EXPECT_EQ(PlanCacheOutcome::kHit, RunOnce(&exec));

  store.BumpEpoch();  // Models RUNSTATS / matview DDL.
  EXPECT_EQ(PlanCacheOutcome::kMissEpoch, RunOnce(&exec));
  // Reinstalled under the new epoch; the steady state resumes.
  EXPECT_EQ(PlanCacheOutcome::kHit, RunOnce(&exec));
}

TEST_F(PlanCacheExecutorTest, StatsRefreshInvalidates) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  QueryFeedbackStore store;
  PlanCache cache;
  exec.set_cross_query_store(&store);
  exec.set_plan_cache(&cache);

  EXPECT_EQ(PlanCacheOutcome::kMissCold, RunOnce(&exec));
  EXPECT_EQ(PlanCacheOutcome::kMissStale, RunOnce(&exec));
  EXPECT_EQ(PlanCacheOutcome::kHit, RunOnce(&exec));

  catalog_.AnalyzeAll();  // stats_version moves: plans under the old
                          // statistics must never be served again.
  EXPECT_EQ(PlanCacheOutcome::kMissEpoch, RunOnce(&exec));
  EXPECT_EQ(PlanCacheOutcome::kHit, RunOnce(&exec));
}

TEST_F(PlanCacheExecutorTest, StaticExecutionNeverConsultsCache) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  PlanCache cache;
  exec.set_plan_cache(&cache);
  ExecutionStats stats;
  ASSERT_TRUE(exec.ExecuteStatic(JoinQuery(), &stats).ok());
  EXPECT_EQ(PlanCacheOutcome::kNone, stats.plan_cache);
  EXPECT_EQ(0, cache.stats().lookups);
  EXPECT_EQ(0, cache.size());
}

TEST_F(PlanCacheExecutorTest, DifferentOptimizerConfigsDoNotShareEntries) {
  QueryFeedbackStore store;
  PlanCache cache;

  ProgressiveExecutor a(catalog_, OptimizerConfig{}, PopConfig{});
  a.set_cross_query_store(&store);
  a.set_plan_cache(&cache);
  OptimizerConfig other;
  other.methods.enable_mgjn = false;
  ProgressiveExecutor b(catalog_, other, PopConfig{});
  b.set_cross_query_store(&store);
  b.set_plan_cache(&cache);

  EXPECT_EQ(PlanCacheOutcome::kMissCold, RunOnce(&a));
  // Same query, same shared cache — but a different config fingerprint, so
  // executor b starts cold instead of inheriting a's plan.
  EXPECT_EQ(PlanCacheOutcome::kMissCold, RunOnce(&b));
  EXPECT_EQ(2, cache.size());
}

TEST_F(PlanCacheExecutorTest, ExactHitReusesCheckpointPlacement) {
  // Place on every eligible edge (the toy plan's ranges are not narrowed
  // enough for the default placement restriction to fire).
  PopConfig pop;
  pop.require_narrowed_range = false;
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, pop);
  QueryFeedbackStore store;
  PlanCache cache;
  exec.set_cross_query_store(&store);
  exec.set_plan_cache(&cache);

  // Observe the attempt-0 plan handed to the executor builder: on a
  // placed hit it must already carry the cached CHECK operators.
  std::string attempt0_plan;
  exec.set_plan_hook([&](const PlanNode* root, int attempt) {
    if (attempt == 0) attempt0_plan = root->ToString();
  });

  // dept -> emp with a selective dept predicate: its NLJN outer and
  // materialization points give the placement pass real work.
  const auto query = [] {
    QuerySpec q("placed");
    const int d = q.AddTable("dept");
    const int e = q.AddTable("emp");
    q.AddJoin({d, 0}, {e, 1});
    q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
    q.AddGroupBy({e, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  };

  std::vector<std::string> rows_miss, rows_hit;
  ExecutionStats miss_stats, hit_stats;

  // Warm up to the steady state (cold, then stale while feedback settles).
  {
    ExecutionStats cold_stats;
    ASSERT_TRUE(exec.Execute(query(), &cold_stats).ok());
    ASSERT_EQ(PlanCacheOutcome::kMissCold, cold_stats.plan_cache);
  }
  {
    Result<std::vector<Row>> rows = exec.Execute(query(), &miss_stats);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    rows_miss = Canonicalize(rows.value());
  }
  ASSERT_EQ(PlanCacheOutcome::kMissStale, miss_stats.plan_cache);
  const std::string plan_after_miss_placement = attempt0_plan;
  // Both miss runs placed checkpoints at attempt 0 and attached the
  // placed plan to their entry.
  EXPECT_EQ(2, cache.stats().placement_installs);
  EXPECT_EQ(0, cache.stats().placement_hits);

  {
    Result<std::vector<Row>> rows = exec.Execute(query(), &hit_stats);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    rows_hit = Canonicalize(rows.value());
  }
  ASSERT_EQ(PlanCacheOutcome::kHit, hit_stats.plan_cache);
  EXPECT_EQ(1, cache.stats().placement_hits);
  // No re-install on the hit: the placement pass was skipped entirely.
  EXPECT_EQ(2, cache.stats().placement_installs);

  // The served placed plan is exactly what the placement pass produced on
  // the installing run: same plan text (checkpoints included), same
  // per-flavor check counts, same rows.
  EXPECT_EQ(plan_after_miss_placement, attempt0_plan);
  EXPECT_GT(hit_stats.attempts[0].checks.total(), 0);
  EXPECT_EQ(miss_stats.attempts[0].checks.total(),
            hit_stats.attempts[0].checks.total());
  EXPECT_EQ(miss_stats.attempts[0].checks.lc, hit_stats.attempts[0].checks.lc);
  EXPECT_EQ(miss_stats.attempts[0].checks.lcem,
            hit_stats.attempts[0].checks.lcem);
  EXPECT_EQ(rows_miss, rows_hit);
}

TEST_F(PlanCacheExecutorTest, ConcurrentHammerKeepsCountersConsistent) {
  QueryFeedbackStore store;
  PlanCache cache;
  constexpr int kThreads = 4;
  constexpr int kRuns = 25;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
      exec.set_cross_query_store(&store);
      exec.set_plan_cache(&cache);
      for (int i = 0; i < kRuns; ++i) {
        QuerySpec q("join");
        const int e = q.AddTable("emp");
        const int s = q.AddTable("sale");
        q.AddJoin({e, 0}, {s, 0});
        q.AddPred({e, 2}, PredKind::kLt, Value::Int(45));
        q.AddGroupBy({e, 1});
        q.AddAgg(AggFunc::kCount);
        ExecutionStats stats;
        ASSERT_TRUE(exec.Execute(q, &stats).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(kThreads * kRuns, stats.lookups);
  EXPECT_EQ(stats.lookups,
            stats.hits + stats.validity_hits + stats.misses());
  EXPECT_GT(stats.hits, 0);
  EXPECT_EQ(1, cache.size());  // One signature: all threads share it.
}

}  // namespace
}  // namespace popdb
