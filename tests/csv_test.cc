#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/csv.h"

namespace popdb {
namespace {

TEST(CsvTest, HeaderAndTypeInference) {
  Result<Table> t = ParseCsv(
      "t", "id,score,name\n1,2.5,alice\n2,3,bob\n3,4.25,carol\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const Table& table = t.value();
  EXPECT_EQ(3, table.num_rows());
  EXPECT_EQ(ValueType::kInt, table.schema().column(0).type);
  EXPECT_EQ(ValueType::kDouble, table.schema().column(1).type);  // Widened.
  EXPECT_EQ(ValueType::kString, table.schema().column(2).type);
  EXPECT_EQ("id", table.schema().column(0).name);
  EXPECT_EQ(Value::Double(3.0), table.row(1)[1]);
  EXPECT_EQ(Value::String("carol"), table.row(2)[2]);
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvOptions options;
  options.header = false;
  Result<Table> t = ParseCsv("t", "1,x\n2,y\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ("c0", t.value().schema().column(0).name);
  EXPECT_EQ("c1", t.value().schema().column(1).name);
  EXPECT_EQ(2, t.value().num_rows());
}

TEST(CsvTest, QuotedFieldsAndEscapedQuotes) {
  Result<Table> t = ParseCsv(
      "t", "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\nplain,text\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(Value::String("hello, world"), t.value().row(0)[0]);
  EXPECT_EQ(Value::String("say \"hi\""), t.value().row(0)[1]);
}

TEST(CsvTest, QuotedNewlines) {
  Result<Table> t = ParseCsv("t", "a\n\"line1\nline2\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Value::String("line1\nline2"), t.value().row(0)[0]);
}

TEST(CsvTest, EmptyFieldsAreNull) {
  Result<Table> t = ParseCsv("t", "a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value().row(0)[1].is_null());
  EXPECT_TRUE(t.value().row(1)[0].is_null());
  EXPECT_EQ(Value::Int(2), t.value().row(1)[1]);
}

TEST(CsvTest, CustomNullText) {
  CsvOptions options;
  options.null_text = "NA";
  Result<Table> t = ParseCsv("t", "a\n1\nNA\n3\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value().row(1)[0].is_null());
  EXPECT_EQ(ValueType::kInt, t.value().schema().column(0).type);
}

TEST(CsvTest, CrLfHandled) {
  Result<Table> t = ParseCsv("t", "a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(2, t.value().num_rows());
  EXPECT_EQ(Value::Int(4), t.value().row(1)[1]);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = '|';
  Result<Table> t = ParseCsv("t", "a|b\n1|2\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Value::Int(2), t.value().row(0)[1]);
}

TEST(CsvTest, NegativeNumbers) {
  Result<Table> t = ParseCsv("t", "a,b\n-5,-2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Value::Int(-5), t.value().row(0)[0]);
  EXPECT_EQ(Value::Double(-2.5), t.value().row(0)[1]);
}

TEST(CsvTest, RaggedRecordRejected) {
  EXPECT_FALSE(ParseCsv("t", "a,b\n1,2,3\n").ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("t", "a\n\"oops\n").ok());
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsv("t", "").ok());
}

TEST(CsvTest, LoadFileIntoCatalogAndAnalyze) {
  const char* path = "/tmp/popdb_csv_test.csv";
  {
    std::ofstream f(path);
    f << "k,v\n1,10\n2,20\n3,30\n";
  }
  Catalog catalog;
  Status s = LoadCsvFile("kv", path, &catalog);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_NE(nullptr, catalog.GetTable("kv"));
  EXPECT_EQ(3, catalog.GetTable("kv")->num_rows());
  ASSERT_NE(nullptr, catalog.GetStats("kv"));
  EXPECT_EQ(3, catalog.GetStats("kv")->column(0).num_distinct);
  std::remove(path);
}

TEST(CsvTest, MissingFileIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(StatusCode::kNotFound,
            LoadCsvFile("x", "/nonexistent/file.csv", &catalog).code());
}

}  // namespace
}  // namespace popdb
