#ifndef POPDB_TESTS_TEST_UTIL_H_
#define POPDB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/value.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb::testing {

/// Builds a small catalog with three joinable tables:
///   dept(d_id int, d_name string, d_region int)        -- 8 rows
///   emp(e_id int, e_dept int, e_age int, e_name string) -- 200 rows
///   sale(s_emp int, s_amount double, s_year int)        -- 1000 rows
/// Statistics collected, indexes on d_id, e_id, e_dept, s_emp.
void BuildToyCatalog(Catalog* catalog, int64_t emp_rows = 200,
                     int64_t sale_rows = 1000);

/// Executes `query` by brute force (cross product + predicate filtering +
/// hash aggregation), independent of the optimizer and executor under
/// test. Intended as the correctness oracle.
std::vector<Row> ReferenceExecute(const Catalog& catalog,
                                  const QuerySpec& query);

/// Multiset row comparison helper: sorts a printable encoding of each row.
std::vector<std::string> Canonicalize(const std::vector<Row>& rows);

}  // namespace popdb::testing

#endif  // POPDB_TESTS_TEST_UTIL_H_
