// Differential oracle for incremental re-optimization: every query runs
// through two worlds — one re-optimizing incrementally (the persistent DP
// memo reuses entries untouched by the feedback delta) and one running
// full DP from scratch on every attempt. The worlds must be
// indistinguishable: identical result rows, re-optimization counts,
// per-attempt plan texts, checkpoint placements, CHECK firings, and
// learned feedback, over the TPC-H paper corpus (plain and
// parameter-marker variants) and the DMV workload.
//
// A second leg drives the optimizer directly: randomized feedback
// perturbations (and matview offers) applied to a persistent memo, with
// plan identity asserted after every delta via PlanDigest — a bit-exact
// FNV-1a digest over every field of the plan tree, stricter than the
// printed plan text.
//
// Set POPDB_EQUIV_LIGHT=1 to run a reduced corpus (used by the sanitizer
// CI stages, where the full sweep is too slow).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;

bool LightMode() {
  const char* v = std::getenv("POPDB_EQUIV_LIGHT");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Everything about one execution that must be invariant under
/// incremental vs. from-scratch re-optimization.
struct Outcome {
  bool ok = false;
  std::string status;
  std::vector<std::string> rows;  // Canonicalized (sorted) result set.
  int reopts = 0;
  size_t attempts = 0;
  std::vector<std::string> plan_texts;  // One per attempt.
  /// Checkpoints placed per attempt: (lc, lcem, ecb, ecwc, ecdc, bound).
  std::vector<std::tuple<int, int, int, int, int, int>> placements;
  /// (edge_set, flavor, site, count, fired) per checkpoint evaluation.
  std::vector<std::tuple<TableSet, int, int, int64_t, bool>> check_events;
  /// Learned cardinalities by subplan signature: (exact, lower_bound).
  std::map<std::string, std::pair<double, double>> learned;
};

/// One executor + feedback store with incremental re-optimization on or
/// off, optionally with a plan cache, persistent across the whole replay.
struct World {
  World(const Catalog& catalog, bool incremental, bool with_cache = false) {
    PopConfig pop;
    pop.incremental_reopt = incremental;
    exec = std::make_unique<ProgressiveExecutor>(catalog, OptimizerConfig{},
                                                 pop);
    exec->set_cross_query_store(&store);
    if (with_cache) {
      cache = std::make_unique<PlanCache>();
      exec->set_plan_cache(cache.get());
    }
  }

  QueryFeedbackStore store;
  std::unique_ptr<PlanCache> cache;
  std::unique_ptr<ProgressiveExecutor> exec;
  /// Accumulated over every run of this world.
  int64_t reopts = 0;
  int64_t memo_reused = 0;
  int64_t memo_invalidated = 0;
  int64_t memo_warm_starts = 0;
};

Outcome RunOnce(World* world, const QuerySpec& query) {
  ExecutionStats stats;
  Result<std::vector<Row>> rows = world->exec->Execute(query, &stats);

  Outcome o;
  o.ok = rows.ok();
  o.status = rows.ok() ? "" : rows.status().ToString();
  if (rows.ok()) o.rows = Canonicalize(rows.value());
  o.reopts = stats.reopts;
  o.attempts = stats.attempts.size();
  for (const AttemptInfo& a : stats.attempts) {
    o.plan_texts.push_back(a.plan_text);
    o.placements.emplace_back(a.checks.lc, a.checks.lcem, a.checks.ecb,
                              a.checks.ecwc, a.checks.ecdc,
                              a.checks.work_bound);
  }
  for (const CheckEvent& ev : stats.check_events) {
    o.check_events.emplace_back(ev.edge_set, static_cast<int>(ev.flavor),
                                static_cast<int>(ev.site), ev.count,
                                ev.fired);
  }
  for (const auto& [sig, fb] : world->store.Dump()) {
    o.learned.emplace(sig, std::make_pair(fb.exact, fb.lower_bound));
  }
  world->reopts += stats.reopts;
  world->memo_reused += stats.memo_entries_reused;
  world->memo_invalidated += stats.memo_entries_invalidated;
  world->memo_warm_starts += stats.memo_warm_starts;
  return o;
}

void ExpectSameOutcome(const Outcome& full, const Outcome& inc,
                       const std::string& label) {
  ASSERT_EQ(full.ok, inc.ok)
      << label << ": " << full.status << " vs " << inc.status;
  if (!full.ok) return;
  EXPECT_EQ(full.rows, inc.rows) << label << ": result rows differ";
  EXPECT_EQ(full.reopts, inc.reopts)
      << label << ": re-optimization count differs";
  EXPECT_EQ(full.attempts, inc.attempts)
      << label << ": attempt count differs";
  EXPECT_EQ(full.plan_texts, inc.plan_texts)
      << label << ": chosen plans differ";
  EXPECT_EQ(full.placements, inc.placements)
      << label << ": checkpoint placements differ";
  EXPECT_EQ(full.check_events, inc.check_events)
      << label << ": CHECK decisions differ";
  EXPECT_EQ(full.learned, inc.learned)
      << label << ": harvested feedback differs";
}

/// Replays `corpus` for several passes through a from-scratch world and an
/// incremental world, comparing every run. The cross-query stores make the
/// feedback seeding of later passes depend on earlier CHECK firings, so
/// re-optimizing queries exercise the memo invalidation path repeatedly.
void SweepCorpus(const Catalog& catalog,
                 const std::vector<QuerySpec>& corpus, const char* tag,
                 bool expect_reopts) {
  const int passes = LightMode() ? 3 : 4;
  World full(catalog, /*incremental=*/false);
  World inc(catalog, /*incremental=*/true);

  for (int pass = 0; pass < passes; ++pass) {
    for (const QuerySpec& q : corpus) {
      SCOPED_TRACE(std::string(tag) + "/" + q.name() + " pass=" +
                   std::to_string(pass));
      ExpectSameOutcome(RunOnce(&full, q), RunOnce(&inc, q),
                        std::string(tag) + "/" + q.name());
    }
  }

  // The equivalence must not hold vacuously: the from-scratch world never
  // touches a memo, and whenever the incremental world actually
  // re-optimized a multi-table query some untouched memo entries must have
  // been reused (a sweep where every re-optimization rebuilt everything
  // would mean the invalidation rule degenerated to "drop all").
  EXPECT_EQ(0, full.memo_reused) << tag;
  EXPECT_EQ(0, full.memo_invalidated) << tag;
  if (expect_reopts) {
    EXPECT_GT(inc.reopts, 0)
        << tag << ": corpus never re-optimized, the oracle tested nothing";
  }
  if (inc.reopts > 0) {
    EXPECT_GT(inc.memo_reused + inc.memo_invalidated, 0)
        << tag << ": re-optimizations never consulted the memo";
  }
}

TEST(ReoptDifferentialTest, TpchPaperQueries) {
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  // Light mode keeps only the join-heavy Q8/Q9 pair — the queries whose
  // marker variants reliably re-optimize, so the memo path stays covered.
  std::vector<QuerySpec> corpus;
  for (int qnum : tpch::PaperQueries()) {
    if (LightMode() && qnum != 8 && qnum != 9) continue;
    corpus.push_back(tpch::MakeQuery(qnum));
  }
  // Parameter-marker variants: default selectivities make estimates wrong,
  // checks fire, and every re-optimization runs through the memo.
  tpch::QueryOptions marked;
  marked.param_markers = true;
  for (int qnum : tpch::PaperQueries()) {
    if (LightMode() && qnum != 8 && qnum != 9) continue;
    corpus.push_back(tpch::MakeQuery(qnum, marked));
  }
  // The marker variants guarantee firing checks: default selectivities
  // misestimate, so the sweep re-optimizes and the memo is exercised.
  SweepCorpus(catalog, corpus, "tpch", /*expect_reopts=*/true);
}

TEST(ReoptDifferentialTest, DmvWorkload) {
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = 0.2;
  ASSERT_TRUE(dmv::BuildCatalog(gen, &catalog).ok());

  dmv::WorkloadConfig wl;
  if (LightMode()) wl.num_queries = 4;
  // The DMV generator's correlated columns are the paper's motivating
  // misestimation; whether a given light-mode subset re-optimizes is
  // workload-dependent, so only the full corpus requires it.
  SweepCorpus(catalog, dmv::MakeWorkload(wl), "dmv",
              /*expect_reopts=*/!LightMode());
}

TEST(ReoptDifferentialTest, NearMissWarmStartStaysIdentical) {
  // Plan-cache near misses (same signature, moved feedback digest) hand
  // their stale skeleton to the memo as a warm start. The warm-started
  // first optimization must still be bit-identical to full DP: the
  // incremental world here additionally has a plan cache, the baseline
  // world has neither cache nor memo.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  std::vector<QuerySpec> corpus;
  tpch::QueryOptions marked;
  marked.param_markers = true;
  for (int qnum : tpch::PaperQueries()) {
    // Light mode: join-heavy queries only, so warm starts leave reusable
    // entries (a 2-table query's delta can dirty its whole memo).
    if (LightMode() && qnum != 8 && qnum != 9) continue;
    corpus.push_back(tpch::MakeQuery(qnum, marked));
  }

  World full(catalog, /*incremental=*/false);
  World inc(catalog, /*incremental=*/true, /*with_cache=*/true);
  const int passes = 3;
  for (int pass = 0; pass < passes; ++pass) {
    for (const QuerySpec& q : corpus) {
      SCOPED_TRACE(q.name() + " pass=" + std::to_string(pass));
      ExpectSameOutcome(RunOnce(&full, q), RunOnce(&inc, q), q.name());
    }
  }

  // Marker queries re-optimize and learn cardinalities into the shared
  // store, so re-submissions find their cached entry stale: the lookups
  // must have been classified as near misses and must have warm-started
  // the memo (a sweep without either would leave the warm-start path
  // untested).
  const PlanCache::Stats stats = inc.cache->stats();
  EXPECT_GT(stats.near_misses, 0) << "no lookup ever near-missed";
  EXPECT_EQ(stats.near_misses, stats.misses_stale);
  EXPECT_GT(inc.memo_warm_starts, 0) << "no near miss warm-started the memo";
  EXPECT_GT(inc.memo_reused, 0);
}

/// Bit-exact comparison of one optimization under a persistent memo
/// against a from-scratch optimization with identical inputs.
void ExpectIdenticalPlans(const Catalog& catalog, const QuerySpec& q,
                          const FeedbackMap& fb,
                          const std::vector<AvailableMatView>* mvs,
                          IncrementalMemo* memo, const std::string& label,
                          int64_t* reused_total) {
  Optimizer opt(catalog, OptimizerConfig{});
  Result<OptimizedPlan> fresh = opt.Optimize(q, &fb, mvs, nullptr, nullptr);
  Result<OptimizedPlan> inc = opt.Optimize(q, &fb, mvs, nullptr, memo);
  ASSERT_EQ(fresh.ok(), inc.ok()) << label;
  ASSERT_TRUE(fresh.ok()) << label << ": " << fresh.status().ToString();
  EXPECT_EQ(PlanDigest(*fresh.value().root), PlanDigest(*inc.value().root))
      << label << ":\nfull DP:\n"
      << fresh.value().root->ToString() << "\nincremental:\n"
      << inc.value().root->ToString();
  // Costs and cardinalities must match to the last bit, not just to the
  // printed precision.
  EXPECT_EQ(fresh.value().est_cost, inc.value().est_cost) << label;
  EXPECT_EQ(fresh.value().est_card, inc.value().est_card) << label;
  *reused_total += inc.value().memo_reused;
}

TEST(ReoptDifferentialTest, RandomizedPerturbationsKeepPlanIdentity) {
  // Optimizer-level fuzz: Q8/Q9-class TPC-H queries under a persistent
  // memo, with a random edge cardinality perturbed (or dropped), a
  // matview offer toggled, or nothing changed between optimizations.
  // After every delta the incremental plan must be bit-identical to full
  // DP under the same inputs.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  const std::vector<Row> mv_rows;  // Never executed; identity only.
  const int rounds = LightMode() ? 12 : 40;
  for (const int qnum : {8, 9}) {
    const QuerySpec q = tpch::MakeQuery(qnum);
    std::vector<TableSet> bits;
    for (TableSet s = q.AllTables(); s != 0; s &= s - 1) {
      bits.push_back(s & ~(s - 1));
    }

    Rng rng(0xC0FFEE + static_cast<uint64_t>(qnum));
    IncrementalMemo memo;
    FeedbackMap fb;
    std::vector<AvailableMatView> mvs;
    int64_t reused_total = 0;
    for (int round = 0; round < rounds; ++round) {
      // Random nonempty subset of the query's tables: the perturbed edge.
      TableSet edge = 0;
      for (const TableSet b : bits) {
        if (rng.Bernoulli(0.4)) edge |= b;
      }
      if (edge == 0) edge = bits[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bits.size()) - 1))];

      switch (rng.UniformInt(0, 5)) {
        case 0:  // No-op round: everything must be reused.
          break;
        case 1:
          fb.erase(edge);
          break;
        case 2:
          fb[edge].lower_bound = 1.0 + rng.UniformDouble() * 10000.0;
          break;
        case 3:  // Toggle a matview offer for a random singleton.
          if (mvs.empty()) {
            AvailableMatView mv;
            mv.name = "mv_fuzz";
            mv.set = bits[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(bits.size()) - 1))];
            mv.card = 1.0 + rng.UniformDouble() * 50.0;
            mv.rows = &mv_rows;
            mvs.push_back(std::move(mv));
          } else {
            mvs.clear();
          }
          break;
        default:
          fb[edge].exact = 1.0 + rng.UniformDouble() * 10000.0;
          break;
      }

      ExpectIdenticalPlans(catalog, q, fb, mvs.empty() ? nullptr : &mvs,
                           &memo,
                           "q" + std::to_string(qnum) + " round=" +
                               std::to_string(round),
                           &reused_total);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Perturbing one edge leaves the disjoint part of the memo reusable;
    // a sweep that never reused anything would be testing nothing.
    EXPECT_GT(reused_total, 0) << "q" << qnum;
  }
}

TEST(ReoptDifferentialTest, FingerprintMismatchFallsBackToFullDp) {
  // A memo committed for one query must never leak entries into a
  // different query's optimization: the canonical-signature fingerprint
  // gates reuse, and the second query's plan is still bit-identical to
  // its from-scratch optimization.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  Optimizer opt(catalog, OptimizerConfig{});
  IncrementalMemo memo;
  const QuerySpec q8 = tpch::MakeQuery(8);
  const QuerySpec q9 = tpch::MakeQuery(9);
  ASSERT_TRUE(opt.Optimize(q8, nullptr, nullptr, nullptr, &memo).ok());
  ASSERT_GT(memo.entries(), 0);

  Result<OptimizedPlan> fresh = opt.Optimize(q9);
  Result<OptimizedPlan> inc = opt.Optimize(q9, nullptr, nullptr, nullptr,
                                           &memo);
  ASSERT_TRUE(fresh.ok() && inc.ok());
  EXPECT_EQ(0, inc.value().memo_reused)
      << "memo entries leaked across query fingerprints";
  EXPECT_EQ(PlanDigest(*fresh.value().root), PlanDigest(*inc.value().root));
}

}  // namespace
}  // namespace popdb
