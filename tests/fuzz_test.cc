#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "common/json.h"
#include "common/rng.h"
#include "core/pop.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;

/// Randomized end-to-end property test: generate a random SPJ(+agg) query
/// over a small star schema with engineered correlations, run it under a
/// random POP configuration, and compare against the brute-force oracle.
/// Seeds are test parameters so failures are reproducible.
///
/// Schema:
///   fact(f_id, f_dim1, f_dim2, f_a, f_b)   -- f_b correlated with f_a
///   dim1(d1_id, d1_x, d1_name)
///   dim2(d2_id, d2_y)
class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    Rng rng(4242);
    {
      Table dim1("dim1", Schema({{"d1_id", ValueType::kInt},
                                 {"d1_x", ValueType::kInt},
                                 {"d1_name", ValueType::kString}}));
      for (int64_t i = 0; i < 60; ++i) {
        dim1.AppendRow({Value::Int(i), Value::Int(i % 6),
                        Value::String("dim" + std::to_string(i % 10))});
      }
      ASSERT_TRUE(catalog_->AddTable(std::move(dim1)).ok());
    }
    {
      Table dim2("dim2", Schema({{"d2_id", ValueType::kInt},
                                 {"d2_y", ValueType::kInt}}));
      for (int64_t i = 0; i < 40; ++i) {
        dim2.AppendRow({Value::Int(i), Value::Int(i % 4)});
      }
      ASSERT_TRUE(catalog_->AddTable(std::move(dim2)).ok());
    }
    {
      Table fact("fact", Schema({{"f_id", ValueType::kInt},
                                 {"f_dim1", ValueType::kInt},
                                 {"f_dim2", ValueType::kInt},
                                 {"f_a", ValueType::kInt},
                                 {"f_b", ValueType::kInt}}));
      for (int64_t i = 0; i < 1200; ++i) {
        const int64_t a = rng.UniformInt(0, 29);
        // f_b is determined by f_a 80% of the time: a correlation trap.
        const int64_t b =
            rng.Bernoulli(0.8) ? (a * 3) % 20 : rng.UniformInt(0, 19);
        fact.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 59)),
                        Value::Int(rng.UniformInt(0, 39)), Value::Int(a),
                        Value::Int(b)});
      }
      ASSERT_TRUE(catalog_->AddTable(std::move(fact)).ok());
    }
    catalog_->AnalyzeAll();
    ASSERT_TRUE(catalog_->CreateIndex("dim1", "d1_id").ok());
    // dim2 deliberately unindexed: NLJN into it scans.
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  /// Builds a random query; always includes fact.
  static QuerySpec RandomQuery(Rng* rng) {
    QuerySpec q("fuzz");
    const int f = q.AddTable("fact");
    int d1 = -1, d2 = -1;
    if (rng->Bernoulli(0.7)) {
      d1 = q.AddTable("dim1");
      q.AddJoin({f, 1}, {d1, 0});
    }
    if (rng->Bernoulli(0.5)) {
      d2 = q.AddTable("dim2");
      q.AddJoin({f, 2}, {d2, 0});
    }
    // Random fact predicates, sometimes the correlated pair.
    const int64_t a = rng->UniformInt(0, 29);
    switch (rng->UniformInt(0, 3)) {
      case 0:
        q.AddPred({f, 3}, PredKind::kEq, Value::Int(a));
        break;
      case 1:  // Correlated pair: heavy underestimate.
        q.AddPred({f, 3}, PredKind::kEq, Value::Int(a));
        q.AddPred({f, 4}, PredKind::kEq, Value::Int((a * 3) % 20));
        break;
      case 2:
        q.AddPred({f, 3}, PredKind::kBetween, Value::Int(a / 2),
                  Value::Int(a));
        break;
      default:
        if (rng->Bernoulli(0.5)) {
          q.AddParamPred({f, 3}, PredKind::kLt, 0);
          q.BindParam(Value::Int(rng->UniformInt(0, 30)));
        }
        break;
    }
    if (d1 >= 0 && rng->Bernoulli(0.5)) {
      switch (rng->UniformInt(0, 2)) {
        case 0:
          q.AddPred({d1, 1}, PredKind::kEq,
                    Value::Int(rng->UniformInt(0, 5)));
          break;
        case 1:
          q.AddInPred({d1, 1}, {Value::Int(0), Value::Int(2)});
          break;
        default:
          q.AddPred({d1, 2}, PredKind::kLike, Value::String("dim1%"));
          break;
      }
    }
    if (d2 >= 0 && rng->Bernoulli(0.5)) {
      q.AddPred({d2, 1}, PredKind::kGe, Value::Int(rng->UniformInt(0, 3)));
    }
    // Output shape: aggregation or projection.
    if (rng->Bernoulli(0.5)) {
      q.AddGroupBy({f, 3});
      bool has_count = false;
      if (rng->Bernoulli(0.5)) {
        q.AddAgg(AggFunc::kCount);
        has_count = true;
      }
      q.AddAgg(AggFunc::kSum, {f, 4});  // Int column: exact in double.
      if (d1 >= 0 && rng->Bernoulli(0.3)) q.AddGroupBy({d1, 1});
      if (has_count && rng->Bernoulli(0.4)) {
        // HAVING COUNT(*) >= k over the first aggregate column.
        const int count_pos = static_cast<int>(q.group_by().size());
        q.AddHaving(count_pos, PredKind::kGe,
                    Value::Int(rng->UniformInt(1, 4)));
      }
    } else {
      q.AddProjection({f, 0});
      if (d1 >= 0) q.AddProjection({d1, 2});
      if (rng->Bernoulli(0.3)) q.AddProjection({f, 4});
      if (rng->Bernoulli(0.3)) q.SetDistinct(true);
    }
    return q;
  }

  static PopConfig RandomPopConfig(Rng* rng) {
    PopConfig pop;
    pop.enable_lc = rng->Bernoulli(0.7);
    pop.enable_lcem = rng->Bernoulli(0.7);
    pop.enable_ecb = rng->Bernoulli(0.3);
    pop.enable_ecwc = rng->Bernoulli(0.2);
    pop.enable_ecdc = rng->Bernoulli(0.3);
    pop.require_narrowed_range = rng->Bernoulli(0.8);
    pop.max_reopts = static_cast<int>(rng->UniformInt(0, 3));
    pop.reuse_matviews = rng->Bernoulli(0.8);
    pop.reuse_hsjn_builds = rng->Bernoulli(0.3);
    if (rng->Bernoulli(0.3)) pop.work_bound_factor = 2.0;
    if (rng->Bernoulli(0.2)) pop.min_assumptions_for_checks = 1;
    return pop;
  }

  static Catalog* catalog_;
};

Catalog* FuzzTest::catalog_ = nullptr;

TEST_P(FuzzTest, PopMatchesOracleUnderRandomConfig) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  for (int round = 0; round < 6; ++round) {
    const QuerySpec q = RandomQuery(&rng);
    OptimizerConfig opt;
    opt.methods.enable_nljn = rng.Bernoulli(0.9);
    opt.methods.enable_hsjn = rng.Bernoulli(0.9);
    opt.methods.enable_mgjn = rng.Bernoulli(0.9);
    if (!opt.methods.enable_nljn && !opt.methods.enable_hsjn &&
        !opt.methods.enable_mgjn) {
      opt.methods.enable_hsjn = true;
    }
    if (rng.Bernoulli(0.3)) opt.cost.mem_rows = 64;  // Spill everywhere.

    const std::vector<Row> expected = ReferenceExecute(*catalog_, q);
    ProgressiveExecutor exec(*catalog_, opt, RandomPopConfig(&rng));
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec.Execute(q, &stats);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()))
        << "seed=" << GetParam() << " round=" << round << "\n"
        << q.ToString();
  }
}

/// Differential fuzz for the plan cache: every random query runs through a
/// cached world and an uncached world (each with its own persistent
/// feedback store evolving identically), twice per round so repeats can be
/// served from the cache. One PlanCache instance is shared across all
/// rounds and optimizer configs of a seed — a signature-canonicalization
/// collision between two structurally different random queries (or two
/// configs) would surface as a result mismatch here.
TEST_P(FuzzTest, PlanCacheOnOffAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 9001);
  PlanCache cache;
  QueryFeedbackStore store_on, store_off;
  for (int round = 0; round < 6; ++round) {
    const QuerySpec q = RandomQuery(&rng);
    OptimizerConfig opt;
    opt.methods.enable_nljn = rng.Bernoulli(0.9);
    opt.methods.enable_hsjn = rng.Bernoulli(0.9);
    opt.methods.enable_mgjn = rng.Bernoulli(0.9);
    if (!opt.methods.enable_nljn && !opt.methods.enable_hsjn &&
        !opt.methods.enable_mgjn) {
      opt.methods.enable_hsjn = true;
    }
    if (rng.Bernoulli(0.3)) opt.cost.mem_rows = 64;
    const PopConfig pop = RandomPopConfig(&rng);

    const std::vector<std::string> expected =
        Canonicalize(ReferenceExecute(*catalog_, q));
    ProgressiveExecutor exec_off(*catalog_, opt, pop);
    exec_off.set_cross_query_store(&store_off);
    ProgressiveExecutor exec_on(*catalog_, opt, pop);
    exec_on.set_cross_query_store(&store_on);
    exec_on.set_plan_cache(&cache);

    for (int repeat = 0; repeat < 2; ++repeat) {
      ExecutionStats stats_off, stats_on;
      Result<std::vector<Row>> rows_off = exec_off.Execute(q, &stats_off);
      Result<std::vector<Row>> rows_on = exec_on.Execute(q, &stats_on);
      ASSERT_TRUE(rows_off.ok()) << rows_off.status().ToString();
      ASSERT_TRUE(rows_on.ok()) << rows_on.status().ToString();
      const std::string label = "seed=" + std::to_string(GetParam()) +
                                " round=" + std::to_string(round) +
                                " repeat=" + std::to_string(repeat) + "\n" +
                                q.ToString();
      EXPECT_EQ(expected, Canonicalize(rows_on.value())) << label;
      EXPECT_EQ(Canonicalize(rows_off.value()),
                Canonicalize(rows_on.value()))
          << label;
      EXPECT_EQ(stats_off.reopts, stats_on.reopts) << label;
      EXPECT_EQ(stats_off.attempts.size(), stats_on.attempts.size())
          << label;
    }
  }
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups,
            stats.hits + stats.validity_hits + stats.misses());
}

/// Differential fuzz for the vectorized engine: each random query (under
/// a random POP configuration, so CHECK flavors, work bounds and re-opt
/// budgets vary) runs on the row engine (batch_rows = 1) and at batch
/// sizes 3 and 1024. Rows, CHECK firings by flavor, re-opt/attempt counts
/// and absorbed feedback must be identical — batch-boundary checks decide
/// exactly like per-row checks.
TEST_P(FuzzTest, RowAndBatchEnginesAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 777);
  for (int round = 0; round < 4; ++round) {
    const QuerySpec q = RandomQuery(&rng);
    OptimizerConfig opt;
    opt.methods.enable_nljn = rng.Bernoulli(0.9);
    opt.methods.enable_hsjn = rng.Bernoulli(0.9);
    opt.methods.enable_mgjn = rng.Bernoulli(0.9);
    if (!opt.methods.enable_nljn && !opt.methods.enable_hsjn &&
        !opt.methods.enable_mgjn) {
      opt.methods.enable_hsjn = true;
    }
    if (rng.Bernoulli(0.3)) opt.cost.mem_rows = 64;  // Spill everywhere.
    const PopConfig pop = RandomPopConfig(&rng);

    const auto run = [&](int64_t batch_rows, QueryFeedbackStore* store,
                         ExecutionStats* stats) {
      ProgressiveExecutor exec(*catalog_, opt, pop);
      exec.set_cross_query_store(store);
      ParallelPolicy policy;
      policy.batch_rows = batch_rows;
      exec.set_parallel(nullptr, policy);
      return exec.Execute(q, stats);
    };

    QueryFeedbackStore store_row;
    ExecutionStats stats_row;
    Result<std::vector<Row>> rows_row = run(1, &store_row, &stats_row);
    ASSERT_TRUE(rows_row.ok()) << rows_row.status().ToString();

    for (const int64_t batch_rows : {int64_t{3}, int64_t{1024}}) {
      QueryFeedbackStore store_batch;
      ExecutionStats stats_batch;
      Result<std::vector<Row>> rows_batch =
          run(batch_rows, &store_batch, &stats_batch);
      const std::string label =
          "seed=" + std::to_string(GetParam()) +
          " round=" + std::to_string(round) +
          " batch_rows=" + std::to_string(batch_rows) + "\n" + q.ToString();
      ASSERT_TRUE(rows_batch.ok())
          << label << ": " << rows_batch.status().ToString();
      EXPECT_EQ(Canonicalize(rows_row.value()),
                Canonicalize(rows_batch.value()))
          << label;
      EXPECT_EQ(stats_row.reopts, stats_batch.reopts) << label;
      EXPECT_EQ(stats_row.attempts.size(), stats_batch.attempts.size())
          << label;
      ASSERT_EQ(stats_row.check_events.size(),
                stats_batch.check_events.size())
          << label;
      for (size_t i = 0; i < stats_row.check_events.size(); ++i) {
        const CheckEvent& a = stats_row.check_events[i];
        const CheckEvent& b = stats_batch.check_events[i];
        EXPECT_EQ(a.edge_set, b.edge_set) << label << " event " << i;
        EXPECT_EQ(a.flavor, b.flavor) << label << " event " << i;
        EXPECT_EQ(a.site, b.site) << label << " event " << i;
        EXPECT_EQ(a.count, b.count) << label << " event " << i;
        EXPECT_EQ(a.fired, b.fired) << label << " event " << i;
      }
      // Absorbed feedback: identical signatures and cardinalities.
      const auto dump_row = store_row.Dump();
      const auto dump_batch = store_batch.Dump();
      ASSERT_EQ(dump_row.size(), dump_batch.size()) << label;
      for (const auto& [sig, fb] : dump_row) {
        const auto it = dump_batch.find(sig);
        ASSERT_TRUE(it != dump_batch.end()) << label << " missing " << sig;
        EXPECT_EQ(fb.exact, it->second.exact) << label << " " << sig;
        EXPECT_EQ(fb.lower_bound, it->second.lower_bound)
            << label << " " << sig;
      }
    }
  }
}

/// Differential fuzz for incremental re-optimization: random star queries
/// under one persistent IncrementalMemo, with random cardinality
/// perturbations (exact values, lower bounds, retractions) and occasional
/// epoch bumps (memo reset) between optimizations. After every delta the
/// memo-backed optimization must be bit-identical — plan digest, cost and
/// cardinality — to a from-scratch full DP under the same feedback. Query
/// shape changes mid-stream exercise the fingerprint gate (a memo
/// committed for one query never leaks into another).
TEST_P(FuzzTest, IncrementalReoptMatchesFullDp) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 555);
  OptimizerConfig opt_config;
  opt_config.methods.enable_nljn = rng.Bernoulli(0.9);
  opt_config.methods.enable_hsjn = rng.Bernoulli(0.9);
  opt_config.methods.enable_mgjn = rng.Bernoulli(0.9);
  if (!opt_config.methods.enable_nljn && !opt_config.methods.enable_hsjn &&
      !opt_config.methods.enable_mgjn) {
    opt_config.methods.enable_hsjn = true;
  }
  // One memo per optimizer configuration: plans costed under one config
  // must never seed an enumeration under another.
  Optimizer opt(*catalog_, opt_config);
  IncrementalMemo memo;
  FeedbackMap fb;
  QuerySpec q = RandomQuery(&rng);
  int64_t reused_total = 0;

  for (int round = 0; round < 12; ++round) {
    if (rng.Bernoulli(0.15)) {
      // New query shape: the fingerprint gate must discard the memo.
      q = RandomQuery(&rng);
      fb.clear();
    }
    if (rng.Bernoulli(0.1)) memo.Reset();  // Epoch bump.

    // Random nonempty subset of the query's tables.
    std::vector<TableSet> bits;
    for (TableSet s = q.AllTables(); s != 0; s &= s - 1) {
      bits.push_back(s & ~(s - 1));
    }
    TableSet edge = 0;
    for (const TableSet b : bits) {
      if (rng.Bernoulli(0.5)) edge |= b;
    }
    if (edge == 0) edge = bits[0];
    switch (rng.UniformInt(0, 3)) {
      case 0:
        break;  // No-op delta.
      case 1:
        fb.erase(edge);
        break;
      case 2:
        fb[edge].lower_bound = 1.0 + rng.UniformDouble() * 2000.0;
        break;
      default:
        fb[edge].exact = 1.0 + rng.UniformDouble() * 2000.0;
        break;
    }

    Result<OptimizedPlan> fresh = opt.Optimize(q, &fb);
    Result<OptimizedPlan> inc = opt.Optimize(q, &fb, nullptr, nullptr, &memo);
    const std::string label = "seed=" + std::to_string(GetParam()) +
                              " round=" + std::to_string(round) + "\n" +
                              q.ToString();
    ASSERT_EQ(fresh.ok(), inc.ok()) << label;
    ASSERT_TRUE(fresh.ok()) << label << ": " << fresh.status().ToString();
    EXPECT_EQ(PlanDigest(*fresh.value().root),
              PlanDigest(*inc.value().root))
        << label << "\nfull DP:\n"
        << fresh.value().root->ToString() << "\nincremental:\n"
        << inc.value().root->ToString();
    EXPECT_EQ(fresh.value().est_cost, inc.value().est_cost) << label;
    EXPECT_EQ(fresh.value().est_card, inc.value().est_card) << label;
    reused_total += inc.value().memo_reused;
  }
  // Across 12 rounds of mostly-stable queries some entries must have been
  // reused, or the differential above compared full DP against full DP.
  EXPECT_GT(reused_total, 0) << "seed=" << GetParam();
}

/// parse → WriteTo → parse fuzz over random writer-built documents: the
/// wire protocol and the dist subplan encoding both rely on re-serialized
/// JSON being a semantic fixpoint.
TEST_P(FuzzTest, JsonReserializationIsAFixpoint) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 31337);
  for (int round = 0; round < 20; ++round) {
    JsonWriter w;
    // Random tree, scalars past depth 5.
    std::function<void(int)> emit = [&](int depth) {
      switch (depth >= 5 ? rng.UniformInt(0, 3) : rng.UniformInt(0, 5)) {
        case 0:
          w.Null();
          break;
        case 1:
          w.Int(rng.UniformInt(-1000000, 1000000));
          break;
        case 2:
          w.Double((rng.UniformDouble() - 0.5) * 1e12);
          break;
        case 3: {
          std::string s;
          for (int64_t i = rng.UniformInt(0, 6); i > 0; --i) {
            s += static_cast<char>(rng.UniformInt(1, 126));
          }
          w.String(s);
          break;
        }
        case 4: {
          w.BeginArray();
          for (int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
            emit(depth + 1);
          }
          w.EndArray();
          break;
        }
        default: {
          w.BeginObject();
          for (int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
            w.Key("f" + std::to_string(i));
            emit(depth + 1);
          }
          w.EndObject();
          break;
        }
      }
    };
    emit(0);
    Result<JsonValue> first = JsonParse(w.str());
    ASSERT_TRUE(first.ok())
        << "seed=" << GetParam() << " round=" << round << ": " << w.str()
        << ": " << first.status().ToString();
    const std::string canonical = first.value().ToJsonString();
    Result<JsonValue> second = JsonParse(canonical);
    ASSERT_TRUE(second.ok())
        << "seed=" << GetParam() << " round=" << round << ": " << canonical;
    EXPECT_EQ(canonical, second.value().ToJsonString())
        << "seed=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace popdb
