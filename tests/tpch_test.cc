#include <gtest/gtest.h>

#include "core/pop.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;

/// One tiny catalog shared by all TPC-H tests (generation is the slow
/// part).
class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::GenConfig gen;
    gen.scale = 0.001;
    ASSERT_TRUE(tpch::BuildCatalog(gen, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* TpchTest::catalog_ = nullptr;

TEST_F(TpchTest, RowCountsMatchScaleContract) {
  EXPECT_EQ(5, catalog_->GetTable("region")->num_rows());
  EXPECT_EQ(25, catalog_->GetTable("nation")->num_rows());
  EXPECT_EQ(tpch::RowsAtScale("lineitem", 0.001),
            catalog_->GetTable("lineitem")->num_rows());
  EXPECT_EQ(tpch::RowsAtScale("orders", 0.001),
            catalog_->GetTable("orders")->num_rows());
  EXPECT_EQ(tpch::RowsAtScale("customer", 0.001),
            catalog_->GetTable("customer")->num_rows());
}

TEST_F(TpchTest, ForeignKeysAreJoinable) {
  const Table* lineitem = catalog_->GetTable("lineitem");
  const Table* orders = catalog_->GetTable("orders");
  const int64_t n_orders = orders->num_rows();
  for (int64_t i = 0; i < lineitem->num_rows(); ++i) {
    const int64_t okey =
        lineitem->row(i)[tpch::Lineitem::kOrderKey].AsInt();
    ASSERT_GE(okey, 0);
    ASSERT_LT(okey, n_orders);
  }
}

TEST_F(TpchTest, DerivedColumnsConsistent) {
  const Table* orders = catalog_->GetTable("orders");
  for (int64_t i = 0; i < orders->num_rows(); ++i) {
    const Row& r = orders->row(i);
    EXPECT_EQ(1992 + r[tpch::Orders::kOrderDate].AsInt() / 365,
              r[tpch::Orders::kOrderYear].AsInt());
  }
  const Table* lineitem = catalog_->GetTable("lineitem");
  for (int64_t i = 0; i < lineitem->num_rows(); ++i) {
    const int64_t sel = lineitem->row(i)[tpch::Lineitem::kSel].AsInt();
    EXPECT_GE(sel, 0);
    EXPECT_LT(sel, 100);
  }
}

TEST_F(TpchTest, StatsAndIndexesBuilt) {
  ASSERT_NE(nullptr, catalog_->GetStats("lineitem"));
  EXPECT_NE(nullptr, catalog_->FindIndex("orders", tpch::Orders::kOrderKey));
  EXPECT_NE(nullptr,
            catalog_->FindIndex("lineitem", tpch::Lineitem::kOrderKey));
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  Catalog other;
  tpch::GenConfig gen;
  gen.scale = 0.001;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &other).ok());
  const Table* a = catalog_->GetTable("lineitem");
  const Table* b = other.GetTable("lineitem");
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (int64_t i = 0; i < a->num_rows(); i += 97) {
    EXPECT_EQ(RowToString(a->row(i)), RowToString(b->row(i)));
  }
}

TEST_F(TpchTest, AllPaperQueriesOptimizeAndExecute) {
  for (int qnum : tpch::PaperQueries()) {
    SCOPED_TRACE("Q" + std::to_string(qnum));
    const QuerySpec q = tpch::MakeQuery(qnum);
    ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec.Execute(q, &stats);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_GT(stats.total_work, 0);
  }
}

TEST_F(TpchTest, ParamMarkerVariantsReturnSameResults) {
  for (int qnum : tpch::PaperQueries()) {
    SCOPED_TRACE("Q" + std::to_string(qnum));
    const QuerySpec plain = tpch::MakeQuery(qnum);
    tpch::QueryOptions options;
    options.param_markers = true;
    const QuerySpec marked = tpch::MakeQuery(qnum, options);
    ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
    Result<std::vector<Row>> a = exec.ExecuteStatic(plain);
    Result<std::vector<Row>> b = exec.Execute(marked);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Canonicalize(a.value()), Canonicalize(b.value()));
  }
}

// The small queries are verified against the brute-force oracle.
class TpchOracleTest : public TpchTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(TpchOracleTest, MatchesReferenceExecution) {
  const QuerySpec q = tpch::MakeQuery(GetParam());
  const std::vector<Row> expected = ReferenceExecute(*catalog_, q);
  ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.Execute(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
}

INSTANTIATE_TEST_SUITE_P(SmallJoins, TpchOracleTest,
                         ::testing::Values(3, 4, 10, 11, 18));

// The six-table queries get oracle validation too, on an even smaller
// catalog so the brute-force join stays tractable.
class TpchDeepOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchDeepOracleTest, MatchesReferenceExecution) {
  Catalog tiny;
  tpch::GenConfig gen;
  gen.scale = 0.0005;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &tiny).ok());
  const QuerySpec q = tpch::MakeQuery(GetParam());
  const std::vector<Row> expected = ReferenceExecute(tiny, q);
  ProgressiveExecutor exec(tiny, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.Execute(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
}

INSTANTIATE_TEST_SUITE_P(SixTableJoins, TpchDeepOracleTest,
                         ::testing::Values(2, 5, 7, 8, 9));

TEST_F(TpchTest, MethodConfigsAgreeOnLargeQueries) {
  // Cross-validation for the queries too big for the oracle: different
  // join-method configurations must produce identical results.
  for (int qnum : {2, 5, 7, 8, 9}) {
    SCOPED_TRACE("Q" + std::to_string(qnum));
    const QuerySpec q = tpch::MakeQuery(qnum);
    std::vector<std::string> reference;
    for (int mask : {7, 3, 5, 6}) {
      OptimizerConfig config;
      config.methods.enable_nljn = (mask & 1) != 0;
      config.methods.enable_hsjn = (mask & 2) != 0;
      config.methods.enable_mgjn = (mask & 4) != 0;
      ProgressiveExecutor exec(*catalog_, config, PopConfig{});
      Result<std::vector<Row>> rows = exec.ExecuteStatic(q);
      ASSERT_TRUE(rows.ok()) << "mask " << mask;
      std::vector<std::string> canon = Canonicalize(rows.value());
      if (mask == 7) {
        reference = std::move(canon);
      } else {
        EXPECT_EQ(reference, canon) << "mask " << mask;
      }
    }
  }
}

TEST_F(TpchTest, Q10SelectivitySweepIsMonotone) {
  // More selective bindings return no more rows than less selective ones.
  ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
  int64_t prev_groups = -1;
  for (int sel : {0, 25, 50, 75, 100}) {
    QuerySpec q = tpch::MakeQ10Selectivity(sel, /*use_marker=*/false);
    Result<std::vector<Row>> rows = exec.ExecuteStatic(q);
    ASSERT_TRUE(rows.ok());
    EXPECT_GE(static_cast<int64_t>(rows.value().size()), prev_groups);
    prev_groups = static_cast<int64_t>(rows.value().size());
  }
}

TEST_F(TpchTest, Q10MarkerAndLiteralAgree) {
  ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
  for (int sel : {10, 60}) {
    QuerySpec marker = tpch::MakeQ10Selectivity(sel, true);
    QuerySpec literal = tpch::MakeQ10Selectivity(sel, false);
    Result<std::vector<Row>> a = exec.Execute(marker);
    Result<std::vector<Row>> b = exec.ExecuteStatic(literal);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Canonicalize(a.value()), Canonicalize(b.value()));
  }
}

}  // namespace
}  // namespace popdb
