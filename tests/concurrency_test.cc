#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/pop.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;

// The catalog is immutable during query processing, so independent
// ProgressiveExecutors (each with its own feedback cache and matview
// registry) may share it across threads. These tests pin that contract.

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::BuildToyCatalog(&catalog_, /*emp_rows=*/400,
                             /*sale_rows=*/3000);
  }

  QuerySpec MakeQuery(int variant) {
    QuerySpec q("q" + std::to_string(variant));
    const int d = q.AddTable("dept");
    const int e = q.AddTable("emp");
    const int s = q.AddTable("sale");
    q.AddJoin({e, 1}, {d, 0});
    q.AddJoin({s, 0}, {e, 0});
    q.AddPred({e, 2}, PredKind::kLt, Value::Int(30 + variant * 5));
    q.AddGroupBy({d, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  }

  Catalog catalog_;
};

TEST_F(ConcurrencyTest, ParallelExecutorsShareTheCatalog) {
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 6;

  // Single-threaded reference results.
  std::vector<std::vector<std::string>> expected;
  for (int v = 0; v < kQueriesPerThread; ++v) {
    ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
    Result<std::vector<Row>> rows = exec.Execute(MakeQuery(v));
    ASSERT_TRUE(rows.ok());
    expected.push_back(Canonicalize(rows.value()));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int v = 0; v < kQueriesPerThread; ++v) {
        const int variant = (v + t) % kQueriesPerThread;
        ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
        Result<std::vector<Row>> rows = exec.Execute(MakeQuery(variant));
        if (!rows.ok()) {
          ++failures;
          continue;
        }
        if (Canonicalize(rows.value()) !=
            expected[static_cast<size_t>(variant)]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, mismatches.load());
}

TEST_F(ConcurrencyTest, ParallelMixOfStaticAndProgressive) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
      const QuerySpec q = MakeQuery(t);
      Result<std::vector<Row>> a = exec.Execute(q);
      Result<std::vector<Row>> b = exec.ExecuteStatic(q);
      if (!a.ok() || !b.ok() ||
          Canonicalize(a.value()) != Canonicalize(b.value())) {
        ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
}

}  // namespace
}  // namespace popdb
