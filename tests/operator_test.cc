#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "common/rng.h"
#include "exec/agg.h"
#include "exec/check.h"
#include "exec/join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "storage/table.h"

namespace popdb {
namespace {

/// Drains `op` into a row vector; EXPECTs clean EOF.
std::vector<Row> Drain(Operator* op, ExecContext* ctx) {
  std::vector<Row> out;
  EXPECT_EQ(ExecStatus::kOk, op->Open(ctx));
  Row row;
  ExecStatus s;
  while ((s = op->Next(ctx, &row)) == ExecStatus::kRow) out.push_back(row);
  EXPECT_EQ(ExecStatus::kEof, s);
  op->Close(ctx);
  return out;
}

std::vector<std::string> Canon(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(RowToString(r));
  std::sort(out.begin(), out.end());
  return out;
}

/// Two joinable tables shared by the operator tests:
///   left(key int, tag int)    40 rows, key = i % 10
///   right(key int, val int)   25 rows, key = i % 5
struct JoinFixture {
  JoinFixture()
      : left_("left", Schema({{"key", ValueType::kInt},
                              {"tag", ValueType::kInt}})),
        right_("right", Schema({{"key", ValueType::kInt},
                                {"val", ValueType::kInt}})) {
    for (int64_t i = 0; i < 40; ++i) {
      left_.AppendRow({Value::Int(i % 10), Value::Int(i)});
    }
    for (int64_t i = 0; i < 25; ++i) {
      right_.AppendRow({Value::Int(i % 5), Value::Int(100 + i)});
    }
    widths_ = {2, 2};
  }

  std::unique_ptr<TableScanOp> ScanLeft(
      std::vector<ResolvedPredicate> preds = {}) {
    return std::make_unique<TableScanOp>(&left_, 0, std::move(preds));
  }
  std::unique_ptr<TableScanOp> ScanRight(
      std::vector<ResolvedPredicate> preds = {}) {
    return std::make_unique<TableScanOp>(&right_, 1, std::move(preds));
  }
  MergeSpec JoinMerge() {
    return MergeSpec::Make(RowLayout(TableBit(0), widths_),
                           RowLayout(TableBit(1), widths_),
                           RowLayout(TableBit(0) | TableBit(1), widths_),
                           widths_);
  }
  /// Reference join result via HSJN in plentiful memory.
  std::vector<Row> ReferenceJoin() {
    ExecContext ctx;
    HsjnOp join(ScanLeft(), ScanRight(), {0}, {0}, JoinMerge(),
                TableBit(0) | TableBit(1), CheckSpec{}, false);
    return Drain(&join, &ctx);
  }

  Table left_;
  Table right_;
  std::vector<int> widths_;
};

class OperatorTest : public ::testing::Test, protected JoinFixture {};

// -------------------------------------------------------------- TableScan.

TEST_F(OperatorTest, TableScanReturnsAllRows) {
  ExecContext ctx;
  auto scan = ScanLeft();
  EXPECT_EQ(40u, Drain(scan.get(), &ctx).size());
  EXPECT_TRUE(scan->eof_seen());
  EXPECT_EQ(40, scan->rows_produced());
  EXPECT_EQ(40, ctx.work);
}

TEST_F(OperatorTest, TableScanAppliesPredicates) {
  ExecContext ctx;
  ResolvedPredicate p;
  p.pos = 0;
  p.kind = PredKind::kEq;
  p.operand = Value::Int(3);
  auto scan = ScanLeft({p});
  const std::vector<Row> rows = Drain(scan.get(), &ctx);
  ASSERT_EQ(4u, rows.size());
  for (const Row& r : rows) EXPECT_EQ(Value::Int(3), r[0]);
}

TEST_F(OperatorTest, TableScanConjunction) {
  ExecContext ctx;
  ResolvedPredicate p1{0, PredKind::kEq, Value::Int(3), {}, {}};
  ResolvedPredicate p2{1, PredKind::kGt, Value::Int(20), {}, {}};
  auto scan = ScanLeft({p1, p2});
  const std::vector<Row> rows = Drain(scan.get(), &ctx);
  ASSERT_EQ(2u, rows.size());  // tags 23 and 33.
}

// ------------------------------------------------------------ MatViewScan.

TEST_F(OperatorTest, MatViewScanStreamsStoredRows) {
  const std::vector<Row> stored = {{Value::Int(1)}, {Value::Int(2)}};
  ExecContext ctx;
  MatViewScanOp scan(&stored, TableBit(0));
  EXPECT_EQ(Canon(stored), Canon(Drain(&scan, &ctx)));
}

// ------------------------------------------------------------- Temp/Sort.

TEST_F(OperatorTest, TempPreservesRowsAndHarvests) {
  ExecContext ctx;
  TempOp temp(ScanLeft(), TableBit(0));
  const std::vector<Row> rows = Drain(&temp, &ctx);
  EXPECT_EQ(40u, rows.size());
  HarvestedResult info;
  ASSERT_TRUE(temp.HarvestInfo(&info));
  EXPECT_TRUE(info.complete);
  EXPECT_EQ(40, info.count);
  EXPECT_EQ(TableBit(0), info.table_set);
  ASSERT_NE(nullptr, info.rows);
  EXPECT_EQ(40u, info.rows->size());
  // Registered itself for harvesting.
  ASSERT_EQ(1u, ctx.materializers.size());
}

TEST_F(OperatorTest, SortOrdersAscending) {
  ExecContext ctx;
  SortOp sort(ScanLeft(), {SortKey{0, false}, SortKey{1, false}},
              TableBit(0));
  const std::vector<Row> rows = Drain(&sort, &ctx);
  ASSERT_EQ(40u, rows.size());
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0].AsInt(), rows[i][0].AsInt());
  }
}

TEST_F(OperatorTest, SortDescending) {
  ExecContext ctx;
  SortOp sort(ScanLeft(), {SortKey{1, true}}, TableBit(0));
  const std::vector<Row> rows = Drain(&sort, &ctx);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1][1].AsInt(), rows[i][1].AsInt());
  }
}

// Property: external sort (tiny memory, spilled runs + merge) produces the
// same ordering as in-memory sort, for various memory budgets.
class SortSpillTest : public ::testing::TestWithParam<int> {};

TEST_P(SortSpillTest, ExternalSortMatchesInMemory) {
  Table t("t", Schema({{"v", ValueType::kInt}}));
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    t.AppendRow({Value::Int(rng.UniformInt(0, 100))});
  }
  auto run = [&](int64_t mem) {
    ExecContext ctx;
    ctx.mem_rows = mem;
    SortOp sort(std::make_unique<TableScanOp>(
                    &t, 0, std::vector<ResolvedPredicate>{}),
                {SortKey{0, false}}, TableBit(0));
    return Drain(&sort, &ctx);
  };
  const std::vector<Row> in_memory = run(1 << 20);
  const std::vector<Row> external = run(GetParam());
  ASSERT_EQ(in_memory.size(), external.size());
  for (size_t i = 0; i < in_memory.size(); ++i) {
    EXPECT_EQ(in_memory[i][0], external[i][0]) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(MemoryBudgets, SortSpillTest,
                         ::testing::Values(1, 3, 7, 16, 63, 128, 499));

// ------------------------------------------------------------------ HSJN.

TEST_F(OperatorTest, HsjnInMemoryJoin) {
  const std::vector<Row> rows = ReferenceJoin();
  // Each left row with key < 5 matches 5 right rows: 20 * 5 = 100.
  EXPECT_EQ(100u, rows.size());
  // Output layout is canonical: left columns then right columns.
  for (const Row& r : rows) {
    ASSERT_EQ(4u, r.size());
    EXPECT_EQ(r[0], r[2]);  // Join keys equal.
  }
}

class HsjnSpillTest : public ::testing::TestWithParam<int> {};

TEST_P(HsjnSpillTest, PartitionedJoinMatchesInMemory) {
  JoinFixture fixture;
  const std::vector<Row> expected = fixture.ReferenceJoin();
  ExecContext ctx;
  ctx.mem_rows = GetParam();  // Below build size: forces partitioning.
  HsjnOp join(fixture.ScanLeft(), fixture.ScanRight(), {0}, {0},
              fixture.JoinMerge(), TableBit(0) | TableBit(1), CheckSpec{},
              false);
  EXPECT_EQ(Canon(expected), Canon(Drain(&join, &ctx)));
}

INSTANTIATE_TEST_SUITE_P(MemoryBudgets, HsjnSpillTest,
                         ::testing::Values(1, 2, 5, 10, 24));

TEST_F(OperatorTest, HsjnEmptyBuild) {
  ExecContext ctx;
  ResolvedPredicate never{0, PredKind::kEq, Value::Int(-1), {}, {}};
  HsjnOp join(ScanLeft(), ScanRight({never}), {0}, {0}, JoinMerge(),
              TableBit(0) | TableBit(1), CheckSpec{}, false);
  EXPECT_TRUE(Drain(&join, &ctx).empty());
}

TEST_F(OperatorTest, HsjnBuildCheckFires) {
  ExecContext ctx;
  CheckSpec check;
  check.enabled = true;
  check.lo = 0;
  check.hi = 10;  // Build has 25 rows: violated.
  check.edge_set = TableBit(1);
  HsjnOp join(ScanLeft(), ScanRight(), {0}, {0}, JoinMerge(),
              TableBit(0) | TableBit(1), check, false);
  EXPECT_EQ(ExecStatus::kReoptimize, join.Open(&ctx));
  EXPECT_TRUE(ctx.reopt.triggered);
  EXPECT_EQ(25, ctx.reopt.observed_rows);
  EXPECT_TRUE(ctx.reopt.exact);
  EXPECT_EQ(TableBit(1), ctx.reopt.edge_set);
}

TEST_F(OperatorTest, HsjnHarvestOffersBuildOnlyWhenEnabled) {
  for (const bool offer : {false, true}) {
    ExecContext ctx;
    HsjnOp join(ScanLeft(), ScanRight(), {0}, {0}, JoinMerge(),
                TableBit(0) | TableBit(1), CheckSpec{}, offer);
    Drain(&join, &ctx);
    HarvestedResult info;
    ASSERT_TRUE(join.HarvestInfo(&info));
    EXPECT_TRUE(info.complete);
    EXPECT_EQ(25, info.count);
    EXPECT_EQ(offer, info.rows != nullptr);
  }
}

// ------------------------------------------------------------------ MGJN.

TEST_F(OperatorTest, MgjnMatchesHsjn) {
  const std::vector<Row> expected = ReferenceJoin();
  ExecContext ctx;
  auto lsort =
      std::make_unique<SortOp>(ScanLeft(), std::vector<SortKey>{{0, false}},
                               TableBit(0));
  auto rsort =
      std::make_unique<SortOp>(ScanRight(), std::vector<SortKey>{{0, false}},
                               TableBit(1));
  MgjnOp join(std::move(lsort), std::move(rsort), {0}, {0}, JoinMerge(),
              TableBit(0) | TableBit(1));
  EXPECT_EQ(Canon(expected), Canon(Drain(&join, &ctx)));
}

TEST_F(OperatorTest, MgjnEmptySide) {
  ExecContext ctx;
  ResolvedPredicate never{0, PredKind::kEq, Value::Int(-1), {}, {}};
  auto lsort = std::make_unique<SortOp>(
      ScanLeft({never}), std::vector<SortKey>{{0, false}}, TableBit(0));
  auto rsort = std::make_unique<SortOp>(
      ScanRight(), std::vector<SortKey>{{0, false}}, TableBit(1));
  MgjnOp join(std::move(lsort), std::move(rsort), {0}, {0}, JoinMerge(),
              TableBit(0) | TableBit(1));
  EXPECT_TRUE(Drain(&join, &ctx).empty());
}

// ------------------------------------------------------------------ NLJN.

TEST_F(OperatorTest, NljnScanInnerMatchesHsjn) {
  const std::vector<Row> expected = ReferenceJoin();
  ExecContext ctx;
  InnerAccess inner;
  inner.table = &right_;
  inner.table_id = 1;
  inner.join_conds = {{0, 0}};
  NljnOp join(ScanLeft(), std::move(inner), JoinMerge(),
              TableBit(0) | TableBit(1));
  EXPECT_EQ(Canon(expected), Canon(Drain(&join, &ctx)));
}

TEST_F(OperatorTest, NljnIndexInnerMatchesHsjn) {
  const std::vector<Row> expected = ReferenceJoin();
  const HashIndex index(right_, 0);
  ExecContext ctx;
  InnerAccess inner;
  inner.table = &right_;
  inner.table_id = 1;
  inner.join_conds = {{0, 0}};
  inner.index = &index;
  NljnOp join(ScanLeft(), std::move(inner), JoinMerge(),
              TableBit(0) | TableBit(1));
  EXPECT_EQ(Canon(expected), Canon(Drain(&join, &ctx)));
}

TEST_F(OperatorTest, NljnInnerLocalPredicates) {
  ExecContext ctx;
  InnerAccess inner;
  inner.table = &right_;
  inner.table_id = 1;
  inner.join_conds = {{0, 0}};
  inner.local_preds = {{1, PredKind::kGe, Value::Int(120), {}, {}}};
  NljnOp join(ScanLeft(), std::move(inner), JoinMerge(),
              TableBit(0) | TableBit(1));
  const std::vector<Row> rows = Drain(&join, &ctx);
  for (const Row& r : rows) EXPECT_GE(r[3].AsInt(), 120);
  EXPECT_EQ(20u, rows.size());  // right vals 120..124, keys 0..4: 20*1 each?
}

TEST_F(OperatorTest, NljnMatviewInner) {
  // Inner over a materialized view instead of a base table.
  std::vector<Row> mv_rows;
  for (int64_t i = 0; i < 25; ++i) {
    mv_rows.push_back({Value::Int(i % 5), Value::Int(100 + i)});
  }
  const std::vector<Row> expected = ReferenceJoin();
  ExecContext ctx;
  InnerAccess inner;
  inner.mv_rows = &mv_rows;
  inner.table_id = 1;
  inner.join_conds = {{0, 0}};
  NljnOp join(ScanLeft(), std::move(inner), JoinMerge(),
              TableBit(0) | TableBit(1));
  EXPECT_EQ(Canon(expected), Canon(Drain(&join, &ctx)));
}

// --------------------------------------------------------------- HashAgg.

TEST_F(OperatorTest, HashAggCountSumMinMaxAvg) {
  ExecContext ctx;
  std::vector<ResolvedAgg> aggs = {{AggFunc::kCount, 0},
                                   {AggFunc::kSum, 1},
                                   {AggFunc::kMin, 1},
                                   {AggFunc::kMax, 1},
                                   {AggFunc::kAvg, 1}};
  HashAggOp agg(ScanLeft(), {0}, aggs);
  const std::vector<Row> rows = Drain(&agg, &ctx);
  ASSERT_EQ(10u, rows.size());  // 10 distinct keys.
  for (const Row& r : rows) {
    const int64_t key = r[0].AsInt();
    EXPECT_EQ(4, r[1].AsInt());  // 4 rows per key.
    // tags are key, key+10, key+20, key+30.
    EXPECT_DOUBLE_EQ(static_cast<double>(4 * key + 60), r[2].AsDouble());
    EXPECT_EQ(Value::Int(key), r[3]);
    EXPECT_EQ(Value::Int(key + 30), r[4]);
    EXPECT_DOUBLE_EQ(static_cast<double>(key) + 15.0, r[5].AsDouble());
  }
}

TEST_F(OperatorTest, HashAggGlobalAggregation) {
  ExecContext ctx;
  HashAggOp agg(ScanLeft(), {}, {{AggFunc::kCount, 0}});
  const std::vector<Row> rows = Drain(&agg, &ctx);
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(Value::Int(40), rows[0][0]);
}

TEST_F(OperatorTest, HashAggIgnoresNullsInAggregates) {
  Table t("t", Schema({{"g", ValueType::kInt}, {"v", ValueType::kInt}}));
  t.AppendRow({Value::Int(1), Value::Int(10)});
  t.AppendRow({Value::Int(1), Value::Null()});
  ExecContext ctx;
  HashAggOp agg(std::make_unique<TableScanOp>(
                    &t, 0, std::vector<ResolvedPredicate>{}),
                {0}, {{AggFunc::kSum, 1}, {AggFunc::kCount, 0}});
  const std::vector<Row> rows = Drain(&agg, &ctx);
  ASSERT_EQ(1u, rows.size());
  EXPECT_DOUBLE_EQ(10.0, rows[0][1].AsDouble());
  EXPECT_EQ(Value::Int(2), rows[0][2]);  // COUNT counts rows.
}

// -------------------------------------------------------- Project/Filter.

TEST_F(OperatorTest, ProjectSelectsPositions) {
  ExecContext ctx;
  ProjectOp project(ScanLeft(), {1});
  const std::vector<Row> rows = Drain(&project, &ctx);
  ASSERT_EQ(40u, rows.size());
  EXPECT_EQ(1u, rows[0].size());
}

TEST_F(OperatorTest, FilterDropsRows) {
  ExecContext ctx;
  FilterOp filter(ScanLeft(),
                  {{0, PredKind::kLt, Value::Int(2), {}, {}}}, TableBit(0));
  EXPECT_EQ(8u, Drain(&filter, &ctx).size());
}

// ----------------------------------------------------------------- CHECK.

CheckSpec MakeCheck(double lo, double hi, bool observe = false) {
  CheckSpec c;
  c.enabled = true;
  c.lo = lo;
  c.hi = hi;
  c.edge_set = TableBit(0);
  c.observe_only = observe;
  return c;
}

TEST_F(OperatorTest, CheckPassesWithinRange) {
  ExecContext ctx;
  CheckOp check(ScanLeft(), MakeCheck(10, 100));
  EXPECT_EQ(40u, Drain(&check, &ctx).size());
  EXPECT_FALSE(ctx.reopt.triggered);
  ASSERT_EQ(1u, ctx.check_events.size());
  EXPECT_FALSE(ctx.check_events[0].fired);
  EXPECT_EQ(40, ctx.check_events[0].count);
}

TEST_F(OperatorTest, CheckFiresAboveUpperBoundWithLowerBoundSignal) {
  ExecContext ctx;
  CheckOp check(ScanLeft(), MakeCheck(0, 9.5));
  EXPECT_EQ(ExecStatus::kOk, check.Open(&ctx));
  Row row;
  ExecStatus s = ExecStatus::kOk;
  int produced = 0;
  while ((s = check.Next(&ctx, &row)) == ExecStatus::kRow) ++produced;
  EXPECT_EQ(ExecStatus::kReoptimize, s);
  EXPECT_EQ(9, produced);  // Fired while processing the 10th row.
  EXPECT_TRUE(ctx.reopt.triggered);
  EXPECT_FALSE(ctx.reopt.exact);  // Count is only a lower bound.
  EXPECT_EQ(10, ctx.reopt.observed_rows);
}

TEST_F(OperatorTest, CheckFiresBelowLowerBoundAtEofExactly) {
  ExecContext ctx;
  CheckOp check(ScanLeft(), MakeCheck(50, 1e9));
  EXPECT_EQ(ExecStatus::kOk, check.Open(&ctx));
  Row row;
  ExecStatus s = ExecStatus::kOk;
  int produced = 0;
  while ((s = check.Next(&ctx, &row)) == ExecStatus::kRow) ++produced;
  EXPECT_EQ(ExecStatus::kReoptimize, s);
  EXPECT_EQ(40, produced);  // Everything flowed; violation found at EOF.
  EXPECT_TRUE(ctx.reopt.exact);
  EXPECT_EQ(40, ctx.reopt.observed_rows);
}

TEST_F(OperatorTest, CheckObserveOnlyNeverFires) {
  ExecContext ctx;
  CheckOp check(ScanLeft(), MakeCheck(0, 1, /*observe=*/true));
  EXPECT_EQ(40u, Drain(&check, &ctx).size());
  EXPECT_FALSE(ctx.reopt.triggered);
  ASSERT_EQ(1u, ctx.check_events.size());
  EXPECT_TRUE(ctx.check_events[0].fired);
}

TEST_F(OperatorTest, CheckMaterializedEvaluatesOnceAtOpen) {
  ExecContext ctx;
  auto temp = std::make_unique<TempOp>(ScanLeft(), TableBit(0));
  CheckMaterializedOp check(std::move(temp), MakeCheck(0, 10));
  EXPECT_EQ(ExecStatus::kReoptimize, check.Open(&ctx));
  EXPECT_TRUE(ctx.reopt.triggered);
  EXPECT_TRUE(ctx.reopt.exact);
  EXPECT_EQ(40, ctx.reopt.observed_rows);
}

TEST_F(OperatorTest, CheckMaterializedPassesAndStreams) {
  ExecContext ctx;
  auto temp = std::make_unique<TempOp>(ScanLeft(), TableBit(0));
  CheckMaterializedOp check(std::move(temp), MakeCheck(0, 100));
  EXPECT_EQ(40u, Drain(&check, &ctx).size());
  EXPECT_FALSE(ctx.reopt.triggered);
}

// ----------------------------------------- CHECK at batch boundaries.

/// Drains `op` through NextBatch with the given execution batch size;
/// records the terminal status in *final_status.
std::vector<Row> DrainBatches(Operator* op, ExecContext* ctx,
                              ExecStatus* final_status) {
  std::vector<Row> out;
  EXPECT_EQ(ExecStatus::kOk, op->Open(ctx));
  RowBatch batch;
  ExecStatus s;
  while ((s = op->NextBatch(ctx, &batch)) == ExecStatus::kRow) {
    batch.MoveRowsInto(&out);
  }
  *final_status = s;
  op->Close(ctx);
  return out;
}

TEST_F(OperatorTest, CheckBatchMidBatchViolationFiresOnceAtBoundary) {
  // Row engine reference: hi = 9.5 over a 40-row scan emits 9 rows, then
  // fires while processing the 10th (observed_rows = 10, inexact). The
  // batched engine must do exactly the same even when the threshold row
  // sits mid-batch, and it must evaluate once per batch, not per row.
  ExecContext row_ctx;
  std::vector<Row> row_rows;
  {
    CheckOp check(ScanLeft(), MakeCheck(0, 9.5));
    EXPECT_EQ(ExecStatus::kOk, check.Open(&row_ctx));
    Row row;
    ExecStatus s;
    while ((s = check.Next(&row_ctx, &row)) == ExecStatus::kRow) {
      row_rows.push_back(row);
    }
    EXPECT_EQ(ExecStatus::kReoptimize, s);
    check.Close(&row_ctx);
  }

  for (const int64_t batch_rows : {2, 3, 8, 1024}) {
    SCOPED_TRACE("batch_rows=" + std::to_string(batch_rows));
    ExecContext ctx;
    ctx.batch_rows = batch_rows;
    CheckOp check(ScanLeft(), MakeCheck(0, 9.5));
    ExecStatus s;
    const std::vector<Row> rows = DrainBatches(&check, &ctx, &s);
    EXPECT_EQ(ExecStatus::kReoptimize, s);
    // Bit-identical emitted prefix (values and order).
    ASSERT_EQ(row_rows.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(row_rows[i], rows[i]);
    // Same re-opt decision payload.
    EXPECT_TRUE(ctx.reopt.triggered);
    EXPECT_FALSE(ctx.reopt.exact);
    EXPECT_EQ(row_ctx.reopt.observed_rows, ctx.reopt.observed_rows);
    // Fired exactly once, with the row engine's observed count.
    ASSERT_EQ(1u, ctx.check_events.size());
    EXPECT_TRUE(ctx.check_events[0].fired);
    EXPECT_EQ(row_ctx.check_events[0].count, ctx.check_events[0].count);
    // The child's produced-row accounting was reconciled to consumed rows.
    EXPECT_EQ(10, check.children()[0]->rows_produced());
    EXPECT_EQ(9, check.rows_produced());
  }
}

TEST_F(OperatorTest, CheckBatchObserveOnlyRecordsRowExactCount) {
  ExecContext ctx;
  ctx.batch_rows = 8;
  CheckOp check(ScanLeft(), MakeCheck(0, 9.5, /*observe=*/true));
  ExecStatus s;
  const std::vector<Row> rows = DrainBatches(&check, &ctx, &s);
  EXPECT_EQ(ExecStatus::kEof, s);
  EXPECT_EQ(40u, rows.size());  // Observation never truncates.
  EXPECT_FALSE(ctx.reopt.triggered);
  ASSERT_EQ(1u, ctx.check_events.size());
  EXPECT_TRUE(ctx.check_events[0].fired);
  EXPECT_EQ(10, ctx.check_events[0].count);  // Row-engine count at the fire.
}

TEST_F(OperatorTest, CheckBatchLowerBoundFiresAtEofExactly) {
  ExecContext ctx;
  ctx.batch_rows = 16;
  CheckOp check(ScanLeft(), MakeCheck(50, 1e9));
  ExecStatus s;
  const std::vector<Row> rows = DrainBatches(&check, &ctx, &s);
  EXPECT_EQ(ExecStatus::kReoptimize, s);
  EXPECT_EQ(40u, rows.size());  // Everything flowed; violation at EOF.
  EXPECT_TRUE(ctx.reopt.exact);
  EXPECT_EQ(40, ctx.reopt.observed_rows);
}

TEST_F(OperatorTest, BufCheckBatchDrainFiresWithRowExactCount) {
  // BUFCHECK buffers like a valve: on a finite-hi violation nothing was
  // emitted and the count is a lower bound through the violating row.
  ExecContext ctx;
  ctx.batch_rows = 8;
  BufCheckOp check(ScanLeft(), MakeCheck(0, 9.5));
  EXPECT_EQ(ExecStatus::kReoptimize, check.Open(&ctx));
  EXPECT_TRUE(ctx.reopt.triggered);
  EXPECT_FALSE(ctx.reopt.exact);
  EXPECT_EQ(10, ctx.reopt.observed_rows);
  EXPECT_EQ(10, check.children()[0]->rows_produced());
  ASSERT_EQ(1u, ctx.check_events.size());
  EXPECT_TRUE(ctx.check_events[0].fired);
  EXPECT_EQ(10, ctx.check_events[0].count);
}

TEST_F(OperatorTest, BufCheckBatchValvePassesAndServesBatches) {
  // [lo, inf) succeeds mid-stream; the batched consumer must see all rows
  // (buffered prefix then pass-through) exactly like the row engine.
  ExecContext ctx;
  ctx.batch_rows = 8;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  BufCheckOp check(ScanLeft(), MakeCheck(5, kInf));
  ExecStatus s;
  const std::vector<Row> rows = DrainBatches(&check, &ctx, &s);
  EXPECT_EQ(ExecStatus::kEof, s);
  EXPECT_EQ(40u, rows.size());
  EXPECT_FALSE(ctx.reopt.triggered);
  ASSERT_EQ(1u, ctx.check_events.size());
  EXPECT_FALSE(ctx.check_events[0].fired);
  EXPECT_EQ(5, ctx.check_events[0].count);  // Released at the lo-th row.
}

TEST_F(OperatorTest, CheckMaterializedStreamsBatchesAfterOpenEvaluation) {
  ExecContext ctx;
  ctx.batch_rows = 8;
  auto temp = std::make_unique<TempOp>(ScanLeft(), TableBit(0));
  CheckMaterializedOp check(std::move(temp), MakeCheck(0, 100));
  ExecStatus s;
  const std::vector<Row> rows = DrainBatches(&check, &ctx, &s);
  EXPECT_EQ(ExecStatus::kEof, s);
  EXPECT_EQ(40u, rows.size());
  EXPECT_FALSE(ctx.reopt.triggered);
}

TEST_F(OperatorTest, BatchWorkChargesMatchRowEngine) {
  // ctx.work parity is what keeps WORKBOUND decisions and check-event
  // work columns engine-invariant; spot-check it on a scan drain.
  ExecContext row_ctx;
  {
    auto scan = ScanLeft();
    Drain(scan.get(), &row_ctx);
  }
  ExecContext batch_ctx;
  batch_ctx.batch_rows = 7;
  auto scan = ScanLeft();
  ExecStatus s;
  const std::vector<Row> rows = DrainBatches(scan.get(), &batch_ctx, &s);
  EXPECT_EQ(ExecStatus::kEof, s);
  EXPECT_EQ(40u, rows.size());
  EXPECT_EQ(row_ctx.work, batch_ctx.work);
}

// ------------------------------------------------- RidTrack/AntiCompensate.

TEST_F(OperatorTest, RidTrackRecordsReturnedRows) {
  ExecContext ctx;
  RidTrackOp track(ScanLeft(), TableBit(0));
  EXPECT_EQ(40u, Drain(&track, &ctx).size());
  EXPECT_EQ(40u, ctx.returned_rows.size());
}

TEST_F(OperatorTest, AntiCompensateSuppressesMultisetOnce) {
  // Previously returned: two copies of one row, one of another.
  const Row a = {Value::Int(0), Value::Int(0)};
  const Row b = {Value::Int(1), Value::Int(1)};
  std::vector<Row> previous = {a, a, b};
  ExecContext ctx;
  AntiCompensateOp comp(ScanLeft(), previous, TableBit(0));
  const std::vector<Row> rows = Drain(&comp, &ctx);
  // left has exactly one copy of each (key=i%10, tag=i) pair; rows a and b
  // occur once each, so one 'a' and one 'b' are suppressed, leaving 38.
  EXPECT_EQ(38u, rows.size());
  for (const Row& r : rows) {
    EXPECT_NE(Canon({a})[0], RowToString(r));
    EXPECT_NE(Canon({b})[0], RowToString(r));
  }
}

TEST_F(OperatorTest, AntiCompensateEmptySideTablePassesEverything) {
  ExecContext ctx;
  AntiCompensateOp comp(ScanLeft(), {}, TableBit(0));
  EXPECT_EQ(40u, Drain(&comp, &ctx).size());
}

}  // namespace
}  // namespace popdb
