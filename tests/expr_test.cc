#include <gtest/gtest.h>

#include "exec/expr.h"
#include "exec/layout.h"

namespace popdb {
namespace {

ResolvedPredicate RP(int pos, PredKind kind, Value op,
                     Value op2 = Value::Null()) {
  ResolvedPredicate p;
  p.pos = pos;
  p.kind = kind;
  p.operand = std::move(op);
  p.operand2 = std::move(op2);
  return p;
}

// ----------------------------------------------------------- predicates.

TEST(EvalPredicateTest, Comparisons) {
  const Row row = {Value::Int(5)};
  EXPECT_TRUE(EvalPredicate(RP(0, PredKind::kEq, Value::Int(5)), row));
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kEq, Value::Int(6)), row));
  EXPECT_TRUE(EvalPredicate(RP(0, PredKind::kNe, Value::Int(6)), row));
  EXPECT_TRUE(EvalPredicate(RP(0, PredKind::kLt, Value::Int(6)), row));
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kLt, Value::Int(5)), row));
  EXPECT_TRUE(EvalPredicate(RP(0, PredKind::kLe, Value::Int(5)), row));
  EXPECT_TRUE(EvalPredicate(RP(0, PredKind::kGt, Value::Int(4)), row));
  EXPECT_TRUE(EvalPredicate(RP(0, PredKind::kGe, Value::Int(5)), row));
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kGe, Value::Int(6)), row));
}

TEST(EvalPredicateTest, Between) {
  const Row row = {Value::Int(5)};
  EXPECT_TRUE(EvalPredicate(
      RP(0, PredKind::kBetween, Value::Int(5), Value::Int(7)), row));
  EXPECT_TRUE(EvalPredicate(
      RP(0, PredKind::kBetween, Value::Int(3), Value::Int(5)), row));
  EXPECT_FALSE(EvalPredicate(
      RP(0, PredKind::kBetween, Value::Int(6), Value::Int(9)), row));
}

TEST(EvalPredicateTest, InList) {
  ResolvedPredicate p;
  p.pos = 0;
  p.kind = PredKind::kIn;
  p.in_list = {Value::Int(1), Value::Int(3), Value::Int(5)};
  EXPECT_TRUE(EvalPredicate(p, {Value::Int(3)}));
  EXPECT_FALSE(EvalPredicate(p, {Value::Int(2)}));
}

TEST(EvalPredicateTest, Like) {
  const Row row = {Value::String("PROMO BRASS")};
  EXPECT_TRUE(
      EvalPredicate(RP(0, PredKind::kLike, Value::String("%BRASS%")), row));
  EXPECT_FALSE(
      EvalPredicate(RP(0, PredKind::kLike, Value::String("%STEEL%")), row));
}

TEST(EvalPredicateTest, LikeOnNonStringIsFalse) {
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kLike, Value::String("%")),
                             {Value::Int(1)}));
}

TEST(EvalPredicateTest, NullNeverSatisfies) {
  const Row row = {Value::Null()};
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kEq, Value::Null()), row));
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kLt, Value::Int(100)), row));
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kNe, Value::Int(1)), row));
}

TEST(EvalPredicateTest, PositionIsRespected) {
  const Row row = {Value::Int(1), Value::Int(2)};
  EXPECT_TRUE(EvalPredicate(RP(1, PredKind::kEq, Value::Int(2)), row));
  EXPECT_FALSE(EvalPredicate(RP(0, PredKind::kEq, Value::Int(2)), row));
}

TEST(ResolvePredicateTest, BindsParameterMarker) {
  Predicate p;
  p.col = {0, 3};
  p.kind = PredKind::kLt;
  p.is_param = true;
  p.param_index = 1;
  const std::vector<Value> params = {Value::Int(9), Value::Int(42)};
  const ResolvedPredicate r = ResolvePredicate(p, 3, params);
  EXPECT_EQ(3, r.pos);
  EXPECT_EQ(Value::Int(42), r.operand);
}

TEST(ResolvePredicateTest, LiteralPassesThrough) {
  Predicate p;
  p.kind = PredKind::kBetween;
  p.operand = Value::Int(1);
  p.operand2 = Value::Int(5);
  const ResolvedPredicate r = ResolvePredicate(p, 0, {});
  EXPECT_EQ(Value::Int(1), r.operand);
  EXPECT_EQ(Value::Int(5), r.operand2);
}

TEST(PredicateToStringTest, Renders) {
  Predicate p;
  p.col = {1, 2};
  p.kind = PredKind::kEq;
  p.operand = Value::Int(7);
  EXPECT_EQ("t1.c2 = 7", p.ToString());
  p.is_param = true;
  p.param_index = 0;
  EXPECT_EQ("t1.c2 = ?0", p.ToString());
}

// ------------------------------------------------------------- RowLayout.

TEST(RowLayoutTest, SingleTable) {
  const std::vector<int> widths = {3, 2, 4};
  RowLayout layout(TableBit(1), widths);
  EXPECT_EQ(2, layout.width());
  EXPECT_EQ(0, layout.Resolve({1, 0}));
  EXPECT_EQ(1, layout.Resolve({1, 1}));
  EXPECT_EQ(-1, layout.Resolve({0, 0}));
}

TEST(RowLayoutTest, CanonicalOrderIsTableIdOrder) {
  const std::vector<int> widths = {3, 2, 4};
  RowLayout layout(TableBit(0) | TableBit(2), widths);
  EXPECT_EQ(7, layout.width());
  EXPECT_EQ(0, layout.Resolve({0, 0}));
  EXPECT_EQ(2, layout.Resolve({0, 2}));
  EXPECT_EQ(3, layout.Resolve({2, 0}));
  EXPECT_EQ(6, layout.Resolve({2, 3}));
}

TEST(RowLayoutTest, LayoutIsFunctionOfSetNotJoinOrder) {
  const std::vector<int> widths = {1, 1, 1, 1};
  // Any join order over {0,1,3} must agree on positions.
  RowLayout layout(TableBit(0) | TableBit(1) | TableBit(3), widths);
  EXPECT_EQ(0, layout.Resolve({0, 0}));
  EXPECT_EQ(1, layout.Resolve({1, 0}));
  EXPECT_EQ(2, layout.Resolve({3, 0}));
}

// ------------------------------------------------------------- MergeSpec.

TEST(MergeSpecTest, MergesIntoCanonicalOrder) {
  const std::vector<int> widths = {2, 1, 2};
  RowLayout left(TableBit(2), widths);   // Table 2 first on the left side!
  RowLayout right(TableBit(0), widths);  // Table 0 on the right side.
  RowLayout out(TableBit(0) | TableBit(2), widths);
  const MergeSpec spec = MergeSpec::Make(left, right, out, widths);

  const Row lrow = {Value::Int(20), Value::Int(21)};  // Table 2 columns.
  const Row rrow = {Value::Int(0), Value::Int(1)};    // Table 0 columns.
  const Row merged = spec.Merge(lrow, rrow);
  ASSERT_EQ(4u, merged.size());
  // Canonical order: table 0 columns first, then table 2.
  EXPECT_EQ(Value::Int(0), merged[0]);
  EXPECT_EQ(Value::Int(1), merged[1]);
  EXPECT_EQ(Value::Int(20), merged[2]);
  EXPECT_EQ(Value::Int(21), merged[3]);
}

// Property: for any disjoint pair of table sets, merging then resolving a
// column gives the same value as reading it from its source row.
class MergeSpecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeSpecPropertyTest, ResolveAfterMergeMatchesSource) {
  const int seed = GetParam();
  const std::vector<int> widths = {2, 3, 1, 2, 1};
  const TableSet left_set =
      (static_cast<TableSet>(seed) * 7 + 1) % 31 == 0
          ? 1
          : ((static_cast<TableSet>(seed) * 5 + 3) % 31) | 1;
  TableSet right_set = ((static_cast<TableSet>(seed) * 11 + 7) % 31);
  right_set &= ~left_set;
  if (right_set == 0) right_set = (~left_set) & 0x10;
  if (right_set == 0) return;  // Degenerate draw; other seeds cover it.

  RowLayout left(left_set, widths);
  RowLayout right(right_set, widths);
  RowLayout out(left_set | right_set, widths);
  const MergeSpec spec = MergeSpec::Make(left, right, out, widths);

  // Fill rows with values encoding (table, column).
  auto fill = [&](const RowLayout& layout, TableSet set) {
    Row row(static_cast<size_t>(layout.width()));
    for (int t = 0; t < 5; ++t) {
      if (!ContainsTable(set, t)) continue;
      for (int c = 0; c < widths[static_cast<size_t>(t)]; ++c) {
        row[static_cast<size_t>(layout.Resolve({t, c}))] =
            Value::Int(t * 100 + c);
      }
    }
    return row;
  };
  const Row merged = spec.Merge(fill(left, left_set), fill(right, right_set));
  for (int t = 0; t < 5; ++t) {
    if (!ContainsTable(left_set | right_set, t)) continue;
    for (int c = 0; c < widths[static_cast<size_t>(t)]; ++c) {
      EXPECT_EQ(Value::Int(t * 100 + c),
                merged[static_cast<size_t>(out.Resolve({t, c}))])
          << "table " << t << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeSpecPropertyTest,
                         ::testing::Range(0, 16));

TEST(TableSetTest, Helpers) {
  EXPECT_EQ(TableSet{1}, TableBit(0));
  EXPECT_EQ(TableSet{8}, TableBit(3));
  EXPECT_TRUE(ContainsTable(0b1010, 1));
  EXPECT_FALSE(ContainsTable(0b1010, 0));
  EXPECT_EQ(2, PopCount(0b1010));
}

}  // namespace
}  // namespace popdb
