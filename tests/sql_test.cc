#include <gtest/gtest.h>

#include "core/pop.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;
using sql::AstSelect;
using sql::BoundStatement;
using sql::Lex;
using sql::Parse;
using sql::ParseSql;
using sql::Token;
using sql::TokenKind;

// ------------------------------------------------------------------ lexer.

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> toks =
      Lex("SELECT a.b, 42, 3.5, 'it''s', <> <= >= < > = ( ) * ? ;");
  ASSERT_TRUE(toks.ok());
  std::vector<std::pair<TokenKind, std::string>> expected = {
      {TokenKind::kKeyword, "SELECT"}, {TokenKind::kIdent, "a"},
      {TokenKind::kSymbol, "."},       {TokenKind::kIdent, "b"},
      {TokenKind::kSymbol, ","},       {TokenKind::kInt, "42"},
      {TokenKind::kSymbol, ","},       {TokenKind::kDouble, "3.5"},
      {TokenKind::kSymbol, ","},       {TokenKind::kString, "it's"},
      {TokenKind::kSymbol, ","},       {TokenKind::kSymbol, "<>"},
      {TokenKind::kSymbol, "<="},      {TokenKind::kSymbol, ">="},
      {TokenKind::kSymbol, "<"},       {TokenKind::kSymbol, ">"},
      {TokenKind::kSymbol, "="},       {TokenKind::kSymbol, "("},
      {TokenKind::kSymbol, ")"},       {TokenKind::kSymbol, "*"},
      {TokenKind::kSymbol, "?"},       {TokenKind::kSymbol, ";"},
      {TokenKind::kEnd, ""},
  };
  ASSERT_EQ(expected.size(), toks.value().size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, toks.value()[i].kind) << i;
    EXPECT_EQ(expected[i].second, toks.value()[i].text) << i;
  }
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  Result<std::vector<Token>> toks = Lex("select FrOm wHeRe");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ("SELECT", toks.value()[0].text);
  EXPECT_EQ("FROM", toks.value()[1].text);
  EXPECT_EQ("WHERE", toks.value()[2].text);
}

TEST(LexerTest, CommentsSkipped) {
  Result<std::vector<Token>> toks = Lex("SELECT -- comment\n x");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(3u, toks.value().size());
  EXPECT_EQ("x", toks.value()[1].text);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
}

TEST(LexerTest, BangEqualsIsNotEquals) {
  Result<std::vector<Token>> toks = Lex("a != b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ("<>", toks.value()[1].text);
}

// ----------------------------------------------------------------- parser.

TEST(ParserTest, MinimalSelect) {
  Result<AstSelect> ast = Parse("SELECT * FROM t");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast.value().select_star);
  ASSERT_EQ(1u, ast.value().from.size());
  EXPECT_EQ("t", ast.value().from[0].table);
}

TEST(ParserTest, FullClauseRoundTrip) {
  Result<AstSelect> ast = Parse(
      "EXPLAIN SELECT DISTINCT d.name AS dn, COUNT(*) AS n "
      "FROM dept d, emp AS e "
      "WHERE e.dept = d.id AND e.age BETWEEN 30 AND 40 "
      "AND d.name IN ('eng', 'ops') AND e.name LIKE 'e%' AND e.id < ? "
      "GROUP BY d.name HAVING COUNT(*) > 2 "
      "ORDER BY n DESC, 1 ASC LIMIT 10;");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const AstSelect& s = ast.value();
  EXPECT_TRUE(s.explain);
  EXPECT_TRUE(s.distinct);
  ASSERT_EQ(2u, s.items.size());
  EXPECT_EQ("dn", s.items[0].alias);
  EXPECT_TRUE(s.items[1].is_aggregate);
  EXPECT_TRUE(s.items[1].count_star);
  ASSERT_EQ(2u, s.from.size());
  EXPECT_EQ("d", s.from[0].alias);
  EXPECT_EQ("e", s.from[1].alias);
  ASSERT_EQ(5u, s.where.size());
  EXPECT_TRUE(s.where[0].rhs_is_column);
  EXPECT_EQ(PredKind::kBetween, s.where[1].kind);
  EXPECT_EQ(PredKind::kIn, s.where[2].kind);
  EXPECT_EQ(2u, s.where[2].in_list.size());
  EXPECT_EQ(PredKind::kLike, s.where[3].kind);
  EXPECT_TRUE(s.where[4].is_param);
  ASSERT_EQ(1u, s.group_by.size());
  ASSERT_EQ(1u, s.having.size());
  EXPECT_TRUE(s.having[0].is_aggregate);
  EXPECT_EQ(PredKind::kGt, s.having[0].kind);
  ASSERT_EQ(2u, s.order_by.size());
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_TRUE(s.order_by[1].by_position);
  EXPECT_EQ(1, s.order_by[1].position);
  EXPECT_EQ(10, s.limit);
}

TEST(ParserTest, JoinOnSyntax) {
  Result<AstSelect> ast = Parse(
      "SELECT * FROM dept d JOIN emp e ON e.dept = d.id JOIN sale s ON "
      "s.emp = e.id AND s.year > 2020");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(3u, ast.value().from.size());
  EXPECT_EQ(3u, ast.value().where.size());
}

TEST(ParserTest, OrIsRejectedWithClearError) {
  Result<AstSelect> ast =
      Parse("SELECT * FROM t WHERE a = 1 OR b = 2");
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(std::string::npos, ast.status().message().find("OR"));
}

TEST(ParserTest, SyntaxErrorsCarryPosition) {
  Result<AstSelect> ast = Parse("SELECT FROM t");
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(std::string::npos, ast.status().message().find("position"));
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parse("SELECT * FROM t garbage garbage").ok());
}

TEST(ParserTest, CountStarOnlyForCount) {
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM t").ok());
}

// ----------------------------------------------------------------- binder.

class SqlBinderTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::BuildToyCatalog(&catalog_); }

  Result<BoundStatement> BindSql(const std::string& sql,
                                 std::vector<Value> params = {}) {
    return ParseSql(catalog_, sql, std::move(params));
  }

  /// Parses, binds, executes with POP, and compares against the oracle.
  void CheckSql(const std::string& sql, std::vector<Value> params = {}) {
    Result<BoundStatement> bound = BindSql(sql, std::move(params));
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    const std::vector<Row> expected =
        ReferenceExecute(catalog_, bound.value().query);
    ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
    Result<std::vector<Row>> rows = exec.Execute(bound.value().query);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value())) << sql;
  }

  Catalog catalog_;
};

TEST_F(SqlBinderTest, ResolvesQualifiedAndUnqualifiedColumns) {
  Result<BoundStatement> b = BindSql(
      "SELECT e_name FROM emp e WHERE e.e_age > 40 AND e_dept = 3");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(2u, b.value().query.local_preds().size());
  EXPECT_EQ(1u, b.value().query.projections().size());
}

TEST_F(SqlBinderTest, AmbiguousColumnRejected) {
  // Both dept and emp would match a made-up shared name? They don't share
  // names, so build ambiguity via a self-join.
  Result<BoundStatement> b =
      BindSql("SELECT e_name FROM emp a, emp b WHERE a.e_id = b.e_dept");
  ASSERT_FALSE(b.ok());
  EXPECT_NE(std::string::npos, b.status().message().find("ambiguous"));
}

TEST_F(SqlBinderTest, SelfJoinWithAliases) {
  CheckSql(
      "SELECT a.e_name FROM emp a, emp b "
      "WHERE a.e_dept = b.e_id AND b.e_age > 60");
}

TEST_F(SqlBinderTest, DuplicateAliasRejected) {
  EXPECT_FALSE(BindSql("SELECT * FROM emp, emp").ok());
}

TEST_F(SqlBinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(StatusCode::kNotFound,
            BindSql("SELECT * FROM ghost").status().code());
  EXPECT_FALSE(BindSql("SELECT ghost_col FROM emp").ok());
}

TEST_F(SqlBinderTest, JoinPredicateClassification) {
  Result<BoundStatement> b = BindSql(
      "SELECT * FROM dept d, emp e WHERE e.e_dept = d.d_id AND d_region = "
      "1");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(1u, b.value().query.join_preds().size());
  EXPECT_EQ(1u, b.value().query.local_preds().size());
}

TEST_F(SqlBinderTest, NonEqualityColumnComparisonRejected) {
  Result<BoundStatement> b =
      BindSql("SELECT * FROM dept d, emp e WHERE e.e_dept < d.d_id");
  EXPECT_EQ(StatusCode::kUnimplemented, b.status().code());
}

TEST_F(SqlBinderTest, ParameterMarkersBindInOrder) {
  Result<BoundStatement> b = BindSql(
      "SELECT * FROM emp WHERE e_age > ? AND e_dept = ?",
      {Value::Int(40), Value::Int(3)});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const QuerySpec& q = b.value().query;
  EXPECT_TRUE(q.local_preds()[0].is_param);
  EXPECT_EQ(0, q.local_preds()[0].param_index);
  EXPECT_EQ(1, q.local_preds()[1].param_index);
  EXPECT_EQ(Value::Int(40), q.params()[0]);
}

TEST_F(SqlBinderTest, MissingParameterBindingRejected) {
  EXPECT_FALSE(BindSql("SELECT * FROM emp WHERE e_age > ?").ok());
}

TEST_F(SqlBinderTest, GroupBySelectListShapeEnforced) {
  EXPECT_FALSE(
      BindSql("SELECT COUNT(*), d_name FROM dept GROUP BY d_name").ok());
  EXPECT_FALSE(BindSql("SELECT COUNT(*) FROM dept GROUP BY d_name").ok());
  EXPECT_TRUE(
      BindSql("SELECT d_name, COUNT(*) FROM dept GROUP BY d_name").ok());
}

TEST_F(SqlBinderTest, HavingMustMatchSelectList) {
  EXPECT_FALSE(BindSql("SELECT d_name, COUNT(*) FROM dept GROUP BY d_name "
                       "HAVING SUM(d_region) > 1")
                   .ok());
  EXPECT_TRUE(BindSql("SELECT d_name, COUNT(*) FROM dept GROUP BY d_name "
                      "HAVING COUNT(*) > 0")
                  .ok());
}

// -------------------------------------------------- end-to-end via oracle.

TEST_F(SqlBinderTest, EndToEndSimpleScan) {
  CheckSql("SELECT e_name FROM emp WHERE e_age BETWEEN 30 AND 40");
}

TEST_F(SqlBinderTest, EndToEndJoinAggregation) {
  CheckSql(
      "SELECT d_name, COUNT(*), SUM(s_year) "
      "FROM dept d, emp e, sale s "
      "WHERE e.e_dept = d.d_id AND s.s_emp = e.e_id AND e_age < 45 "
      "GROUP BY d_name");
}

TEST_F(SqlBinderTest, EndToEndJoinOnSyntax) {
  CheckSql(
      "SELECT e_name, s_year FROM emp e JOIN sale s ON s.s_emp = e.e_id "
      "WHERE s_year >= 2020");
}

TEST_F(SqlBinderTest, EndToEndDistinct) {
  CheckSql("SELECT DISTINCT e_dept FROM emp");
}

TEST_F(SqlBinderTest, EndToEndHaving) {
  CheckSql(
      "SELECT e_dept, COUNT(*) FROM emp GROUP BY e_dept "
      "HAVING COUNT(*) >= 25");
}

TEST_F(SqlBinderTest, EndToEndInAndLike) {
  CheckSql(
      "SELECT d_name, e_name FROM dept d, emp e "
      "WHERE e.e_dept = d.d_id AND d_name IN ('eng', 'hr') "
      "AND e_name LIKE 'emp1%'");
}

TEST_F(SqlBinderTest, EndToEndParameterMarker) {
  CheckSql("SELECT e_id FROM emp WHERE e_age < ?", {Value::Int(30)});
}

TEST_F(SqlBinderTest, OrderByAppliesToOutput) {
  Result<BoundStatement> b = BindSql(
      "SELECT e_dept, COUNT(*) AS n FROM emp GROUP BY e_dept ORDER BY n "
      "DESC, e_dept");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.Execute(b.value().query);
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows.value().size(); ++i) {
    EXPECT_GE(rows.value()[i - 1][1].AsInt(), rows.value()[i][1].AsInt());
  }
}

TEST_F(SqlBinderTest, LimitTruncates) {
  Result<BoundStatement> b =
      BindSql("SELECT e_id FROM emp ORDER BY 1 LIMIT 5");
  ASSERT_TRUE(b.ok());
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.Execute(b.value().query);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(5u, rows.value().size());
  // ORDER BY 1 + LIMIT = top-5 smallest ids.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(Value::Int(static_cast<int64_t>(i)), rows.value()[i][0]);
  }
}

TEST_F(SqlBinderTest, ExplainFlagSurfaces) {
  Result<BoundStatement> b = BindSql("EXPLAIN SELECT * FROM emp");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value().explain);
}

TEST_F(SqlBinderTest, PopFiresThroughSqlQueries) {
  // The toy catalog's dept/emp stats are accurate, so build a marker query
  // whose default estimate is badly off and check POP reacts end-to-end.
  Result<BoundStatement> b = BindSql(
      "SELECT d_name, COUNT(*) FROM dept d, emp e, sale s "
      "WHERE e.e_dept = d.d_id AND s.s_emp = e.e_id AND e_age < ? "
      "GROUP BY d_name",
      {Value::Int(100)});  // Keeps everyone; estimate assumes a third.
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(b.value().query, &stats);
  ASSERT_TRUE(rows.ok());
  const std::vector<Row> expected =
      ReferenceExecute(catalog_, b.value().query);
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
}

}  // namespace
}  // namespace popdb
