#include <gtest/gtest.h>

#include "opt/cardinality.h"
#include "opt/query.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // dept: 8 rows; emp: 200 rows (e_dept ndv 8, e_age ~45 ndv);
    // sale: 1000 rows (s_emp ndv <= 200).
    testing::BuildToyCatalog(&catalog_);
  }

  CardinalityEstimator MakeEstimator(const QuerySpec& q,
                                     const FeedbackMap* fb = nullptr) {
    return CardinalityEstimator(catalog_, q, fb, config_);
  }

  Catalog catalog_;
  EstimatorConfig config_;
};

TEST_F(CardinalityTest, TableCardFromStats) {
  QuerySpec q("q");
  q.AddTable("emp");
  q.AddTable("dept");
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_DOUBLE_EQ(200.0, est.TableCard(0));
  EXPECT_DOUBLE_EQ(8.0, est.TableCard(1));
}

TEST_F(CardinalityTest, EqualitySelectivityIsOneOverNdv) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(3));  // e_dept: ndv 8.
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_NEAR(1.0 / 8.0, est.LocalSelectivity(0), 1e-9);
}

TEST_F(CardinalityTest, NotEqualSelectivity) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 1}, PredKind::kNe, Value::Int(3));
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_NEAR(1.0 - 1.0 / 8.0, est.LocalSelectivity(0), 1e-9);
}

TEST_F(CardinalityTest, InListSelectivity) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddInPred({e, 1}, {Value::Int(1), Value::Int(2)});
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_NEAR(2.0 / 8.0, est.LocalSelectivity(0), 1e-9);
}

TEST_F(CardinalityTest, RangeSelectivityUsesHistogram) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  // e_age uniform in [21, 65]; age < 43 covers roughly half.
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(43));
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_NEAR(0.5, est.LocalSelectivity(0), 0.12);
}

TEST_F(CardinalityTest, BetweenSelectivity) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 2}, PredKind::kBetween, Value::Int(21), Value::Int(65));
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_NEAR(1.0, est.LocalSelectivity(0), 0.05);
}

TEST_F(CardinalityTest, ParameterMarkerUsesDefaults) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddParamPred({e, 1}, PredKind::kEq, 0);
  q.AddParamPred({e, 2}, PredKind::kLt, 1);
  q.BindParam(Value::Int(3));
  q.BindParam(Value::Int(100));
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_DOUBLE_EQ(config_.default_eq_selectivity, est.LocalSelectivity(0));
  EXPECT_DOUBLE_EQ(config_.default_range_selectivity,
                   est.LocalSelectivity(1));
}

TEST_F(CardinalityTest, LikeUsesDefault) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 3}, PredKind::kLike, Value::String("emp1%"));
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_DOUBLE_EQ(config_.default_like_selectivity,
                   est.LocalSelectivity(0));
}

TEST_F(CardinalityTest, JoinSelectivityOneOverMaxNdv) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});  // ndv(e_dept)=8, ndv(d_id)=8.
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_NEAR(1.0 / 8.0, est.JoinSelectivity(0), 1e-9);
}

TEST_F(CardinalityTest, SubsetCardMultipliesIndependently) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(3));
  CardinalityEstimator est = MakeEstimator(q);
  // {emp}: 200 * 1/8 = 25.
  EXPECT_NEAR(25.0, est.SubsetCard(TableBit(e)), 1e-6);
  // {dept, emp}: 8 * 25 * 1/8 = 25.
  EXPECT_NEAR(25.0, est.SubsetCard(TableBit(d) | TableBit(e)), 1e-6);
}

TEST_F(CardinalityTest, ExactFeedbackOverridesEstimate) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(3));
  FeedbackMap fb;
  fb[TableBit(e)].exact = 170.0;
  CardinalityEstimator est = MakeEstimator(q, &fb);
  EXPECT_DOUBLE_EQ(170.0, est.SubsetCard(TableBit(e)));
}

TEST_F(CardinalityTest, FeedbackRatioPropagatesToSupersets) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(3));
  FeedbackMap fb;
  // Raw {emp} estimate is 25; actual is 100: a 4x correction that must
  // carry into the joint estimate.
  fb[TableBit(e)].exact = 100.0;
  CardinalityEstimator est = MakeEstimator(q, &fb);
  const double joint = est.SubsetCard(TableBit(d) | TableBit(e));
  EXPECT_NEAR(100.0, joint, 1e-6);  // 25 (raw joint) * 4.
}

TEST_F(CardinalityTest, LowerBoundClampsEstimate) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(3));  // Raw 25.
  FeedbackMap fb;
  fb[TableBit(e)].lower_bound = 60.0;
  CardinalityEstimator est = MakeEstimator(q, &fb);
  EXPECT_DOUBLE_EQ(60.0, est.SubsetCard(TableBit(e)));
}

TEST_F(CardinalityTest, LowerBoundBelowEstimateIsIgnored) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(3));  // Raw 25.
  FeedbackMap fb;
  fb[TableBit(e)].lower_bound = 5.0;
  CardinalityEstimator est = MakeEstimator(q, &fb);
  EXPECT_NEAR(25.0, est.SubsetCard(TableBit(e)), 1e-6);
}

TEST_F(CardinalityTest, DisjointFeedbackSubsetsBothApply) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  FeedbackMap fb;
  // Double both base tables' counts.
  fb[TableBit(d)].exact = 16.0;
  fb[TableBit(s)].exact = 2000.0;
  CardinalityEstimator est = MakeEstimator(q, &fb);
  const double raw = est.RawSubsetCard(q.AllTables());
  EXPECT_NEAR(4.0 * raw, est.SubsetCard(q.AllTables()), raw * 0.01);
}

TEST_F(CardinalityTest, IndexMatchesPerProbe) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  CardinalityEstimator est = MakeEstimator(q);
  // emp has 200 rows, e_dept ndv 8 -> 25 rows per key.
  EXPECT_NEAR(25.0, est.IndexMatchesPerProbe(e, 1), 1e-6);
}

TEST_F(CardinalityTest, ColumnNdvFallsBackToTableCard) {
  Catalog no_stats;
  Table t("raw", Schema({{"v", ValueType::kInt}}));
  t.AppendRow({Value::Int(1)});
  t.AppendRow({Value::Int(2)});
  ASSERT_TRUE(no_stats.AddTable(std::move(t)).ok());
  QuerySpec q("q");
  q.AddTable("raw");
  CardinalityEstimator est(no_stats, q, nullptr, config_);
  EXPECT_DOUBLE_EQ(2.0, est.ColumnNdv(0, 0));
}

TEST_F(CardinalityTest, SubsetCardNeverZero) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  // Stack highly selective predicates.
  q.AddPred({e, 0}, PredKind::kEq, Value::Int(1));
  q.AddPred({e, 1}, PredKind::kEq, Value::Int(1));
  q.AddPred({e, 2}, PredKind::kEq, Value::Int(30));
  CardinalityEstimator est = MakeEstimator(q);
  EXPECT_GT(est.SubsetCard(TableBit(e)), 0.0);
}

}  // namespace
}  // namespace popdb
