#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/matview.h"

namespace popdb {
namespace {

// --------------------------------------------------------- FeedbackCache.

TEST(FeedbackCacheTest, RecordExact) {
  FeedbackCache fb;
  EXPECT_TRUE(fb.empty());
  fb.RecordExact(0b11, 120.0);
  ASSERT_EQ(1u, fb.Snapshot().size());
  EXPECT_DOUBLE_EQ(120.0, fb.Snapshot().at(0b11).exact);
}

TEST(FeedbackCacheTest, ExactOverwritesExact) {
  FeedbackCache fb;
  fb.RecordExact(0b1, 10.0);
  fb.RecordExact(0b1, 25.0);
  EXPECT_DOUBLE_EQ(25.0, fb.Snapshot().at(0b1).exact);
}

TEST(FeedbackCacheTest, LowerBoundsKeepMaximum) {
  FeedbackCache fb;
  fb.RecordLowerBound(0b1, 10.0);
  fb.RecordLowerBound(0b1, 50.0);
  fb.RecordLowerBound(0b1, 30.0);
  EXPECT_DOUBLE_EQ(50.0, fb.Snapshot().at(0b1).lower_bound);
  EXPECT_LT(fb.Snapshot().at(0b1).exact, 0);
}

TEST(FeedbackCacheTest, ExactDominatesLowerBound) {
  FeedbackCache fb;
  fb.RecordExact(0b1, 20.0);
  fb.RecordLowerBound(0b1, 500.0);
  EXPECT_DOUBLE_EQ(20.0, fb.Snapshot().at(0b1).exact);
}

TEST(FeedbackCacheTest, ClearEmpties) {
  FeedbackCache fb;
  fb.RecordExact(0b1, 1.0);
  fb.Clear();
  EXPECT_TRUE(fb.empty());
}

TEST(FeedbackCacheTest, ToStringRendersBothKinds) {
  FeedbackCache fb;
  fb.RecordExact(0b1, 7.0);
  fb.RecordLowerBound(0b10, 9.0);
  const std::string s = fb.ToString();
  EXPECT_NE(std::string::npos, s.find("exact=7"));
  EXPECT_NE(std::string::npos, s.find("lower_bound=9"));
}

// -------------------------------------------------------- MatViewRegistry.

std::vector<Row> MakeRows(int n, int64_t tag) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value::Int(tag + i)});
  return rows;
}

TEST(MatViewRegistryTest, RegisterExposesView) {
  MatViewRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.Register(0b101, MakeRows(4, 0));
  ASSERT_EQ(1u, reg.views().size());
  const AvailableMatView& v = reg.views()[0];
  EXPECT_EQ(TableSet{0b101}, v.set);
  EXPECT_DOUBLE_EQ(4.0, v.card);
  ASSERT_NE(nullptr, v.rows);
  EXPECT_EQ(4u, v.rows->size());
  EXPECT_EQ(4, reg.total_rows());
}

TEST(MatViewRegistryTest, ReRegisterReplacesRows) {
  MatViewRegistry reg;
  reg.Register(0b1, MakeRows(4, 0));
  reg.Register(0b1, MakeRows(9, 100));
  ASSERT_EQ(1u, reg.views().size());
  EXPECT_DOUBLE_EQ(9.0, reg.views()[0].card);
  EXPECT_EQ(Value::Int(100), (*reg.views()[0].rows)[0][0]);
}

TEST(MatViewRegistryTest, DistinctSetsCoexist) {
  MatViewRegistry reg;
  reg.Register(0b1, MakeRows(2, 0));
  reg.Register(0b10, MakeRows(3, 10));
  EXPECT_EQ(2u, reg.views().size());
  EXPECT_EQ(5, reg.total_rows());
}

TEST(MatViewRegistryTest, NamesAreUniquePerSet) {
  MatViewRegistry reg;
  reg.Register(0b1, MakeRows(1, 0));
  reg.Register(0b10, MakeRows(1, 0));
  EXPECT_NE(reg.views()[0].name, reg.views()[1].name);
}

TEST(MatViewRegistryTest, ClearDropsEverything) {
  MatViewRegistry reg;
  reg.Register(0b1, MakeRows(2, 0));
  reg.Clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(0, reg.total_rows());
}

TEST(MatViewRegistryTest, RowPointersStableAcrossOtherRegistrations) {
  MatViewRegistry reg;
  reg.Register(0b1, MakeRows(2, 0));
  const std::vector<Row>* first = reg.views()[0].rows;
  reg.Register(0b10, MakeRows(2, 5));
  // Registering a different set must not invalidate the first view's rows.
  const AvailableMatView* v1 = nullptr;
  for (const AvailableMatView& v : reg.views()) {
    if (v.set == 0b1) v1 = &v;
  }
  ASSERT_NE(nullptr, v1);
  EXPECT_EQ(first, v1->rows);
  EXPECT_EQ(Value::Int(0), (*v1->rows)[0][0]);
}

}  // namespace
}  // namespace popdb
