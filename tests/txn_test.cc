// Write-path tests: DML binding through the SQL front end, incremental
// statistics maintenance (StatsDelta fold semantics), WriteManager apply
// semantics (row effects, index maintenance, threshold-gated stats
// folds), snapshot consistency under a concurrent writer/reader hammer, a
// dop-1-vs-dop-4 differential consistency leg under write churn, and the
// plan-cache stats-version gating regression (a stats fold between
// signature lookup and checkpoint placement must not serve or install a
// stale placement).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "opt/plan_cache.h"
#include "runtime/query_service.h"
#include "sql/binder.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "tests/test_util.h"
#include "txn/stats_delta.h"
#include "txn/write_manager.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;

// ------------------------------------------------------------ DML binding

class BinderDmlTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildToyCatalog(&catalog_); }

  sql::BoundStatement Bind(const std::string& text,
                           std::vector<Value> params = {}) {
    Result<sql::BoundStatement> r =
        sql::ParseSqlStatement(catalog_, text, std::move(params));
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().message();
    return std::move(r).TakeValue();
  }

  Status BindError(const std::string& text, std::vector<Value> params = {}) {
    Result<sql::BoundStatement> r =
        sql::ParseSqlStatement(catalog_, text, std::move(params));
    EXPECT_FALSE(r.ok()) << text << " bound unexpectedly";
    return r.ok() ? Status::Ok() : r.status();
  }

  Catalog catalog_;
};

TEST_F(BinderDmlTest, InsertFullRowInSchemaOrder) {
  sql::BoundStatement b =
      Bind("INSERT INTO dept VALUES (100, 'ops', 3), (101, 'qa', 4)");
  ASSERT_TRUE(b.is_write);
  EXPECT_EQ(txn::WriteOp::kInsert, b.write.op);
  EXPECT_EQ("dept", b.write.table);
  ASSERT_EQ(2u, b.write.rows.size());
  ASSERT_EQ(3u, b.write.rows[0].size());
  EXPECT_EQ(100, b.write.rows[0][0].AsInt());
  EXPECT_EQ(ValueType::kString, b.write.rows[0][1].type());
  EXPECT_EQ(4, b.write.rows[1][2].AsInt());
}

TEST_F(BinderDmlTest, InsertColumnListLeavesUnlistedColumnsNull) {
  sql::BoundStatement b = Bind("INSERT INTO dept (d_region, d_id) VALUES (7, 42)");
  ASSERT_EQ(1u, b.write.rows.size());
  const Row& row = b.write.rows[0];
  ASSERT_EQ(3u, row.size());
  EXPECT_EQ(42, row[0].AsInt());   // d_id bound through the column list.
  EXPECT_TRUE(row[1].is_null());   // d_name unlisted.
  EXPECT_EQ(7, row[2].AsInt());
}

TEST_F(BinderDmlTest, InsertCoercesIntLiteralIntoDoubleColumn) {
  // sale.s_amount is a double column; a bare integer literal must land as
  // a double so the executor never sees mixed column types.
  sql::BoundStatement b = Bind("INSERT INTO sale VALUES (1, 5, 2020)");
  ASSERT_EQ(1u, b.write.rows.size());
  EXPECT_EQ(ValueType::kDouble, b.write.rows[0][1].type());
  EXPECT_DOUBLE_EQ(5.0, b.write.rows[0][1].AsDouble());
}

TEST_F(BinderDmlTest, InsertErrors) {
  EXPECT_FALSE(BindError("INSERT INTO nosuch VALUES (1)").ok());
  EXPECT_FALSE(BindError("INSERT INTO dept VALUES (1, 'x')").ok());
  EXPECT_FALSE(
      BindError("INSERT INTO dept (d_id, d_bogus) VALUES (1, 2)").ok());
  EXPECT_FALSE(
      BindError("INSERT INTO dept (d_id, d_id) VALUES (1, 2)").ok());
}

TEST_F(BinderDmlTest, UpdateBindsSetAndWhereToSchemaPositions) {
  sql::BoundStatement b =
      Bind("UPDATE sale SET s_amount = 9.5 WHERE s_year = 2020");
  ASSERT_TRUE(b.is_write);
  EXPECT_EQ(txn::WriteOp::kUpdate, b.write.op);
  ASSERT_EQ(1u, b.write.sets.size());
  EXPECT_EQ(1, b.write.sets[0].column);
  EXPECT_FALSE(b.write.sets[0].is_delta);
  ASSERT_EQ(1u, b.write.where.size());
  EXPECT_EQ(2, b.write.where[0].pos);
  EXPECT_EQ(2020, b.write.where[0].operand.AsInt());
}

TEST_F(BinderDmlTest, UpdateDeltaFormBindsSignedAdjustment) {
  sql::BoundStatement plus =
      Bind("UPDATE sale SET s_amount = s_amount + 10 WHERE s_emp = 3");
  ASSERT_EQ(1u, plus.write.sets.size());
  EXPECT_TRUE(plus.write.sets[0].is_delta);
  EXPECT_DOUBLE_EQ(10.0, plus.write.sets[0].value.AsDouble());

  sql::BoundStatement minus =
      Bind("UPDATE sale SET s_amount = s_amount - 4 WHERE s_emp = 3");
  EXPECT_TRUE(minus.write.sets[0].is_delta);
  EXPECT_DOUBLE_EQ(-4.0, minus.write.sets[0].value.AsDouble());
}

TEST_F(BinderDmlTest, UpdateDeltaAgainstOtherColumnIsRejected) {
  // Only the TPC-C shape `col = col +/- literal` is supported.
  EXPECT_FALSE(BindError("UPDATE sale SET s_amount = s_year + 1").ok());
}

TEST_F(BinderDmlTest, DeleteBindsWhereOrMatchesAll) {
  sql::BoundStatement some = Bind("DELETE FROM emp WHERE e_age > 60");
  EXPECT_EQ(txn::WriteOp::kDelete, some.write.op);
  ASSERT_EQ(1u, some.write.where.size());
  EXPECT_EQ(2, some.write.where[0].pos);

  sql::BoundStatement all = Bind("DELETE FROM emp");
  EXPECT_TRUE(all.write.where.empty());
}

TEST_F(BinderDmlTest, ColumnToColumnWhereIsRejected) {
  // DML WHERE clauses are single-table restrictions; a join-shaped
  // conjunct has no meaning here.
  EXPECT_FALSE(BindError("DELETE FROM sale WHERE s_emp = s_year").ok());
}

TEST_F(BinderDmlTest, ParamsBindInTextualOrder) {
  sql::BoundStatement b =
      Bind("UPDATE sale SET s_amount = ? WHERE s_year = ?",
           {Value::Double(2.5), Value::Int(2020)});
  EXPECT_DOUBLE_EQ(2.5, b.write.sets[0].value.AsDouble());
  EXPECT_EQ(2020, b.write.where[0].operand.AsInt());

  sql::BoundStatement ins =
      Bind("INSERT INTO dept VALUES (?, ?, ?)",
           {Value::Int(9), Value::String("x"), Value::Int(1)});
  EXPECT_EQ(9, ins.write.rows[0][0].AsInt());
}

TEST_F(BinderDmlTest, MissingParamsFail) {
  const Status s = BindError("DELETE FROM emp WHERE e_id = ?");
  EXPECT_NE(std::string::npos, s.message().find("parameter"));
}

TEST_F(BinderDmlTest, SelectStillBindsAsRead) {
  sql::BoundStatement b = Bind("SELECT COUNT(*) FROM dept");
  EXPECT_FALSE(b.is_write);
}

// ------------------------------------------------- StatsDelta accounting

TEST(StatsDeltaTest, ChurnCountsEveryMutationKind) {
  txn::StatsDelta delta(2, {});
  delta.RecordInsert({Value::Int(1), Value::Int(2)});
  delta.RecordInsert({Value::Int(3), Value::Int(4)});
  delta.RecordDelete({Value::Int(1), Value::Int(2)});
  delta.RecordUpdate({Value::Int(3), Value::Int(4)},
                     {Value::Int(3), Value::Int(9)});
  EXPECT_EQ(4, delta.churn());
}

TEST(StatsDeltaTest, ShouldFoldGatesOnFloorAndFraction) {
  txn::StatsDeltaConfig config;
  config.fold_threshold = 0.10;
  config.min_churn_rows = 4;
  txn::StatsDelta delta(1, config);

  TableStats base;
  base.row_count = 100;

  // Below the absolute floor: never fold, regardless of the fraction.
  delta.RecordInsert({Value::Int(1)});
  delta.RecordInsert({Value::Int(2)});
  EXPECT_FALSE(delta.ShouldFold(&base, 100));

  // Floor reached but below 10% of the described 100 rows.
  delta.RecordInsert({Value::Int(3)});
  delta.RecordInsert({Value::Int(4)});
  EXPECT_FALSE(delta.ShouldFold(&base, 100));

  // 10 churned rows >= 10% of 100.
  for (int i = 0; i < 6; ++i) delta.RecordInsert({Value::Int(10 + i)});
  EXPECT_TRUE(delta.ShouldFold(&base, 100));

  // Never-analyzed table: the threshold is taken against live rows.
  txn::StatsDelta fresh(1, config);
  for (int i = 0; i < 5; ++i) fresh.RecordInsert({Value::Int(i)});
  EXPECT_TRUE(fresh.ShouldFold(nullptr, 8));
  EXPECT_FALSE(fresh.ShouldFold(nullptr, 1000));
}

TEST(StatsDeltaTest, FoldAdjustsRowCountAndWidensMinMax) {
  Table t("t", Schema({{"a", ValueType::kInt}}));
  for (int i = 0; i < 100; ++i) t.AppendRow({Value::Int(i)});
  const TableStats base = CollectTableStats(t, /*histogram_buckets=*/8);
  ASSERT_EQ(100, base.row_count);

  txn::StatsDelta delta(1, {});
  for (int i = 0; i < 10; ++i) {
    const Row row = {Value::Int(500 + i)};  // Outside the base domain.
    t.AppendRow(row);
    delta.RecordInsert(row);
  }
  const TableStats folded = delta.Fold(t, &base);
  EXPECT_EQ(110, folded.row_count);
  ASSERT_TRUE(folded.column(0).max.has_value());
  EXPECT_EQ(509, folded.column(0).max->AsInt());
  ASSERT_TRUE(folded.column(0).min.has_value());
  EXPECT_EQ(0, folded.column(0).min->AsInt());
  // Folding resets the accumulators for the next cycle.
  EXPECT_EQ(0, delta.churn());
}

// -------------------------------------------------- WriteManager::Apply

class WriteManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t("t", Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
    for (int i = 0; i < 64; ++i) {
      t.AppendRow({Value::Int(i % 8), Value::Int(i)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(t)).ok());
    ASSERT_TRUE(catalog_.AnalyzeTable("t").ok());
    ASSERT_TRUE(catalog_.CreateIndex("t", "k").ok());
  }

  static txn::WriteStatement Insert(std::vector<Row> rows) {
    txn::WriteStatement s;
    s.op = txn::WriteOp::kInsert;
    s.table = "t";
    s.rows = std::move(rows);
    return s;
  }

  static ResolvedPredicate KeyEq(int64_t k) {
    ResolvedPredicate p;
    p.pos = 0;
    p.kind = PredKind::kEq;
    p.operand = Value::Int(k);
    return p;
  }

  Catalog catalog_;
};

TEST_F(WriteManagerTest, InsertAppendsRowsAndMaintainsIndex) {
  txn::WriteManager wm(&catalog_);
  const Table* t = catalog_.GetTable("t");
  const int64_t before = t->live_rows();

  Result<txn::WriteResult> r =
      wm.Apply(Insert({{Value::Int(77), Value::Int(1)},
                       {Value::Int(77), Value::Int(2)}}));
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(2, r.value().affected_rows);
  EXPECT_EQ(before + 2, t->live_rows());

  // The index must find both new rows (postings are a superset; re-check
  // the actual rows like the executor does).
  const HashIndex* idx = catalog_.FindIndex("t", 0);
  ASSERT_NE(nullptr, idx);
  const TableSnapshot snap = t->Snapshot();
  int found = 0;
  for (const int64_t rid : idx->Probe(Value::Int(77))) {
    if (snap.alive(rid) && snap.row(rid)[0].AsInt() == 77) ++found;
  }
  EXPECT_EQ(2, found);
}

TEST_F(WriteManagerTest, UpdateAppliesDeltaAndReindexesNewKeys) {
  txn::WriteManager wm(&catalog_);
  const Table* t = catalog_.GetTable("t");

  // Delta form: v = v + 1000 on the eight k == 3 rows.
  txn::WriteStatement upd;
  upd.op = txn::WriteOp::kUpdate;
  upd.table = "t";
  upd.sets.push_back(txn::SetClause{1, Value::Int(1000), /*is_delta=*/true});
  upd.where.push_back(KeyEq(3));
  Result<txn::WriteResult> r = wm.Apply(upd);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(8, r.value().affected_rows);
  {
    const TableSnapshot snap = t->Snapshot();
    int bumped = 0;
    for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
      if (snap.alive(rid) && snap.row(rid)[0].AsInt() == 3) {
        EXPECT_GE(snap.row(rid)[1].AsInt(), 1000);
        ++bumped;
      }
    }
    EXPECT_EQ(8, bumped);
  }

  // Key rewrite: the index must learn the new key value.
  txn::WriteStatement rekey;
  rekey.op = txn::WriteOp::kUpdate;
  rekey.table = "t";
  rekey.sets.push_back(txn::SetClause{0, Value::Int(99), /*is_delta=*/false});
  rekey.where.push_back(KeyEq(3));
  ASSERT_TRUE(wm.Apply(rekey).ok());
  const HashIndex* idx = catalog_.FindIndex("t", 0);
  const TableSnapshot snap = t->Snapshot();
  int found = 0;
  for (const int64_t rid : idx->Probe(Value::Int(99))) {
    if (snap.alive(rid) && snap.row(rid)[0].AsInt() == 99) ++found;
  }
  EXPECT_EQ(8, found);
}

TEST_F(WriteManagerTest, DeleteTombstonesMatchingRows) {
  txn::WriteManager wm(&catalog_);
  const Table* t = catalog_.GetTable("t");
  const int64_t before = t->live_rows();

  txn::WriteStatement del;
  del.op = txn::WriteOp::kDelete;
  del.table = "t";
  del.where.push_back(KeyEq(5));
  Result<txn::WriteResult> r = wm.Apply(del);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(8, r.value().affected_rows);
  EXPECT_EQ(before - 8, t->live_rows());

  // Idempotent: the rows are gone, a re-run matches nothing.
  EXPECT_EQ(0, wm.Apply(del).value().affected_rows);
}

TEST_F(WriteManagerTest, UnknownTableFails) {
  txn::WriteManager wm(&catalog_);
  txn::WriteStatement s;
  s.op = txn::WriteOp::kInsert;
  s.table = "nosuch";
  s.rows.push_back({Value::Int(1)});
  EXPECT_FALSE(wm.Apply(s).ok());
}

TEST_F(WriteManagerTest, ChurnPastThresholdFoldsStatsAndBumpsVersion) {
  txn::WriteManager::Config config;
  config.stats_fold_threshold = 0.10;
  config.stats_min_churn_rows = 4;
  txn::WriteManager wm(&catalog_, config);

  const int64_t v0 = catalog_.stats_version();
  // 64 analyzed rows: threshold = max(4, 6.4) = 7 churned rows.
  Result<txn::WriteResult> small = wm.Apply(Insert(
      {{Value::Int(1), Value::Int(0)}, {Value::Int(1), Value::Int(0)}}));
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(small.value().stats_folded);
  EXPECT_EQ(v0, catalog_.stats_version());

  std::vector<Row> bulk;
  for (int i = 0; i < 6; ++i) bulk.push_back({Value::Int(2), Value::Int(0)});
  Result<txn::WriteResult> big = wm.Apply(Insert(std::move(bulk)));
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big.value().stats_folded);
  EXPECT_GT(catalog_.stats_version(), v0);
  EXPECT_EQ(big.value().stats_version, catalog_.stats_version());
  EXPECT_EQ(1, wm.stats_folds());
  // The folded statistics describe the post-write table.
  const TableStats* stats = catalog_.GetStats("t");
  ASSERT_NE(nullptr, stats);
  EXPECT_EQ(72, stats->row_count);
}

// ------------------------------------- snapshot consistency under writes

/// Writers publish only invariant-preserving statements; readers pin
/// snapshots and check the invariants. Any torn statement (a reader seeing
/// half of a multi-row publish) breaks one of them.
TEST(SnapshotConsistencyTest, ConcurrentWriterReaderHammer) {
  Catalog catalog;
  // pairs: every INSERT publishes two rows summing to zero.
  ASSERT_TRUE(catalog
                  .AddTable(Table("pairs", Schema({{"m", ValueType::kInt},
                                                   {"s", ValueType::kInt}})))
                  .ok());
  // acct: every UPDATE bumps ALL rows in one publish, so a snapshot must
  // always see every balance equal.
  Table acct("acct", Schema({{"id", ValueType::kInt},
                             {"bal", ValueType::kInt}}));
  for (int i = 0; i < 128; ++i) {
    acct.AppendRow({Value::Int(i), Value::Int(0)});
  }
  ASSERT_TRUE(catalog.AddTable(std::move(acct)).ok());
  catalog.AnalyzeAll();

  txn::WriteManager wm(&catalog);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread pair_writer([&] {
    for (int i = 0; i < 1500; ++i) {
      txn::WriteStatement s;
      s.op = txn::WriteOp::kInsert;
      s.table = "pairs";
      s.rows.push_back({Value::Int(i), Value::Int(i + 1)});
      s.rows.push_back({Value::Int(i), Value::Int(-(i + 1))});
      if (!wm.Apply(s).ok()) failures.fetch_add(1);
      // Periodically delete a prior pair atomically (keeps both
      // invariants: count stays even, sum stays zero).
      if (i % 7 == 3) {
        txn::WriteStatement del;
        del.op = txn::WriteOp::kDelete;
        del.table = "pairs";
        ResolvedPredicate p;
        p.pos = 0;
        p.kind = PredKind::kEq;
        p.operand = Value::Int(i - 2);
        del.where.push_back(p);
        if (!wm.Apply(del).ok()) failures.fetch_add(1);
      }
    }
    stop.store(true);
  });

  std::thread acct_writer([&] {
    int tick = 0;
    while (!stop.load()) {
      txn::WriteStatement s;
      s.op = txn::WriteOp::kUpdate;
      s.table = "acct";
      s.sets.push_back(txn::SetClause{1, Value::Int(1), /*is_delta=*/true});
      if (!wm.Apply(s).ok()) failures.fetch_add(1);
      ++tick;
    }
    (void)tick;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      const Table* pairs = catalog.GetTable("pairs");
      const Table* accts = catalog.GetTable("acct");
      while (!stop.load()) {
        {
          const TableSnapshot snap = pairs->Snapshot();
          int64_t live = 0, sum = 0;
          for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
            if (!snap.alive(rid)) continue;
            ++live;
            sum += snap.row(rid)[1].AsInt();
          }
          if (sum != 0 || live % 2 != 0) failures.fetch_add(1);
        }
        {
          const TableSnapshot snap = accts->Snapshot();
          int64_t first = -1;
          for (int64_t rid = 0; rid < snap.num_rows(); ++rid) {
            if (!snap.alive(rid)) continue;
            const int64_t bal = snap.row(rid)[1].AsInt();
            if (first < 0) first = bal;
            if (bal != first) {
              failures.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }

  pair_writer.join();
  acct_writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(0, failures.load());
}

/// Differential leg: the same scalar aggregate runs through a serial
/// (dop 1) and a morsel-parallel (dop 4) QueryService while a writer
/// churns the scanned table with zero-sum pairs. Every result — at either
/// dop — must see a snapshot-consistent state: SUM == 0 and an even
/// COUNT. Torn rows or double-counted morsels break it immediately.
TEST(SnapshotConsistencyTest, DifferentialDopConsistencyUnderWrites) {
  Catalog catalog;
  Table big("big", Schema({{"g", ValueType::kInt}, {"v", ValueType::kInt}}));
  for (int i = 0; i < 3000; ++i) {
    big.AppendRow({Value::Int(i), Value::Int(i + 1)});
    big.AppendRow({Value::Int(i), Value::Int(-(i + 1))});
  }
  ASSERT_TRUE(catalog.AddTable(std::move(big)).ok());
  catalog.AnalyzeAll();

  ServiceConfig serial_config;
  serial_config.num_workers = 1;
  serial_config.intra_query_dop = 1;
  ServiceConfig parallel_config;
  parallel_config.num_workers = 4;
  parallel_config.intra_query_dop = 4;
  parallel_config.min_parallel_rows = 256;
  parallel_config.morsel_rows = 512;
  QueryService serial(catalog, serial_config);
  QueryService parallel(catalog, parallel_config);

  txn::WriteManager wm(&catalog);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; !stop.load() && i < 400; ++i) {
      txn::WriteStatement s;
      s.op = txn::WriteOp::kInsert;
      s.table = "big";
      s.rows.push_back({Value::Int(9000 + i), Value::Int(i + 1)});
      s.rows.push_back({Value::Int(9000 + i), Value::Int(-(i + 1))});
      if (!wm.Apply(s).ok()) failures.fetch_add(1);
    }
  });

  auto sum_query = [] {
    QuerySpec q("sum_big");
    const int b = q.AddTable("big");
    q.AddAgg(AggFunc::kSum, {b, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  };
  for (int round = 0; round < 25; ++round) {
    for (QueryService* svc : {&serial, &parallel}) {
      const QueryResult r = svc->ExecuteSync(sum_query());
      ASSERT_TRUE(r.status.ok()) << r.status.message();
      ASSERT_EQ(1u, r.rows.size());
      ASSERT_EQ(2u, r.rows[0].size());
      EXPECT_DOUBLE_EQ(0.0, r.rows[0][0].AsDouble())
          << "torn snapshot: non-zero SUM at round " << round;
      EXPECT_EQ(0, r.rows[0][1].AsInt() % 2)
          << "torn snapshot: odd COUNT at round " << round;
    }
  }

  stop.store(true);
  writer.join();
  serial.Shutdown();
  parallel.Shutdown();
  EXPECT_EQ(0, failures.load());
}

// --------------------------- plan cache vs. stats-version (satellite #6)

std::shared_ptr<PlanNode> ScanPlan() {
  auto scan = std::make_shared<PlanNode>();
  scan->kind = PlanOpKind::kTableScan;
  scan->set = TableSet{1};
  scan->table_id = 0;
  scan->table_name = "t";
  return scan;
}

TEST(PlanCacheStatsVersionTest, StaleStatsLookupEvictsAndIsCounted) {
  PlanCache cache;
  cache.Install("sig", ScanPlan(), /*external_epoch=*/0,
                /*catalog_version=*/1, /*feedback_digest=*/42, 0, 0.0, 0.0);

  // A write-path fold moved the catalog stats version: hard invalidation,
  // attributed to stale stats (not to an external epoch bump).
  EXPECT_EQ(PlanCacheOutcome::kMissEpoch,
            cache.Lookup("sig", 0, 2, 42, {}).outcome);
  EXPECT_EQ(0, cache.size());
  EXPECT_EQ(1, cache.stats().evictions_stale_stats);

  // An external epoch bump alone evicts too but is not a stale-stats
  // eviction.
  cache.Install("sig", ScanPlan(), 0, 2, 42, 0, 0.0, 0.0);
  EXPECT_EQ(PlanCacheOutcome::kMissEpoch,
            cache.Lookup("sig", 1, 2, 42, {}).outcome);
  EXPECT_EQ(2, cache.stats().evictions_invalid);
  EXPECT_EQ(1, cache.stats().evictions_stale_stats);
}

TEST(PlanCacheStatsVersionTest, PlacementFromMovedStatsVersionIsNotAttached) {
  // Regression for the lookup/placement race: a stats fold lands between
  // the signature lookup (which captured catalog version 1) and the
  // checkpoint-placement install. The placement was computed under the old
  // statistics; attaching it would let a later exact hit skip placement
  // with a stale placed plan.
  PlanCache cache;
  cache.Install("sig", ScanPlan(), /*external_epoch=*/0,
                /*catalog_version=*/1, /*feedback_digest=*/42, 0, 0.0, 0.0);
  cache.InstallPlacement("sig", ScanPlan(), /*external_epoch=*/0,
                         /*catalog_version=*/2, /*feedback_digest=*/42, {});

  PlanCache::LookupResult hit = cache.Lookup("sig", 0, 1, 42, {});
  ASSERT_EQ(PlanCacheOutcome::kHit, hit.outcome);
  EXPECT_EQ(nullptr, hit.placed_plan) << "stale placement was served";
  EXPECT_EQ(0, cache.stats().placement_installs);

  // The matching-version install attaches and is then served on the next
  // exact hit.
  cache.InstallPlacement("sig", ScanPlan(), 0, /*catalog_version=*/1, 42, {});
  PlanCache::LookupResult placed = cache.Lookup("sig", 0, 1, 42, {});
  ASSERT_EQ(PlanCacheOutcome::kHit, placed.outcome);
  EXPECT_NE(nullptr, placed.placed_plan);
  EXPECT_EQ(1, cache.stats().placement_installs);
  EXPECT_EQ(1, cache.stats().placement_hits);
}

}  // namespace
}  // namespace popdb
