#include "tests/test_util.h"

#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "exec/agg.h"
#include "exec/expr.h"
#include "exec/layout.h"
#include "opt/optimizer.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace popdb::testing {

void BuildToyCatalog(Catalog* catalog, int64_t emp_rows, int64_t sale_rows) {
  Rng rng(7);
  {
    Table dept("dept", Schema({{"d_id", ValueType::kInt},
                               {"d_name", ValueType::kString},
                               {"d_region", ValueType::kInt}}));
    const char* names[8] = {"eng",   "sales", "hr",    "legal",
                            "mktg",  "ops",   "it",    "finance"};
    for (int64_t d = 0; d < 8; ++d) {
      dept.AppendRow({Value::Int(d), Value::String(names[d]),
                      Value::Int(d % 3)});
    }
    POPDB_DCHECK(catalog->AddTable(std::move(dept)).ok());
  }
  {
    Table emp("emp", Schema({{"e_id", ValueType::kInt},
                             {"e_dept", ValueType::kInt},
                             {"e_age", ValueType::kInt},
                             {"e_name", ValueType::kString}}));
    for (int64_t e = 0; e < emp_rows; ++e) {
      emp.AppendRow({Value::Int(e), Value::Int(rng.UniformInt(0, 7)),
                     Value::Int(rng.UniformInt(21, 65)),
                     Value::String("emp" + std::to_string(e))});
    }
    POPDB_DCHECK(catalog->AddTable(std::move(emp)).ok());
  }
  {
    Table sale("sale", Schema({{"s_emp", ValueType::kInt},
                               {"s_amount", ValueType::kDouble},
                               {"s_year", ValueType::kInt}}));
    for (int64_t s = 0; s < sale_rows; ++s) {
      sale.AppendRow({Value::Int(rng.UniformInt(0, emp_rows - 1)),
                      Value::Double(rng.UniformDouble() * 1000),
                      Value::Int(2015 + rng.UniformInt(0, 9))});
    }
    POPDB_DCHECK(catalog->AddTable(std::move(sale)).ok());
  }
  catalog->AnalyzeAll();
  POPDB_DCHECK(catalog->CreateIndex("dept", "d_id").ok());
  POPDB_DCHECK(catalog->CreateIndex("emp", "e_id").ok());
  POPDB_DCHECK(catalog->CreateIndex("emp", "e_dept").ok());
  POPDB_DCHECK(catalog->CreateIndex("sale", "s_emp").ok());
}

namespace {

struct RefContext {
  const Catalog* catalog;
  const QuerySpec* query;
  std::vector<int> widths;
  RowLayout layout;
  std::vector<std::vector<ResolvedPredicate>> local_by_table;
  std::vector<Row> joined;
};

/// Backtracking join in table-id order: binds one table per level, applying
/// local predicates immediately and join predicates as soon as both sides
/// are bound.
void Enumerate(RefContext* ctx, int table_id, Row* partial) {
  const int n = ctx->query->num_tables();
  if (table_id == n) {
    ctx->joined.push_back(*partial);
    return;
  }
  const Table* table = ctx->catalog->GetTable(ctx->query->table_name(table_id));
  const int base = ctx->layout.Resolve(ColRef{table_id, 0});
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    const Row& row = table->row(r);
    bool pass = true;
    for (const ResolvedPredicate& p :
         ctx->local_by_table[static_cast<size_t>(table_id)]) {
      if (!EvalPredicate(p, row)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (int c = 0; c < static_cast<int>(row.size()); ++c) {
      (*partial)[static_cast<size_t>(base + c)] = row[static_cast<size_t>(c)];
    }
    for (const JoinPredicate& jp : ctx->query->join_preds()) {
      const int lt = jp.left.table_id;
      const int rt = jp.right.table_id;
      if (lt > table_id || rt > table_id) continue;
      if (lt != table_id && rt != table_id) continue;  // Checked earlier.
      const Value& lv =
          (*partial)[static_cast<size_t>(ctx->layout.Resolve(jp.left))];
      const Value& rv =
          (*partial)[static_cast<size_t>(ctx->layout.Resolve(jp.right))];
      if (lv != rv) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    Enumerate(ctx, table_id + 1, partial);
  }
}

}  // namespace

std::vector<Row> ReferenceExecute(const Catalog& catalog,
                                  const QuerySpec& query) {
  RefContext ctx;
  ctx.catalog = &catalog;
  ctx.query = &query;
  ctx.widths = QueryTableWidths(catalog, query);
  ctx.layout = RowLayout(query.AllTables(), ctx.widths);
  ctx.local_by_table.resize(static_cast<size_t>(query.num_tables()));
  for (const Predicate& p : query.local_preds()) {
    ctx.local_by_table[static_cast<size_t>(p.col.table_id)].push_back(
        ResolvePredicate(p, p.col.column, query.params()));
  }
  Row partial(static_cast<size_t>(ctx.layout.width()));
  Enumerate(&ctx, 0, &partial);

  auto finalize = [&query](std::vector<Row> rows) {
    // HAVING over the output row.
    if (!query.having().empty()) {
      std::vector<Row> kept;
      for (Row& row : rows) {
        bool pass = true;
        for (const QuerySpec::HavingPred& h : query.having()) {
          ResolvedPredicate rp;
          rp.pos = h.output_pos;
          rp.kind = h.kind;
          rp.operand = h.operand;
          rp.operand2 = h.operand2;
          if (!EvalPredicate(rp, row)) {
            pass = false;
            break;
          }
        }
        if (pass) kept.push_back(std::move(row));
      }
      rows = std::move(kept);
    }
    if (query.distinct() && !query.has_aggregation()) {
      std::unordered_map<Row, bool, RowHash> seen;
      std::vector<Row> unique;
      for (Row& row : rows) {
        if (seen.emplace(row, true).second) unique.push_back(std::move(row));
      }
      rows = std::move(unique);
    }
    // LIMIT cannot be applied deterministically here without a total
    // order; callers using LIMIT compare sizes instead.
    return rows;
  };

  if (!query.has_aggregation()) {
    if (query.projections().empty()) return finalize(ctx.joined);
    std::vector<Row> projected;
    projected.reserve(ctx.joined.size());
    for (const Row& row : ctx.joined) {
      Row out;
      for (const ColRef& c : query.projections()) {
        out.push_back(row[static_cast<size_t>(ctx.layout.Resolve(c))]);
      }
      projected.push_back(std::move(out));
    }
    return finalize(projected);
  }

  // Aggregation (mirrors HashAggOp semantics).
  struct AggState {
    int64_t count = 0;
    double sum = 0;
    Value min, max;
  };
  std::unordered_map<Row, std::vector<AggState>, RowHash> groups;
  for (const Row& row : ctx.joined) {
    Row key;
    for (const ColRef& c : query.group_by()) {
      key.push_back(row[static_cast<size_t>(ctx.layout.Resolve(c))]);
    }
    auto& states = groups[key];
    if (states.empty()) states.resize(query.aggs().size());
    for (size_t a = 0; a < query.aggs().size(); ++a) {
      AggState& st = states[a];
      ++st.count;
      if (query.aggs()[a].func == AggFunc::kCount) continue;
      const Value& v =
          row[static_cast<size_t>(ctx.layout.Resolve(query.aggs()[a].arg))];
      if (v.is_null()) continue;
      st.sum += v.AsNumeric();
      if (st.min.is_null() || v < st.min) st.min = v;
      if (st.max.is_null() || v > st.max) st.max = v;
    }
  }
  std::vector<Row> out;
  for (auto& [key, states] : groups) {
    Row row = key;
    for (size_t a = 0; a < query.aggs().size(); ++a) {
      switch (query.aggs()[a].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(states[a].count));
          break;
        case AggFunc::kSum:
          row.push_back(Value::Double(states[a].sum));
          break;
        case AggFunc::kAvg:
          row.push_back(Value::Double(
              states[a].count == 0
                  ? 0.0
                  : states[a].sum / static_cast<double>(states[a].count)));
          break;
        case AggFunc::kMin:
          row.push_back(states[a].min);
          break;
        case AggFunc::kMax:
          row.push_back(states[a].max);
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return finalize(out);
}

std::vector<std::string> Canonicalize(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(RowToString(row));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace popdb::testing
