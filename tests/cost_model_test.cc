#include <gtest/gtest.h>

#include <memory>

#include "opt/cost_model.h"
#include "opt/plan.h"

namespace popdb {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : cm_(params_) {}
  CostParams params_;
  CostModel cm_;
};

TEST_F(CostModelTest, ScanIsLinear) {
  EXPECT_DOUBLE_EQ(2.0 * cm_.ScanCost(500), cm_.ScanCost(1000));
  EXPECT_DOUBLE_EQ(0.0, cm_.ScanCost(0));
  EXPECT_DOUBLE_EQ(0.0, cm_.ScanCost(-5));  // Clamped.
}

TEST_F(CostModelTest, SortInMemoryVsSpillCliff) {
  const double below = cm_.SortCost(params_.mem_rows);
  const double above = cm_.SortCost(params_.mem_rows + 1);
  // Crossing the memory boundary adds a full merge pass: a discontinuity.
  EXPECT_GT(above - below, 0.5 * params_.mem_rows);
}

TEST_F(CostModelTest, SortCostMonotone) {
  double prev = 0;
  for (double n = 1; n < 4e6; n *= 1.7) {
    const double c = cm_.SortCost(n);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST_F(CostModelTest, HsjnStagesStaircase) {
  EXPECT_EQ(0, cm_.HsjnStages(params_.mem_rows));
  EXPECT_EQ(1, cm_.HsjnStages(params_.mem_rows + 1));
  EXPECT_EQ(1, cm_.HsjnStages(params_.mem_rows * params_.hash_fanout));
  EXPECT_EQ(2, cm_.HsjnStages(params_.mem_rows * params_.hash_fanout + 1));
}

TEST_F(CostModelTest, HsjnCostCliffAtMemoryBoundary) {
  const double probe = 50000;
  const double below = cm_.HsjnCost(probe, params_.mem_rows);
  const double above = cm_.HsjnCost(probe, params_.mem_rows + 1);
  // The extra stage repartitions both inputs.
  EXPECT_GT(above - below, 0.9 * (probe + params_.mem_rows));
}

TEST_F(CostModelTest, NljnProbeCosts) {
  // Index probe cost grows with matches; scan probe with inner size.
  EXPECT_LT(cm_.NljnProbeCost(true, 100000, 2),
            cm_.NljnProbeCost(false, 100000, 2));
  EXPECT_LT(cm_.NljnProbeCost(true, 1000, 1),
            cm_.NljnProbeCost(true, 1000, 50));
}

TEST_F(CostModelTest, NljnCostLinearInOuter) {
  const double per_probe = cm_.NljnProbeCost(true, 1000, 3);
  EXPECT_NEAR(2.0 * cm_.NljnCost(100, per_probe),
              cm_.NljnCost(200, per_probe), 1e-9);
}

TEST_F(CostModelTest, MgjnCountsBothInputsAndOutput) {
  EXPECT_DOUBLE_EQ(params_.mgjn_per_row * 600, cm_.MgjnCost(100, 200, 300));
}

TEST_F(CostModelTest, CheckCostTiny) {
  // Per the paper, checking is ~2-3% overhead at most; our parameterization
  // keeps it well below the per-row processing cost.
  EXPECT_LT(cm_.CheckCost(1000), 0.05 * cm_.ScanCost(1000));
}

// ----------------------------------------------- RecostCandidateWithEdgeCard.

/// Builds a leaf with given set/card/cost.
std::shared_ptr<PlanNode> Leaf(TableSet set, double card, double cost) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanOpKind::kTableScan;
  node->set = set;
  node->card = card;
  node->op_cost = cost;
  node->cost = cost;
  return node;
}

TEST_F(CostModelTest, RecostHsjnMatchesOriginalAtEstimate) {
  auto probe = Leaf(TableBit(0), 5000, 5000);
  auto build = Leaf(TableBit(1), 800, 1000);
  PlanNode join;
  join.kind = PlanOpKind::kHsjn;
  join.set = TableBit(0) | TableBit(1);
  join.children = {probe, build};
  join.child_validity.resize(2);
  join.card = 4000;
  join.op_cost = cm_.HsjnCost(5000, 800);
  join.cost = 5000 + 1000 + join.op_cost;

  EXPECT_NEAR(join.cost, RecostCandidateWithEdgeCard(join, 0, 5000, cm_),
              1e-9);
  EXPECT_NEAR(join.cost, RecostCandidateWithEdgeCard(join, 1, 800, cm_),
              1e-9);
}

TEST_F(CostModelTest, RecostHsjnRespondsToBuildGrowth) {
  auto probe = Leaf(TableBit(0), 5000, 5000);
  auto build = Leaf(TableBit(1), 800, 1000);
  PlanNode join;
  join.kind = PlanOpKind::kHsjn;
  join.set = TableBit(0) | TableBit(1);
  join.children = {probe, build};
  join.child_validity.resize(2);
  join.card = 4000;
  join.op_cost = cm_.HsjnCost(5000, 800);
  join.cost = 6000 + join.op_cost;

  const double grown =
      RecostCandidateWithEdgeCard(join, 1, params_.mem_rows + 1, cm_);
  // Crossing the spill boundary makes the join sharply more expensive.
  EXPECT_GT(grown, join.cost + params_.mem_rows);
}

TEST_F(CostModelTest, RecostMgjnRecostsSortWrappers) {
  auto left = Leaf(TableBit(0), 1000, 2000);
  auto right = Leaf(TableBit(1), 500, 700);
  auto lsort = std::make_shared<PlanNode>();
  lsort->kind = PlanOpKind::kSort;
  lsort->set = TableBit(0);
  lsort->card = 1000;
  lsort->op_cost = cm_.SortCost(1000);
  lsort->cost = left->cost + lsort->op_cost;
  lsort->children = {left};
  lsort->child_validity.resize(1);
  auto rsort = std::make_shared<PlanNode>();
  rsort->kind = PlanOpKind::kSort;
  rsort->set = TableBit(1);
  rsort->card = 500;
  rsort->op_cost = cm_.SortCost(500);
  rsort->cost = right->cost + rsort->op_cost;
  rsort->children = {right};
  rsort->child_validity.resize(1);

  PlanNode join;
  join.kind = PlanOpKind::kMgjn;
  join.set = TableBit(0) | TableBit(1);
  join.children = {lsort, rsort};
  join.child_validity.resize(2);
  join.card = 1500;
  join.op_cost = cm_.MgjnCost(1000, 500, 1500);
  join.cost = lsort->cost + rsort->cost + join.op_cost;

  // At the estimates the recost reproduces the plan cost.
  EXPECT_NEAR(join.cost, RecostCandidateWithEdgeCard(join, 0, 1000, cm_),
              1e-6);
  // Growing the left edge re-costs the sort (superlinear) plus the merge.
  const double at2x = RecostCandidateWithEdgeCard(join, 0, 2000, cm_);
  const double manual = left->cost + cm_.SortCost(2000) + rsort->cost +
                        cm_.MgjnCost(2000, 500, 3000);
  EXPECT_NEAR(manual, at2x, 1e-6);
}

TEST_F(CostModelTest, RecostNljnScalesIndexMatches) {
  auto outer = Leaf(TableBit(0), 100, 1000);
  auto inner = Leaf(TableBit(1), 2000, 0.0);  // NLJN inner: probe-costed.
  PlanNode join;
  join.kind = PlanOpKind::kNljn;
  join.set = TableBit(0) | TableBit(1);
  join.children = {outer, inner};
  join.child_validity.resize(2);
  join.card = 300;
  join.use_index = true;
  join.per_probe_cost = cm_.NljnProbeCost(true, 2000, 3);
  join.op_cost = cm_.NljnCost(100, join.per_probe_cost);
  join.cost = 1000 + join.op_cost;

  EXPECT_NEAR(join.cost, RecostCandidateWithEdgeCard(join, 0, 100, cm_),
              1e-9);
  // Outer doubles: NLJN op cost doubles.
  EXPECT_NEAR(1000 + 2 * join.op_cost,
              RecostCandidateWithEdgeCard(join, 0, 200, cm_), 1e-9);
  // Inner edge doubles: matches per probe double too.
  const double inner2x = RecostCandidateWithEdgeCard(join, 1, 4000, cm_);
  const double expect = 1000 + cm_.NljnCost(
      100, 1.0 + (join.per_probe_cost - 1.0) * 2.0);
  EXPECT_NEAR(expect, inner2x, 1e-9);
}

}  // namespace
}  // namespace popdb
