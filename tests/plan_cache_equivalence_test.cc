// Differential test for the plan cache: the TPC-H paper-query subset
// (plain and parameter-marker variants) and the DMV workload are replayed
// for several passes against three worlds — no cache, cache at dop 1, and
// cache at dop 4 — each with its own persistent cross-query feedback
// store. Every run must produce identical sorted result sets, identical
// per-attempt plan texts, identical CHECK decisions and re-optimization
// counts, and identical learned feedback, whether the first optimization
// came from the cache or from DP enumeration. By the last pass the cached
// worlds must actually be serving hits (the test is vacuous otherwise).
//
// Set POPDB_EQUIV_LIGHT=1 to run a reduced corpus (used by the TSan CI
// stage, where the full sweep is too slow).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"
#include "runtime/morsel_dispatcher.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;

bool LightMode() {
  const char* v = std::getenv("POPDB_EQUIV_LIGHT");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Everything about one execution that must be cache-invariant.
struct Outcome {
  bool ok = false;
  std::string status;
  std::vector<std::string> rows;  // Canonicalized (sorted) result set.
  int reopts = 0;
  size_t attempts = 0;
  std::vector<std::string> plan_texts;  // One per attempt.
  /// (edge_set, flavor, site, count, fired) per checkpoint evaluation.
  std::vector<std::tuple<TableSet, int, int, int64_t, bool>> check_events;
  /// Learned cardinalities by subplan signature: (exact, lower_bound).
  std::map<std::string, std::pair<double, double>> learned;
};

/// One executor + feedback store, optionally with a plan cache and morsel
/// parallelism, persistent across the whole replay.
struct World {
  World(const Catalog& catalog, bool with_cache, TaskRunner* runner,
        int dop) {
    exec = std::make_unique<ProgressiveExecutor>(catalog, OptimizerConfig{},
                                                 PopConfig{});
    exec->set_cross_query_store(&store);
    if (with_cache) {
      cache = std::make_unique<PlanCache>();
      exec->set_plan_cache(cache.get());
    }
    if (runner != nullptr) {
      ParallelPolicy policy;
      policy.dop = dop;
      policy.morsel_rows = 128;
      policy.min_parallel_rows = 1;
      exec->set_parallel(runner, policy);
    }
  }

  QueryFeedbackStore store;
  std::unique_ptr<PlanCache> cache;
  std::unique_ptr<ProgressiveExecutor> exec;
};

Outcome RunOnce(World* world, const QuerySpec& query) {
  ExecutionStats stats;
  Result<std::vector<Row>> rows = world->exec->Execute(query, &stats);

  Outcome o;
  o.ok = rows.ok();
  o.status = rows.ok() ? "" : rows.status().ToString();
  if (rows.ok()) o.rows = Canonicalize(rows.value());
  o.reopts = stats.reopts;
  o.attempts = stats.attempts.size();
  for (const AttemptInfo& a : stats.attempts) {
    o.plan_texts.push_back(a.plan_text);
  }
  for (const CheckEvent& ev : stats.check_events) {
    o.check_events.emplace_back(ev.edge_set, static_cast<int>(ev.flavor),
                                static_cast<int>(ev.site), ev.count,
                                ev.fired);
  }
  for (const auto& [sig, fb] : world->store.Dump()) {
    o.learned.emplace(sig, std::make_pair(fb.exact, fb.lower_bound));
  }
  return o;
}

void ExpectSameOutcome(const Outcome& uncached, const Outcome& cached,
                       const std::string& label) {
  ASSERT_EQ(uncached.ok, cached.ok)
      << label << ": " << uncached.status << " vs " << cached.status;
  if (!uncached.ok) return;
  EXPECT_EQ(uncached.rows, cached.rows) << label << ": result rows differ";
  EXPECT_EQ(uncached.reopts, cached.reopts)
      << label << ": re-optimization count differs";
  EXPECT_EQ(uncached.attempts, cached.attempts)
      << label << ": attempt count differs";
  EXPECT_EQ(uncached.plan_texts, cached.plan_texts)
      << label << ": chosen plans differ";
  EXPECT_EQ(uncached.check_events, cached.check_events)
      << label << ": CHECK decisions differ";
  EXPECT_EQ(uncached.learned, cached.learned)
      << label << ": harvested feedback differs";
}

/// Replays `corpus` for several passes through all three worlds, comparing
/// every run against the uncached baseline.
void SweepCorpus(const Catalog& catalog,
                 const std::vector<QuerySpec>& corpus, const char* tag) {
  const int passes = LightMode() ? 3 : 4;
  MorselDispatcher pool(/*helper_threads=*/3);
  World base(catalog, /*with_cache=*/false, nullptr, 1);
  World cached(catalog, /*with_cache=*/true, nullptr, 1);
  World cached_dop4(catalog, /*with_cache=*/true, &pool, 4);

  for (int pass = 0; pass < passes; ++pass) {
    for (const QuerySpec& q : corpus) {
      SCOPED_TRACE(std::string(tag) + "/" + q.name() + " pass=" +
                   std::to_string(pass));
      const Outcome uncached = RunOnce(&base, q);
      ExpectSameOutcome(uncached, RunOnce(&cached, q),
                        std::string(tag) + "/" + q.name() + "/dop1");
      ExpectSameOutcome(uncached, RunOnce(&cached_dop4, q),
                        std::string(tag) + "/" + q.name() + "/dop4");
    }
  }

  // The worlds converge: after the warm-up passes resubmissions must be
  // served from the cache (the equivalence above would hold vacuously if
  // the cache never hit). Light mode runs fewer passes than some DMV
  // queries need for the shared store to stop moving, so it only requires
  // that hits happened at all.
  const PlanCache::Stats serial = cached.cache->stats();
  const int64_t min_hits =
      LightMode() ? 1 : static_cast<int64_t>(corpus.size());
  EXPECT_GE(serial.hits, min_hits)
      << tag << ": serial cached world never reached the steady state";
  EXPECT_GT(cached_dop4.cache->stats().hits, 0)
      << tag << ": parallel cached world never hit";
  EXPECT_EQ(serial.lookups,
            serial.hits + serial.validity_hits + serial.misses());
}

TEST(PlanCacheEquivalenceTest, TpchPaperQueries) {
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  std::vector<QuerySpec> corpus;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum));
    if (LightMode()) break;
  }
  // Parameter-marker variants: estimation errors make checks fire, so the
  // cache has to stay equivalent across re-optimizing executions too.
  tpch::QueryOptions marked;
  marked.param_markers = true;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum, marked));
    if (LightMode()) break;
  }
  SweepCorpus(catalog, corpus, "tpch");
}

TEST(PlanCacheEquivalenceTest, DmvWorkload) {
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = 0.2;
  ASSERT_TRUE(dmv::BuildCatalog(gen, &catalog).ok());

  dmv::WorkloadConfig wl;
  if (LightMode()) wl.num_queries = 4;
  SweepCorpus(catalog, dmv::MakeWorkload(wl), "dmv");
}

TEST(PlanCacheEquivalenceTest, MarkerRebindingSharesEntriesAndStaysCorrect) {
  // Prepared-statement pattern: the same query shape resubmitted with
  // different parameter bindings must share one cache entry, and every
  // binding's result must match its own uncached execution.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  World base(catalog, /*with_cache=*/false, nullptr, 1);
  World cached(catalog, /*with_cache=*/true, nullptr, 1);

  const std::vector<int> sels =
      LightMode() ? std::vector<int>{50, 50, 50}
                  : std::vector<int>{1, 10, 50, 90, 50, 10, 1};
  int round = 0;
  for (int sel : sels) {
    const QuerySpec q = tpch::MakeQ10Selectivity(sel, /*use_marker=*/true);
    SCOPED_TRACE("q10 sel=" + std::to_string(sel) + " round=" +
                 std::to_string(round++));
    ExpectSameOutcome(RunOnce(&base, q), RunOnce(&cached, q), "q10");
  }
  // All bindings share one signature, so at most a handful of installs.
  EXPECT_EQ(1, cached.cache->size());
}

}  // namespace
}  // namespace popdb
