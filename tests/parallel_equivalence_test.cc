// Differential test: the full TPC-H paper-query subset and the DMV
// workload executed serially and morsel-parallel at dop 1/2/4/8 (with
// randomized morsel sizes) must produce identical sorted result sets,
// identical CHECK-fire decisions and re-optimization attempt counts, and
// identical harvested feedback cardinalities. Work counters and wall
// times are deliberately NOT compared (they are mode-dependent only in
// where the work happens, which the morsel_test covers at unit level).
//
// The serial baseline runs on the *row* engine (batch_rows = 1) while the
// parallel legs alternate row and vectorized execution, so this suite is
// simultaneously the morsel-parallel and the row-vs-batch equivalence
// oracle (batch_differential_test covers serial batch-size sweeps).
//
// Set POPDB_EQUIV_LIGHT=1 to run a reduced corpus (used by the TSan CI
// stage, where the full sweep is too slow).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"
#include "runtime/morsel_dispatcher.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;

bool LightMode() {
  const char* v = std::getenv("POPDB_EQUIV_LIGHT");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Everything about one execution that must be mode-invariant.
struct Outcome {
  bool ok = false;
  std::string status;
  std::vector<std::string> rows;  // Canonicalized (sorted) result set.
  int reopts = 0;
  size_t attempts = 0;
  /// (edge_set, flavor, site, count, fired) per checkpoint evaluation.
  std::vector<std::tuple<TableSet, int, int, int64_t, bool>> check_events;
  /// Learned cardinalities by subplan signature: (exact, lower_bound).
  std::map<std::string, std::pair<double, double>> learned;
};

Outcome RunOnce(const Catalog& catalog, const QuerySpec& query,
                TaskRunner* runner, ParallelPolicy policy) {
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  QueryFeedbackStore store;
  exec.set_cross_query_store(&store);
  // Always install the policy: a null runner keeps execution serial but
  // policy.batch_rows still selects the row vs vectorized engine.
  exec.set_parallel(runner, policy);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(query, &stats);

  Outcome o;
  o.ok = rows.ok();
  o.status = rows.ok() ? "" : rows.status().ToString();
  if (rows.ok()) o.rows = Canonicalize(rows.value());
  o.reopts = stats.reopts;
  o.attempts = stats.attempts.size();
  for (const CheckEvent& ev : stats.check_events) {
    o.check_events.emplace_back(ev.edge_set, static_cast<int>(ev.flavor),
                                static_cast<int>(ev.site), ev.count,
                                ev.fired);
  }
  for (const auto& [sig, fb] : store.Dump()) {
    o.learned.emplace(sig, std::make_pair(fb.exact, fb.lower_bound));
  }
  return o;
}

void ExpectSameOutcome(const Outcome& serial, const Outcome& parallel,
                       const std::string& label) {
  ASSERT_EQ(serial.ok, parallel.ok)
      << label << ": " << serial.status << " vs " << parallel.status;
  if (!serial.ok) return;
  EXPECT_EQ(serial.rows, parallel.rows) << label << ": result rows differ";
  EXPECT_EQ(serial.reopts, parallel.reopts)
      << label << ": re-optimization count differs";
  EXPECT_EQ(serial.attempts, parallel.attempts)
      << label << ": attempt count differs";
  EXPECT_EQ(serial.check_events, parallel.check_events)
      << label << ": CHECK decisions differ";
  EXPECT_EQ(serial.learned, parallel.learned)
      << label << ": harvested feedback differs";
}

/// Row-engine serial execution: the ground truth for every sweep.
Outcome RunRowSerial(const Catalog& catalog, const QuerySpec& q) {
  ParallelPolicy row;
  row.batch_rows = 1;
  return RunOnce(catalog, q, nullptr, row);
}

/// Runs every query serially on the row engine and at each dop with a
/// per-(query, dop) randomized morsel size from a deterministic RNG,
/// alternating row-mode and vectorized parallel legs.
void SweepCorpus(const Catalog& catalog,
                 const std::vector<QuerySpec>& corpus, const char* tag) {
  const std::vector<int> dops =
      LightMode() ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8};
  MorselDispatcher pool(/*helper_threads=*/3);
  Rng rng(0x9e3779b9);
  for (const QuerySpec& q : corpus) {
    const Outcome serial = RunRowSerial(catalog, q);
    for (int dop : dops) {
      ParallelPolicy policy;
      policy.dop = dop;
      policy.morsel_rows = rng.UniformInt(16, 400);
      policy.min_parallel_rows = 1;
      // Row-mode leg, then a vectorized leg with a randomized execution
      // batch size so CHECK thresholds land mid-batch.
      for (const int64_t batch : {int64_t{1}, rng.UniformInt(2, 2048)}) {
        policy.batch_rows = batch;
        SCOPED_TRACE(std::string(tag) + "/" + q.name() + " dop=" +
                     std::to_string(dop) + " morsel_rows=" +
                     std::to_string(policy.morsel_rows) + " batch_rows=" +
                     std::to_string(policy.batch_rows));
        const Outcome parallel = RunOnce(catalog, q, &pool, policy);
        ExpectSameOutcome(serial, parallel,
                          std::string(tag) + "/" + q.name());
      }
    }
  }
}

TEST(ParallelEquivalenceTest, TpchPaperQueries) {
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  std::vector<QuerySpec> corpus;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum));
    if (LightMode()) break;
  }
  // Parameter-marker variants inject estimation errors so checks actually
  // fire and re-optimization paths run under parallelism.
  tpch::QueryOptions marked;
  marked.param_markers = true;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum, marked));
    if (LightMode()) break;
  }
  SweepCorpus(catalog, corpus, "tpch");
}

TEST(ParallelEquivalenceTest, DmvWorkload) {
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = 0.2;
  ASSERT_TRUE(dmv::BuildCatalog(gen, &catalog).ok());

  dmv::WorkloadConfig wl;
  if (LightMode()) wl.num_queries = 4;
  SweepCorpus(catalog, dmv::MakeWorkload(wl), "dmv");
}

TEST(ParallelEquivalenceTest, Q10SelectivityRegressionPinsReoptCounts) {
  // The Figure 11 query with a misestimated marker predicate is the
  // canonical "CHECK fires, plan changes" scenario; pin that the number
  // of attempts is identical under parallel execution for every
  // selectivity point.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  MorselDispatcher pool(/*helper_threads=*/3);
  const std::vector<int> sels =
      LightMode() ? std::vector<int>{50} : std::vector<int>{1, 10, 50, 90};
  for (int sel : sels) {
    const QuerySpec q = tpch::MakeQ10Selectivity(sel, /*use_marker=*/true);
    const Outcome serial = RunRowSerial(catalog, q);
    ParallelPolicy policy;
    policy.dop = 4;
    policy.morsel_rows = 64;
    policy.min_parallel_rows = 1;
    // The parallel leg keeps the default (vectorized) batch size, so this
    // regression pins re-opt counts across row-serial vs batch-parallel.
    SCOPED_TRACE("q10 sel=" + std::to_string(sel));
    const Outcome parallel = RunOnce(catalog, q, &pool, policy);
    ExpectSameOutcome(serial, parallel, "q10");
  }
}

}  // namespace
}  // namespace popdb
