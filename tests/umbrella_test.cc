// Verifies the umbrella header is self-contained and that the documented
// one-include workflow (CSV -> SQL -> progressive execution) works.

#include "popdb.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace popdb {
namespace {

TEST(UmbrellaTest, CsvSqlPopPipeline) {
  const char* path = "/tmp/popdb_umbrella_test.csv";
  {
    std::ofstream f(path);
    f << "k,grp,v\n";
    for (int i = 0; i < 300; ++i) {
      f << i << ',' << i % 5 << ',' << i % 7 << "\n";
    }
  }
  Catalog catalog;
  ASSERT_TRUE(LoadCsvFile("t", path, &catalog).ok());
  std::remove(path);

  Result<sql::BoundStatement> stmt = sql::ParseSql(
      catalog, "SELECT grp, COUNT(*) FROM t WHERE v < 5 GROUP BY grp "
               "ORDER BY 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(stmt.value().query, &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(5u, rows.value().size());
  int64_t total = 0;
  for (const Row& r : rows.value()) total += r[1].AsInt();
  // v < 5 keeps 5 of every 7 values: ceil arithmetic over 300 rows.
  EXPECT_EQ(215, total);

  // Cross-query learning is reachable through the umbrella too.
  QueryFeedbackStore store;
  exec.set_cross_query_store(&store);
  ASSERT_TRUE(exec.Execute(stmt.value().query).ok());
  EXPECT_GT(store.size(), 0);
}

}  // namespace
}  // namespace popdb
