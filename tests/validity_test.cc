#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/pop.h"
#include "core/validity.h"
#include "opt/optimizer.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Builds an NLJN winner and an HSJN loser over the same children so the
/// crossover can be computed analytically:
///   NLJN(c)  = outer_sunk + c * (nljn_outer_per_row + per_probe)
///   HSJN(c)  = outer_sunk + inner_scan + hash_build*B + probe_per_row*c ...
struct CandidatePair {
  std::shared_ptr<PlanNode> outer;
  std::shared_ptr<PlanNode> inner_free;   // NLJN inner (cost 0).
  std::shared_ptr<PlanNode> inner_paid;   // Standalone scan for HSJN.
  std::shared_ptr<PlanNode> nljn;
  std::shared_ptr<PlanNode> hsjn;
};

CandidatePair MakePair(const CostModel& cm, double outer_card,
                       double inner_rows, double matches_per_probe) {
  CandidatePair p;
  p.outer = std::make_shared<PlanNode>();
  p.outer->kind = PlanOpKind::kTableScan;
  p.outer->set = TableBit(0);
  p.outer->card = outer_card;
  p.outer->cost = 10000;

  p.inner_free = std::make_shared<PlanNode>();
  p.inner_free->kind = PlanOpKind::kTableScan;
  p.inner_free->set = TableBit(1);
  p.inner_free->card = inner_rows;
  p.inner_free->cost = 0;

  p.inner_paid = std::make_shared<PlanNode>(*p.inner_free);
  p.inner_paid->op_cost = cm.ScanCost(inner_rows);
  p.inner_paid->cost = p.inner_paid->op_cost;

  p.nljn = std::make_shared<PlanNode>();
  p.nljn->kind = PlanOpKind::kNljn;
  p.nljn->set = TableBit(0) | TableBit(1);
  p.nljn->children = {p.outer, p.inner_free};
  p.nljn->child_validity.resize(2);
  p.nljn->card = outer_card * matches_per_probe;
  p.nljn->use_index = true;
  p.nljn->per_probe_cost = cm.NljnProbeCost(true, inner_rows,
                                            matches_per_probe);
  p.nljn->op_cost = cm.NljnCost(outer_card, p.nljn->per_probe_cost);
  p.nljn->cost = p.outer->cost + p.nljn->op_cost;

  p.hsjn = std::make_shared<PlanNode>();
  p.hsjn->kind = PlanOpKind::kHsjn;
  p.hsjn->set = TableBit(0) | TableBit(1);
  p.hsjn->children = {p.outer, p.inner_paid};
  p.hsjn->child_validity.resize(2);
  p.hsjn->card = p.nljn->card;
  p.hsjn->op_cost = cm.HsjnCost(outer_card, inner_rows);
  p.hsjn->cost = p.outer->cost + p.inner_paid->cost + p.hsjn->op_cost;
  return p;
}

class ValidityTest : public ::testing::Test {
 protected:
  CostParams params_;
  CostModel cm_{params_};
  ValidityConfig vc_;
};

TEST_F(ValidityTest, UpperCrossoverCloseToAnalyticRoot) {
  // NLJN wins at the estimate; find where HSJN takes over.
  CandidatePair p = MakePair(cm_, /*outer_card=*/100, /*inner_rows=*/20000,
                             /*matches_per_probe=*/2);
  ASSERT_LT(p.nljn->cost, p.hsjn->cost);
  ValidityRangeAnalyzer analyzer(cm_, vc_);
  const double ub =
      analyzer.FindUpperCrossover(*p.nljn, 0, *p.hsjn, 0, 100);
  ASSERT_LT(ub, kInf);
  // Analytic root: nljn_outer*c + c*per_probe = scan + build*B + probe*c.
  const double per_row_nljn =
      params_.nljn_outer_per_row + p.nljn->per_probe_cost;
  const double analytic = (cm_.ScanCost(20000) +
                           params_.hash_build_per_row * 20000) /
                          (per_row_nljn - params_.hash_probe_per_row);
  EXPECT_GE(ub, analytic * 0.99);  // Conservative: not before the root.
  EXPECT_LE(ub, analytic * 2.0);   // But reasonably tight.
}

TEST_F(ValidityTest, VerifiedInversionOnly) {
  // Whatever bound is returned, the loser must truly be no more expensive
  // there (no false suboptimality, the paper's conservativeness claim).
  for (double outer : {10.0, 100.0, 3000.0}) {
    for (double inner : {500.0, 20000.0, 300000.0}) {
      CandidatePair p = MakePair(cm_, outer, inner, 3);
      if (p.nljn->cost >= p.hsjn->cost) continue;
      ValidityRangeAnalyzer analyzer(cm_, vc_);
      const double ub =
          analyzer.FindUpperCrossover(*p.nljn, 0, *p.hsjn, 0, outer);
      if (ub < kInf) {
        const double winner_cost =
            RecostCandidateWithEdgeCard(*p.nljn, 0, ub, cm_);
        const double loser_cost =
            RecostCandidateWithEdgeCard(*p.hsjn, 0, ub, cm_);
        EXPECT_LE(loser_cost, winner_cost + 1e-6)
            << "outer=" << outer << " inner=" << inner;
      }
    }
  }
}

TEST_F(ValidityTest, NoUpperBoundWhenLoserAlreadyCheaper) {
  CandidatePair p = MakePair(cm_, 100, 20000, 2);
  ValidityRangeAnalyzer analyzer(cm_, vc_);
  // Swap roles: "winner" is actually more expensive; conservative result.
  EXPECT_EQ(kInf, analyzer.FindUpperCrossover(*p.hsjn, 0, *p.nljn, 0, 1e7));
  EXPECT_EQ(0.0, analyzer.FindLowerCrossover(*p.hsjn, 0, *p.nljn, 0, 1e7));
}

TEST_F(ValidityTest, LowerCrossoverFindsNljnRegion) {
  // At a large outer estimate HSJN wins; shrinking the outer makes NLJN
  // win below some cardinality — the lower validity bound. The damped
  // Figure-5 iteration needs a few more steps to travel the 4x distance
  // to this root; with the default cap of 3 it conservatively returns no
  // bound (which is safe), so allow a larger budget here.
  CandidatePair p = MakePair(cm_, 50000, 20000, 2);
  ASSERT_LT(p.hsjn->cost, p.nljn->cost);
  ValidityConfig vc = vc_;
  vc.max_iterations = 12;
  ValidityRangeAnalyzer analyzer(cm_, vc);
  const double lb =
      analyzer.FindLowerCrossover(*p.hsjn, 0, *p.nljn, 0, 50000);
  ASSERT_GT(lb, 0.0);
  const double winner_cost = RecostCandidateWithEdgeCard(*p.hsjn, 0, lb, cm_);
  const double loser_cost = RecostCandidateWithEdgeCard(*p.nljn, 0, lb, cm_);
  EXPECT_LE(loser_cost, winner_cost + 1e-6);
}

TEST_F(ValidityTest, OnPruneNarrowsMatchingEdges) {
  CandidatePair p = MakePair(cm_, 100, 20000, 2);
  ValidityRangeAnalyzer analyzer(cm_, vc_);
  analyzer.OnPrune(p.nljn.get(), *p.hsjn);
  EXPECT_LT(p.nljn->child_validity[0].hi, kInf);
  EXPECT_GT(analyzer.ranges_narrowed(), 0);
}

TEST_F(ValidityTest, OnPruneMatchesCommutedChildren) {
  CandidatePair p = MakePair(cm_, 100, 20000, 2);
  // Build a commuted HSJN: children swapped.
  auto commuted = std::make_shared<PlanNode>(*p.hsjn);
  std::swap(commuted->children[0], commuted->children[1]);
  commuted->op_cost = cm_.HsjnCost(20000, 100);
  commuted->cost = commuted->children[0]->cost +
                   commuted->children[1]->cost + commuted->op_cost;
  ValidityRangeAnalyzer analyzer(cm_, vc_);
  analyzer.OnPrune(p.nljn.get(), *commuted);
  // The outer edge (table 0) must still be matched despite the swap.
  EXPECT_LT(p.nljn->child_validity[0].hi, kInf);
}

TEST_F(ValidityTest, FewIterationsAreEnough) {
  // The paper: three Newton-Raphson iterations find a good range.
  CandidatePair p = MakePair(cm_, 100, 20000, 2);
  ValidityConfig one;
  one.max_iterations = 1;
  ValidityConfig ten;
  ten.max_iterations = 10;
  ValidityRangeAnalyzer a1(cm_, one), a10(cm_, ten);
  const double ub1 = a1.FindUpperCrossover(*p.nljn, 0, *p.hsjn, 0, 100);
  const double ub10 = a10.FindUpperCrossover(*p.nljn, 0, *p.hsjn, 0, 100);
  ASSERT_LT(ub10, kInf);
  if (ub1 < kInf) {
    EXPECT_LE(ub10, ub1 * 1.5);  // More iterations, comparable bound.
  }
}

TEST_F(ValidityTest, EndToEndPlanGetsNarrowedRanges) {
  Catalog catalog;
  testing::BuildToyCatalog(&catalog);
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
  Optimizer opt(catalog, OptimizerConfig{});
  ValidityRangeAnalyzer analyzer(cm_, vc_);
  Result<OptimizedPlan> r = opt.Optimize(q, nullptr, nullptr, &analyzer);
  ASSERT_TRUE(r.ok());
  // The chosen join must carry a narrowed validity range on at least one
  // edge (alternatives exist for a two-table join).
  const PlanNode* join = r.value().root.get();
  while (join->set == 0) join = join->children[0].get();
  bool narrowed = false;
  for (const ValidityRange& vr : join->child_validity) {
    narrowed |= vr.IsNarrowed();
  }
  EXPECT_TRUE(narrowed);
}

TEST_F(ValidityTest, CostEvaluationCountIsBounded) {
  CandidatePair p = MakePair(cm_, 100, 20000, 2);
  ValidityRangeAnalyzer analyzer(cm_, vc_);
  analyzer.OnPrune(p.nljn.get(), *p.hsjn);
  // Per Figure 5, the overhead is a handful of cost evaluations per edge:
  // 2 edges x (upper+lower) x (1 + iterations x 2 probes) x 2 plans.
  EXPECT_LE(analyzer.cost_evaluations(),
            2 * 2 * (1 + vc_.max_iterations * 2) * 2 + 8);
}

// Property sweep: conservativeness must hold for arbitrary cost-model
// parameterizations and cardinality regimes, not just the defaults.
class ValidityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValidityPropertyTest, BoundsAreVerifiedInversions) {
  const int seed = GetParam();
  CostParams params;
  // Perturb the cost landscape deterministically per seed.
  params.mem_rows = 500 << (seed % 6);
  params.hash_build_per_row = 1.0 + 0.25 * (seed % 5);
  params.nljn_probe_per_match = 0.5 + 0.5 * (seed % 4);
  params.sort_per_compare = 0.05 + 0.05 * (seed % 3);
  const CostModel cm(params);
  ValidityConfig vc;
  vc.max_iterations = 1 + seed % 5;
  const ValidityRangeAnalyzer analyzer(cm, vc);

  const double outers[] = {3, 40, 700, 9000, 120000};
  const double inners[] = {50, 2000, 60000};
  const double matches[] = {1, 4, 20};
  const double outer = outers[seed % 5];
  const double inner = inners[(seed / 5) % 3];
  const double match = matches[(seed / 15) % 3];
  CandidatePair p = MakePair(cm, outer, inner, match);

  // Whichever direction wins at the estimate, every adopted bound must be
  // a verified cost inversion: the loser is no more expensive there.
  const PlanNode* winner = p.nljn->cost <= p.hsjn->cost ? p.nljn.get()
                                                        : p.hsjn.get();
  const PlanNode* loser = winner == p.nljn.get() ? p.hsjn.get()
                                                 : p.nljn.get();
  const double ub =
      analyzer.FindUpperCrossover(*winner, 0, *loser, 0, outer);
  if (ub < kInf) {
    EXPECT_GE(ub, outer);
    EXPECT_LE(RecostCandidateWithEdgeCard(*loser, 0, ub, cm),
              RecostCandidateWithEdgeCard(*winner, 0, ub, cm) + 1e-6)
        << "seed=" << seed;
  }
  const double lb =
      analyzer.FindLowerCrossover(*winner, 0, *loser, 0, outer);
  if (lb > 0) {
    EXPECT_LE(lb, outer);
    EXPECT_LE(RecostCandidateWithEdgeCard(*loser, 0, lb, cm),
              RecostCandidateWithEdgeCard(*winner, 0, lb, cm) + 1e-6)
        << "seed=" << seed;
  }
}

TEST_P(ValidityPropertyTest, RangesContainTheEstimate) {
  // OnPrune must never produce a range that excludes the estimate itself
  // (the plan is optimal there by construction).
  const int seed = GetParam();
  CostParams params;
  params.mem_rows = 1000 << (seed % 5);
  const CostModel cm(params);
  const double outer = 10.0 * (1 << (seed % 10));
  CandidatePair p = MakePair(cm, outer, 20000, 2);
  PlanNode* winner =
      p.nljn->cost <= p.hsjn->cost ? p.nljn.get() : p.hsjn.get();
  const PlanNode* loser =
      winner == p.nljn.get() ? p.hsjn.get() : p.nljn.get();
  ValidityRangeAnalyzer analyzer(cm, ValidityConfig{});
  analyzer.OnPrune(winner, *loser);
  const ValidityRange& range = winner->child_validity[0];
  EXPECT_LE(range.lo, outer) << "seed=" << seed;
  EXPECT_GE(range.hi, outer) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidityPropertyTest,
                         ::testing::Range(0, 45));

// ----------------------- validity ranges under vectorized execution.

TEST(ValidityBatchTest, RowAndBatchEnginesAgreeOnValidityRangeOutcomes) {
  // The CHECK ranges this analyzer derives are evaluated at batch
  // boundaries on the vectorized engine; an in/out-of-range decision must
  // be identical to the row engine — same observed cardinality at the
  // fire, same fired flag, same replanning sequence — at every batch
  // size, including sizes that put the range boundary mid-batch.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  for (const int sel : {1, 50, 90}) {
    const QuerySpec q = tpch::MakeQ10Selectivity(sel, /*use_marker=*/true);
    const auto run = [&](int64_t batch_rows, ExecutionStats* stats) {
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
      ParallelPolicy policy;
      policy.batch_rows = batch_rows;
      exec.set_parallel(nullptr, policy);
      return exec.Execute(q, stats);
    };
    ExecutionStats row_stats;
    Result<std::vector<Row>> row_rows = run(1, &row_stats);
    ASSERT_TRUE(row_rows.ok()) << row_rows.status().ToString();
    for (const int64_t batch : {3, 64, 1024}) {
      SCOPED_TRACE("sel=" + std::to_string(sel) +
                   " batch_rows=" + std::to_string(batch));
      ExecutionStats batch_stats;
      Result<std::vector<Row>> batch_rows_res = run(batch, &batch_stats);
      ASSERT_TRUE(batch_rows_res.ok())
          << batch_rows_res.status().ToString();
      EXPECT_EQ(row_stats.reopts, batch_stats.reopts);
      ASSERT_EQ(row_stats.attempts.size(), batch_stats.attempts.size());
      for (size_t i = 0; i < row_stats.attempts.size(); ++i) {
        EXPECT_EQ(row_stats.attempts[i].reoptimized,
                  batch_stats.attempts[i].reoptimized)
            << "attempt " << i;
        EXPECT_EQ(row_stats.attempts[i].plan_text,
                  batch_stats.attempts[i].plan_text)
            << "attempt " << i;
      }
      ASSERT_EQ(row_stats.check_events.size(),
                batch_stats.check_events.size());
      for (size_t i = 0; i < row_stats.check_events.size(); ++i) {
        EXPECT_EQ(row_stats.check_events[i].count,
                  batch_stats.check_events[i].count)
            << "event " << i;
        EXPECT_EQ(row_stats.check_events[i].fired,
                  batch_stats.check_events[i].fired)
            << "event " << i;
      }
    }
  }
}

}  // namespace
}  // namespace popdb
