#include <gtest/gtest.h>

#include "opt/enumerator.h"
#include "opt/optimizer.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::BuildToyCatalog(&catalog_); }

  Result<OptimizedPlan> Optimize(const QuerySpec& q,
                                 OptimizerConfig config = {},
                                 const FeedbackMap* fb = nullptr,
                                 const std::vector<AvailableMatView>* mvs =
                                     nullptr) {
    Optimizer opt(catalog_, config);
    return opt.Optimize(q, fb, mvs, nullptr);
  }

  Result<OptimizedPlan> OptimizeWithMemo(const QuerySpec& q,
                                         IncrementalMemo* memo,
                                         const FeedbackMap* fb = nullptr) {
    Optimizer opt(catalog_, {});
    return opt.Optimize(q, fb, nullptr, nullptr, memo);
  }

  /// The join subtree under the top operators (agg/sort/project).
  static const PlanNode* JoinRoot(const PlanNode* node) {
    while (node->set == 0 && !node->children.empty()) {
      node = node->children[0].get();
    }
    return node;
  }

  Catalog catalog_;
};

TEST_F(EnumeratorTest, SingleTablePlanIsScan) {
  QuerySpec q("q");
  q.AddTable("emp");
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(PlanOpKind::kTableScan, JoinRoot(r.value().root.get())->kind);
}

TEST_F(EnumeratorTest, NoTablesIsAnError) {
  QuerySpec q("q");
  Result<OptimizedPlan> r = Optimize(q);
  EXPECT_FALSE(r.ok());
}

TEST_F(EnumeratorTest, MissingTableIsNotFound) {
  QuerySpec q("q");
  q.AddTable("ghost");
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(StatusCode::kNotFound, r.status().code());
}

TEST_F(EnumeratorTest, JoinPlanCoversAllTables) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(q.AllTables(), JoinRoot(r.value().root.get())->set);
}

TEST_F(EnumeratorTest, AllMethodsDisabledFailsOnJoins) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});
  OptimizerConfig config;
  config.methods.enable_nljn = false;
  config.methods.enable_hsjn = false;
  config.methods.enable_mgjn = false;
  Result<OptimizedPlan> r = Optimize(q, config);
  EXPECT_FALSE(r.ok());
}

TEST_F(EnumeratorTest, DisabledHashJoinNeverAppears) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  OptimizerConfig config;
  config.methods.enable_hsjn = false;
  Result<OptimizedPlan> r = Optimize(q, config);
  ASSERT_TRUE(r.ok());
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    EXPECT_NE(PlanOpKind::kHsjn, node.kind);
    for (const auto& c : node.children) walk(*c);
  };
  walk(*r.value().root);
}

TEST_F(EnumeratorTest, NljnInnerIsAlwaysSingleTable) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  OptimizerConfig config;
  config.methods.enable_hsjn = false;
  config.methods.enable_mgjn = false;
  Result<OptimizedPlan> r = Optimize(q, config);
  ASSERT_TRUE(r.ok());
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.kind == PlanOpKind::kNljn) {
      EXPECT_EQ(1, PopCount(node.children[1]->set));
      EXPECT_EQ(PlanOpKind::kTableScan, node.children[1]->kind);
    }
    for (const auto& c : node.children) walk(*c);
  };
  walk(*r.value().root);
}

TEST_F(EnumeratorTest, CrossJoinFallbackProducesPlan) {
  QuerySpec q("q");
  q.AddTable("dept");
  q.AddTable("emp");
  // No join predicates at all.
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(q.AllTables(), JoinRoot(r.value().root.get())->set);
}

TEST_F(EnumeratorTest, IndexNljnPreferredForSelectiveOuter) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});  // d_id = e_dept (emp.e_dept has an index).
  q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));  // One dept.
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  const PlanNode* join = JoinRoot(r.value().root.get());
  ASSERT_EQ(PlanOpKind::kNljn, join->kind);
  EXPECT_TRUE(join->use_index);
  EXPECT_EQ(1, join->index_col);  // e_dept.
}

TEST_F(EnumeratorTest, UnindexedJoinColumnPrefersHashJoin) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  // Join on columns with no index: a nested-loop join would scan the
  // inner per outer row, so hash join must win.
  q.AddJoin({s, 2}, {e, 2});
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(PlanOpKind::kHsjn, JoinRoot(r.value().root.get())->kind);
}

TEST_F(EnumeratorTest, MatViewSeedsSingleTableAccess) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(40));
  const std::vector<Row> rows(10, Row{Value::Int(1), Value::Int(1),
                                      Value::Int(30), Value::String("x")});
  std::vector<AvailableMatView> mvs = {
      {"mv_emp", TableBit(e), 10.0, &rows, {}}};
  Result<OptimizedPlan> r = Optimize(q, {}, nullptr, &mvs);
  ASSERT_TRUE(r.ok());
  // Scanning 10 materialized rows beats scanning 200 base rows.
  EXPECT_EQ(PlanOpKind::kMatViewScan, JoinRoot(r.value().root.get())->kind);
}

TEST_F(EnumeratorTest, MatViewSeedsMultiTableSet) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  const std::vector<Row> rows(5, Row(9, Value::Int(1)));
  FeedbackMap fb;
  fb[TableBit(d) | TableBit(e)].exact = 5.0;
  std::vector<AvailableMatView> mvs = {
      {"mv_de", TableBit(d) | TableBit(e), 5.0, &rows, {}}};
  Result<OptimizedPlan> r = Optimize(q, {}, &fb, &mvs);
  ASSERT_TRUE(r.ok());
  bool found_mv = false;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.kind == PlanOpKind::kMatViewScan) found_mv = true;
    for (const auto& c : node.children) walk(*c);
  };
  walk(*r.value().root);
  EXPECT_TRUE(found_mv);
}

TEST_F(EnumeratorTest, MatViewRejectedWhenMoreExpensive) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  // A "materialized" copy of dept that is larger than the base table.
  const std::vector<Row> rows(5000, Row{Value::Int(1), Value::String("x"),
                                        Value::Int(0)});
  std::vector<AvailableMatView> mvs = {
      {"mv_dept", TableBit(d), 5000.0, &rows, {}}};
  Result<OptimizedPlan> r = Optimize(q, {}, nullptr, &mvs);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(PlanOpKind::kTableScan, JoinRoot(r.value().root.get())->kind);
}

TEST_F(EnumeratorTest, FeedbackChangesJoinOrder) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
  // Without feedback the selective dept drives an index NLJN into emp.
  Result<OptimizedPlan> before = Optimize(q);
  ASSERT_TRUE(before.ok());
  const PlanNode* join_before = JoinRoot(before.value().root.get());
  ASSERT_EQ(PlanOpKind::kNljn, join_before->kind);
  EXPECT_EQ(TableBit(d), join_before->children[0]->set);  // dept outer.
  // Feedback reveals the dept restriction keeps far more rows than
  // estimated: driving the join from dept is no longer the plan.
  FeedbackMap fb;
  fb[TableBit(d)].exact = 2000.0;
  Result<OptimizedPlan> after = Optimize(q, {}, &fb);
  ASSERT_TRUE(after.ok());
  const PlanNode* join_after = JoinRoot(after.value().root.get());
  EXPECT_FALSE(join_after->kind == PlanOpKind::kNljn &&
               join_after->children[0]->set == TableBit(d));
}

TEST_F(EnumeratorTest, TopOperatorsMatchQueryShape) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddGroupBy({e, 1});
  q.AddAgg(AggFunc::kCount);
  q.AddOrderBy(1, true);
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(PlanOpKind::kSort, r.value().root->kind);
  EXPECT_EQ(PlanOpKind::kAgg, r.value().root->children[0]->kind);
}

TEST_F(EnumeratorTest, ProjectionPositionsResolved) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});
  q.AddProjection({e, 3});
  q.AddProjection({d, 1});
  Result<OptimizedPlan> r = Optimize(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(PlanOpKind::kProject, r.value().root->kind);
  // Canonical layout: dept (3 cols) then emp (4 cols).
  EXPECT_EQ(std::vector<int>({3 + 3, 1}), r.value().root->positions);
}

TEST_F(EnumeratorTest, MemoSingleTableQueryReusesItsOnlyEntry) {
  // Degenerate DP: one table, one memo entry. A re-optimization with
  // unchanged feedback must reuse it and still pick the same plan.
  QuerySpec q("q");
  q.AddTable("emp");
  IncrementalMemo memo;
  Result<OptimizedPlan> first = OptimizeWithMemo(q, &memo);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(0, first.value().memo_reused);  // Memo was empty.
  EXPECT_EQ(1, memo.entries());

  Result<OptimizedPlan> second = OptimizeWithMemo(q, &memo);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(1, second.value().memo_reused);
  EXPECT_EQ(0, second.value().memo_invalidated);
  EXPECT_EQ(PlanDigest(*first.value().root),
            PlanDigest(*second.value().root));
}

TEST_F(EnumeratorTest, MemoPerturbedDimEdgeInvalidatesOnlySupersets) {
  // Star-style join with dept as the dimension: moving the observed
  // cardinality of the dept edge must invalidate exactly the four table
  // sets containing dept ({d}, {d,e}, {d,s}, {d,e,s}) and reuse the three
  // that do not ({e}, {s}, {e,s}) — and the incremental plan must be
  // bit-identical to a from-scratch optimization under the new feedback.
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});

  IncrementalMemo memo;
  ASSERT_TRUE(OptimizeWithMemo(q, &memo).ok());
  EXPECT_EQ(7, memo.entries());  // All subsets of a 3-table query.

  FeedbackMap fb;
  fb[TableBit(d)].exact = 2.0;
  Result<OptimizedPlan> inc = OptimizeWithMemo(q, &memo, &fb);
  ASSERT_TRUE(inc.ok());
  EXPECT_EQ(3, inc.value().memo_reused);
  EXPECT_EQ(4, inc.value().memo_invalidated);

  Result<OptimizedPlan> fresh = Optimize(q, {}, &fb);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(PlanDigest(*fresh.value().root), PlanDigest(*inc.value().root));
}

TEST_F(EnumeratorTest, MemoNoOpReoptReusesTheWholeMemo) {
  // A re-optimization whose feedback did not move (the no-op delta) must
  // reuse every entry and invalidate none.
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  FeedbackMap fb;
  fb[TableBit(e)].exact = 150.0;

  IncrementalMemo memo;
  Result<OptimizedPlan> first = OptimizeWithMemo(q, &memo, &fb);
  ASSERT_TRUE(first.ok());

  Result<OptimizedPlan> second = OptimizeWithMemo(q, &memo, &fb);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(memo.entries(), second.value().memo_reused);
  EXPECT_EQ(0, second.value().memo_invalidated);
  EXPECT_EQ(PlanDigest(*first.value().root),
            PlanDigest(*second.value().root));
}

TEST_F(EnumeratorTest, MemoEveryEdgeMovedInvalidatesEverything) {
  // When every base-table edge moved, every table set contains a dirty
  // root: nothing is reusable and the enumeration degenerates to full DP
  // (which must still agree with a memo-less optimization).
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});

  IncrementalMemo memo;
  ASSERT_TRUE(OptimizeWithMemo(q, &memo).ok());

  FeedbackMap fb;
  fb[TableBit(d)].exact = 3.0;
  fb[TableBit(e)].exact = 400.0;
  fb[TableBit(s)].exact = 250.0;
  Result<OptimizedPlan> inc = OptimizeWithMemo(q, &memo, &fb);
  ASSERT_TRUE(inc.ok());
  EXPECT_EQ(0, inc.value().memo_reused);
  EXPECT_EQ(7, inc.value().memo_invalidated);

  Result<OptimizedPlan> fresh = Optimize(q, {}, &fb);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(PlanDigest(*fresh.value().root), PlanDigest(*inc.value().root));
}

TEST_F(EnumeratorTest, SamePartitionDetection) {
  auto leaf = [](TableSet set) {
    auto n = std::make_shared<PlanNode>();
    n->kind = PlanOpKind::kTableScan;
    n->set = set;
    return n;
  };
  auto join = [&](PlanOpKind kind, TableSet a, TableSet b) {
    auto n = std::make_shared<PlanNode>();
    n->kind = kind;
    n->set = a | b;
    n->children = {leaf(a), leaf(b)};
    n->child_validity.resize(2);
    return n;
  };
  auto h01 = join(PlanOpKind::kHsjn, TableBit(0), TableBit(1));
  auto h10 = join(PlanOpKind::kHsjn, TableBit(1), TableBit(0));
  auto n01 = join(PlanOpKind::kNljn, TableBit(0), TableBit(1));
  auto h02 = join(PlanOpKind::kHsjn, TableBit(0), TableBit(2));
  EXPECT_TRUE(SamePartition(*h01, *h10));  // Commutation counts.
  EXPECT_TRUE(SamePartition(*h01, *n01));  // Different operator counts.
  EXPECT_FALSE(SamePartition(*h01, *h02));
  EXPECT_FALSE(SamePartition(*h01, *leaf(TableBit(0))));
}

}  // namespace
}  // namespace popdb
