#include <gtest/gtest.h>

#include "core/executor_builder.h"
#include "core/placement.h"
#include "core/validity.h"
#include "opt/optimizer.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

class ExecutorBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::BuildToyCatalog(&catalog_); }

  std::shared_ptr<PlanNode> PlanFor(const QuerySpec& q,
                                    OptimizerConfig config = {}) {
    Optimizer opt(catalog_, config);
    CostModel cm(config.cost);
    ValidityRangeAnalyzer analyzer(cm, ValidityConfig{});
    Result<OptimizedPlan> r = opt.Optimize(q, nullptr, nullptr, &analyzer);
    EXPECT_TRUE(r.ok());
    return r.value().root;
  }

  std::vector<Row> Run(const PlanNode& plan, const QuerySpec& q,
                       const std::vector<Row>* returned = nullptr) {
    ExecutorBuilder builder(catalog_, q, returned, false);
    Result<BuiltPlan> built = builder.Build(plan);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    ExecContext ctx;
    ctx.params = q.params();
    std::vector<Row> rows;
    EXPECT_EQ(ExecStatus::kEof,
              RunToCompletion(built.value().root.get(), &ctx, &rows));
    return rows;
  }

  Catalog catalog_;
};

TEST_F(ExecutorBuilderTest, BuildsEveryJoinKind) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  std::vector<size_t> sizes;
  for (int mask : {1, 2, 4}) {
    OptimizerConfig config;
    config.methods.enable_nljn = (mask & 1) != 0;
    config.methods.enable_hsjn = (mask & 2) != 0;
    config.methods.enable_mgjn = (mask & 4) != 0;
    std::shared_ptr<PlanNode> plan = PlanFor(q, config);
    sizes.push_back(Run(*plan, q).size());
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[1], sizes[2]);
  EXPECT_EQ(200u, sizes[0]);  // Every emp row joins exactly one dept.
}

TEST_F(ExecutorBuilderTest, EdgesRecordTableSetOperators) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  q.AddGroupBy({d, 1});
  q.AddAgg(AggFunc::kCount);
  std::shared_ptr<PlanNode> plan = PlanFor(q);
  ExecutorBuilder builder(catalog_, q, nullptr, false);
  Result<BuiltPlan> built = builder.Build(*plan);
  ASSERT_TRUE(built.ok());
  // At least one scan and the join must be tracked (an NLJN inner is an
  // access path, not an operator); the agg (set 0) must not appear.
  EXPECT_GE(built.value().edges.size(), 2u);
  for (const auto& [set, op] : built.value().edges) {
    EXPECT_NE(0u, set);
    EXPECT_NE(nullptr, op);
  }
}

TEST_F(ExecutorBuilderTest, CompensationSuppressesEdgeRecording) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  std::shared_ptr<PlanNode> plan = PlanFor(q);
  InsertCompensation(&plan);
  const std::vector<Row> returned;
  ExecutorBuilder builder(catalog_, q, &returned, false);
  Result<BuiltPlan> built = builder.Build(*plan);
  ASSERT_TRUE(built.ok());
  // The join below the anti-join still produces true cardinalities and is
  // recorded; the anti-join itself (whose counts exclude compensated
  // rows) must not be.
  for (const auto& [set, op] : built.value().edges) {
    (void)set;
    EXPECT_STRNE("ANTIJOIN(S)", op->name());
  }
}

TEST_F(ExecutorBuilderTest, CompensationWithoutRowsFails) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  std::shared_ptr<PlanNode> plan = PlanFor(q);
  InsertCompensation(&plan);
  ExecutorBuilder builder(catalog_, q, /*already_returned=*/nullptr, false);
  Result<BuiltPlan> built = builder.Build(*plan);
  EXPECT_FALSE(built.ok());
}

TEST_F(ExecutorBuilderTest, MissingTableReportsNotFound) {
  QuerySpec q("q");
  q.AddTable("dept");
  std::shared_ptr<PlanNode> plan = PlanFor(q);
  plan->children.clear();
  PlanNode* scan = plan.get();
  while (!scan->children.empty()) scan = scan->children[0].get();
  scan->kind = PlanOpKind::kTableScan;
  scan->table_name = "ghost";
  ExecutorBuilder builder(catalog_, q, nullptr, false);
  Result<BuiltPlan> built = builder.Build(*plan);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(StatusCode::kNotFound, built.status().code());
}

TEST_F(ExecutorBuilderTest, ChecksAreTranslated) {
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
  std::shared_ptr<PlanNode> plan = PlanFor(q);
  PopConfig pop;
  pop.require_narrowed_range = false;
  CostModel cm{CostParams{}};
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm, false);
  ASSERT_GE(stats.total(), 1);
  // Builds and runs fine with the checks in place (they hold here).
  const std::vector<Row> rows = Run(*plan, q);
  EXPECT_EQ(testing::ReferenceExecute(catalog_, q).size(), rows.size());
}

TEST_F(ExecutorBuilderTest, ParamMarkersBoundAtBuildTime) {
  QuerySpec q("q");
  const int e = q.AddTable("emp");
  q.AddParamPred({e, 2}, PredKind::kLt, 0);
  q.BindParam(Value::Int(30));
  std::shared_ptr<PlanNode> plan = PlanFor(q);
  const std::vector<Row> rows = Run(*plan, q);
  for (const Row& r : rows) EXPECT_LT(r[2].AsInt(), 30);
}

}  // namespace
}  // namespace popdb
