#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/value.h"

namespace popdb {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("OK", s.ToString());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kNotFound, s.code());
  EXPECT_EQ("NotFound: missing table", s.ToString());
}

TEST(StatusTest, AllConstructorsProduceTheirCode) {
  EXPECT_EQ(StatusCode::kInvalidArgument,
            Status::InvalidArgument("x").code());
  EXPECT_EQ(StatusCode::kAlreadyExists, Status::AlreadyExists("x").code());
  EXPECT_EQ(StatusCode::kInternal, Status::Internal("x").code());
  EXPECT_EQ(StatusCode::kResourceExhausted,
            Status::ResourceExhausted("x").code());
  EXPECT_EQ(StatusCode::kUnimplemented, Status::Unimplemented("x").code());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(42, r.value());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(StatusCode::kInternal, r.status().code());
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).TakeValue();
  EXPECT_EQ("hello", s);
}

// ---------------------------------------------------------------- Value.

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(ValueType::kNull, Value::Null().type());
  EXPECT_EQ(ValueType::kInt, Value::Int(1).type());
  EXPECT_EQ(ValueType::kDouble, Value::Double(1.5).type());
  EXPECT_EQ(ValueType::kString, Value::String("x").type());
  EXPECT_TRUE(Value().is_null());
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_GT(Value::Int(-1), Value::Int(-2));
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(1), Value::Double(1.0));
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_GT(Value::Double(2.5), Value::Int(2));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, NullSortsFirstAndEqualsNull) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeOrdersByTag) {
  // Numeric types order before strings by tag.
  EXPECT_LT(Value::Int(999), Value::String("a"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ("NULL", Value::Null().ToString());
  EXPECT_EQ("42", Value::Int(42).ToString());
  EXPECT_EQ("'hi'", Value::String("hi").ToString());
  EXPECT_EQ("1.5", Value::Double(1.5).ToString());
}

TEST(ValueTest, AsNumericCoercion) {
  EXPECT_DOUBLE_EQ(3.0, Value::Int(3).AsNumeric());
  EXPECT_DOUBLE_EQ(2.25, Value::Double(2.25).AsNumeric());
}

TEST(RowTest, HashAndToString) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Int(1), Value::String("x")};
  Row c = {Value::Int(2), Value::String("x")};
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_NE(HashRow(a), HashRow(c));  // Overwhelmingly likely.
  EXPECT_EQ("(1, 'x')", RowToString(a));
}

TEST(RowTest, EmptyRowHashStable) {
  EXPECT_EQ(HashRow({}), HashRow({}));
}

// ----------------------------------------------------------- string_util.

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ("x=3 y=ab", StrFormat("x=%d y=%s", 3, "ab"));
  EXPECT_EQ("", StrFormat("%s", ""));
  EXPECT_EQ("2.50", StrFormat("%.2f", 2.5));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ("a,b,c", StrJoin({"a", "b", "c"}, ","));
  EXPECT_EQ("solo", StrJoin({"solo"}, ","));
  EXPECT_EQ("", StrJoin({}, ","));
}

TEST(LikeMatchTest, ExactMatch) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_FALSE(LikeMatch("hell", "hello"));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h%o"));
  EXPECT_FALSE(LikeMatch("hello", "h%x"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("caat", "c_t"));
  EXPECT_TRUE(LikeMatch("cat", "___"));
  EXPECT_FALSE(LikeMatch("cat", "__"));
}

TEST(LikeMatchTest, CombinedWildcards) {
  EXPECT_TRUE(LikeMatch("STANDARD BRASS", "%BRASS%"));
  EXPECT_TRUE(LikeMatch("Owner#000123", "Owner#0%"));
  EXPECT_TRUE(LikeMatch("abxc", "a%b_c"));
  EXPECT_TRUE(LikeMatch("azzzbxc", "a%b_c"));
  EXPECT_FALSE(LikeMatch("abc", "a%b_c"));
  EXPECT_FALSE(LikeMatch("abcbcbc", "a%b_c"));  // Does not end in "b_c".
}

TEST(LikeMatchTest, ConsecutivePercents) {
  EXPECT_TRUE(LikeMatch("abc", "%%a%%%c%%"));
}

TEST(StartsEndsContainsTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
  EXPECT_TRUE(Contains("foobar", "oba"));
  EXPECT_FALSE(Contains("foobar", "xyz"));
}

// ------------------------------------------------------------------ Rng.

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(10u, seen.size());
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(0.3, hits / 10000.0, 0.03);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(17);
  int small = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Zipf(1000, 0.9);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
    if (v < 10) ++small;
  }
  // Heavy skew: the 1% smallest values get far more than 1% of the draws.
  EXPECT_GT(small, 1000);
}

// --------------------------------------------------------- TablePrinter.

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"ab", "c"});
  tp.AddRow({"1", "long-cell"});
  const std::string out = tp.ToString();
  EXPECT_NE(std::string::npos, out.find("| ab | c         |"));
  EXPECT_NE(std::string::npos, out.find("| 1  | long-cell |"));
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter tp({"a", "b"});
  tp.AddRow({"1", "2"});
  EXPECT_EQ("a,b\n1,2\n", tp.ToCsv());
}

// ------------------------------------------------------------ JsonParse.

TEST(JsonParseTest, ParsesScalarsWithIntDoubleDistinction) {
  Result<JsonValue> v = JsonParse(
      "{\"i\":42,\"d\":1.5,\"e\":2e3,\"neg\":-7,\"b\":true,\"n\":null,"
      "\"s\":\"hi\"}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(JsonValue::Kind::kInt, v.value().Find("i")->kind());
  EXPECT_EQ(42, v.value().Find("i")->AsInt());
  EXPECT_EQ(JsonValue::Kind::kDouble, v.value().Find("d")->kind());
  EXPECT_DOUBLE_EQ(1.5, v.value().Find("d")->AsDouble());
  EXPECT_EQ(JsonValue::Kind::kDouble, v.value().Find("e")->kind());
  EXPECT_DOUBLE_EQ(2000.0, v.value().Find("e")->AsDouble());
  EXPECT_EQ(-7, v.value().Find("neg")->AsInt());
  EXPECT_TRUE(v.value().Find("b")->AsBool());
  EXPECT_TRUE(v.value().Find("n")->is_null());
  EXPECT_EQ("hi", v.value().Find("s")->AsString());
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows").BeginArray();
  w.BeginArray().Int(1).String("a \"quoted\" str\n").Null().EndArray();
  w.EndArray();
  w.Key("nested").BeginObject().Key("x").Double(0.25).EndObject();
  w.EndObject();
  Result<JsonValue> v = JsonParse(w.str());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue& row = v.value().Find("rows")->items()[0];
  EXPECT_EQ(1, row.items()[0].AsInt());
  EXPECT_EQ("a \"quoted\" str\n", row.items()[1].AsString());
  EXPECT_TRUE(row.items()[2].is_null());
  EXPECT_DOUBLE_EQ(0.25,
                   v.value().Find("nested")->Find("x")->AsDouble());
  // Serializer round trip: parse(serialize(v)) is semantically identical.
  Result<JsonValue> again = JsonParse(v.value().ToJsonString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(v.value().ToJsonString(), again.value().ToJsonString());
}

TEST(JsonParseTest, DecodesEscapesIncludingSurrogatePairs) {
  Result<JsonValue> v =
      JsonParse("\"\\u0041\\t\\\\\\\"\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ("A\t\\\"\xc3\xa9\xf0\x9f\x98\x80", v.value().AsString());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("{\"a\":1,}").ok());     // Trailing comma.
  EXPECT_FALSE(JsonParse("{\"a\" 1}").ok());      // Missing colon.
  EXPECT_FALSE(JsonParse("[1 2]").ok());          // Missing comma.
  EXPECT_FALSE(JsonParse("{\"a\":1} extra").ok());  // Trailing content.
  EXPECT_FALSE(JsonParse("\"unterminated").ok());
  EXPECT_FALSE(JsonParse("\"bad \x01 ctrl\"").ok());
  EXPECT_FALSE(JsonParse("tru").ok());
  EXPECT_FALSE(JsonParse("01").ok());             // Leading zero.
  EXPECT_FALSE(JsonParse("\"\\ud83d\"").ok());    // Lone surrogate.
}

/// Emits one random JSON value through the writer (syntactically valid by
/// construction); containers stop nesting past `depth` 4 so documents stay
/// bounded. Shared shape with the fuzz_test round-trip fuzz.
void WriteRandomJson(Rng* rng, int depth, JsonWriter* w) {
  const int64_t kind =
      depth >= 4 ? rng->UniformInt(0, 4) : rng->UniformInt(0, 6);
  switch (kind) {
    case 0:
      w->Null();
      break;
    case 1:
      w->Bool(rng->UniformInt(0, 1) == 1);
      break;
    case 2:
      w->Int(rng->UniformInt(-1000000000000, 1000000000000));
      break;
    case 3:
      w->Double((rng->UniformDouble() - 0.5) * 1e9);
      break;
    case 4: {
      // Tokens chosen to exercise escaping (quotes, backslash, control
      // characters) and multi-byte UTF-8 passthrough.
      static const std::vector<std::string> kTokens = {
          "a",  "bc", "\"", "\\", "\n", "\t", "/",
          "\x01", " ", "é", "€", "😀"};
      std::string s;
      const int64_t len = rng->UniformInt(0, 8);
      for (int64_t i = 0; i < len; ++i) {
        s += kTokens[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(kTokens.size()) - 1))];
      }
      w->String(s);
      break;
    }
    case 5: {
      w->BeginArray();
      const int64_t n = rng->UniformInt(0, 4);
      for (int64_t i = 0; i < n; ++i) WriteRandomJson(rng, depth + 1, w);
      w->EndArray();
      break;
    }
    default: {
      w->BeginObject();
      const int64_t n = rng->UniformInt(0, 4);
      for (int64_t i = 0; i < n; ++i) {
        w->Key("k" + std::to_string(i));
        WriteRandomJson(rng, depth + 1, w);
      }
      w->EndObject();
      break;
    }
  }
}

TEST(JsonParseTest, FuzzRandomDocumentsRoundTrip) {
  // parse → WriteTo → parse must be a fixpoint: the reparse sees exactly
  // the same value, and re-serialization is byte-identical from then on.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    JsonWriter w;
    WriteRandomJson(&rng, 0, &w);
    Result<JsonValue> first = JsonParse(w.str());
    ASSERT_TRUE(first.ok()) << "seed " << seed << ": " << w.str() << ": "
                            << first.status().ToString();
    const std::string canonical = first.value().ToJsonString();
    Result<JsonValue> second = JsonParse(canonical);
    ASSERT_TRUE(second.ok()) << "seed " << seed << ": " << canonical;
    EXPECT_EQ(canonical, second.value().ToJsonString()) << "seed " << seed;
  }
}

TEST(JsonParseTest, ErrorsCarryByteOffset) {
  Result<JsonValue> v = JsonParse("{\"a\": ??}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(std::string::npos, v.status().message().find("at byte 6"));
}

TEST(JsonParseTest, EnforcesDepthAndNodeLimits) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  JsonParseLimits limits;
  limits.max_depth = 16;
  EXPECT_FALSE(JsonParse(deep, limits).ok());

  JsonParseLimits tiny;
  tiny.max_nodes = 4;
  EXPECT_FALSE(JsonParse("[1,2,3,4,5,6,7]", tiny).ok());
  EXPECT_TRUE(JsonParse("[1,2]", tiny).ok());
}

TEST(JsonParseTest, TypedGettersFallBackOnMismatch) {
  Result<JsonValue> v = JsonParse("{\"n\":3,\"s\":\"x\",\"d\":2.5}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(3, v.value().GetInt("n", -1));
  EXPECT_EQ(-1, v.value().GetInt("s", -1));      // Kind mismatch.
  EXPECT_EQ(-1, v.value().GetInt("missing", -1));
  EXPECT_EQ("x", v.value().GetString("s", ""));
  EXPECT_DOUBLE_EQ(3.0, v.value().GetNumber("n", 0.0));  // Int coerces.
  EXPECT_DOUBLE_EQ(2.5, v.value().GetNumber("d", 0.0));
}

}  // namespace
}  // namespace popdb
