// Unit tests for morsel-driven intra-query parallelism: the TaskGroup
// join/steal-back protocol, the rid-range scan, the order-preserving
// MorselExchangeOp, CHECK semantics above a parallel fragment (fire once,
// at the aggregated count), cancellation propagation out of morsel
// workers, and hash-agg pre-aggregation.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/pop.h"
#include "exec/check.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "runtime/morsel_dispatcher.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;
using ::popdb::testing::Canonicalize;

class MorselTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    BuildToyCatalog(catalog_, /*emp_rows=*/300, /*sale_rows=*/3000);
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* MorselTest::catalog_ = nullptr;

// ------------------------------------------------------------- TaskGroup

TEST_F(MorselTest, TaskGroupDegradesToSerialWithoutRunner) {
  std::vector<int> seen;
  TaskGroup::Run(nullptr, 8, [&](int idx) { seen.push_back(idx); });
  ASSERT_EQ(1u, seen.size());
  EXPECT_EQ(0, seen[0]);
}

TEST_F(MorselTest, TaskGroupRunsEveryWorkerExactlyOnce) {
  MorselDispatcher pool(/*helper_threads=*/3);
  constexpr int kWorkers = 4;
  std::atomic<int> calls[kWorkers] = {};
  TaskGroup::Run(&pool, kWorkers, [&](int idx) {
    calls[idx].fetch_add(1);
  });
  for (int i = 0; i < kWorkers; ++i) {
    EXPECT_EQ(1, calls[i].load()) << "worker " << i;
  }
}

TEST_F(MorselTest, TaskGroupStealsBackUndrainedTasks) {
  // External-worker dispatcher that nobody ever drains: the caller must
  // reclaim all offered tasks itself — no lost tasks, no deadlock.
  MorselDispatcher pool(MorselDispatcher::ExternalWorkersTag{});
  std::atomic<int> total{0};
  TaskGroup::Run(&pool, 4, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(4, total.load());
  EXPECT_EQ(3, pool.stats().submitted);
  EXPECT_EQ(0, pool.stats().ran);
  // Draining afterwards finds only stale (already-claimed) tasks.
  while (pool.TryRunOne()) {
  }
  EXPECT_EQ(3, pool.stats().stale);
  EXPECT_EQ(4, total.load());
}

TEST_F(MorselTest, TaskGroupSurvivesSubmitRejection) {
  // Capacity-1 queue: most offers bounce, so fewer worker instances run —
  // but the shared work supply is still fully drained (rejection costs
  // parallelism, never work). This mirrors how the exchange pulls morsels
  // from a shared counter.
  MorselDispatcher pool(MorselDispatcher::ExternalWorkersTag{},
                        /*queue_capacity=*/1);
  constexpr int kItems = 100;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  TaskGroup::Run(&pool, 8, [&](int) {
    while (next.fetch_add(1) < kItems) done.fetch_add(1);
  });
  EXPECT_EQ(kItems, done.load());
  EXPECT_GE(pool.stats().rejected, 1);
}

// --------------------------------------------------------- rid-range scan

TEST_F(MorselTest, RangeScansPartitionTheTable) {
  const Table* sale = catalog_->GetTable("sale");
  const int64_t n = sale->num_rows();

  const auto scan_range = [&](int64_t begin, int64_t end) {
    TableScanOp scan(sale, 0, {}, begin, end);
    ExecContext ctx;
    std::vector<Row> rows;
    EXPECT_EQ(ExecStatus::kEof, RunToCompletion(&scan, &ctx, &rows));
    return rows;
  };

  const std::vector<Row> full = scan_range(0, -1);
  ASSERT_EQ(n, static_cast<int64_t>(full.size()));

  std::vector<Row> pieced;
  const int64_t cuts[] = {0, 7, n / 3, n / 2 + 1, n};
  for (size_t i = 0; i + 1 < sizeof(cuts) / sizeof(cuts[0]); ++i) {
    const std::vector<Row> piece = scan_range(cuts[i], cuts[i + 1]);
    pieced.insert(pieced.end(), piece.begin(), piece.end());
  }
  ASSERT_EQ(full.size(), pieced.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i], pieced[i]) << "row " << i;
  }
  // An end bound past the table clamps; an empty range yields nothing.
  EXPECT_EQ(static_cast<size_t>(n), scan_range(0, n + 1000).size());
  EXPECT_TRUE(scan_range(5, 5).empty());
}

// -------------------------------------------------------- MorselExchangeOp

std::unique_ptr<MorselExchangeOp> MakeSaleExchange(const Table* sale,
                                                   ParallelPolicy policy) {
  // s_amount (pos 1) >= 500.0 — selective enough that morsels produce
  // different row counts.
  ResolvedPredicate pred;
  pred.pos = 1;
  pred.kind = PredKind::kGe;
  pred.operand = Value::Double(500.0);
  return std::make_unique<MorselExchangeOp>(
      [sale, pred](int64_t begin, int64_t end) {
        return std::make_unique<TableScanOp>(
            sale, 0, std::vector<ResolvedPredicate>{pred}, begin, end);
      },
      sale->num_rows(), TableBit(0), policy);
}

TEST_F(MorselTest, ExchangeMatchesSerialScanExactly) {
  const Table* sale = catalog_->GetTable("sale");

  // Serial baseline.
  ResolvedPredicate pred;
  pred.pos = 1;
  pred.kind = PredKind::kGe;
  pred.operand = Value::Double(500.0);
  TableScanOp serial(sale, 0, {pred});
  ExecContext sctx;
  std::vector<Row> serial_rows;
  ASSERT_EQ(ExecStatus::kEof, RunToCompletion(&serial, &sctx, &serial_rows));

  Rng rng(42);
  MorselDispatcher pool(/*helper_threads=*/3);
  for (int trial = 0; trial < 4; ++trial) {
    ParallelPolicy policy;
    policy.dop = 4;
    policy.morsel_rows = rng.UniformInt(16, 517);
    auto exchange = MakeSaleExchange(sale, policy);

    ExecContext ctx;
    ctx.tasks = &pool;
    ctx.dop = policy.dop;
    std::vector<Row> rows;
    ASSERT_EQ(ExecStatus::kEof, RunToCompletion(exchange.get(), &ctx, &rows));

    // Bit-identical row stream in serial rid order.
    ASSERT_EQ(serial_rows.size(), rows.size())
        << "morsel_rows=" << policy.morsel_rows;
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(serial_rows[i], rows[i]) << "row " << i;
    }
    // Counter parity: the exchange's pull-driven rows_produced and the
    // work charged inside the tasks match the serial scan.
    EXPECT_EQ(serial.rows_produced(), exchange->rows_produced());
    EXPECT_TRUE(exchange->eof_seen());
    EXPECT_EQ(sctx.work, ctx.work);
    EXPECT_EQ(ctx.work, ctx.parallel_work);
    const int64_t expect_morsels =
        (sale->num_rows() + policy.morsel_rows - 1) / policy.morsel_rows;
    EXPECT_EQ(expect_morsels, exchange->morsels_run());
    EXPECT_EQ(expect_morsels, ctx.morsels_dispatched);
  }
}

TEST_F(MorselTest, ExchangeRunsSeriallyWithoutTaskRunner) {
  const Table* sale = catalog_->GetTable("sale");
  ParallelPolicy policy;
  policy.dop = 4;
  policy.morsel_rows = 100;
  auto exchange = MakeSaleExchange(sale, policy);
  ExecContext ctx;  // No ctx.tasks: everything runs on this thread.
  std::vector<Row> rows;
  ASSERT_EQ(ExecStatus::kEof, RunToCompletion(exchange.get(), &ctx, &rows));
  EXPECT_GT(rows.size(), 0u);
  EXPECT_EQ(1, exchange->workers_used());
  EXPECT_EQ(0, ctx.parallel_work);  // Serial fallback charges no parallel work.
  EXPECT_GT(ctx.work, 0);
}

// ------------------------------------------ CHECK above a parallel scan

TEST_F(MorselTest, CheckAboveExchangeFiresOnceAtAggregatedThreshold) {
  const Table* sale = catalog_->GetTable("sale");
  const int64_t kHi = 100;  // Far below the table's matching rows.

  const auto run_checked = [&](std::unique_ptr<Operator> child,
                               ExecContext* ctx) {
    CheckSpec spec;
    spec.enabled = true;
    spec.lo = 0;
    spec.hi = static_cast<double>(kHi);
    spec.flavor = CheckFlavor::kLazy;
    spec.edge_set = TableBit(0);
    CheckOp check(std::move(child), spec);
    std::vector<Row> rows;
    return RunToCompletion(&check, ctx, &rows);
  };

  // Serial baseline: CHECK over the full scan.
  ExecContext sctx;
  ResolvedPredicate pred;
  pred.pos = 1;
  pred.kind = PredKind::kGe;
  pred.operand = Value::Double(500.0);
  ASSERT_EQ(ExecStatus::kReoptimize,
            run_checked(std::make_unique<TableScanOp>(
                            sale, 0, std::vector<ResolvedPredicate>{pred}),
                        &sctx));
  ASSERT_TRUE(sctx.reopt.triggered);

  Rng rng(2004);
  MorselDispatcher pool(/*helper_threads=*/3);
  for (int trial = 0; trial < 4; ++trial) {
    ParallelPolicy policy;
    policy.dop = 4;
    policy.morsel_rows = rng.UniformInt(16, 301);
    ExecContext ctx;
    ctx.tasks = &pool;
    ctx.dop = policy.dop;
    ASSERT_EQ(ExecStatus::kReoptimize,
              run_checked(MakeSaleExchange(sale, policy), &ctx))
        << "morsel_rows=" << policy.morsel_rows;

    // The CHECK sits above the exchange's merge point, so it fires exactly
    // once, at the same aggregated count as serial execution — never once
    // per morsel.
    ASSERT_EQ(1u, ctx.check_events.size());
    EXPECT_TRUE(ctx.check_events[0].fired);
    EXPECT_EQ(sctx.check_events[0].count, ctx.check_events[0].count);
    ASSERT_TRUE(ctx.reopt.triggered);
    EXPECT_EQ(sctx.reopt.observed_rows, ctx.reopt.observed_rows);
    EXPECT_EQ(sctx.reopt.exact, ctx.reopt.exact);
    EXPECT_EQ(sctx.reopt.edge_set, ctx.reopt.edge_set);
  }
}

// ------------------------------------------------------------ cancellation

TEST_F(MorselTest, CancelPropagatesFromMorselWorkers) {
  const Table* sale = catalog_->GetTable("sale");
  ParallelPolicy policy;
  policy.dop = 4;
  policy.morsel_rows = 64;
  policy.morsel_stall_ms = 0.5;  // Give the canceller a window.

  MorselDispatcher pool(/*helper_threads=*/3);
  CancelToken token;
  ExecContext ctx;
  ctx.tasks = &pool;
  ctx.dop = policy.dop;
  ctx.cancel = &token;

  auto exchange = MakeSaleExchange(sale, policy);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.RequestCancel();
  });
  std::vector<Row> rows;
  const ExecStatus s = RunToCompletion(exchange.get(), &ctx, &rows);
  canceller.join();
  EXPECT_EQ(ExecStatus::kCancelled, s);
  EXPECT_FALSE(exchange->eof_seen());
}

// ------------------------------------------------- hash-agg pre-aggregation

TEST_F(MorselTest, PreaggregationMatchesSerialMultiset) {
  // Integer aggregates only (COUNT/SUM/MIN/MAX over ints): partial-merge
  // order cannot perturb the values, so the multiset must match exactly.
  QuerySpec q("preagg_emp");
  const int e = q.AddTable("emp");
  q.AddPred({e, 2}, PredKind::kGe, Value::Int(30));  // e_age >= 30
  q.AddGroupBy({e, 1});                              // by e_dept
  q.AddAgg(AggFunc::kCount);
  q.AddAgg(AggFunc::kSum, {e, 2});
  q.AddAgg(AggFunc::kMin, {e, 0});
  q.AddAgg(AggFunc::kMax, {e, 0});

  ProgressiveExecutor serial(*catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> serial_rows = serial.Execute(q);
  ASSERT_TRUE(serial_rows.ok()) << serial_rows.status().ToString();

  MorselDispatcher pool(/*helper_threads=*/3);
  ParallelPolicy policy;
  policy.dop = 4;
  policy.morsel_rows = 32;
  policy.min_parallel_rows = 1;
  policy.preaggregate = true;
  ProgressiveExecutor parallel(*catalog_, OptimizerConfig{}, PopConfig{});
  parallel.set_parallel(&pool, policy);
  ExecutionStats stats;
  Result<std::vector<Row>> par_rows = parallel.Execute(q, &stats);
  ASSERT_TRUE(par_rows.ok()) << par_rows.status().ToString();

  EXPECT_EQ(Canonicalize(serial_rows.value()),
            Canonicalize(par_rows.value()));
  EXPECT_GT(stats.morsels_dispatched, 1);
}

}  // namespace
}  // namespace popdb
