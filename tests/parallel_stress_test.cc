// Concurrency stress for morsel-parallel execution, intended to run under
// TSan (ci.sh builds it with -DPOPDB_SANITIZE=thread): concurrent
// QueryService submissions running morsel-parallel plans with mid-flight
// Cancel() and deadline expiry, and concurrent ProgressiveExecutors
// sharing one dispatcher. Asserts no lost tasks (every ticket completes),
// accounting consistency, and that kCancelled propagates out of morsel
// workers. Labeled "slow" in CMake so `ctest -L fast` skips it.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/pop.h"
#include "runtime/morsel_dispatcher.h"
#include "runtime/query_service.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;
using ::popdb::testing::Canonicalize;

/// Join + aggregation whose base tables are large enough to fan out.
QuerySpec MakeJoinQuery() {
  QuerySpec q("stress_join");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 0}, {s, 0});                          // e_id = s_emp
  q.AddPred({s, 2}, PredKind::kGe, Value::Int(2001));  // s_year >= 2001
  q.AddGroupBy({e, 1});                                // by e_dept
  q.AddAgg(AggFunc::kCount);
  q.AddAgg(AggFunc::kMax, {s, 2});
  return q;
}

QuerySpec MakeScanQuery() {
  QuerySpec q("stress_scan");
  const int s = q.AddTable("sale");
  q.AddPred({s, 1}, PredKind::kGe, Value::Double(250.0));
  q.AddGroupBy({s, 2});
  q.AddAgg(AggFunc::kCount);
  q.AddAgg(AggFunc::kMin, {s, 0});
  return q;
}

class ParallelStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    BuildToyCatalog(catalog_, /*emp_rows=*/500, /*sale_rows=*/6000);
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
};

Catalog* ParallelStressTest::catalog_ = nullptr;

TEST_F(ParallelStressTest, ServiceSurvivesConcurrentParallelQueries) {
  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 256;
  config.intra_query_dop = 4;
  config.morsel_rows = 64;
  config.min_parallel_rows = 128;
  QueryService service(*catalog_, config);

  // Expected results, computed serially up front.
  ProgressiveExecutor ref(*catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> join_ref = ref.Execute(MakeJoinQuery());
  Result<std::vector<Row>> scan_ref = ref.Execute(MakeScanQuery());
  ASSERT_TRUE(join_ref.ok());
  ASSERT_TRUE(scan_ref.ok());
  const std::vector<std::string> join_rows = Canonicalize(join_ref.value());
  const std::vector<std::string> scan_rows = Canonicalize(scan_ref.value());

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  std::atomic<int> wrong_results{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        const bool join = rng.Bernoulli(0.5);
        SubmitOptions opts;
        if (rng.Bernoulli(0.25)) opts.priority = QueryPriority::kHigh;
        const int fate = static_cast<int>(rng.UniformInt(0, 3));
        if (fate == 1) opts.deadline_ms = rng.UniformDouble() * 4.0;
        Result<std::shared_ptr<QueryTicket>> ticket = service.Submit(
            join ? MakeJoinQuery() : MakeScanQuery(), opts);
        if (!ticket.ok()) continue;  // Admission bounce is acceptable.
        if (fate == 2) {
          // Mid-flight cancel from the client thread.
          std::this_thread::sleep_for(std::chrono::microseconds(
              rng.UniformInt(0, 2000)));
          ticket.value()->Cancel();
        }
        const QueryResult& result = ticket.value()->Wait();
        switch (result.status.code()) {
          case StatusCode::kOk:
            if (Canonicalize(result.rows) != (join ? join_rows : scan_rows)) {
              wrong_results.fetch_add(1);
            }
            break;
          case StatusCode::kCancelled:
          case StatusCode::kDeadlineExceeded:
            break;  // Expected fates under cancel/deadline pressure.
          default:
            wrong_results.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Shutdown();

  EXPECT_EQ(0, wrong_results.load());
  const ServiceStatsSnapshot stats = service.Stats();
  // No lost tickets: every admitted query reached exactly one terminal
  // state.
  EXPECT_EQ(stats.admitted, stats.completed + stats.cancelled +
                                stats.deadline_expired + stats.failed);
  EXPECT_EQ(0, stats.failed);
  EXPECT_EQ(0, stats.queries_in_flight);
  EXPECT_GT(stats.completed, 0);

  // The morsel metrics are exported and consistent with execution.
  const std::string text = service.MetricsText();
  EXPECT_NE(std::string::npos, text.find("popdb_morsels_dispatched_total"));
  EXPECT_NE(std::string::npos, text.find("popdb_morsel_tasks_submitted"));
}

TEST_F(ParallelStressTest, ExecutorsShareOneDispatcher) {
  // Several independent ProgressiveExecutors hammer one owned-thread
  // dispatcher concurrently; each must still observe its own correct
  // result (task groups never leak work across queries).
  MorselDispatcher pool(/*helper_threads=*/3);

  ProgressiveExecutor ref(*catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> scan_ref = ref.Execute(MakeScanQuery());
  ASSERT_TRUE(scan_ref.ok());
  const std::vector<std::string> want = Canonicalize(scan_ref.value());

  constexpr int kThreads = 4;
  constexpr int kRepeats = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + static_cast<uint64_t>(t));
      for (int i = 0; i < kRepeats; ++i) {
        ParallelPolicy policy;
        policy.dop = 4;
        policy.morsel_rows = rng.UniformInt(32, 256);
        policy.min_parallel_rows = 1;
        ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
        exec.set_parallel(&pool, policy);
        Result<std::vector<Row>> rows = exec.Execute(MakeScanQuery());
        if (!rows.ok() || Canonicalize(rows.value()) != want) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(0, mismatches.load());
}

TEST_F(ParallelStressTest, CancelledPropagatesFromAnyMorselWorker) {
  MorselDispatcher pool(/*helper_threads=*/3);
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    ParallelPolicy policy;
    policy.dop = 4;
    policy.morsel_rows = 32;
    policy.min_parallel_rows = 1;
    policy.morsel_stall_ms = 0.5;  // Stretch execution into the cancel window.

    CancelToken token;
    ProgressiveExecutor exec(*catalog_, OptimizerConfig{}, PopConfig{});
    exec.set_parallel(&pool, policy);
    exec.set_cancel_token(&token);

    const int64_t delay_us = rng.UniformInt(0, 4000);
    std::thread canceller([&token, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      token.RequestCancel();
    });
    Result<std::vector<Row>> rows = exec.Execute(MakeScanQuery());
    canceller.join();
    // Either the query finished before the cancel landed, or it unwound as
    // cancelled — never an error, never a hang.
    if (!rows.ok()) {
      EXPECT_EQ(StatusCode::kCancelled, rows.status().code())
          << rows.status().ToString();
    }
  }
}

TEST_F(ParallelStressTest, ShutdownWithQueuedMorselTasksLosesNothing) {
  // Dispatcher shut down while a task group still has offered tasks: the
  // group steals everything back and completes.
  for (int i = 0; i < 16; ++i) {
    auto pool = std::make_unique<MorselDispatcher>(
        MorselDispatcher::ExternalWorkersTag{});
    constexpr int kItems = 64;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::thread worker([&] {
      TaskGroup::Run(pool.get(), 8, [&](int) {
        while (next.fetch_add(1) < kItems) done.fetch_add(1);
      });
    });
    pool->Shutdown();  // Races with the submissions above.
    worker.join();
    EXPECT_EQ(kItems, done.load());
  }
}

}  // namespace
}  // namespace popdb
