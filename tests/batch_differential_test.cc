// Row-vs-batch differential oracle (the headline test for vectorized
// execution): every query of the TPC-H paper subset (plain + parameter
// marker) and the DMV workload runs once on the row-at-a-time engine
// (batch_rows = 1) and once per tested execution batch size, including
// randomized sizes. The two engines must be bit-identical in:
//   - the returned row multiset,
//   - every CHECK evaluation (edge set, flavor, site, observed count,
//     fired or not) — i.e. batch-boundary checks decide exactly like
//     per-row checks,
//   - the number of re-optimizations and attempts,
//   - the feedback cardinalities harvested into the cross-query store.
// The plan-cache execution path is covered by a dedicated test below; the
// dist subplan path has its own differential in dist_test.cc.
//
// Set POPDB_EQUIV_LIGHT=1 to run a reduced corpus (used by the TSan CI
// stage, where the full sweep is too slow).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"
#include "tests/test_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;

bool LightMode() {
  const char* v = std::getenv("POPDB_EQUIV_LIGHT");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Everything about one execution that must be engine-invariant.
struct Outcome {
  bool ok = false;
  std::string status;
  std::vector<std::string> rows;  // Canonicalized (sorted) result set.
  int reopts = 0;
  size_t attempts = 0;
  /// (edge_set, flavor, site, count, fired) per checkpoint evaluation.
  std::vector<std::tuple<TableSet, int, int, int64_t, bool>> check_events;
  /// Learned cardinalities by subplan signature: (exact, lower_bound).
  std::map<std::string, std::pair<double, double>> learned;
};

Outcome RunOnce(const Catalog& catalog, const QuerySpec& query,
                int64_t batch_rows, PlanCache* cache = nullptr,
                QueryFeedbackStore* persistent_store = nullptr) {
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  QueryFeedbackStore local_store;
  QueryFeedbackStore* store =
      persistent_store != nullptr ? persistent_store : &local_store;
  exec.set_cross_query_store(store);
  if (cache != nullptr) exec.set_plan_cache(cache);
  ParallelPolicy policy;
  policy.batch_rows = batch_rows;
  exec.set_parallel(nullptr, policy);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(query, &stats);

  Outcome o;
  o.ok = rows.ok();
  o.status = rows.ok() ? "" : rows.status().ToString();
  if (rows.ok()) o.rows = Canonicalize(rows.value());
  o.reopts = stats.reopts;
  o.attempts = stats.attempts.size();
  for (const CheckEvent& ev : stats.check_events) {
    o.check_events.emplace_back(ev.edge_set, static_cast<int>(ev.flavor),
                                static_cast<int>(ev.site), ev.count,
                                ev.fired);
  }
  for (const auto& [sig, fb] : store->Dump()) {
    o.learned.emplace(sig, std::make_pair(fb.exact, fb.lower_bound));
  }
  return o;
}

void ExpectSameOutcome(const Outcome& row_engine, const Outcome& batched,
                       const std::string& label) {
  ASSERT_EQ(row_engine.ok, batched.ok)
      << label << ": " << row_engine.status << " vs " << batched.status;
  if (!row_engine.ok) return;
  EXPECT_EQ(row_engine.rows, batched.rows)
      << label << ": result rows differ";
  EXPECT_EQ(row_engine.reopts, batched.reopts)
      << label << ": re-optimization count differs";
  EXPECT_EQ(row_engine.attempts, batched.attempts)
      << label << ": attempt count differs";
  EXPECT_EQ(row_engine.check_events, batched.check_events)
      << label << ": CHECK decisions differ";
  EXPECT_EQ(row_engine.learned, batched.learned)
      << label << ": harvested feedback differs";
}

/// Batch sizes per query: pathological small sizes that land CHECK
/// thresholds mid-batch, the production default, and a randomized size.
std::vector<int64_t> BatchSizes(Rng* rng) {
  if (LightMode()) return {3, 1024};
  return {2, 3, 7, 1024, rng->UniformInt(2, 2048)};
}

void SweepCorpus(const Catalog& catalog,
                 const std::vector<QuerySpec>& corpus, const char* tag) {
  Rng rng(0x51ed2705);
  for (const QuerySpec& q : corpus) {
    const Outcome row_engine = RunOnce(catalog, q, /*batch_rows=*/1);
    for (int64_t batch : BatchSizes(&rng)) {
      SCOPED_TRACE(std::string(tag) + "/" + q.name() +
                   " batch_rows=" + std::to_string(batch));
      const Outcome batched = RunOnce(catalog, q, batch);
      ExpectSameOutcome(row_engine, batched,
                        std::string(tag) + "/" + q.name());
    }
  }
}

TEST(BatchDifferentialTest, TpchPaperQueriesPlainAndMarker) {
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  std::vector<QuerySpec> corpus;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum));
    if (LightMode()) break;
  }
  // Parameter-marker variants inject estimation errors so checks actually
  // fire and re-optimization runs under both engines.
  tpch::QueryOptions marked;
  marked.param_markers = true;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum, marked));
    if (LightMode()) break;
  }
  SweepCorpus(catalog, corpus, "tpch");
}

TEST(BatchDifferentialTest, DmvWorkload) {
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = 0.2;
  ASSERT_TRUE(dmv::BuildCatalog(gen, &catalog).ok());

  dmv::WorkloadConfig wl;
  if (LightMode()) wl.num_queries = 4;
  SweepCorpus(catalog, dmv::MakeWorkload(wl), "dmv");
}

TEST(BatchDifferentialTest, Q10SelectivitySweepAgreesAtEverySize) {
  // The Figure 11 misestimated-marker query is the canonical "CHECK
  // fires, plan changes" scenario; every selectivity point must fire the
  // same checks and re-optimize the same number of times at any batch
  // size — including sizes that put the threshold row mid-batch.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  Rng rng(0xabcd1234);
  const std::vector<int> sels =
      LightMode() ? std::vector<int>{50} : std::vector<int>{1, 10, 50, 90};
  for (int sel : sels) {
    const QuerySpec q = tpch::MakeQ10Selectivity(sel, /*use_marker=*/true);
    const Outcome row_engine = RunOnce(catalog, q, /*batch_rows=*/1);
    for (int64_t batch : BatchSizes(&rng)) {
      SCOPED_TRACE("q10 sel=" + std::to_string(sel) +
                   " batch_rows=" + std::to_string(batch));
      const Outcome batched = RunOnce(catalog, q, batch);
      ExpectSameOutcome(row_engine, batched, "q10");
    }
  }
}

TEST(BatchDifferentialTest, PlanCachePathAgrees) {
  // Two worlds (row engine, batched engine), each with its own plan cache
  // and persistent feedback store. Every query runs three times per world:
  // the cache key digests the seeded feedback, so the first repeat misses,
  // the second installs under the post-feedback digest, and the third is
  // served through the cached-plan path; all repeats must match across
  // engines.
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = 0.002;
  ASSERT_TRUE(tpch::BuildCatalog(gen, &catalog).ok());

  std::vector<QuerySpec> corpus;
  tpch::QueryOptions marked;
  marked.param_markers = true;
  for (int qnum : tpch::PaperQueries()) {
    corpus.push_back(tpch::MakeQuery(qnum, marked));
    if (LightMode()) break;
  }

  PlanCache cache_row, cache_batch;
  QueryFeedbackStore store_row, store_batch;
  for (const QuerySpec& q : corpus) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      SCOPED_TRACE("plan_cache/" + q.name() +
                   " repeat=" + std::to_string(repeat));
      const Outcome row_engine =
          RunOnce(catalog, q, /*batch_rows=*/1, &cache_row, &store_row);
      const Outcome batched =
          RunOnce(catalog, q, /*batch_rows=*/1024, &cache_batch,
                  &store_batch);
      ExpectSameOutcome(row_engine, batched, "plan_cache/" + q.name());
    }
  }
  // The cached world actually exercised the cache.
  EXPECT_GT(cache_batch.stats().hits + cache_batch.stats().validity_hits,
            0u);
}

}  // namespace
}  // namespace popdb
