#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/feedback.h"
#include "runtime/query_service.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;
using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;

// ------------------------------------------------------------ fixtures.

/// Same three-table join workload as concurrency_test.cc.
QuerySpec ToyQuery(int variant) {
  QuerySpec q("toy" + std::to_string(variant));
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(30 + variant * 5));
  q.AddGroupBy({d, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// Two tables whose equi-join explodes to rows^2 / 50 output rows: a query
/// slow enough to still be running when the test cancels it or queues work
/// behind it, but with a COUNT on top so memory stays bounded.
void BuildSlowCatalog(Catalog* catalog, int64_t rows) {
  Rng rng(11);
  Table a("big_a", Schema({{"k", ValueType::kInt}, {"va", ValueType::kInt}}));
  for (int64_t i = 0; i < rows; ++i) {
    a.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(a)).ok());
  Table b("big_b", Schema({{"k", ValueType::kInt}, {"vb", ValueType::kInt}}));
  for (int64_t i = 0; i < rows; ++i) {
    b.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(b)).ok());
  catalog->AnalyzeAll();
}

QuerySpec SlowQuery(const std::string& name = "slow") {
  QuerySpec q(name);
  const int a = q.AddTable("big_a");
  const int b = q.AddTable("big_b");
  q.AddJoin({a, 0}, {b, 0});
  q.AddGroupBy({a, 0});
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// Orders/items cardinality trap (see extensions_test.cc): correlated
/// predicates fool the static optimizer, so the first progressive run
/// re-optimizes at least once.
void BuildTrapCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"clazz", ValueType::kInt},
                                 {"subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

QuerySpec TrapQuery(const std::string& name = "trap") {
  QuerySpec q(name);
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

// --------------------------------------------------------- basic service.

TEST(QueryServiceTest, ExecutesQueriesAndMatchesReference) {
  Catalog catalog;
  BuildToyCatalog(&catalog, /*emp_rows=*/400, /*sale_rows=*/3000);

  CollectingTraceSink sink;
  ServiceConfig config;
  config.num_workers = 4;
  config.trace_sink = &sink;
  QueryService service(catalog, config);

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int v = 0; v < 6; ++v) {
    Result<std::shared_ptr<QueryTicket>> t = service.Submit(ToyQuery(v));
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets.push_back(t.value());
  }
  for (int v = 0; v < 6; ++v) {
    const QueryResult& r = tickets[static_cast<size_t>(v)]->Wait();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, ToyQuery(v))),
              Canonicalize(r.rows));
    EXPECT_EQ("ok", r.trace.outcome);
    EXPECT_GE(r.trace.total_ms, r.trace.execute_ms);
  }
  service.Shutdown();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(6, stats.submitted);
  EXPECT_EQ(6, stats.admitted);
  EXPECT_EQ(6, stats.completed);
  EXPECT_EQ(0, stats.rejected);
  EXPECT_EQ(0, stats.queries_in_flight);
  EXPECT_GE(stats.p95_latency_ms, stats.p50_latency_ms);
  EXPECT_EQ(6, sink.count());
}

TEST(QueryServiceTest, ExecuteSyncReturnsTraceJson) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(catalog, config);
  QueryResult r = service.ExecuteSync(ToyQuery(0));
  ASSERT_TRUE(r.status.ok());
  const std::string json = r.trace.ToJson();
  EXPECT_NE(std::string::npos, json.find("\"outcome\":\"ok\""));
  EXPECT_NE(std::string::npos, json.find("\"query\":\"toy0\""));
  EXPECT_NE(std::string::npos, json.find("\"attempts\":["));
}

TEST(QueryServiceTest, SubmitAfterShutdownFails) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  QueryService service(catalog, ServiceConfig{});
  service.Shutdown();
  Result<std::shared_ptr<QueryTicket>> t = service.Submit(ToyQuery(0));
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, t.status().code());
}

TEST(QueryServiceTest, ShutdownDrainsQueuedQueries) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(catalog, config);
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int v = 0; v < 5; ++v) {
    Result<std::shared_ptr<QueryTicket>> t = service.Submit(ToyQuery(v));
    ASSERT_TRUE(t.ok());
    tickets.push_back(t.value());
  }
  service.Shutdown(/*drain=*/true);
  for (const auto& t : tickets) {
    EXPECT_TRUE(t->done());
    EXPECT_TRUE(t->Wait().status.ok());
  }
}

// ----------------------------------------------------- admission control.

TEST(QueryServiceTest, RejectsWhenAdmissionQueueFull) {
  Catalog catalog;
  BuildSlowCatalog(&catalog, /*rows=*/6000);

  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  QueryService service(catalog, config);

  // One blocker plus three more submissions: whether or not the worker has
  // already popped the blocker, at least one of the three exceeds the
  // 2-slot queue and must bounce with ResourceExhausted.
  std::vector<std::shared_ptr<QueryTicket>> admitted;
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    Result<std::shared_ptr<QueryTicket>> t =
        service.Submit(SlowQuery("slow" + std::to_string(i)));
    if (t.ok()) {
      admitted.push_back(t.value());
    } else {
      EXPECT_EQ(StatusCode::kResourceExhausted, t.status().code());
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_LE(static_cast<int>(admitted.size()), 3);

  for (const auto& t : admitted) t->Cancel();
  service.Shutdown();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(4, stats.submitted);
  EXPECT_EQ(rejected, stats.rejected);
  EXPECT_EQ(0, stats.queries_in_flight);
}

// ------------------------------------------- cancellation and deadlines.

TEST(QueryServiceTest, DeadlineCancelsMidPipeline) {
  Catalog catalog;
  BuildSlowCatalog(&catalog, /*rows=*/6000);

  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(catalog, config);

  SubmitOptions opts;
  opts.deadline_ms = 25.0;
  QueryResult r = service.ExecuteSync(SlowQuery(), opts);
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, r.status.code());
  EXPECT_EQ("deadline", r.trace.outcome);
  EXPECT_TRUE(r.rows.empty());
  service.Shutdown();
  EXPECT_EQ(1, service.Stats().deadline_expired);
}

TEST(QueryServiceTest, ServiceDefaultDeadlineApplies) {
  Catalog catalog;
  BuildSlowCatalog(&catalog, /*rows=*/6000);

  ServiceConfig config;
  config.num_workers = 1;
  config.default_deadline_ms = 25.0;
  QueryService service(catalog, config);
  QueryResult r = service.ExecuteSync(SlowQuery());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, r.status.code());
  service.Shutdown();
}

TEST(QueryServiceTest, ExplicitCancelUnwindsRunningQuery) {
  Catalog catalog;
  BuildSlowCatalog(&catalog, /*rows=*/6000);

  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(catalog, config);

  Result<std::shared_ptr<QueryTicket>> running = service.Submit(SlowQuery("r"));
  ASSERT_TRUE(running.ok());
  // Second query sits in the queue behind the first; cancelling it must
  // finish it without ever executing.
  Result<std::shared_ptr<QueryTicket>> queued = service.Submit(SlowQuery("q"));
  ASSERT_TRUE(queued.ok());
  queued.value()->Cancel();

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  running.value()->Cancel();

  const QueryResult& rr = running.value()->Wait();
  EXPECT_EQ(StatusCode::kCancelled, rr.status.code());
  EXPECT_EQ("cancelled", rr.trace.outcome);

  const QueryResult& qr = queued.value()->Wait();
  EXPECT_EQ(StatusCode::kCancelled, qr.status.code());
  EXPECT_TRUE(qr.trace.attempts.empty());  // Never started executing.

  service.Shutdown();
  EXPECT_EQ(2, service.Stats().cancelled);
}

// -------------------------------------------------------- priority lanes.

TEST(QueryServiceTest, HighPriorityLaneDispatchesFirst) {
  Catalog catalog;
  BuildSlowCatalog(&catalog, /*rows=*/3000);

  CollectingTraceSink sink;
  ServiceConfig config;
  config.num_workers = 1;
  config.trace_sink = &sink;
  QueryService service(catalog, config);

  // The blocker occupies the single worker while the rest are queued, so
  // dispatch order is decided purely by lane + FIFO position.
  Result<std::shared_ptr<QueryTicket>> blocker =
      service.Submit(SlowQuery("blocker"));
  ASSERT_TRUE(blocker.ok());

  std::vector<std::shared_ptr<QueryTicket>> rest;
  for (int i = 0; i < 3; ++i) {
    auto t = service.Submit(SlowQuery("normal" + std::to_string(i)));
    ASSERT_TRUE(t.ok());
    rest.push_back(t.value());
  }
  SubmitOptions high;
  high.priority = QueryPriority::kHigh;
  for (int i = 0; i < 2; ++i) {
    auto t = service.Submit(SlowQuery("high" + std::to_string(i)), high);
    ASSERT_TRUE(t.ok());
    rest.push_back(t.value());
  }
  // Cancel the queued queries so the test doesn't run five slow joins;
  // cancelled tickets still finish (and emit traces) in dispatch order.
  for (const auto& t : rest) t->Cancel();
  blocker.value()->Wait();
  for (const auto& t : rest) t->Wait();
  service.Shutdown();

  std::vector<QueryTrace> traces = sink.Drain();
  ASSERT_EQ(6u, traces.size());
  auto pos = [&traces](const std::string& name) {
    for (size_t i = 0; i < traces.size(); ++i) {
      if (traces[i].query_name == name) return i;
    }
    ADD_FAILURE() << "missing trace for " << name;
    return traces.size();
  };
  // The worker grabs either the blocker or high0 before the rest are
  // queued; every later dispatch decision is lane + FIFO, so: highs keep
  // FIFO order and beat every normal, and normals keep FIFO order behind
  // the blocker (the normal lane's head).
  EXPECT_LT(pos("high0"), pos("high1"));
  EXPECT_LT(pos("high1"), pos("normal0"));
  EXPECT_LT(pos("blocker"), pos("normal0"));
  EXPECT_LT(pos("normal0"), pos("normal1"));
  EXPECT_LT(pos("normal1"), pos("normal2"));
}

// ------------------------------------------------- shared feedback memory.

TEST(QueryServiceTest, SharedFeedbackConvergesAcrossQueries) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);

  ServiceConfig config;
  config.num_workers = 1;
  config.share_feedback = true;
  QueryService service(catalog, config);

  // First run hits the correlated-predicate trap and re-optimizes; the
  // actual cardinalities it learns land in the shared store, so the second
  // identical query plans with exact numbers and runs straight through.
  QueryResult first = service.ExecuteSync(TrapQuery("trap_a"));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_GE(first.trace.reopts, 1);

  QueryResult second = service.ExecuteSync(TrapQuery("trap_b"));
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(0, second.trace.reopts);
  EXPECT_EQ(Canonicalize(first.rows), Canonicalize(second.rows));
  EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, TrapQuery())),
            Canonicalize(second.rows));

  service.Shutdown();
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(1, stats.reoptimized_queries);
  EXPECT_GE(stats.reopt_attempts, 1);

  // The firing checkpoint left a record in the shared check history.
  int64_t total_fires = 0;
  for (const auto& [sig, fires] : service.CheckHistory()) total_fires += fires;
  EXPECT_GE(total_fires, 1);
}

TEST(QueryServiceTest, FeedbackIsolatedPerSessionWhenSharingDisabled) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);

  ServiceConfig config;
  config.num_workers = 1;
  config.share_feedback = false;
  QueryService service(catalog, config);

  SubmitOptions session1;
  session1.session_id = 1;
  SubmitOptions session2;
  session2.session_id = 2;

  QueryResult a = service.ExecuteSync(TrapQuery("s1_first"), session1);
  ASSERT_TRUE(a.status.ok());
  EXPECT_GE(a.trace.reopts, 1);

  // A different session must not see session 1's feedback: it walks into
  // the same trap.
  QueryResult b = service.ExecuteSync(TrapQuery("s2_first"), session2);
  ASSERT_TRUE(b.status.ok());
  EXPECT_GE(b.trace.reopts, 1);

  // Session 1's own memory still works.
  QueryResult c = service.ExecuteSync(TrapQuery("s1_second"), session1);
  ASSERT_TRUE(c.status.ok());
  EXPECT_EQ(0, c.trace.reopts);

  service.Shutdown();
}

// ------------------------------------------------------------------ soak.

TEST(QueryServiceTest, MixedEightThreadSoak) {
  Catalog catalog;
  BuildToyCatalog(&catalog, /*emp_rows=*/400, /*sale_rows=*/3000);

  constexpr int kVariants = 6;
  std::vector<std::vector<std::string>> expected;
  for (int v = 0; v < kVariants; ++v) {
    expected.push_back(Canonicalize(ReferenceExecute(catalog, ToyQuery(v))));
  }

  CollectingTraceSink sink;
  ServiceConfig config;
  config.num_workers = 8;
  config.queue_capacity = 256;
  config.trace_sink = &sink;
  QueryService service(catalog, config);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        const int variant = (i + t) % kVariants;
        SubmitOptions opts;
        opts.priority =
            (i % 3 == 0) ? QueryPriority::kHigh : QueryPriority::kNormal;
        Result<std::shared_ptr<QueryTicket>> ticket =
            service.Submit(ToyQuery(variant), opts);
        if (!ticket.ok()) {
          ++failures;
          continue;
        }
        const QueryResult& r = ticket.value()->Wait();
        if (!r.status.ok()) {
          ++failures;
        } else if (Canonicalize(r.rows) !=
                   expected[static_cast<size_t>(variant)]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.Shutdown();

  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, mismatches.load());
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(kSubmitters * kPerThread, stats.submitted);
  EXPECT_EQ(kSubmitters * kPerThread, stats.completed);
  EXPECT_EQ(0, stats.queries_in_flight);
  EXPECT_EQ(kSubmitters * kPerThread, sink.count());
}

// ------------------------------------------------------------ plan cache.

TEST(QueryServiceTest, PlanCacheServesRepeatsAndReportsInTrace) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  const std::vector<std::string> expected =
      Canonicalize(ReferenceExecute(catalog, ToyQuery(1)));

  QueryService service(catalog, ServiceConfig{});  // Cache on by default.
  ASSERT_NE(nullptr, service.plan_cache());

  std::vector<std::string> outcomes;
  for (int i = 0; i < 6; ++i) {
    QueryResult r = service.ExecuteSync(ToyQuery(1));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(expected, Canonicalize(r.rows));
    outcomes.push_back(r.trace.plan_cache);
  }
  // Warm-up: cold install, then digest-stale reinstalls while the shared
  // store converges, then steady-state hits.
  EXPECT_EQ("miss_cold", outcomes[0]);
  EXPECT_EQ("hit", outcomes[4]);
  EXPECT_EQ("hit", outcomes[5]);
  EXPECT_NE(std::string::npos,
            service.ExecuteSync(ToyQuery(1)).trace.ToJson().find(
                "\"plan_cache\":\"hit\""));

  const std::string metrics = service.MetricsText();
  EXPECT_NE(std::string::npos, metrics.find("popdb_plan_cache_hits"));
  EXPECT_NE(std::string::npos, metrics.find("popdb_plan_cache_hit_age_ms"));
  EXPECT_GE(service.plan_cache()->stats().hits, 2);
  service.Shutdown();
}

TEST(QueryServiceTest, PlanCacheCanBeDisabled) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  ServiceConfig config;
  config.plan_cache_entries = 0;
  QueryService service(catalog, config);
  EXPECT_EQ(nullptr, service.plan_cache());

  QueryResult r = service.ExecuteSync(ToyQuery(0));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ("none", r.trace.plan_cache);
  EXPECT_EQ(std::string::npos,
            service.MetricsText().find("popdb_plan_cache"));
  service.Shutdown();
}

/// N submitters hammer one query signature while a writer thread bumps the
/// shared store's external epoch (modelling concurrent stats refreshes):
/// no torn entries, consistent counters, correct results throughout. Run
/// under TSan in CI.
TEST(QueryServiceTest, PlanCacheConcurrentHammerWithEpochWriter) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  const std::vector<std::string> expected =
      Canonicalize(ReferenceExecute(catalog, ToyQuery(2)));

  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 256;
  QueryService service(catalog, config);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 20;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    while (!stop.load()) {
      service.shared_feedback().BumpEpoch();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryResult r = service.ExecuteSync(ToyQuery(2));
        if (!r.status.ok()) {
          ++failures;
        } else if (Canonicalize(r.rows) != expected) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  stop.store(true);
  writer.join();
  service.Shutdown();

  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, mismatches.load());
  const PlanCache::Stats stats = service.plan_cache()->stats();
  EXPECT_EQ(kSubmitters * kPerThread, stats.lookups);
  EXPECT_EQ(stats.lookups,
            stats.hits + stats.validity_hits + stats.misses());
  // The epoch writer forces invalidations but can never corrupt entries;
  // at most one entry exists for the single signature.
  EXPECT_LE(service.plan_cache()->size(), 1);
}

// -------------------------------------------- FeedbackCache thread safety.

TEST(FeedbackCacheConcurrencyTest, ConcurrentRecordAndSnapshot) {
  FeedbackCache cache;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIters = 2000;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&cache, w]() {
      for (int i = 0; i < kIters; ++i) {
        const TableSet set = TableSet{1} << (i % 8);
        if ((i + w) % 2 == 0) {
          cache.RecordExact(set, 100.0 + i % 7);
        } else {
          cache.RecordLowerBound(set, static_cast<double>(i));
        }
      }
    });
  }
  std::atomic<int64_t> observed{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&cache, &observed]() {
      for (int i = 0; i < kIters; ++i) {
        const FeedbackMap snap = cache.Snapshot();
        observed += static_cast<int64_t>(snap.size());
        (void)cache.empty();
        (void)cache.ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const FeedbackMap final_map = cache.Snapshot();
  EXPECT_EQ(8u, final_map.size());
  for (const auto& [set, fb] : final_map) {
    // Exact observations were recorded for every set and dominate.
    EXPECT_GE(fb.exact, 100.0);
    EXPECT_LE(fb.exact, 106.0);
  }
  EXPECT_GE(observed.load(), 0);
}

}  // namespace
}  // namespace popdb
