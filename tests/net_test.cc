// End-to-end tests of the network front end: wire framing, the request
// protocol, session bookkeeping, cancellation and deadlines over TCP,
// malformed-input hardening, and cooperative shutdown. Every test runs a
// real NetServer on a loopback ephemeral port.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/span.h"
#include "common/string_util.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/binder.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

/// Orders table with 20 classes plus a pair of big tables whose equi-join
/// (50 hot keys, 8000 rows per side) runs long enough that a cancel or a
/// short deadline always lands mid-execution.
void BuildNetCatalog(Catalog* catalog) {
  Rng rng(7);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt}}));
  for (int64_t i = 0; i < 2000; ++i) {
    orders.AppendRow({Value::Int(i), Value::Int(i % 20)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table big_a("big_a",
              Schema({{"a_k", ValueType::kInt}, {"a_v", ValueType::kInt}}));
  Table big_b("big_b",
              Schema({{"b_k", ValueType::kInt}, {"b_v", ValueType::kInt}}));
  for (int64_t i = 0; i < 8000; ++i) {
    big_a.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
    big_b.AppendRow({Value::Int(rng.UniformInt(0, 49)), Value::Int(i)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(big_a)).ok());
  POPDB_DCHECK(catalog->AddTable(std::move(big_b)).ok());
  catalog->AnalyzeAll();
}

constexpr const char* kSlowSql =
    "SELECT a_k, COUNT(*) FROM big_a, big_b WHERE a_k = b_k GROUP BY a_k";

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildNetCatalog(&catalog_);
    ServiceConfig service_config;
    service_config.share_feedback = true;
    service_config.trace_sink = &traces_;
    service_ = std::make_unique<QueryService>(catalog_, service_config);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (service_ != nullptr) service_->Shutdown(/*drain=*/false);
  }

  /// Starts the server with `config` (host/port are pinned to loopback +
  /// ephemeral) and returns its port.
  int StartServer(net::NetServerConfig config = {}) {
    config.host = "127.0.0.1";
    config.port = 0;
    server_ = std::make_unique<net::NetServer>(service_.get(), &traces_,
                                               config);
    const Status s = server_->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    return server_->port();
  }

  net::Client Connect() {
    Result<net::Client> c = net::Client::Connect("127.0.0.1",
                                                 server_->port());
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).TakeValue();
  }

  Catalog catalog_;
  TraceStore traces_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<net::NetServer> server_;
};

// ----------------------------------------------------------- handshake

TEST_F(NetTest, HandshakeAssignsDistinctSessions) {
  StartServer();
  net::Client a = Connect();
  net::Client b = Connect();
  EXPECT_GT(a.session_id(), 0u);
  EXPECT_GT(b.session_id(), 0u);
  EXPECT_NE(a.session_id(), b.session_id());
  EXPECT_EQ(2, server_->sessions().open_sessions());
  a.Close();
  b.Close();
}

TEST_F(NetTest, WrongProtocolVersionIsRejected) {
  StartServer();
  Result<int> fd = net::ConnectTcp("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(fd.ok());
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("hello");
  w.Key("protocol").Int(net::kProtocolVersion + 7);
  w.EndObject();
  ASSERT_TRUE(net::WriteFrame(fd.value(), w.str(), 2000.0).ok());
  net::FrameResult reply =
      net::ReadFrame(fd.value(), net::kAbsoluteMaxFrameBytes, 2000.0);
  ASSERT_TRUE(reply.ok());
  Result<JsonValue> parsed = JsonParse(reply.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ("error", parsed.value().GetString("type", ""));
  EXPECT_EQ("invalid_argument", parsed.value().GetString("code", ""));
  net::CloseFd(fd.value());
}

TEST_F(NetTest, RequestBeforeHelloIsRejected) {
  StartServer();
  Result<int> fd = net::ConnectTcp("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(fd.ok());
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("metrics");
  w.EndObject();
  ASSERT_TRUE(net::WriteFrame(fd.value(), w.str(), 2000.0).ok());
  net::FrameResult reply =
      net::ReadFrame(fd.value(), net::kAbsoluteMaxFrameBytes, 2000.0);
  ASSERT_TRUE(reply.ok());
  Result<JsonValue> parsed = JsonParse(reply.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ("error", parsed.value().GetString("type", ""));
  EXPECT_NE(std::string::npos,
            parsed.value().GetString("message", "").find("hello"));
  net::CloseFd(fd.value());
}

// ------------------------------------------------------------ streaming

TEST_F(NetTest, StreamedRowsMatchInProcessExecution) {
  StartServer();
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class ORDER BY 1";

  Result<sql::BoundStatement> bound = sql::ParseSql(catalog_, sql);
  ASSERT_TRUE(bound.ok());
  QueryResult expected =
      service_->ExecuteSync(std::move(bound.value().query));
  ASSERT_TRUE(expected.status.ok());

  net::Client client = Connect();
  // batch_rows=3 over 20 groups forces several row_batch frames.
  net::ClientQueryOptions opts;
  opts.batch_rows = 3;
  net::ClientQueryResult got = client.Query(sql, opts);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ("ok", got.outcome);
  EXPECT_EQ(testing::Canonicalize(expected.rows),
            testing::Canonicalize(got.rows));
  client.Close();
}

TEST_F(NetTest, ParameterMarkersBindOverTheWire) {
  StartServer();
  net::Client client = Connect();
  net::ClientQueryOptions opts;
  opts.params.push_back(Value::Int(3));
  net::ClientQueryResult got =
      client.Query("SELECT COUNT(*) FROM orders WHERE o_class = ?", opts);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  ASSERT_EQ(1u, got.rows.size());
  EXPECT_EQ(100, got.rows[0][0].AsInt());  // 2000 rows over 20 classes.
  client.Close();
}

TEST_F(NetTest, SqlErrorsCarryAnnotatedMessageAndKeepConnection) {
  StartServer();
  net::Client client = Connect();
  net::ClientQueryResult bad = client.Query("SELECT zap FROM orders");
  EXPECT_FALSE(bad.status.ok());
  // The connection survives: the same session keeps working.
  net::ClientQueryResult good = client.Query("SELECT COUNT(*) FROM orders");
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
  client.Close();
}

// --------------------------------------------------- cancel + deadlines

TEST_F(NetTest, CancelFromSecondConnectionStopsRunningQuery) {
  StartServer();
  net::Client runner = Connect();
  Result<int64_t> id = runner.QueryAsync(kSlowSql);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Query ids are process-wide: a different session can cancel.
  net::Client killer = Connect();
  Result<bool> found = killer.Cancel(id.value());
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.value());

  net::ClientQueryResult result = runner.Wait(id.value());
  EXPECT_EQ(StatusCode::kCancelled, result.status.code());
  EXPECT_EQ("cancelled", result.outcome);
  runner.Close();
  killer.Close();
}

TEST_F(NetTest, DeadlineExpiresMidQuery) {
  StartServer();
  net::Client client = Connect();
  net::ClientQueryOptions opts;
  opts.deadline_ms = 5.0;
  net::ClientQueryResult result = client.Query(kSlowSql, opts);
  EXPECT_EQ(StatusCode::kDeadlineExceeded, result.status.code());
  EXPECT_EQ("deadline", result.outcome);
  client.Close();
}

TEST_F(NetTest, CancelUnknownQueryReportsNotFound) {
  StartServer();
  net::Client client = Connect();
  Result<bool> found = client.Cancel(987654321);
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(found.value());
  client.Close();
}

TEST_F(NetTest, PerSessionInflightBoundRejectsExcessQueries) {
  net::NetServerConfig config;
  config.max_inflight_per_session = 1;
  StartServer(config);
  net::Client client = Connect();
  Result<int64_t> first = client.QueryAsync(kSlowSql);
  ASSERT_TRUE(first.ok());
  // Second submission in the same session exceeds the bound.
  Result<int64_t> second = client.QueryAsync(kSlowSql);
  EXPECT_EQ(StatusCode::kResourceExhausted, second.status().code());
  // The rejected submission was rolled back, not leaked: the first query
  // is still the only one in flight and remains collectable.
  ASSERT_TRUE(client.Cancel(first.value()).ok());
  net::ClientQueryResult r = client.Wait(first.value());
  EXPECT_EQ(StatusCode::kCancelled, r.status.code());
  client.Close();
}

// --------------------------------------------------- trace and metrics

TEST_F(NetTest, TraceRoundTripForFinishedQuery) {
  StartServer();
  net::Client client = Connect();
  net::ClientQueryResult r =
      client.Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(r.status.ok());
  Result<std::string> trace = client.Trace(r.query_id);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  Result<JsonValue> parsed = JsonParse(trace.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(r.query_id, parsed.value().GetInt("query_id", -1));

  Result<std::string> missing = client.Trace(424242);
  EXPECT_EQ(StatusCode::kNotFound, missing.status().code());
  client.Close();
}

TEST_F(NetTest, MetricsExposeNetFamilies) {
  StartServer();
  net::Client client = Connect();
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM orders").status.ok());
  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(std::string::npos,
            metrics.value().find("popdb_net_connections_total"));
  EXPECT_NE(std::string::npos,
            metrics.value().find("popdb_net_queries_total"));
  EXPECT_NE(std::string::npos,
            metrics.value().find("popdb_net_bytes_written_total"));
  client.Close();
}

// --------------------------------------- spans, query log, trace token

TEST_F(NetTest, SpansRoundTripCarriesClientTraceToken) {
  StartServer();
  net::Client client = Connect();

  // Remote tracer control: enable, run a labeled query, export, clear.
  SpanTracer::Global().Clear();
  net::ClientSpansOptions enable_opts;
  enable_opts.enable = 1;
  ASSERT_TRUE(client.Spans(enable_opts).ok());

  net::ClientQueryOptions opts;
  opts.trace_token = "tok-net-1";
  ASSERT_TRUE(
      client.Query("SELECT COUNT(*) FROM orders", opts).status.ok());

  net::ClientSpansOptions dump_opts;
  dump_opts.clear = true;
  dump_opts.enable = 0;
  Result<net::ClientSpanDump> dump = client.Spans(dump_opts);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_GT(dump.value().event_count, 0);
  EXPECT_GT(dump.value().now_us, 0);
  Result<JsonValue> parsed = JsonParse(dump.value().trace_json,
                                       {32, 2000000});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The service's "query" span carries the client-chosen token.
  EXPECT_NE(std::string::npos,
            dump.value().trace_json.find("\"label\":\"tok-net-1\""));

  // `clear` dropped the buffer: a fresh dump is empty.
  Result<net::ClientSpanDump> after = client.Spans();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(0, after.value().event_count);
  EXPECT_FALSE(SpanTracer::Global().enabled());

  // A plain server has no cluster observability hook.
  net::ClientSpansOptions cluster_opts;
  cluster_opts.cluster = true;
  Result<net::ClientSpanDump> cluster = client.Spans(cluster_opts);
  EXPECT_EQ(StatusCode::kUnimplemented, cluster.status().code());
  client.Close();
}

TEST_F(NetTest, QueryLogRoundTripRecordsFinishedQueries) {
  StartServer();
  net::Client client = Connect();
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM orders").status.ok());
  ASSERT_TRUE(
      client.Query("SELECT o_class FROM orders WHERE o_id = 1").status.ok());

  Result<std::string> all = client.QueryLogTail(0);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  Result<JsonValue> parsed = JsonParse(all.value(), {16, 100000});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(JsonValue::Kind::kArray, parsed.value().kind());
  int entries = 0;
  for (const JsonValue& entry : parsed.value().items()) {
    ++entries;
    EXPECT_EQ("query", entry.GetString("kind", ""));
    EXPECT_EQ("ok", entry.GetString("outcome", ""));
    EXPECT_FALSE(entry.GetString("plan_digest", "").empty());
  }
  EXPECT_EQ(2, entries);

  // limit=1 returns only the most recent entry.
  Result<std::string> last = client.QueryLogTail(1);
  ASSERT_TRUE(last.ok());
  Result<JsonValue> last_parsed = JsonParse(last.value(), {16, 100000});
  ASSERT_TRUE(last_parsed.ok());
  int last_count = 0;
  for (const JsonValue& entry : last_parsed.value().items()) {
    (void)entry;
    ++last_count;
  }
  EXPECT_EQ(1, last_count);
  client.Close();
}

TEST_F(NetTest, MetricsClusterFlagIsUnimplementedWithoutCoordinator) {
  StartServer();
  net::Client client = Connect();
  Result<std::string> federated = client.Metrics(/*cluster=*/true);
  EXPECT_EQ(StatusCode::kUnimplemented, federated.status().code());
  client.Close();
}

// ------------------------------------------------- malformed framing

TEST_F(NetTest, GarbageJsonGetsErrorFrameAndConnectionSurvives) {
  StartServer();
  net::Client client = Connect();
  ASSERT_TRUE(client.SendRaw("this is not json {").ok());
  net::FrameResult reply = client.ReadRaw();
  ASSERT_TRUE(reply.ok());
  Result<JsonValue> parsed = JsonParse(reply.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ("error", parsed.value().GetString("type", ""));
  // Framing stayed sound, so the session keeps working.
  EXPECT_TRUE(client.Query("SELECT COUNT(*) FROM orders").status.ok());
  client.Close();
}

TEST_F(NetTest, NonObjectPayloadIsRejected) {
  StartServer();
  net::Client client = Connect();
  ASSERT_TRUE(client.SendRaw("[1,2,3]").ok());
  net::FrameResult reply = client.ReadRaw();
  ASSERT_TRUE(reply.ok());
  Result<JsonValue> parsed = JsonParse(reply.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ("error", parsed.value().GetString("type", ""));
  client.Close();
}

TEST_F(NetTest, OversizedFrameIsRefusedWithoutAllocation) {
  net::NetServerConfig config;
  config.max_frame_bytes = 1024;
  StartServer(config);
  net::Client client = Connect();
  // Announce a 512 MiB payload; the server must reject on the prefix
  // alone (never allocating or reading the body) and close.
  const uint32_t huge = 512u << 20;
  std::string prefix(4, '\0');
  prefix[0] = static_cast<char>((huge >> 24) & 0xff);
  prefix[1] = static_cast<char>((huge >> 16) & 0xff);
  prefix[2] = static_cast<char>((huge >> 8) & 0xff);
  prefix[3] = static_cast<char>(huge & 0xff);
  ASSERT_TRUE(client.SendBytes(prefix).ok());
  net::FrameResult reply = client.ReadRaw();
  ASSERT_TRUE(reply.ok());
  Result<JsonValue> parsed = JsonParse(reply.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ("error", parsed.value().GetString("type", ""));
  // The server hangs up after an oversized announcement.
  net::FrameResult eof = client.ReadRaw();
  EXPECT_EQ(net::FrameStatus::kEof, eof.status);
}

TEST_F(NetTest, UnknownRequestTypeGetsUnimplemented) {
  StartServer();
  net::Client client = Connect();
  ASSERT_TRUE(client.SendRaw("{\"type\":\"teleport\"}").ok());
  net::FrameResult reply = client.ReadRaw();
  ASSERT_TRUE(reply.ok());
  Result<JsonValue> parsed = JsonParse(reply.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ("unimplemented", parsed.value().GetString("code", ""));
  client.Close();
}

TEST_F(NetTest, ShutdownRequestIsGatedByConfig) {
  StartServer();  // allow_shutdown_request defaults to false.
  net::Client client = Connect();
  EXPECT_FALSE(client.RequestShutdown().ok());
  EXPECT_FALSE(server_->shutdown_requested());
  client.Close();
}

// ------------------------------------------------------------ shutdown

TEST_F(NetTest, ShutdownCancelsInFlightQueriesAndJoins) {
  StartServer();
  net::Client client = Connect();
  Result<int64_t> id = client.QueryAsync(kSlowSql);
  ASSERT_TRUE(id.ok());
  // Shutdown with the query still running: it must cancel the ticket,
  // close the connection, and join every thread without hanging.
  server_->Shutdown();
  EXPECT_EQ(0, server_->sessions().inflight_queries());
  EXPECT_EQ(0, server_->sessions().open_sessions());
}

TEST_F(NetTest, OverloadShedsConnectionsBeyondPendingCap) {
  net::NetServerConfig config;
  config.num_workers = 1;
  config.max_pending_connections = 1;
  StartServer(config);
  // Worker 1 is parked on a long query; further connections stack up in
  // the pending queue (cap 1) and the rest are shed at accept time.
  net::Client busy = Connect();
  Result<int64_t> id = busy.QueryAsync(kSlowSql);
  ASSERT_TRUE(id.ok());
  std::ignore = busy.SendRaw(
      StrFormat("{\"type\":\"wait\",\"query_id\":%lld}",
                static_cast<long long>(id.value())));

  // These connect() calls succeed at the TCP level (backlog), but the
  // server closes the shed ones before serving them.
  std::vector<int> fds;
  for (int i = 0; i < 6; ++i) {
    Result<int> fd = net::ConnectTcp("127.0.0.1", server_->port(), 2000.0);
    if (fd.ok()) fds.push_back(fd.value());
  }
  // Give the acceptor a moment to drain the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (const int fd : fds) net::CloseFd(fd);
  std::ignore = busy.Cancel(id.value());
  busy.Close();
  server_->Shutdown();
  EXPECT_GT(service_->metrics_registry()
                .GetCounter("popdb_net_connections_shed_total", "")
                ->value(),
            0);
}

// ------------------------------------------------------------- hammer

TEST_F(NetTest, ConcurrentSessionsHammer) {
  net::NetServerConfig config;
  config.num_workers = 8;
  StartServer(config);
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 12;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      Result<net::Client> client =
          net::Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kQueriesPerClient; ++i) {
        net::ClientQueryOptions opts;
        opts.params.push_back(Value::Int((c + i) % 20));
        net::ClientQueryResult r = client.value().Query(
            "SELECT COUNT(*) FROM orders WHERE o_class = ?", opts);
        if (!r.status.ok() || r.rows.size() != 1 ||
            r.rows[0][0].AsInt() != 100) {
          failures.fetch_add(1);
        }
      }
      client.value().Close();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, server_->sessions().open_sessions());
  EXPECT_EQ(kClients * kQueriesPerClient,
            service_->metrics_registry()
                .GetCounter("popdb_net_queries_total", "")
                ->value());
}

// ------------------------------------------------------- connect retry

TEST_F(NetTest, RefusedConnectFailsUnavailableWithoutRetry) {
  StartServer();
  const int dead_port = server_->port();
  server_->Shutdown();
  server_ = nullptr;
  net::ClientConnectOptions options;
  options.retry_refused = false;
  options.connect_timeout_ms = 1000.0;
  Result<net::Client> c =
      net::Client::Connect("127.0.0.1", dead_port, options);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(StatusCode::kUnavailable, c.status().code())
      << c.status().ToString();
}

TEST_F(NetTest, ConnectRetriesOnceWhenListenerBindsLate) {
  // Grab the port of a live server, kill it, then resurrect it on the same
  // port while the client is sleeping between its first (refused) connect
  // and its single retry — the coordinator/shard startup race.
  StartServer();
  const int port = server_->port();
  server_->Shutdown();
  server_ = nullptr;
  std::thread late_bind([this, port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    net::NetServerConfig config;
    config.host = "127.0.0.1";
    config.port = port;
    server_ = std::make_unique<net::NetServer>(service_.get(), &traces_,
                                               config);
    EXPECT_TRUE(server_->Start().ok());
  });
  net::ClientConnectOptions options;
  options.retry_refused = true;
  options.retry_delay_ms = 400.0;
  Result<net::Client> c = net::Client::Connect("127.0.0.1", port, options);
  late_bind.join();
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_GT(c.value().session_id(), 0u);
  c.value().Close();
}

}  // namespace
}  // namespace popdb
