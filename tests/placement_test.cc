#include <gtest/gtest.h>

#include "core/placement.h"
#include "core/pop.h"
#include "core/validity.h"
#include "opt/optimizer.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::BuildToyCatalog(&catalog_); }

  /// Optimizes with validity analysis (so ranges exist) and returns the
  /// cloned plan ready for placement.
  std::shared_ptr<PlanNode> PlanFor(const QuerySpec& q,
                                    OptimizerConfig config = {}) {
    Optimizer opt(catalog_, config);
    CostModel cm(config.cost);
    ValidityRangeAnalyzer analyzer(cm, ValidityConfig{});
    Result<OptimizedPlan> r = opt.Optimize(q, nullptr, nullptr, &analyzer);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value().root;
  }

  /// dept -> emp index NLJN with a selective dept predicate.
  QuerySpec SelectiveJoinQuery() {
    QuerySpec q("q");
    const int d = q.AddTable("dept");
    const int e = q.AddTable("emp");
    q.AddJoin({d, 0}, {e, 1});
    q.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
    q.AddGroupBy({e, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  }

  QuerySpec SpjQuery() {
    QuerySpec q = SelectiveJoinQuery();
    QuerySpec spj("spj");
    const int d = spj.AddTable("dept");
    const int e = spj.AddTable("emp");
    spj.AddJoin({d, 0}, {e, 1});
    spj.AddPred({d, 0}, PredKind::kEq, Value::Int(2));
    spj.AddProjection({e, 3});
    return spj;
  }

  static int CountKind(const PlanNode& node, PlanOpKind kind) {
    int n = node.kind == kind ? 1 : 0;
    for (const auto& c : node.children) n += CountKind(*c, kind);
    return n;
  }

  Catalog catalog_;
  CostModel cm_{CostParams{}};
};

TEST_F(PlacementTest, DefaultConfigPlacesLcemOnNljnOuter) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  const PlacementStats stats =
      PlaceCheckpoints(&plan, pop, cm_, /*query_is_spj=*/false);
  EXPECT_GE(stats.lcem, 1);
  EXPECT_EQ(stats.lcem, CountKind(*plan, PlanOpKind::kCheckMat));
  EXPECT_GE(CountKind(*plan, PlanOpKind::kTemp), 1);
}

TEST_F(PlacementTest, ChecksDisabledBelowCostThreshold) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.min_plan_cost_for_checks = plan->cost * 10;
  const PlacementStats stats =
      PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_EQ(0, stats.total());
}

TEST_F(PlacementTest, RequireNarrowedRangeSuppressesUnGuardedEdges) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  // Erase all validity ranges: with the restriction on, nothing is placed.
  std::function<void(PlanNode*)> clear = [&](PlanNode* node) {
    for (ValidityRange& vr : node->child_validity) vr = ValidityRange{};
    for (const auto& c : node->children) clear(c.get());
  };
  clear(plan.get());
  PopConfig pop;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_EQ(0, stats.total());
}

TEST_F(PlacementTest, RequireNarrowedRangeOffPlacesEverywhere) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.require_narrowed_range = false;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_GE(stats.total(), 1);
}

TEST_F(PlacementTest, LcemBudgetSkipsExpensiveMaterializations) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.lcem_budget_fraction = 0.0;  // Nothing is cheap enough.
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_EQ(0, stats.lcem);
}

TEST_F(PlacementTest, EcbPlacesBoundedBufferCheck) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.enable_lcem = false;
  pop.enable_ecb = true;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_GE(stats.ecb, 1);
  EXPECT_EQ(stats.ecb, CountKind(*plan, PlanOpKind::kBufCheck));
  // No unbounded TEMP buffer is needed: BUFCHECK buffers itself.
  EXPECT_EQ(0, CountKind(*plan, PlanOpKind::kTemp));
}

TEST_F(PlacementTest, EcbUnderLcemKeepsTempForReuse) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.enable_lcem = true;
  pop.enable_ecb = true;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_GE(stats.ecb, 1);
  EXPECT_GE(stats.lcem, 1);
  EXPECT_GE(CountKind(*plan, PlanOpKind::kTemp), 1);
  EXPECT_GE(CountKind(*plan, PlanOpKind::kBufCheck), 1);
}

TEST_F(PlacementTest, WorkBoundGuardWrapsTopCanonicalNode) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.work_bound_factor = 8.0;
  const double plan_cost = plan->cost;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_EQ(1, stats.work_bound);
  EXPECT_EQ(1, CountKind(*plan, PlanOpKind::kWorkBound));
  // Budget derives from the estimated plan cost.
  const PlanNode* node = plan.get();
  while (node->kind != PlanOpKind::kWorkBound) node = node->children[0].get();
  EXPECT_NEAR(8.0 * plan_cost, node->work_budget, plan_cost * 0.2);
  // Aggregation query: no row tracker needed.
  EXPECT_EQ(0, CountKind(*plan, PlanOpKind::kRidTrack));
}

TEST_F(PlacementTest, WorkBoundOnSpjAddsRidTrack) {
  std::shared_ptr<PlanNode> plan = PlanFor(SpjQuery());
  PopConfig pop;
  pop.work_bound_factor = 8.0;
  PlaceCheckpoints(&plan, pop, cm_, /*query_is_spj=*/true);
  EXPECT_EQ(1, CountKind(*plan, PlanOpKind::kWorkBound));
  EXPECT_EQ(1, CountKind(*plan, PlanOpKind::kRidTrack));
}

TEST_F(PlacementTest, ConfidenceFilterSkipsLowAssumptionEdges) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.require_narrowed_range = false;
  pop.min_assumptions_for_checks = 99;  // Nothing is that unreliable.
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_EQ(0, stats.total());
}

TEST_F(PlacementTest, LcCoversSortMaterializationPoints) {
  // Disable hash joins so sorts (merge join inputs) appear.
  OptimizerConfig config;
  config.methods.enable_hsjn = false;
  config.methods.enable_nljn = false;
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  std::shared_ptr<PlanNode> plan = PlanFor(q, config);
  ASSERT_GE(CountKind(*plan, PlanOpKind::kSort), 2);
  PopConfig pop;
  pop.require_narrowed_range = false;
  pop.enable_lcem = false;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_GE(stats.lc, 2);
  EXPECT_EQ(stats.lc, CountKind(*plan, PlanOpKind::kCheckMat));
}

TEST_F(PlacementTest, EcwcGoesBelowMaterialization) {
  OptimizerConfig config;
  config.methods.enable_hsjn = false;
  config.methods.enable_nljn = false;
  QuerySpec q("q");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({d, 0}, {e, 1});
  std::shared_ptr<PlanNode> plan = PlanFor(q, config);
  PopConfig pop;
  pop.require_narrowed_range = false;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.enable_ecwc = true;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_GE(stats.ecwc, 1);
  // Each ECWC check is the direct child of a SORT/TEMP.
  std::function<void(const PlanNode&)> verify = [&](const PlanNode& node) {
    if (node.kind == PlanOpKind::kCheck) {
      // Found via its parent below.
    }
    for (const auto& c : node.children) {
      if (c->kind == PlanOpKind::kCheck) {
        EXPECT_TRUE(node.kind == PlanOpKind::kSort ||
                    node.kind == PlanOpKind::kTemp);
      }
      verify(*c);
    }
  };
  verify(*plan);
}

TEST_F(PlacementTest, EcdcOnlyForSpjAndAddsRidTrack) {
  std::shared_ptr<PlanNode> agg_plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.enable_ecdc = true;
  pop.require_narrowed_range = false;
  PlacementStats agg_stats =
      PlaceCheckpoints(&agg_plan, pop, cm_, /*query_is_spj=*/false);
  EXPECT_EQ(0, agg_stats.ecdc);
  EXPECT_EQ(0, CountKind(*agg_plan, PlanOpKind::kRidTrack));

  std::shared_ptr<PlanNode> spj_plan = PlanFor(SpjQuery());
  PlacementStats spj_stats =
      PlaceCheckpoints(&spj_plan, pop, cm_, /*query_is_spj=*/true);
  EXPECT_GE(spj_stats.ecdc, 1);
  EXPECT_EQ(1, CountKind(*spj_plan, PlanOpKind::kRidTrack));
}

TEST_F(PlacementTest, CollectChecksFindsAllEnabledChecks) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.require_narrowed_range = false;
  const PlacementStats stats = PlaceCheckpoints(&plan, pop, cm_, false);
  EXPECT_EQ(stats.total(),
            static_cast<int>(CollectChecks(plan.get()).size()));
}

TEST_F(PlacementTest, InsertCompensationWrapsTopCanonicalNode) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  InsertCompensation(&plan);
  EXPECT_EQ(1, CountKind(*plan, PlanOpKind::kAntiComp));
  // The compensation sits below the aggregation (set == 0 region).
  const PlanNode* node = plan.get();
  while (node->set == 0) node = node->children[0].get();
  EXPECT_EQ(PlanOpKind::kAntiComp, node->kind);
}

TEST_F(PlacementTest, ObserveOnlyPropagatesToSpecs) {
  std::shared_ptr<PlanNode> plan = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  pop.observe_only = true;
  pop.require_narrowed_range = false;
  PlaceCheckpoints(&plan, pop, cm_, false);
  for (PlanNode* check : CollectChecks(plan.get())) {
    EXPECT_TRUE(check->check.observe_only);
  }
}

TEST_F(PlacementTest, SafetyFactorWidensRanges) {
  std::shared_ptr<PlanNode> tight = PlanFor(SelectiveJoinQuery());
  std::shared_ptr<PlanNode> wide = PlanFor(SelectiveJoinQuery());
  PopConfig pop;
  PlaceCheckpoints(&tight, pop, cm_, false);
  pop.check_safety_factor = 10.0;
  PlaceCheckpoints(&wide, pop, cm_, false);
  std::vector<PlanNode*> tchecks = CollectChecks(tight.get());
  std::vector<PlanNode*> wchecks = CollectChecks(wide.get());
  ASSERT_EQ(tchecks.size(), wchecks.size());
  ASSERT_FALSE(tchecks.empty());
  for (size_t i = 0; i < tchecks.size(); ++i) {
    if (tchecks[i]->check.hi < 1e17) {
      EXPECT_NEAR(tchecks[i]->check.hi * 10.0, wchecks[i]->check.hi, 1e-6);
    }
  }
}

}  // namespace
}  // namespace popdb
