#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/statistics.h"
#include "storage/table.h"

namespace popdb {
namespace {

Schema TwoColSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}});
}

// ----------------------------------------------------------------- Schema.

TEST(SchemaTest, IndexOf) {
  Schema s = TwoColSchema();
  EXPECT_EQ(0, s.IndexOf("a"));
  EXPECT_EQ(1, s.IndexOf("b"));
  EXPECT_EQ(-1, s.IndexOf("zzz"));
  EXPECT_EQ(2, s.num_columns());
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ("a:int, b:string", TwoColSchema().ToString());
}

// ------------------------------------------------------------------ Table.

TEST(TableTest, AppendAndRead) {
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Int(1), Value::String("x")});
  t.AppendRow({Value::Int(2), Value::String("y")});
  ASSERT_EQ(2, t.num_rows());
  EXPECT_EQ(Value::Int(2), t.row(1)[0]);
  EXPECT_EQ(Value::String("x"), t.row(0)[1]);
}

TEST(TableTest, NullsAllowedInAnyColumn) {
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Null(), Value::Null()});
  EXPECT_TRUE(t.row(0)[0].is_null());
}

// -------------------------------------------------------------- HashIndex.

TEST(HashIndexTest, ProbeFindsAllDuplicates) {
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Int(7), Value::String("a")});
  t.AppendRow({Value::Int(8), Value::String("b")});
  t.AppendRow({Value::Int(7), Value::String("c")});
  HashIndex idx(t, 0);
  EXPECT_EQ(2, idx.num_keys());
  const std::vector<int64_t>& hits = idx.Probe(Value::Int(7));
  ASSERT_EQ(2u, hits.size());
  EXPECT_EQ(0, hits[0]);
  EXPECT_EQ(2, hits[1]);
}

TEST(HashIndexTest, MissingKeyReturnsEmpty) {
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Int(1), Value::String("a")});
  HashIndex idx(t, 0);
  EXPECT_TRUE(idx.Probe(Value::Int(99)).empty());
}

TEST(HashIndexTest, StringColumn) {
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Int(1), Value::String("k")});
  t.AppendRow({Value::Int(2), Value::String("k")});
  HashIndex idx(t, 1);
  EXPECT_EQ(2u, idx.Probe(Value::String("k")).size());
}

// ------------------------------------------------------------- Statistics.

Table NumericTable(int64_t n) {
  Table t("nums", Schema({{"v", ValueType::kInt}}));
  for (int64_t i = 0; i < n; ++i) t.AppendRow({Value::Int(i % 100)});
  return t;
}

TEST(StatisticsTest, RowCountAndNdv) {
  TableStats s = CollectTableStats(NumericTable(500));
  EXPECT_EQ(500, s.row_count);
  EXPECT_EQ(100, s.column(0).num_distinct);
  EXPECT_EQ(0, s.column(0).null_count);
  EXPECT_EQ(Value::Int(0), *s.column(0).min);
  EXPECT_EQ(Value::Int(99), *s.column(0).max);
}

TEST(StatisticsTest, NullsCounted) {
  Table t("t", Schema({{"v", ValueType::kInt}}));
  t.AppendRow({Value::Null()});
  t.AppendRow({Value::Int(1)});
  t.AppendRow({Value::Null()});
  TableStats s = CollectTableStats(t);
  EXPECT_EQ(2, s.column(0).null_count);
  EXPECT_EQ(1, s.column(0).num_distinct);
}

TEST(StatisticsTest, StringColumnsGetNoHistogram) {
  Table t("t", Schema({{"s", ValueType::kString}}));
  t.AppendRow({Value::String("a")});
  TableStats s = CollectTableStats(t);
  EXPECT_TRUE(s.column(0).histogram.empty());
}

TEST(StatisticsTest, EmptyTable) {
  Table t("t", Schema({{"v", ValueType::kInt}}));
  TableStats s = CollectTableStats(t);
  EXPECT_EQ(0, s.row_count);
  EXPECT_FALSE(s.column(0).min.has_value());
  EXPECT_TRUE(s.column(0).histogram.empty());
}

TEST(HistogramTest, UniformFractionLeq) {
  TableStats s = CollectTableStats(NumericTable(10000), 32);
  const EquiDepthHistogram& h = s.column(0).histogram;
  ASSERT_FALSE(h.empty());
  EXPECT_NEAR(0.50, h.FractionLeq(49.5), 0.05);
  EXPECT_NEAR(0.25, h.FractionLeq(24.5), 0.05);
  EXPECT_DOUBLE_EQ(1.0, h.FractionLeq(99));
  EXPECT_DOUBLE_EQ(0.0, h.FractionLeq(-1));
}

TEST(HistogramTest, FractionBetweenBounds) {
  TableStats s = CollectTableStats(NumericTable(10000), 32);
  const EquiDepthHistogram& h = s.column(0).histogram;
  EXPECT_NEAR(0.30, h.FractionBetween(10, 39.5), 0.06);
  EXPECT_DOUBLE_EQ(0.0, h.FractionBetween(50, 40));  // Inverted range.
  EXPECT_DOUBLE_EQ(1.0, h.FractionBetween(-10, 1000));
}

// Property: FractionLeq is monotone non-decreasing for any data
// distribution (parameterized over seeds producing different skews).
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, FractionLeqMonotone) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Table t("t", Schema({{"v", ValueType::kDouble}}));
  for (int i = 0; i < 3000; ++i) {
    // Skewed: square of a uniform.
    const double u = rng.UniformDouble();
    t.AppendRow({Value::Double(u * u * 1000)});
  }
  TableStats s = CollectTableStats(t, 16 + GetParam() % 17);
  const EquiDepthHistogram& h = s.column(0).histogram;
  double prev = -1;
  for (double x = -10; x <= 1010; x += 7.3) {
    const double f = h.FractionLeq(x);
    EXPECT_GE(f, prev - 1e-12) << "at x=" << x;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_P(HistogramPropertyTest, BucketsSumToTotal) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  Table t("t", Schema({{"v", ValueType::kInt}}));
  const int n = 100 + GetParam() * 37;
  for (int i = 0; i < n; ++i) {
    t.AppendRow({Value::Int(rng.UniformInt(0, 50))});
  }
  TableStats s = CollectTableStats(t, 8);
  const EquiDepthHistogram& h = s.column(0).histogram;
  int64_t sum = 0;
  for (int64_t c : h.counts) sum += c;
  EXPECT_EQ(n, sum);
  EXPECT_EQ(n, h.total_rows);
  // Bounds are sorted.
  for (size_t i = 1; i < h.bounds.size(); ++i) {
    EXPECT_LE(h.bounds[i - 1], h.bounds[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Range(0, 12));

// ------------------------------------------------------- Sampled stats.

TEST(SampledStatisticsTest, RowCountStaysExact) {
  Table t = NumericTable(5000);
  TableStats s = CollectTableStatsSampled(t, 0.1, /*seed=*/3);
  EXPECT_EQ(5000, s.row_count);
}

TEST(SampledStatisticsTest, NdvEstimateInRightBallpark) {
  // 100 distinct values, each ~50 times: repeats dominate the sample, so
  // GEE should land near the truth.
  Table t = NumericTable(5000);
  TableStats s = CollectTableStatsSampled(t, 0.2, /*seed=*/3);
  EXPECT_GE(s.column(0).num_distinct, 60);
  EXPECT_LE(s.column(0).num_distinct, 220);
}

TEST(SampledStatisticsTest, UniqueColumnExtrapolates) {
  Table t("t", Schema({{"v", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) t.AppendRow({Value::Int(i)});
  // Every sampled value is a singleton: GEE scales by sqrt(1/q).
  TableStats s = CollectTableStatsSampled(t, 0.1, /*seed=*/5);
  EXPECT_GT(s.column(0).num_distinct, 800);
  EXPECT_LE(s.column(0).num_distinct, 4000);
}

TEST(SampledStatisticsTest, HistogramStillUsable) {
  Table t = NumericTable(10000);
  TableStats s = CollectTableStatsSampled(t, 0.2, /*seed=*/7);
  ASSERT_FALSE(s.column(0).histogram.empty());
  EXPECT_NEAR(0.5, s.column(0).histogram.FractionLeq(49.5), 0.1);
}

TEST(SampledStatisticsTest, DeterministicPerSeed) {
  Table t = NumericTable(3000);
  TableStats a = CollectTableStatsSampled(t, 0.1, 11);
  TableStats b = CollectTableStatsSampled(t, 0.1, 11);
  EXPECT_EQ(a.column(0).num_distinct, b.column(0).num_distinct);
}

// ---------------------------------------------------------------- Catalog.

TEST(CatalogTest, AddAndGet) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(Table("t", TwoColSchema())).ok());
  EXPECT_NE(nullptr, c.GetTable("t"));
  EXPECT_EQ(nullptr, c.GetTable("nope"));
  EXPECT_EQ(std::vector<std::string>{"t"}, c.TableNames());
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(Table("t", TwoColSchema())).ok());
  const Status s = c.AddTable(Table("t", TwoColSchema()));
  EXPECT_EQ(StatusCode::kAlreadyExists, s.code());
}

TEST(CatalogTest, AnalyzeProducesStats) {
  Catalog c;
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Int(1), Value::String("x")});
  ASSERT_TRUE(c.AddTable(std::move(t)).ok());
  EXPECT_EQ(nullptr, c.GetStats("t"));
  ASSERT_TRUE(c.AnalyzeTable("t").ok());
  ASSERT_NE(nullptr, c.GetStats("t"));
  EXPECT_EQ(1, c.GetStats("t")->row_count);
}

TEST(CatalogTest, AnalyzeMissingTableFails) {
  Catalog c;
  EXPECT_EQ(StatusCode::kNotFound, c.AnalyzeTable("ghost").code());
}

TEST(CatalogTest, CreateIndexIdempotent) {
  Catalog c;
  Table t("t", TwoColSchema());
  t.AppendRow({Value::Int(1), Value::String("x")});
  ASSERT_TRUE(c.AddTable(std::move(t)).ok());
  ASSERT_TRUE(c.CreateIndex("t", "a").ok());
  ASSERT_TRUE(c.CreateIndex("t", "a").ok());  // No-op, still OK.
  EXPECT_NE(nullptr, c.FindIndex("t", 0));
  EXPECT_EQ(nullptr, c.FindIndex("t", 1));
}

TEST(CatalogTest, AnalyzeSampled) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(NumericTable(2000)).ok());
  ASSERT_TRUE(c.AnalyzeTableSampled("nums", 0.1).ok());
  ASSERT_NE(nullptr, c.GetStats("nums"));
  EXPECT_EQ(2000, c.GetStats("nums")->row_count);
  EXPECT_EQ(StatusCode::kNotFound,
            c.AnalyzeTableSampled("ghost", 0.1).code());
}

TEST(CatalogTest, CreateIndexErrors) {
  Catalog c;
  EXPECT_EQ(StatusCode::kNotFound, c.CreateIndex("ghost", "a").code());
  ASSERT_TRUE(c.AddTable(Table("t", TwoColSchema())).ok());
  EXPECT_EQ(StatusCode::kNotFound, c.CreateIndex("t", "ghost_col").code());
}

}  // namespace
}  // namespace popdb
