// Tests of the sharded scatter-gather subsystem (src/dist): range
// partitioning, subplan JSON round trips, distributed-vs-single-node
// result equivalence over real loopback shard servers, coordinator-level
// progressive re-optimization from per-shard CHECK violations, fan-out
// cancellation/deadlines, and shard death mid-query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/span.h"
#include "core/explain.h"
#include "dist/coordinator.h"
#include "dist/observability.h"
#include "dist/partition.h"
#include "dist/plan_json.h"
#include "dist/shard.h"
#include "dist/split.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/metrics_registry.h"
#include "sql/binder.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

/// Correlated orders/items pair (o_subclass determines o_class, so
/// conjunctive predicates on both are 10x overestimated under the
/// independence assumption) — the same trap that drives single-node POP
/// re-optimization, here scaled per shard.
void BuildDistCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"i_qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  // Replicated dimension (not in the partition spec).
  Table clazz("clazz", Schema({{"c_id", ValueType::kInt},
                               {"c_name", ValueType::kString}}));
  for (int64_t i = 0; i < 20; ++i) {
    clazz.AppendRow({Value::Int(i), Value::String("class-" +
                                                  std::to_string(i))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(clazz)).ok());
  catalog->AnalyzeAll();
}

dist::PartitionSpec DistSpec() {
  dist::PartitionSpec spec;
  spec.keys = {{"orders", 0}, {"items", 0}};
  return spec;
}

QuerySpec Parse(const Catalog& catalog, const std::string& sql) {
  Result<sql::BoundStatement> bound = sql::ParseSql(catalog, sql);
  EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
  return bound.value().query;
}

/// One in-process shard: its partition catalog, a QueryService (the
/// NetServer requires one), and a NetServer with the subplan backend.
struct ShardProcess {
  Catalog catalog;
  TraceStore traces{64};
  std::unique_ptr<QueryService> service;
  std::unique_ptr<dist::ShardExecutor> executor;
  std::unique_ptr<net::NetServer> server;

  ~ShardProcess() {
    if (server != nullptr) server->Shutdown();
    if (service != nullptr) service->Shutdown(/*drain=*/false);
  }
};

class DistTest : public ::testing::Test {
 protected:
  void StartCluster(int num_shards, double stall_ms = 0.0,
                    int64_t exec_batch_rows = 1024) {
    // Allow restarting with a different shard configuration mid-test
    // (e.g. row-engine vs vectorized shards).
    shards_.clear();
    coordinator_.reset();
    if (!built_full_) {
      BuildDistCatalog(&full_);
      built_full_ = true;
    }
    spec_ = DistSpec();
    Result<std::vector<dist::KeyRange>> ranges =
        dist::ComputeRanges(full_, spec_, num_shards);
    ASSERT_TRUE(ranges.ok()) << ranges.status().ToString();
    std::vector<net::Endpoint> endpoints;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<ShardProcess>();
      ASSERT_TRUE(dist::BuildShardCatalog(full_, spec_, ranges.value(), s,
                                          /*histogram_buckets=*/32,
                                          &shard->catalog)
                      .ok());
      ServiceConfig service_config;
      service_config.share_feedback = true;
      service_config.trace_sink = &shard->traces;
      shard->service =
          std::make_unique<QueryService>(shard->catalog, service_config);
      dist::ShardExecutorConfig executor_config;
      executor_config.exec_batch_rows = exec_batch_rows;
      shard->executor = std::make_unique<dist::ShardExecutor>(
          shard->catalog, executor_config);
      net::NetServerConfig net_config;
      net_config.host = "127.0.0.1";
      net_config.port = 0;
      net_config.subplan_backend = shard->executor.get();
      net_config.subplan_stall_ms = stall_ms;
      shard->server = std::make_unique<net::NetServer>(
          shard->service.get(), &shard->traces, net_config);
      ASSERT_TRUE(shard->server->Start().ok());
      endpoints.push_back({"127.0.0.1", shard->server->port()});
      shards_.push_back(std::move(shard));
    }
    dist::CoordinatorConfig config;
    config.shards = endpoints;
    config.partition = spec_;
    coordinator_ = std::make_unique<dist::Coordinator>(full_, config);
  }

  Result<std::vector<Row>> RunDist(const std::string& sql,
                                   ExecutionStats* stats = nullptr,
                                   CancelToken* cancel = nullptr) {
    const QuerySpec query = Parse(full_, sql);
    EXPECT_TRUE(coordinator_->CanExecute(query)) << sql;
    CancelToken local_cancel;
    ExecutionStats local_stats;
    return coordinator_->Execute(query,
                                 cancel != nullptr ? cancel : &local_cancel,
                                 /*feedback=*/nullptr,
                                 stats != nullptr ? stats : &local_stats);
  }

  /// Single-node oracle: the same query through the progressive executor
  /// against the full catalog.
  std::vector<Row> RunLocal(const std::string& sql) {
    ProgressiveExecutor exec(full_, OptimizerConfig{}, PopConfig{});
    Result<std::vector<Row>> rows = exec.Execute(Parse(full_, sql));
    EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
    return rows.ok() ? rows.value() : std::vector<Row>{};
  }

  Catalog full_;
  bool built_full_ = false;
  dist::PartitionSpec spec_;
  std::vector<std::unique_ptr<ShardProcess>> shards_;
  std::unique_ptr<dist::Coordinator> coordinator_;
};

// -------------------------------------------------------- partitioning

TEST(PartitionTest, RangesCoverDomainWithoutOverlap) {
  Catalog full;
  BuildDistCatalog(&full);
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, DistSpec(), 4);
  ASSERT_TRUE(ranges.ok());
  ASSERT_EQ(4u, ranges.value().size());
  EXPECT_EQ(0, ranges.value()[0].lo);
  for (size_t i = 1; i < ranges.value().size(); ++i) {
    EXPECT_EQ(ranges.value()[i - 1].hi, ranges.value()[i].lo);
  }
  EXPECT_EQ(4000, ranges.value().back().hi);  // max key 3999, half-open.
}

TEST(PartitionTest, ShardCatalogsPartitionFactsAndReplicateDims) {
  Catalog full;
  BuildDistCatalog(&full);
  const dist::PartitionSpec spec = DistSpec();
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, spec, 3);
  ASSERT_TRUE(ranges.ok());
  int64_t orders_total = 0;
  int64_t items_total = 0;
  for (int s = 0; s < 3; ++s) {
    Catalog shard;
    ASSERT_TRUE(
        dist::BuildShardCatalog(full, spec, ranges.value(), s, 32, &shard)
            .ok());
    orders_total += shard.GetTable("orders")->num_rows();
    items_total += shard.GetTable("items")->num_rows();
    // Replicated dimension is complete on every shard.
    EXPECT_EQ(20, shard.GetTable("clazz")->num_rows());
    // Shard statistics describe the shard, not the global table.
    EXPECT_LT(shard.GetTable("orders")->num_rows(), 4000);
  }
  EXPECT_EQ(4000, orders_total);
  EXPECT_EQ(12000, items_total);
}

TEST(PartitionTest, ComputeRangesRejectsBadInput) {
  Catalog full;
  BuildDistCatalog(&full);
  EXPECT_FALSE(dist::ComputeRanges(full, DistSpec(), 0).ok());
  dist::PartitionSpec missing;
  missing.keys = {{"nope", 0}};
  EXPECT_FALSE(dist::ComputeRanges(full, missing, 2).ok());
}

// ----------------------------------------------------- JSON round trips

TEST(PlanJsonTest, QuerySpecRoundTripsThroughJson) {
  Catalog full;
  BuildDistCatalog(&full);
  const std::vector<std::string> corpus = {
      "SELECT o_id, o_subclass FROM orders WHERE o_subclass < 12",
      "SELECT o_class, COUNT(*), SUM(o_subclass), AVG(o_subclass) "
      "FROM orders GROUP BY o_class ORDER BY 1",
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class",
      "SELECT DISTINCT o_class FROM orders ORDER BY 1 LIMIT 5",
  };
  for (const std::string& sql : corpus) {
    const QuerySpec query = Parse(full, sql);
    JsonWriter w;
    dist::AppendQuerySpecJson(query, &w);
    Result<JsonValue> parsed = JsonParse(w.str());
    ASSERT_TRUE(parsed.ok()) << sql;
    Result<QuerySpec> back = dist::QuerySpecFromJson(parsed.value());
    ASSERT_TRUE(back.ok()) << sql << ": " << back.status().ToString();
    // Re-serialization is a faithful equality proxy: every field the
    // engine reads participates in the encoding.
    JsonWriter w2;
    dist::AppendQuerySpecJson(back.value(), &w2);
    EXPECT_EQ(w.str(), w2.str()) << sql;
  }
}

TEST(PlanJsonTest, OptimizedPlanRoundTripsThroughJson) {
  Catalog full;
  BuildDistCatalog(&full);
  ProgressiveExecutor exec(full, OptimizerConfig{}, PopConfig{});
  const QuerySpec query = Parse(
      full,
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "GROUP BY o_class");
  Result<OptimizedPlan> plan = exec.Plan(query);
  ASSERT_TRUE(plan.ok());
  JsonWriter w;
  ASSERT_TRUE(dist::AppendPlanJson(*plan.value().root, &w).ok());
  Result<JsonValue> parsed = JsonParse(w.str());
  ASSERT_TRUE(parsed.ok());
  Result<std::shared_ptr<PlanNode>> back =
      dist::PlanFromJson(parsed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  JsonWriter w2;
  ASSERT_TRUE(dist::AppendPlanJson(*back.value(), &w2).ok());
  EXPECT_EQ(w.str(), w2.str());
}

// ---------------------------------------------------------- shardability

TEST(SplitTest, CoPartitionedJoinIsShardableNonKeyJoinIsNot) {
  Catalog full;
  BuildDistCatalog(&full);
  const dist::PartitionSpec spec = DistSpec();
  EXPECT_TRUE(dist::IsShardable(
      Parse(full, "SELECT COUNT(*) FROM orders, items WHERE o_id = i_order"),
      spec));
  EXPECT_TRUE(dist::IsShardable(
      Parse(full, "SELECT COUNT(*) FROM orders"), spec));
  // Joining the two partitioned tables on non-key columns cannot be
  // answered shard-locally.
  EXPECT_FALSE(dist::IsShardable(
      Parse(full,
            "SELECT COUNT(*) FROM orders, items WHERE o_subclass = i_qty"),
      spec));
  // Pure replicated-table queries run locally too.
  EXPECT_FALSE(
      dist::IsShardable(Parse(full, "SELECT COUNT(*) FROM clazz"), spec));
}

// ----------------------------------------------------------- equivalence

TEST_F(DistTest, DistributedResultsMatchSingleNode) {
  StartCluster(3);
  const std::vector<std::string> corpus = {
      "SELECT o_id, o_subclass FROM orders WHERE o_subclass < 12",
      "SELECT o_class, COUNT(*), SUM(o_subclass), AVG(o_subclass) "
      "FROM orders GROUP BY o_class ORDER BY 1",
      "SELECT MIN(i_qty), MAX(i_qty), COUNT(*) FROM items",
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "GROUP BY o_class ORDER BY 1",
      "SELECT o_class, SUM(i_qty), AVG(i_qty) FROM orders, items "
      "WHERE o_id = i_order AND o_subclass = 77 GROUP BY o_class ORDER BY 1",
      "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class "
      "HAVING COUNT(*) > 190 ORDER BY 1",
      "SELECT DISTINCT o_class FROM orders ORDER BY 1",
      "SELECT o_id FROM orders WHERE o_subclass = 5 ORDER BY 1 LIMIT 7",
      "SELECT o_class, c_name, COUNT(*) FROM orders, clazz "
      "WHERE o_class = c_id GROUP BY o_class, c_name ORDER BY 1",
  };
  for (const std::string& sql : corpus) {
    Result<std::vector<Row>> dist_rows = RunDist(sql);
    ASSERT_TRUE(dist_rows.ok())
        << sql << ": " << dist_rows.status().ToString();
    EXPECT_EQ(testing::Canonicalize(RunLocal(sql)),
              testing::Canonicalize(dist_rows.value()))
        << sql;
  }
}

TEST_F(DistTest, OrderByIsRespectedAcrossShardMerge) {
  StartCluster(2);
  const std::string sql =
      "SELECT o_id FROM orders WHERE o_subclass < 4 ORDER BY 1";
  Result<std::vector<Row>> rows = RunDist(sql);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows.value().empty());
  for (size_t i = 1; i < rows.value().size(); ++i) {
    EXPECT_LE(rows.value()[i - 1][0].AsInt(), rows.value()[i][0].AsInt());
  }
}

// ----------------------------------------- global progressive execution

TEST_F(DistTest, ShardCheckViolationTriggersGlobalReoptimization) {
  StartCluster(2);
  // The correlated predicate pair makes the coordinator's first plan
  // overestimate 10x; the shard-scaled CHECK fires shard-side.
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class";
  ExecutionStats stats;
  Result<std::vector<Row>> rows = RunDist(sql, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE(stats.reopts, 1) << "expected a cluster-level re-optimization";
  ASSERT_GE(stats.attempts.size(), 2u);
  EXPECT_TRUE(stats.attempts.front().reoptimized);
  // The harvested global cardinalities changed the plan.
  EXPECT_NE(stats.attempts.front().plan_text,
            stats.attempts.back().plan_text);
  EXPECT_EQ(testing::Canonicalize(RunLocal(sql)),
            testing::Canonicalize(rows.value()));
}

TEST_F(DistTest, RowAndBatchShardEnginesAgree) {
  // Runs the same corpus against a cluster whose shards execute subplans
  // row-at-a-time and one whose shards run vectorized: the rows the
  // coordinator sees, the shard CHECK escalations, and the resulting
  // cluster-level re-optimization sequence must be identical.
  const std::vector<std::string> corpus = {
      "SELECT o_id, o_subclass FROM orders WHERE o_subclass < 12",
      "SELECT o_class, COUNT(*), SUM(o_subclass), AVG(o_subclass) "
      "FROM orders GROUP BY o_class ORDER BY 1",
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "GROUP BY o_class ORDER BY 1",
      // The correlated-predicate trap: shard CHECKs fire and escalate.
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class",
      "SELECT o_id FROM orders WHERE o_subclass = 5 ORDER BY 1 LIMIT 7",
  };
  struct DistOutcome {
    std::vector<std::string> rows;
    int reopts = 0;
    size_t attempts = 0;
  };
  const auto sweep = [&](int64_t exec_batch_rows) {
    StartCluster(3, /*stall_ms=*/0.0, exec_batch_rows);
    std::vector<DistOutcome> outcomes;
    for (const std::string& sql : corpus) {
      ExecutionStats stats;
      Result<std::vector<Row>> rows = RunDist(sql, &stats);
      EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
      DistOutcome o;
      if (rows.ok()) o.rows = testing::Canonicalize(rows.value());
      o.reopts = stats.reopts;
      o.attempts = stats.attempts.size();
      outcomes.push_back(std::move(o));
    }
    return outcomes;
  };
  const std::vector<DistOutcome> row_engine = sweep(1);
  for (const int64_t batch : {3, 1024}) {
    SCOPED_TRACE("exec_batch_rows=" + std::to_string(batch));
    const std::vector<DistOutcome> batch_engine = sweep(batch);
    ASSERT_EQ(row_engine.size(), batch_engine.size());
    for (size_t i = 0; i < row_engine.size(); ++i) {
      SCOPED_TRACE(corpus[i]);
      EXPECT_EQ(row_engine[i].rows, batch_engine[i].rows);
      EXPECT_EQ(row_engine[i].reopts, batch_engine[i].reopts);
      EXPECT_EQ(row_engine[i].attempts, batch_engine[i].attempts);
    }
  }
}

TEST_F(DistTest, CrossQueryFeedbackSkipsRepeatViolation) {
  StartCluster(2);
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class";
  const QuerySpec query = Parse(full_, sql);
  QueryFeedbackStore store;
  CancelToken c1;
  ExecutionStats first;
  ASSERT_TRUE(coordinator_->Execute(query, &c1, &store, &first).ok());
  EXPECT_GE(first.reopts, 1);
  // Second run seeds from the learned global cardinalities: right plan
  // first try, no violation.
  CancelToken c2;
  ExecutionStats second;
  ASSERT_TRUE(coordinator_->Execute(query, &c2, &store, &second).ok());
  EXPECT_EQ(0, second.reopts);
}

// ------------------------------------------------- cancellation fan-out

TEST_F(DistTest, DeadlinePropagatesToShards) {
  StartCluster(2, /*stall_ms=*/30.0);
  CancelToken cancel;
  cancel.SetDeadlineAfterMs(60.0);
  ExecutionStats stats;
  // Small batches force many stalled emits, so the deadline always lands
  // mid-stream.
  coordinator_->set_batch_rows(16);
  Result<std::vector<Row>> rows =
      RunDist("SELECT o_id, o_subclass FROM orders", &stats, &cancel);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, rows.status().code())
      << rows.status().ToString();
  // Every shard query is released (cancel fan-out reached them); allow the
  // in-flight cancels a moment to settle.
  for (int i = 0; i < 100; ++i) {
    int64_t inflight = 0;
    for (const auto& shard : shards_) {
      inflight += shard->server->sessions().inflight_queries();
    }
    if (inflight == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "shard subqueries still in flight after cancellation";
}

TEST_F(DistTest, ExplicitCancelPropagatesToShards) {
  StartCluster(2, /*stall_ms=*/30.0);
  CancelToken cancel;
  coordinator_->set_batch_rows(16);
  std::thread trip([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.RequestCancel();
  });
  Result<std::vector<Row>> rows =
      RunDist("SELECT o_id, o_subclass FROM orders", nullptr, &cancel);
  trip.join();
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kCancelled, rows.status().code())
      << rows.status().ToString();
}

// ------------------------------------------------------------ shard death

TEST_F(DistTest, ShardDeathMidQueryFailsCleanlyWithoutHang) {
  StartCluster(2, /*stall_ms=*/20.0);
  coordinator_->set_batch_rows(16);
  std::thread killer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    shards_[1]->server->Shutdown();  // Hard-drops every connection.
  });
  Result<std::vector<Row>> rows =
      RunDist("SELECT o_id, o_subclass FROM orders");
  killer.join();
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kUnavailable, rows.status().code())
      << rows.status().ToString();
  // The error names the shard that died.
  EXPECT_NE(std::string::npos, rows.status().ToString().find("shard 1"))
      << rows.status().ToString();
  // The surviving shard drained its subquery (cancel fan-out / broken
  // sink), so nothing is left in flight.
  for (int i = 0; i < 100; ++i) {
    if (shards_[0]->server->sessions().inflight_queries() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(0, shards_[0]->server->sessions().inflight_queries());
}

TEST_F(DistTest, DeadShardAtScatterTimeFailsFast) {
  StartCluster(2);
  shards_[0]->server->Shutdown();
  shards_[0]->server = nullptr;
  Result<std::vector<Row>> rows = RunDist("SELECT COUNT(*) FROM orders");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kUnavailable, rows.status().code())
      << rows.status().ToString();
}

// ------------------------------------------------------- local fallback

TEST_F(DistTest, NonShardableQueriesAreDeclined) {
  StartCluster(2);
  EXPECT_FALSE(coordinator_->CanExecute(
      Parse(full_, "SELECT COUNT(*) FROM clazz")));
  EXPECT_FALSE(coordinator_->CanExecute(Parse(
      full_, "SELECT COUNT(*) FROM orders, items WHERE o_subclass = i_qty")));
}

// ------------------------------------------------- observability plane

/// DFS for a profile node whose name starts with `prefix`.
const PlanProfileNode* FindProfileNode(const PlanProfileNode& node,
                                       const std::string& prefix) {
  if (node.name.rfind(prefix, 0) == 0) return &node;
  for (const PlanProfileNode& child : node.children) {
    const PlanProfileNode* hit = FindProfileNode(child, prefix);
    if (hit != nullptr) return hit;
  }
  return nullptr;
}

// Golden stitched two-process Chrome trace: pids are rewritten densely,
// shard clocks are shifted onto the coordinator's timeline, and every
// process gets a Perfetto process_name metadata row.
TEST(DistObservabilityTest, StitchChromeTraceRewritesPidsAndShiftsClocks) {
  dist::ProcessTrace coord;
  coord.name = "coordinator";
  coord.trace_json =
      R"([{"name":"dist_execute","cat":"dist","ph":"X","ts":100,)"
      R"("dur":50,"pid":7,"tid":0}])";
  coord.ts_offset_us = 0;
  dist::ProcessTrace shard;
  shard.name = "shard 0 @127.0.0.1:9001";
  shard.trace_json =
      R"([{"name":"subplan_execute","cat":"dist","ph":"X","ts":10,)"
      R"("dur":20,"tid":3,"args":{"label":"q1"}},)"
      R"([{"name":"ignored_non_object"}]])";
  shard.ts_offset_us = 105;

  Result<std::string> stitched =
      dist::StitchChromeTrace({coord, shard});
  ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
  Result<JsonValue> parsed = JsonParse(stitched.value(), {16, 100000});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(JsonValue::Kind::kArray, parsed.value().kind());

  int metadata_rows = 0;
  bool saw_coord = false;
  bool saw_shard = false;
  for (const JsonValue& event : parsed.value().items()) {
    const std::string name = event.GetString("name", "");
    if (event.GetString("ph", "") == "M") {
      ASSERT_EQ("process_name", name);
      ++metadata_rows;
      continue;
    }
    if (name == "dist_execute") {
      saw_coord = true;
      EXPECT_EQ(0, event.GetInt("pid", -1));  // 7 rewritten to slot 0.
      EXPECT_EQ(100, event.GetInt("ts", -1));
    } else if (name == "subplan_execute") {
      saw_shard = true;
      EXPECT_EQ(1, event.GetInt("pid", -1));  // pid appended when absent.
      EXPECT_EQ(115, event.GetInt("ts", -1));  // 10 + offset 105.
      EXPECT_EQ(3, event.GetInt("tid", -1));   // tid passes through.
      const JsonValue* args = event.Find("args");
      ASSERT_NE(nullptr, args);
      EXPECT_EQ("q1", args->GetString("label", ""));
    }
  }
  EXPECT_EQ(2, metadata_rows);
  EXPECT_TRUE(saw_coord);
  EXPECT_TRUE(saw_shard);
  EXPECT_NE(std::string::npos,
            stitched.value().find("shard 0 @127.0.0.1:9001"));
}

TEST(DistObservabilityTest, StitchChromeTraceRejectsCorruptDump) {
  dist::ProcessTrace bad;
  bad.name = "shard 1";
  bad.trace_json = "{not json";
  EXPECT_FALSE(dist::StitchChromeTrace({bad}).ok());
  dist::ProcessTrace wrong_shape;
  wrong_shape.name = "shard 2";
  wrong_shape.trace_json = R"({"name":"object_not_array"})";
  EXPECT_FALSE(dist::StitchChromeTrace({wrong_shape}).ok());
}

// Golden federated exposition: each shard line gains shard="N" as its
// first label; repeated HELP/TYPE headers are dropped.
TEST(DistObservabilityTest, FederateMetricsTextInjectsShardLabels) {
  const std::string local =
      "# HELP popdb_up 1 while the server is serving.\n"
      "# TYPE popdb_up gauge\n"
      "popdb_up 1\n";
  const std::string shard0 =
      "# HELP popdb_up 1 while the server is serving.\n"
      "# TYPE popdb_up gauge\n"
      "popdb_up 1\n"
      "popdb_checks_fired_by_flavor_total{flavor=\"LC\"} 2\n";
  const std::string shard1 =
      "popdb_up 1\n"
      "\n"
      "garbage-line-without-value\n";

  const std::string merged = dist::FederateMetricsText(
      local, {{"0", shard0}, {"1", shard1}});
  EXPECT_EQ(
      "# HELP popdb_up 1 while the server is serving.\n"
      "# TYPE popdb_up gauge\n"
      "popdb_up 1\n"
      "# federated from shard 0\n"
      "popdb_up{shard=\"0\"} 1\n"
      "popdb_checks_fired_by_flavor_total{shard=\"0\",flavor=\"LC\"} 2\n"
      "# federated from shard 1\n"
      "popdb_up{shard=\"1\"} 1\n"
      "garbage-line-without-value\n",
      merged);
}

// The trap query on a live 2-shard cluster: the merged EXPLAIN ANALYZE
// tree has the gather root, the cross-shard aggregate, and one subtree per
// shard with its own Q-errors; the per-shard breakdown and the fired
// CHECK are recorded in the stats.
TEST_F(DistTest, DistributedExplainAnalyzeMergesShardProfiles) {
  StartCluster(2);
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class";
  ExecutionStats stats;
  Result<std::vector<Row>> rows = RunDist(sql, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_GE(stats.reopts, 1);

  const AttemptInfo& last = stats.last_attempt();
  ASSERT_TRUE(last.has_profile);
  const PlanProfileNode& root = last.profile;
  EXPECT_EQ(0u, root.name.rfind("GATHER", 0)) << root.name;
  EXPECT_NE(std::string::npos, root.detail.find("2 shards")) << root.detail;

  const PlanProfileNode* cluster = FindProfileNode(root, "CLUSTER");
  ASSERT_NE(nullptr, cluster);
  std::vector<const PlanProfileNode*> shard_nodes;
  for (const PlanProfileNode& child : root.children) {
    if (child.name == "SHARD") shard_nodes.push_back(&child);
  }
  ASSERT_EQ(2u, shard_nodes.size());
  EXPECT_NE(std::string::npos, shard_nodes[0]->detail.find("shard 0"));
  EXPECT_NE(std::string::npos, shard_nodes[1]->detail.find("shard 1"));
  // Each shard subtree is a real executed profile: some operator in it
  // completed with estimates, so a Q-error is computable.
  EXPECT_GE(PeakProfileQError(*shard_nodes[0]), 1.0);
  EXPECT_GE(PeakProfileQError(*shard_nodes[1]), 1.0);

  // Per-shard breakdown of the final (successful) attempt.
  ASSERT_EQ(2u, last.shards.size());
  int64_t shard_rows = 0;
  for (const ShardAttemptInfo& s : last.shards) {
    EXPECT_EQ("ok", s.outcome);
    EXPECT_GE(s.execute_ms, 0.0);
    shard_rows += s.rows;
  }
  EXPECT_GE(shard_rows, static_cast<int64_t>(rows.value().size()));
  // The violating attempt recorded its shards too, one of them firing.
  bool saw_reopt_shard = false;
  for (const ShardAttemptInfo& s : stats.attempts.front().shards) {
    if (s.outcome == "reoptimize") saw_reopt_shard = true;
  }
  EXPECT_TRUE(saw_reopt_shard);
  // The fired CHECK surfaced as a cluster-level check event.
  bool saw_fired = false;
  for (const CheckEvent& e : stats.check_events) {
    if (e.fired) saw_fired = true;
  }
  EXPECT_TRUE(saw_fired);
}

// Live cluster trace stitching + metrics federation through the
// coordinator's ClusterObservability interface (what the `spans` /
// `metrics {cluster:true}` wire requests call).
TEST_F(DistTest, ClusterTraceAndFederatedMetricsFromLiveCluster) {
  StartCluster(2);
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Enable();
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class";
  ExecutionStats stats;
  Result<std::vector<Row>> rows = RunDist(sql, &stats);
  tracer.Disable();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  // The coordinator recorded the distributed phases, labeled by token.
  bool saw_execute = false;
  bool saw_scatter = false;
  bool saw_violation = false;
  for (const SpanEvent& e : tracer.Snapshot()) {
    const std::string name = e.name;
    if (name == "dist_execute") saw_execute = true;
    if (name == "dist_scatter") saw_scatter = true;
    if (name == "check_violation") {
      saw_violation = true;
      ASSERT_NE(nullptr, e.label);
      EXPECT_EQ('q', e.label[0]);
    }
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_scatter);
  EXPECT_TRUE(saw_violation);

  // Stitched cluster trace: coordinator + both shards, one pid row each
  // (in-process shards share the tracer, but the stitch still assigns
  // every process its own pid and name row).
  Result<std::string> trace = coordinator_->ClusterTraceJson();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  Result<JsonValue> parsed = JsonParse(trace.value(), {32, 2000000});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  int process_rows = 0;
  bool saw_pid2 = false;
  for (const JsonValue& event : parsed.value().items()) {
    if (event.GetString("ph", "") == "M") ++process_rows;
    if (event.GetInt("pid", -1) == 2) saw_pid2 = true;
  }
  EXPECT_EQ(3, process_rows);  // coordinator + 2 shards.
  EXPECT_TRUE(saw_pid2);
  EXPECT_NE(std::string::npos, trace.value().find("coordinator"));
  EXPECT_NE(std::string::npos, trace.value().find("shard 1"));

  // Federated exposition: coordinator families plus per-shard samples.
  Result<std::string> metrics =
      coordinator_->FederatedMetricsText("popdb_up 1\n");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(std::string::npos, metrics.value().find("popdb_up 1"));
  EXPECT_NE(std::string::npos, metrics.value().find("shard=\"0\""));
  EXPECT_NE(std::string::npos, metrics.value().find("shard=\"1\""));
  // Shard servers count the subplans they executed.
  EXPECT_NE(std::string::npos,
            metrics.value().find("popdb_net_subplans_total{shard=\"1\"}"));
  tracer.Clear();
}

// Wire-level: a shard's subplan query_done frame reports the shard's
// execution wall time and its EXPLAIN ANALYZE profile (what the
// coordinator merges), and the shard's own query log records the subplan.
TEST_F(DistTest, SubplanQueryDoneCarriesTimingAndProfile) {
  StartCluster(2);
  const QuerySpec query = Parse(full_, "SELECT COUNT(*) FROM orders");
  ProgressiveExecutor exec(full_, OptimizerConfig{}, PopConfig{});
  Result<OptimizedPlan> plan = exec.Plan(query);
  ASSERT_TRUE(plan.ok());
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("subplan");
  w.Key("query");
  dist::AppendQuerySpecJson(query, &w);
  w.Key("plan");
  ASSERT_TRUE(dist::AppendPlanJson(*plan.value().root, &w).ok());
  w.Key("batch_rows").Int(100);
  w.Key("trace_token").String("tok-sub-7");
  w.EndObject();

  Result<net::Client> connected =
      net::Client::Connect("127.0.0.1", shards_[0]->server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  net::Client client = std::move(connected).TakeValue();
  Result<int64_t> id = client.SubplanStart(w.str());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  bool saw_done = false;
  while (!saw_done) {
    Result<net::ShardEvent> event = client.SubplanNext();
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    if (event.value().kind != net::ShardEvent::Kind::kDone) continue;
    saw_done = true;
    const JsonValue& done = event.value().payload;
    EXPECT_EQ("ok", done.GetString("outcome", ""));
    EXPECT_GE(done.GetNumber("execute_ms", -1.0), 0.0);
    const JsonValue* profile_json = done.Find("profile");
    ASSERT_NE(nullptr, profile_json);
    PlanProfileNode profile;
    ASSERT_TRUE(ProfileFromJson(*profile_json, &profile));
    EXPECT_FALSE(profile.name.empty());
  }

  // The shard logged the subplan with the query's name.
  ASSERT_NE(nullptr, shards_[0]->service->query_log());
  const std::vector<QueryLogEntry> tail =
      shards_[0]->service->query_log()->Tail(0);
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ("subplan", tail.back().kind);
  EXPECT_EQ("ok", tail.back().outcome);
  client.Close();
}

// The coordinator's own per-shard gauges after a distributed query.
TEST_F(DistTest, CoordinatorExportsPerShardMetrics) {
  StartCluster(2);
  MetricsRegistry registry;
  coordinator_->RegisterMetrics(&registry);
  ASSERT_TRUE(RunDist("SELECT COUNT(*) FROM orders").ok());
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(std::string::npos,
            text.find("popdb_dist_shard_rows_total{shard=\"0\"}"));
  EXPECT_NE(std::string::npos,
            text.find("popdb_dist_shard_rows_total{shard=\"1\"}"));
  EXPECT_NE(std::string::npos,
            text.find("popdb_dist_shard_latency_ms_bucket{shard=\"0\",le="));
  EXPECT_NE(std::string::npos, text.find("popdb_dist_shard_lag_ms_count 1"));
}

}  // namespace
}  // namespace popdb
