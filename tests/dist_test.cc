// Tests of the sharded scatter-gather subsystem (src/dist): range
// partitioning, subplan JSON round trips, distributed-vs-single-node
// result equivalence over real loopback shard servers, coordinator-level
// progressive re-optimization from per-shard CHECK violations, fan-out
// cancellation/deadlines, and shard death mid-query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/plan_json.h"
#include "dist/shard.h"
#include "dist/split.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/binder.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

/// Correlated orders/items pair (o_subclass determines o_class, so
/// conjunctive predicates on both are 10x overestimated under the
/// independence assumption) — the same trap that drives single-node POP
/// re-optimization, here scaled per shard.
void BuildDistCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"i_qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  // Replicated dimension (not in the partition spec).
  Table clazz("clazz", Schema({{"c_id", ValueType::kInt},
                               {"c_name", ValueType::kString}}));
  for (int64_t i = 0; i < 20; ++i) {
    clazz.AppendRow({Value::Int(i), Value::String("class-" +
                                                  std::to_string(i))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(clazz)).ok());
  catalog->AnalyzeAll();
}

dist::PartitionSpec DistSpec() {
  dist::PartitionSpec spec;
  spec.keys = {{"orders", 0}, {"items", 0}};
  return spec;
}

QuerySpec Parse(const Catalog& catalog, const std::string& sql) {
  Result<sql::BoundStatement> bound = sql::ParseSql(catalog, sql);
  EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
  return bound.value().query;
}

/// One in-process shard: its partition catalog, a QueryService (the
/// NetServer requires one), and a NetServer with the subplan backend.
struct ShardProcess {
  Catalog catalog;
  TraceStore traces{64};
  std::unique_ptr<QueryService> service;
  std::unique_ptr<dist::ShardExecutor> executor;
  std::unique_ptr<net::NetServer> server;

  ~ShardProcess() {
    if (server != nullptr) server->Shutdown();
    if (service != nullptr) service->Shutdown(/*drain=*/false);
  }
};

class DistTest : public ::testing::Test {
 protected:
  void StartCluster(int num_shards, double stall_ms = 0.0) {
    BuildDistCatalog(&full_);
    spec_ = DistSpec();
    Result<std::vector<dist::KeyRange>> ranges =
        dist::ComputeRanges(full_, spec_, num_shards);
    ASSERT_TRUE(ranges.ok()) << ranges.status().ToString();
    std::vector<net::Endpoint> endpoints;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<ShardProcess>();
      ASSERT_TRUE(dist::BuildShardCatalog(full_, spec_, ranges.value(), s,
                                          /*histogram_buckets=*/32,
                                          &shard->catalog)
                      .ok());
      ServiceConfig service_config;
      service_config.share_feedback = true;
      service_config.trace_sink = &shard->traces;
      shard->service =
          std::make_unique<QueryService>(shard->catalog, service_config);
      shard->executor =
          std::make_unique<dist::ShardExecutor>(shard->catalog);
      net::NetServerConfig net_config;
      net_config.host = "127.0.0.1";
      net_config.port = 0;
      net_config.subplan_backend = shard->executor.get();
      net_config.subplan_stall_ms = stall_ms;
      shard->server = std::make_unique<net::NetServer>(
          shard->service.get(), &shard->traces, net_config);
      ASSERT_TRUE(shard->server->Start().ok());
      endpoints.push_back({"127.0.0.1", shard->server->port()});
      shards_.push_back(std::move(shard));
    }
    dist::CoordinatorConfig config;
    config.shards = endpoints;
    config.partition = spec_;
    coordinator_ = std::make_unique<dist::Coordinator>(full_, config);
  }

  Result<std::vector<Row>> RunDist(const std::string& sql,
                                   ExecutionStats* stats = nullptr,
                                   CancelToken* cancel = nullptr) {
    const QuerySpec query = Parse(full_, sql);
    EXPECT_TRUE(coordinator_->CanExecute(query)) << sql;
    CancelToken local_cancel;
    ExecutionStats local_stats;
    return coordinator_->Execute(query,
                                 cancel != nullptr ? cancel : &local_cancel,
                                 /*feedback=*/nullptr,
                                 stats != nullptr ? stats : &local_stats);
  }

  /// Single-node oracle: the same query through the progressive executor
  /// against the full catalog.
  std::vector<Row> RunLocal(const std::string& sql) {
    ProgressiveExecutor exec(full_, OptimizerConfig{}, PopConfig{});
    Result<std::vector<Row>> rows = exec.Execute(Parse(full_, sql));
    EXPECT_TRUE(rows.ok()) << sql << ": " << rows.status().ToString();
    return rows.ok() ? rows.value() : std::vector<Row>{};
  }

  Catalog full_;
  dist::PartitionSpec spec_;
  std::vector<std::unique_ptr<ShardProcess>> shards_;
  std::unique_ptr<dist::Coordinator> coordinator_;
};

// -------------------------------------------------------- partitioning

TEST(PartitionTest, RangesCoverDomainWithoutOverlap) {
  Catalog full;
  BuildDistCatalog(&full);
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, DistSpec(), 4);
  ASSERT_TRUE(ranges.ok());
  ASSERT_EQ(4u, ranges.value().size());
  EXPECT_EQ(0, ranges.value()[0].lo);
  for (size_t i = 1; i < ranges.value().size(); ++i) {
    EXPECT_EQ(ranges.value()[i - 1].hi, ranges.value()[i].lo);
  }
  EXPECT_EQ(4000, ranges.value().back().hi);  // max key 3999, half-open.
}

TEST(PartitionTest, ShardCatalogsPartitionFactsAndReplicateDims) {
  Catalog full;
  BuildDistCatalog(&full);
  const dist::PartitionSpec spec = DistSpec();
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, spec, 3);
  ASSERT_TRUE(ranges.ok());
  int64_t orders_total = 0;
  int64_t items_total = 0;
  for (int s = 0; s < 3; ++s) {
    Catalog shard;
    ASSERT_TRUE(
        dist::BuildShardCatalog(full, spec, ranges.value(), s, 32, &shard)
            .ok());
    orders_total += shard.GetTable("orders")->num_rows();
    items_total += shard.GetTable("items")->num_rows();
    // Replicated dimension is complete on every shard.
    EXPECT_EQ(20, shard.GetTable("clazz")->num_rows());
    // Shard statistics describe the shard, not the global table.
    EXPECT_LT(shard.GetTable("orders")->num_rows(), 4000);
  }
  EXPECT_EQ(4000, orders_total);
  EXPECT_EQ(12000, items_total);
}

TEST(PartitionTest, ComputeRangesRejectsBadInput) {
  Catalog full;
  BuildDistCatalog(&full);
  EXPECT_FALSE(dist::ComputeRanges(full, DistSpec(), 0).ok());
  dist::PartitionSpec missing;
  missing.keys = {{"nope", 0}};
  EXPECT_FALSE(dist::ComputeRanges(full, missing, 2).ok());
}

// ----------------------------------------------------- JSON round trips

TEST(PlanJsonTest, QuerySpecRoundTripsThroughJson) {
  Catalog full;
  BuildDistCatalog(&full);
  const std::vector<std::string> corpus = {
      "SELECT o_id, o_subclass FROM orders WHERE o_subclass < 12",
      "SELECT o_class, COUNT(*), SUM(o_subclass), AVG(o_subclass) "
      "FROM orders GROUP BY o_class ORDER BY 1",
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class",
      "SELECT DISTINCT o_class FROM orders ORDER BY 1 LIMIT 5",
  };
  for (const std::string& sql : corpus) {
    const QuerySpec query = Parse(full, sql);
    JsonWriter w;
    dist::AppendQuerySpecJson(query, &w);
    Result<JsonValue> parsed = JsonParse(w.str());
    ASSERT_TRUE(parsed.ok()) << sql;
    Result<QuerySpec> back = dist::QuerySpecFromJson(parsed.value());
    ASSERT_TRUE(back.ok()) << sql << ": " << back.status().ToString();
    // Re-serialization is a faithful equality proxy: every field the
    // engine reads participates in the encoding.
    JsonWriter w2;
    dist::AppendQuerySpecJson(back.value(), &w2);
    EXPECT_EQ(w.str(), w2.str()) << sql;
  }
}

TEST(PlanJsonTest, OptimizedPlanRoundTripsThroughJson) {
  Catalog full;
  BuildDistCatalog(&full);
  ProgressiveExecutor exec(full, OptimizerConfig{}, PopConfig{});
  const QuerySpec query = Parse(
      full,
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "GROUP BY o_class");
  Result<OptimizedPlan> plan = exec.Plan(query);
  ASSERT_TRUE(plan.ok());
  JsonWriter w;
  ASSERT_TRUE(dist::AppendPlanJson(*plan.value().root, &w).ok());
  Result<JsonValue> parsed = JsonParse(w.str());
  ASSERT_TRUE(parsed.ok());
  Result<std::shared_ptr<PlanNode>> back =
      dist::PlanFromJson(parsed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  JsonWriter w2;
  ASSERT_TRUE(dist::AppendPlanJson(*back.value(), &w2).ok());
  EXPECT_EQ(w.str(), w2.str());
}

// ---------------------------------------------------------- shardability

TEST(SplitTest, CoPartitionedJoinIsShardableNonKeyJoinIsNot) {
  Catalog full;
  BuildDistCatalog(&full);
  const dist::PartitionSpec spec = DistSpec();
  EXPECT_TRUE(dist::IsShardable(
      Parse(full, "SELECT COUNT(*) FROM orders, items WHERE o_id = i_order"),
      spec));
  EXPECT_TRUE(dist::IsShardable(
      Parse(full, "SELECT COUNT(*) FROM orders"), spec));
  // Joining the two partitioned tables on non-key columns cannot be
  // answered shard-locally.
  EXPECT_FALSE(dist::IsShardable(
      Parse(full,
            "SELECT COUNT(*) FROM orders, items WHERE o_subclass = i_qty"),
      spec));
  // Pure replicated-table queries run locally too.
  EXPECT_FALSE(
      dist::IsShardable(Parse(full, "SELECT COUNT(*) FROM clazz"), spec));
}

// ----------------------------------------------------------- equivalence

TEST_F(DistTest, DistributedResultsMatchSingleNode) {
  StartCluster(3);
  const std::vector<std::string> corpus = {
      "SELECT o_id, o_subclass FROM orders WHERE o_subclass < 12",
      "SELECT o_class, COUNT(*), SUM(o_subclass), AVG(o_subclass) "
      "FROM orders GROUP BY o_class ORDER BY 1",
      "SELECT MIN(i_qty), MAX(i_qty), COUNT(*) FROM items",
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "GROUP BY o_class ORDER BY 1",
      "SELECT o_class, SUM(i_qty), AVG(i_qty) FROM orders, items "
      "WHERE o_id = i_order AND o_subclass = 77 GROUP BY o_class ORDER BY 1",
      "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class "
      "HAVING COUNT(*) > 190 ORDER BY 1",
      "SELECT DISTINCT o_class FROM orders ORDER BY 1",
      "SELECT o_id FROM orders WHERE o_subclass = 5 ORDER BY 1 LIMIT 7",
      "SELECT o_class, c_name, COUNT(*) FROM orders, clazz "
      "WHERE o_class = c_id GROUP BY o_class, c_name ORDER BY 1",
  };
  for (const std::string& sql : corpus) {
    Result<std::vector<Row>> dist_rows = RunDist(sql);
    ASSERT_TRUE(dist_rows.ok())
        << sql << ": " << dist_rows.status().ToString();
    EXPECT_EQ(testing::Canonicalize(RunLocal(sql)),
              testing::Canonicalize(dist_rows.value()))
        << sql;
  }
}

TEST_F(DistTest, OrderByIsRespectedAcrossShardMerge) {
  StartCluster(2);
  const std::string sql =
      "SELECT o_id FROM orders WHERE o_subclass < 4 ORDER BY 1";
  Result<std::vector<Row>> rows = RunDist(sql);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows.value().empty());
  for (size_t i = 1; i < rows.value().size(); ++i) {
    EXPECT_LE(rows.value()[i - 1][0].AsInt(), rows.value()[i][0].AsInt());
  }
}

// ----------------------------------------- global progressive execution

TEST_F(DistTest, ShardCheckViolationTriggersGlobalReoptimization) {
  StartCluster(2);
  // The correlated predicate pair makes the coordinator's first plan
  // overestimate 10x; the shard-scaled CHECK fires shard-side.
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class";
  ExecutionStats stats;
  Result<std::vector<Row>> rows = RunDist(sql, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE(stats.reopts, 1) << "expected a cluster-level re-optimization";
  ASSERT_GE(stats.attempts.size(), 2u);
  EXPECT_TRUE(stats.attempts.front().reoptimized);
  // The harvested global cardinalities changed the plan.
  EXPECT_NE(stats.attempts.front().plan_text,
            stats.attempts.back().plan_text);
  EXPECT_EQ(testing::Canonicalize(RunLocal(sql)),
            testing::Canonicalize(rows.value()));
}

TEST_F(DistTest, CrossQueryFeedbackSkipsRepeatViolation) {
  StartCluster(2);
  const std::string sql =
      "SELECT o_class, COUNT(*) FROM orders, items WHERE o_id = i_order "
      "AND o_class = 7 AND o_subclass = 77 GROUP BY o_class";
  const QuerySpec query = Parse(full_, sql);
  QueryFeedbackStore store;
  CancelToken c1;
  ExecutionStats first;
  ASSERT_TRUE(coordinator_->Execute(query, &c1, &store, &first).ok());
  EXPECT_GE(first.reopts, 1);
  // Second run seeds from the learned global cardinalities: right plan
  // first try, no violation.
  CancelToken c2;
  ExecutionStats second;
  ASSERT_TRUE(coordinator_->Execute(query, &c2, &store, &second).ok());
  EXPECT_EQ(0, second.reopts);
}

// ------------------------------------------------- cancellation fan-out

TEST_F(DistTest, DeadlinePropagatesToShards) {
  StartCluster(2, /*stall_ms=*/30.0);
  CancelToken cancel;
  cancel.SetDeadlineAfterMs(60.0);
  ExecutionStats stats;
  // Small batches force many stalled emits, so the deadline always lands
  // mid-stream.
  coordinator_->set_batch_rows(16);
  Result<std::vector<Row>> rows =
      RunDist("SELECT o_id, o_subclass FROM orders", &stats, &cancel);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, rows.status().code())
      << rows.status().ToString();
  // Every shard query is released (cancel fan-out reached them); allow the
  // in-flight cancels a moment to settle.
  for (int i = 0; i < 100; ++i) {
    int64_t inflight = 0;
    for (const auto& shard : shards_) {
      inflight += shard->server->sessions().inflight_queries();
    }
    if (inflight == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "shard subqueries still in flight after cancellation";
}

TEST_F(DistTest, ExplicitCancelPropagatesToShards) {
  StartCluster(2, /*stall_ms=*/30.0);
  CancelToken cancel;
  coordinator_->set_batch_rows(16);
  std::thread trip([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.RequestCancel();
  });
  Result<std::vector<Row>> rows =
      RunDist("SELECT o_id, o_subclass FROM orders", nullptr, &cancel);
  trip.join();
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kCancelled, rows.status().code())
      << rows.status().ToString();
}

// ------------------------------------------------------------ shard death

TEST_F(DistTest, ShardDeathMidQueryFailsCleanlyWithoutHang) {
  StartCluster(2, /*stall_ms=*/20.0);
  coordinator_->set_batch_rows(16);
  std::thread killer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    shards_[1]->server->Shutdown();  // Hard-drops every connection.
  });
  Result<std::vector<Row>> rows =
      RunDist("SELECT o_id, o_subclass FROM orders");
  killer.join();
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kUnavailable, rows.status().code())
      << rows.status().ToString();
  // The error names the shard that died.
  EXPECT_NE(std::string::npos, rows.status().ToString().find("shard 1"))
      << rows.status().ToString();
  // The surviving shard drained its subquery (cancel fan-out / broken
  // sink), so nothing is left in flight.
  for (int i = 0; i < 100; ++i) {
    if (shards_[0]->server->sessions().inflight_queries() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(0, shards_[0]->server->sessions().inflight_queries());
}

TEST_F(DistTest, DeadShardAtScatterTimeFailsFast) {
  StartCluster(2);
  shards_[0]->server->Shutdown();
  shards_[0]->server = nullptr;
  Result<std::vector<Row>> rows = RunDist("SELECT COUNT(*) FROM orders");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(StatusCode::kUnavailable, rows.status().code())
      << rows.status().ToString();
}

// ------------------------------------------------------- local fallback

TEST_F(DistTest, NonShardableQueriesAreDeclined) {
  StartCluster(2);
  EXPECT_FALSE(coordinator_->CanExecute(
      Parse(full_, "SELECT COUNT(*) FROM clazz")));
  EXPECT_FALSE(coordinator_->CanExecute(Parse(
      full_, "SELECT COUNT(*) FROM orders, items WHERE o_subclass = i_qty")));
}

}  // namespace
}  // namespace popdb
