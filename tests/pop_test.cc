#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pop.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;

/// Catalog with an engineered cardinality trap: orders.subclass
/// functionally determines orders.clazz, and items has no index, so a
/// correlated restriction drives the optimizer into a catastrophic
/// nested-loop plan (the quickstart scenario, scaled down).
class PopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                   {"clazz", ValueType::kInt},
                                   {"subclass", ValueType::kInt}}));
    for (int64_t i = 0; i < 4000; ++i) {
      const int64_t sub = rng.UniformInt(0, 199);
      orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(orders)).ok());
    Table items("items", Schema({{"i_order", ValueType::kInt},
                                 {"qty", ValueType::kInt}}));
    for (int64_t i = 0; i < 12000; ++i) {
      items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                       Value::Int(rng.UniformInt(1, 50))});
    }
    ASSERT_TRUE(catalog_.AddTable(std::move(items)).ok());
    catalog_.AnalyzeAll();
  }

  /// The trap query: estimated ~2 rows, actual ~20.
  QuerySpec TrapQuery() {
    QuerySpec q("trap");
    const int o = q.AddTable("orders");
    const int it = q.AddTable("items");
    q.AddJoin({o, 0}, {it, 0});
    q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));   // clazz = 7
    q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));  // subclass = 77
    q.AddGroupBy({o, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  }

  /// A query whose estimates are accurate (no trap).
  QuerySpec BenignQuery() {
    QuerySpec q("benign");
    const int o = q.AddTable("orders");
    const int it = q.AddTable("items");
    q.AddJoin({o, 0}, {it, 0});
    q.AddPred({o, 2}, PredKind::kEq, Value::Int(42));
    q.AddGroupBy({o, 1});
    q.AddAgg(AggFunc::kCount);
    return q;
  }

  Catalog catalog_;
};

TEST_F(PopTest, ReoptTriggersOnUnderestimate) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(stats.reopts, 1);
  EXPECT_TRUE(stats.attempts[0].reoptimized);
  EXPECT_GT(stats.attempts[0].signal.observed_rows,
            stats.attempts[0].signal.check_hi);
}

TEST_F(PopTest, ReoptBeatsStaticOnTrap) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats pop_stats, static_stats;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &pop_stats).ok());
  ASSERT_TRUE(exec.ExecuteStatic(TrapQuery(), &static_stats).ok());
  EXPECT_LT(pop_stats.total_work, static_stats.total_work / 2);
}

TEST_F(PopTest, ResultsMatchReferenceAfterReopt) {
  const std::vector<Row> expected = ReferenceExecute(catalog_, TrapQuery());
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(stats.reopts, 1);  // The interesting case actually happened.
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
}

TEST_F(PopTest, NoReoptOnAccurateEstimates) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(BenignQuery(), &stats).ok());
  EXPECT_EQ(0, stats.reopts);
  EXPECT_EQ(1u, stats.attempts.size());
}

TEST_F(PopTest, MatViewReusedInSecondAttempt) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &stats).ok());
  ASSERT_GE(stats.reopts, 1);
  EXPECT_GT(stats.mv_rows_harvested, 0);
  // The re-optimized plan scans the temporary materialized view.
  EXPECT_NE(std::string::npos, stats.attempts[1].plan_text.find("MVSCAN"));
}

TEST_F(PopTest, MatViewReuseDisabledStillCorrect) {
  PopConfig pop;
  pop.reuse_matviews = false;
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, pop);
  const std::vector<Row> expected = ReferenceExecute(catalog_, TrapQuery());
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
  if (stats.reopts > 0) {
    EXPECT_EQ(std::string::npos,
              stats.attempts[1].plan_text.find("MVSCAN"));
  }
}

TEST_F(PopTest, MaxReoptsIsRespected) {
  PopConfig pop;
  pop.max_reopts = 2;
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, pop);
  // Force every check to fail on every checked attempt: the budget is the
  // only thing stopping the loop, and the final attempt runs check-free.
  exec.set_plan_hook([](PlanNode* root, int attempt) {
    (void)attempt;
    for (PlanNode* check : CollectChecks(root)) {
      check->check.lo = 1e30;
      check->check.hi = 2e30;
    }
  });
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(2, stats.reopts);
  EXPECT_EQ(3u, stats.attempts.size());
  EXPECT_FALSE(stats.attempts.back().reoptimized);
}

TEST_F(PopTest, ZeroMaxReoptsIsStaticWithNoChecks) {
  PopConfig pop;
  pop.max_reopts = 0;
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, pop);
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &stats).ok());
  EXPECT_EQ(0, stats.reopts);
  EXPECT_EQ(0, stats.attempts[0].checks.total());
}

TEST_F(PopTest, FeedbackRecordedFromFailingCheck) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &stats).ok());
  ASSERT_GE(stats.reopts, 1);
  // After re-optimization the orders estimate must be the actual (~20),
  // visible in the second attempt's plan text (card=...).
  const std::string& plan2 = stats.attempts[1].plan_text;
  EXPECT_EQ(std::string::npos, plan2.find("card=2 "))
      << "stale estimate survived:\n" << plan2;
}

TEST_F(PopTest, StaticExecutionPlacesNoChecks) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  ASSERT_TRUE(exec.ExecuteStatic(TrapQuery(), &stats).ok());
  EXPECT_EQ(0, stats.attempts[0].checks.total());
  EXPECT_EQ(std::string::npos, stats.attempts[0].plan_text.find("CHECK"));
}

TEST_F(PopTest, EcdcCompensationProducesNoDuplicates) {
  QuerySpec q("spj");
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddProjection({it, 1});
  PopConfig pop;
  pop.enable_lc = false;
  pop.enable_lcem = false;
  pop.enable_ecdc = true;
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, pop);
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  const std::vector<Row> expected = ReferenceExecute(catalog_, q);
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
  if (stats.reopts > 0) {
    // Rows really were pipelined before the re-optimization.
    EXPECT_GT(stats.attempts[0].rows_returned, 0);
    EXPECT_NE(std::string::npos,
              stats.attempts[1].plan_text.find("ANTIJOIN"));
  }
}

TEST_F(PopTest, ForcedDummyReoptKeepsResultsAndReusesWork) {
  // Fire a check even though estimates are fine: the re-optimization sees
  // confirming actuals and reuses the materialized result (Figure 12's
  // dummy re-optimization).
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  int forced = 0;
  exec.set_plan_hook([&forced](PlanNode* root, int attempt) {
    if (attempt != 0) return;
    std::vector<PlanNode*> checks = CollectChecks(root);
    if (!checks.empty()) {
      checks[0]->check.lo = 1e30;
      checks[0]->check.hi = 2e30;
      ++forced;
    }
  });
  const std::vector<Row> expected = ReferenceExecute(catalog_, BenignQuery());
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(BenignQuery(), &stats);
  ASSERT_TRUE(rows.ok());
  if (forced > 0) {
    EXPECT_EQ(1, stats.reopts);
  }
  EXPECT_EQ(Canonicalize(expected), Canonicalize(rows.value()));
}

TEST_F(PopTest, WorkAndTimingStatsPopulated) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &stats).ok());
  EXPECT_GT(stats.total_work, 0);
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_GT(stats.result_rows, 0);
  for (const AttemptInfo& at : stats.attempts) {
    EXPECT_GT(at.candidates, 0);
    EXPECT_FALSE(at.plan_text.empty());
  }
}

TEST_F(PopTest, StaleStatisticsTriggerReoptAndStayCorrect) {
  // Another of the paper's error sources: statistics collected before the
  // table grew 10x. The optimizer plans for the stale row counts; POP
  // detects the violation at run time.
  Catalog catalog;
  Rng rng(9);
  {
    Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                   {"flag", ValueType::kInt}}));
    // Tiny at ANALYZE time: the estimate (~2 filtered rows) makes a
    // scan-inner nested-loop join look free.
    for (int64_t i = 0; i < 20; ++i) {
      orders.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 9))});
    }
    ASSERT_TRUE(catalog.AddTable(std::move(orders)).ok());
    Table items("items", Schema({{"i_order", ValueType::kInt},
                                 {"qty", ValueType::kInt}}));
    for (int64_t i = 0; i < 9000; ++i) {
      items.AppendRow({Value::Int(rng.UniformInt(0, 2999)),
                       Value::Int(rng.UniformInt(1, 50))});
    }
    ASSERT_TRUE(catalog.AddTable(std::move(items)).ok());
  }
  catalog.AnalyzeAll();  // Stats taken while orders had 20 rows.
  Table* orders = catalog.GetMutableTable("orders");
  for (int64_t i = 20; i < 3000; ++i) {
    orders->AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 9))});
  }
  // Stats now claim 20 rows; the table holds 3000 (150x stale).

  QuerySpec q("stale");
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(3));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);

  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(stats.reopts, 1);
  EXPECT_EQ(Canonicalize(ReferenceExecute(catalog, q)),
            Canonicalize(rows.value()));
}

TEST_F(PopTest, SampledStatisticsStillExecuteCorrectly) {
  // Sampled (imprecise) statistics: plans may differ, results must not.
  Catalog sampled;
  {
    Rng rng(5);
    Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                   {"clazz", ValueType::kInt},
                                   {"subclass", ValueType::kInt}}));
    for (int64_t i = 0; i < 4000; ++i) {
      const int64_t sub = rng.UniformInt(0, 199);
      orders.AppendRow({Value::Int(i), Value::Int(sub / 10),
                        Value::Int(sub)});
    }
    ASSERT_TRUE(sampled.AddTable(std::move(orders)).ok());
    Table items("items", Schema({{"i_order", ValueType::kInt},
                                 {"qty", ValueType::kInt}}));
    for (int64_t i = 0; i < 12000; ++i) {
      items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                       Value::Int(rng.UniformInt(1, 50))});
    }
    ASSERT_TRUE(sampled.AddTable(std::move(items)).ok());
  }
  ASSERT_TRUE(sampled.AnalyzeTableSampled("orders", 0.05).ok());
  ASSERT_TRUE(sampled.AnalyzeTableSampled("items", 0.05).ok());

  ProgressiveExecutor exec(sampled, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.Execute(TrapQuery());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Canonicalize(ReferenceExecute(sampled, TrapQuery())),
            Canonicalize(rows.value()));
}

TEST_F(PopTest, PlanApiExposesValidityRanges) {
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  Result<OptimizedPlan> plan = exec.Plan(TrapQuery());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(std::string::npos, plan.value().root->ToString().find("validity"));
}

// Property: for every checkpoint-flavor combination, POP results equal the
// static results on both trap and benign queries.
class PopFlavorTest : public ::testing::TestWithParam<int> {};

TEST_P(PopFlavorTest, AllFlavorsPreserveResults) {
  Catalog catalog;
  {
    Rng rng(5);
    Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                   {"clazz", ValueType::kInt},
                                   {"subclass", ValueType::kInt}}));
    for (int64_t i = 0; i < 2000; ++i) {
      const int64_t sub = rng.UniformInt(0, 199);
      orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
    }
    ASSERT_TRUE(catalog.AddTable(std::move(orders)).ok());
    Table items("items", Schema({{"i_order", ValueType::kInt},
                                 {"qty", ValueType::kInt}}));
    for (int64_t i = 0; i < 6000; ++i) {
      items.AppendRow({Value::Int(rng.UniformInt(0, 1999)),
                       Value::Int(rng.UniformInt(1, 50))});
    }
    ASSERT_TRUE(catalog.AddTable(std::move(items)).ok());
    catalog.AnalyzeAll();
  }
  const int mask = GetParam();
  PopConfig pop;
  pop.enable_lc = (mask & 1) != 0;
  pop.enable_lcem = (mask & 2) != 0;
  pop.enable_ecb = (mask & 4) != 0;
  pop.enable_ecwc = (mask & 8) != 0;
  pop.enable_ecdc = (mask & 16) != 0;

  QuerySpec q("trap");
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddProjection({it, 1});

  ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
  Result<std::vector<Row>> pop_rows = exec.Execute(q);
  ASSERT_TRUE(pop_rows.ok());
  Result<std::vector<Row>> static_rows = exec.ExecuteStatic(q);
  ASSERT_TRUE(static_rows.ok());
  EXPECT_EQ(Canonicalize(static_rows.value()), Canonicalize(pop_rows.value()))
      << "flavor mask " << mask;
}

INSTANTIATE_TEST_SUITE_P(FlavorMasks, PopFlavorTest,
                         ::testing::Range(0, 32));

}  // namespace
}  // namespace popdb
