// End-to-end observability: EXPLAIN ANALYZE profiles (est vs. actual rows
// with Q-error per operator), span tracing with Chrome-trace export, the
// Prometheus metrics registry, and the JSONL trace escaping guarantees.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/span.h"
#include "core/explain.h"
#include "core/pop.h"
#include "runtime/metrics_registry.h"
#include "runtime/query_log.h"
#include "runtime/query_service.h"
#include "runtime/trace.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;

/// Correlated-predicate trap (see runtime_test.cc): the static optimizer
/// multiplies the two predicate selectivities, underestimates badly, and
/// the first progressive run re-optimizes at least once.
void BuildTrapCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"clazz", ValueType::kInt},
                                 {"subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

QuerySpec TrapQuery(const std::string& name = "trap") {
  QuerySpec q(name);
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// Depth-first search for a profile node matching (name prefix, detail).
const PlanProfileNode* FindNode(const PlanProfileNode& node,
                                const std::string& name_prefix,
                                const std::string& detail) {
  if (node.name.rfind(name_prefix, 0) == 0 &&
      (detail.empty() || node.detail.find(detail) != std::string::npos)) {
    return &node;
  }
  for (const PlanProfileNode& child : node.children) {
    if (const PlanProfileNode* hit = FindNode(child, name_prefix, detail)) {
      return hit;
    }
  }
  return nullptr;
}

// ------------------------------------------------------- EXPLAIN ANALYZE.

TEST(ExplainAnalyzeTest, ScanEstimateMatchesActualOnAnalyzedTable) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});

  QuerySpec q("scan_dept");
  q.AddTable("dept");

  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(q, &stats).ok());
  ASSERT_EQ(1u, stats.attempts.size());
  ASSERT_TRUE(stats.attempts[0].has_profile);

  const PlanProfileNode* scan =
      FindNode(stats.attempts[0].profile, "TBSCAN", "dept");
  ASSERT_NE(nullptr, scan);
  EXPECT_TRUE(scan->completed);
  EXPECT_EQ(8, scan->actual_rows);  // dept has exactly 8 rows.
  ASSERT_TRUE(scan->has_estimates());
  // ANALYZE collected the exact table cardinality, so the estimate is
  // perfect and the Q-error is 1.
  EXPECT_NEAR(1.0, scan->QError(), 1e-9);
  EXPECT_GT(scan->next_calls, 0);
}

TEST(ExplainAnalyzeTest, KnownCardinalityJoinHasLowQError) {
  Catalog catalog;
  BuildToyCatalog(&catalog);  // Every emp row matches exactly one dept.
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});

  QuerySpec q("fk_join");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});

  ExecutionStats stats;
  Result<std::vector<Row>> rows = exec.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(200u, rows.value().size());
  ASSERT_TRUE(stats.attempts.back().has_profile);

  // The topmost join produced the full FK-join result; with uniform keys
  // the estimator should be close to exact.
  const PlanProfileNode* join = FindNode(stats.attempts.back().profile, "", "");
  ASSERT_NE(nullptr, join);  // Root.
  const PlanProfileNode* join_node = nullptr;
  for (const std::string name : {"NLJN", "HSJN", "MGJN"}) {
    if ((join_node = FindNode(stats.attempts.back().profile, name, ""))) break;
  }
  ASSERT_NE(nullptr, join_node);
  EXPECT_TRUE(join_node->completed);
  EXPECT_EQ(200, join_node->actual_rows);
  ASSERT_TRUE(join_node->has_estimates());
  EXPECT_LE(join_node->QError(), 2.0);
}

TEST(ExplainAnalyzeTest, RendersEveryAttemptWithCheckFiring) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});

  ExecutionStats stats;
  Result<std::string> text = exec.ExplainAnalyze(TrapQuery(), &stats);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  ASSERT_GE(stats.reopts, 1);

  // Every attempt carries a profile, including the aborted first one.
  for (const AttemptInfo& a : stats.attempts) {
    EXPECT_TRUE(a.has_profile);
  }

  const std::string& out = text.value();
  EXPECT_NE(std::string::npos, out.find("=== Attempt 1"));
  EXPECT_NE(std::string::npos, out.find("=== Attempt 2"));
  EXPECT_NE(std::string::npos, out.find("CHECK fired"));
  EXPECT_NE(std::string::npos, out.find("re-optimizing"));
  EXPECT_NE(std::string::npos, out.find("est_rows="));
  EXPECT_NE(std::string::npos, out.find("act_rows="));
  EXPECT_NE(std::string::npos, out.find("q="));
  EXPECT_NE(std::string::npos, out.find("=== Done"));
}

TEST(ExplainAnalyzeTest, ProfileJsonIsWellFormed) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});

  QuerySpec q("json_probe");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});
  q.AddGroupBy({d, 1});
  q.AddAgg(AggFunc::kCount);

  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(q, &stats).ok());
  ASSERT_TRUE(stats.attempts[0].has_profile);
  const std::string json = ProfileToJsonString(stats.attempts[0].profile);
  EXPECT_EQ('{', json.front());
  EXPECT_EQ('}', json.back());
  EXPECT_NE(std::string::npos, json.find("\"op\":"));
  EXPECT_NE(std::string::npos, json.find("\"est_rows\":"));
  EXPECT_NE(std::string::npos, json.find("\"act_rows\":"));
  EXPECT_NE(std::string::npos, json.find("\"children\":["));
}

// ------------------------------------------------------------ span tracer.

TEST(SpanTracerTest, SpansNestAcrossReoptimization) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);

  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Enable();
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  ExecutionStats stats;
  ASSERT_TRUE(exec.Execute(TrapQuery(), &stats).ok());
  tracer.Disable();
  ASSERT_GE(stats.reopts, 1);

  const std::vector<SpanEvent> events = tracer.Snapshot();
  int optimize_spans = 0, attempt_spans = 0, check_fired = 0, exec_spans = 0;
  for (const SpanEvent& ev : events) {
    const std::string name = ev.name;
    if (name == "optimize") ++optimize_spans;
    if (name == "execute_attempt") ++attempt_spans;
    if (name == "check_fired") {
      ++check_fired;
      EXPECT_TRUE(ev.IsInstant());
      ASSERT_NE(nullptr, ev.arg_name);
      EXPECT_EQ(std::string("observed_rows"), ev.arg_name);
    }
    if (std::string(ev.category) == "exec" && !ev.IsInstant()) ++exec_spans;
  }
  // One optimize + one execute span per attempt; the re-optimization left
  // an instant marking why.
  EXPECT_GE(optimize_spans, 2);
  EXPECT_GE(attempt_spans, 2);
  EXPECT_GE(check_fired, 1);
  EXPECT_GT(exec_spans, 0);

  // Nesting: every operator span lies entirely inside some execute_attempt
  // span. (The snapshot sort puts parents first, but a root operator span
  // can tie with its attempt span at microsecond granularity, so enclosure
  // is checked over all events rather than only preceding ones.)
  for (const SpanEvent& ev : events) {
    if (std::string(ev.category) != "exec" || ev.IsInstant()) continue;
    bool enclosed = false;
    for (const SpanEvent& parent : events) {
      if (std::string(parent.name) == "execute_attempt" &&
          parent.Encloses(ev)) {
        enclosed = true;
        break;
      }
    }
    EXPECT_TRUE(enclosed) << "operator span '" << ev.name
                          << "' not enclosed by any execute_attempt";
  }
  tracer.Clear();
}

TEST(SpanTracerTest, ChromeTraceExportIsValidTraceEventJson) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    TRACE_SPAN_NAMED(outer, "outer", "test");
    TRACE_SPAN("inner", "test");
    TRACE_INSTANT_ARG("marker", "test", "count", 3);
  }
  tracer.Disable();

  const std::string json = tracer.ExportChromeTrace();
  EXPECT_EQ('[', json.front());
  EXPECT_EQ(']', json[json.find_last_not_of('\n')]);
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"X\""));  // Complete spans.
  EXPECT_NE(std::string::npos, json.find("\"ph\":\"i\""));  // Instant.
  EXPECT_NE(std::string::npos, json.find("\"name\":\"outer\""));
  EXPECT_NE(std::string::npos, json.find("\"args\":{\"count\":3}"));

  const std::string jsonl = tracer.ExportJsonl();
  int lines = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(pos, end - pos);
    if (!line.empty()) {
      EXPECT_EQ('{', line.front());
      EXPECT_EQ('}', line.back());
      ++lines;
    }
    pos = end + 1;
  }
  EXPECT_EQ(3, lines);
  tracer.Clear();
}

TEST(SpanTracerTest, DisabledTracerRecordsNothing) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Disable();
  {
    TRACE_SPAN("ignored", "test");
    TRACE_INSTANT("ignored_too", "test");
  }
  EXPECT_EQ(0, tracer.event_count());
}

// ------------------------------------------------------- metrics registry.

TEST(MetricsRegistryTest, PrometheusExpositionGolden) {
  MetricsRegistry reg;
  reg.GetCounter("demo_requests_total", "Requests served.")->Increment(3);
  reg.GetCounter("demo_errors_total", "Errors by kind.", "kind=\"parse\"")
      ->Increment(2);
  reg.GetCounter("demo_errors_total", "Errors by kind.", "kind=\"io\"");
  reg.GetGauge("demo_in_flight", "In-flight requests.")->Set(7);
  Histogram* h = reg.GetHistogram("demo_latency_ms", "Request latency.",
                                  {1.0, 10.0, 100.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  h->Observe(500.0);

  const std::string expected =
      "# HELP demo_requests_total Requests served.\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total 3\n"
      "# HELP demo_errors_total Errors by kind.\n"
      "# TYPE demo_errors_total counter\n"
      "demo_errors_total{kind=\"parse\"} 2\n"
      "demo_errors_total{kind=\"io\"} 0\n"
      "# HELP demo_in_flight In-flight requests.\n"
      "# TYPE demo_in_flight gauge\n"
      "demo_in_flight 7\n"
      "# HELP demo_latency_ms Request latency.\n"
      "# TYPE demo_latency_ms histogram\n"
      "demo_latency_ms_bucket{le=\"1\"} 1\n"
      "demo_latency_ms_bucket{le=\"10\"} 2\n"
      "demo_latency_ms_bucket{le=\"100\"} 3\n"
      "demo_latency_ms_bucket{le=\"+Inf\"} 4\n"
      "demo_latency_ms_sum 555.5\n"
      "demo_latency_ms_count 4\n";
  EXPECT_EQ(expected, reg.RenderPrometheus());
}

TEST(MetricsRegistryTest, HistogramQuantilesAndEmptyWindow) {
  MetricsRegistry reg;
  Histogram& h = *reg.GetHistogram(
      "q_hist", "h", Histogram::LogBuckets(1.0, 2.0, 6));  // 1,2,...,32.
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.Quantile(0.95)));

  for (int i = 0; i < 90; ++i) h.Observe(1.5);  // -> le="2" bucket.
  for (int i = 0; i < 10; ++i) h.Observe(30.0);  // -> le="32" bucket.
  EXPECT_EQ(100, h.count());
  EXPECT_DOUBLE_EQ(2.0, h.Quantile(0.5));
  EXPECT_DOUBLE_EQ(32.0, h.Quantile(0.95));
  // Beyond the last finite bound the largest finite boundary is reported.
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(32.0, h.Quantile(1.0));
}

TEST(MetricsRegistryTest, SameNameSameLabelsReturnsSameInstance) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("c_total", "c");
  Counter* b = reg.GetCounter("c_total", "c");
  EXPECT_EQ(a, b);
  // Same name with a different type is rejected rather than clobbered.
  EXPECT_EQ(nullptr, reg.GetGauge("c_total", "c"));
}

// ---------------------------------------------------- service-level wiring.

TEST(ServiceObservabilityTest, MetricsTextExposesServiceAndEngineMetrics) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(catalog, config);

  ASSERT_TRUE(service.ExecuteSync(TrapQuery("t1")).status.ok());
  ASSERT_TRUE(service.ExecuteSync(TrapQuery("t2")).status.ok());
  service.Shutdown();

  const ServiceStatsSnapshot stats = service.Stats();
  ASSERT_GE(stats.checks_fired, 1);  // The trap fired at least once.

  const std::string text = service.MetricsText();
  EXPECT_NE(std::string::npos,
            text.find("# TYPE popdb_queries_submitted_total counter"));
  EXPECT_NE(std::string::npos, text.find("popdb_queries_submitted_total 2"));
  EXPECT_NE(std::string::npos, text.find("popdb_queries_completed_total 2"));
  // Check firings broken out by flavor; the trap fires at least one LC or
  // LCEM checkpoint.
  EXPECT_NE(std::string::npos,
            text.find("popdb_checks_fired_by_flavor_total{flavor=\"LC\"}"));
  EXPECT_NE(std::string::npos,
            text.find("popdb_checks_fired_by_flavor_total{flavor=\"ECB\"}"));
  // Latency histogram with both queries accounted for.
  EXPECT_NE(std::string::npos,
            text.find("popdb_query_latency_ms_bucket{le=\""));
  EXPECT_NE(std::string::npos, text.find("popdb_query_latency_ms_count 2"));
  // Q-errors harvested from the EXPLAIN ANALYZE profiles.
  EXPECT_NE(std::string::npos, text.find("# TYPE popdb_operator_qerror"));
  // Feedback-store effectiveness: both compilations consulted the store,
  // the second was seeded from the first run's harvest.
  EXPECT_NE(std::string::npos, text.find("popdb_feedback_seed_lookups 2"));
  EXPECT_NE(std::string::npos, text.find("popdb_admission_queue_depth 0"));

  // The Q-error histogram saw at least one observation.
  Histogram* qerr = service.metrics_registry().GetHistogram(
      "popdb_operator_qerror", "", Histogram::LogBuckets(1.0, 2.0, 20));
  ASSERT_NE(nullptr, qerr);
  EXPECT_GT(qerr->count(), 0);
}

TEST(ServiceObservabilityTest, QueryLogRecordsTrapReoptimization) {
  Catalog catalog;
  BuildTrapCatalog(&catalog);
  ServiceConfig config;
  config.num_workers = 1;
  QueryService service(catalog, config);
  ASSERT_TRUE(service.ExecuteSync(TrapQuery("logged")).status.ok());
  service.Shutdown();

  ASSERT_NE(nullptr, service.query_log());
  const std::vector<QueryLogEntry> tail = service.query_log()->Tail(0);
  ASSERT_EQ(1u, tail.size());
  const QueryLogEntry& e = tail[0];
  EXPECT_EQ("query", e.kind);
  EXPECT_EQ("logged", e.query_name);
  EXPECT_EQ("ok", e.outcome);
  EXPECT_GE(e.reopts, 1);  // The trap re-optimized.
  EXPECT_GE(e.checks_fired, 1);
  int64_t flavor_sum = 0;
  for (int f = 0; f < 6; ++f) flavor_sum += e.flavor_fired[f];
  EXPECT_EQ(e.checks_fired, flavor_sum);
  EXPECT_NE(0u, e.plan_digest);  // The final plan was digested.
  EXPECT_GT(e.result_rows, 0);
  EXPECT_GT(e.total_ms, 0.0);
  // The trap's misestimate shows up as a large peak Q-error.
  EXPECT_GE(e.peak_qerror, 2.0);
  EXPECT_FALSE(e.distributed);
}

TEST(ServiceObservabilityTest, QueryLogCanBeDisabled) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  ServiceConfig config;
  config.query_log_entries = 0;
  QueryService service(catalog, config);
  EXPECT_EQ(nullptr, service.query_log());
  service.Shutdown();
}

TEST(ServiceObservabilityTest, PercentilesAreNaNWithNoCompletedQueries) {
  Catalog catalog;
  BuildToyCatalog(&catalog);
  QueryService service(catalog, ServiceConfig{});
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_TRUE(std::isnan(stats.p50_latency_ms));
  EXPECT_TRUE(std::isnan(stats.p95_latency_ms));
  service.Shutdown();
}

// ------------------------------------------------- JSONL trace escaping.

TEST(TraceJsonTest, EscapesQuotesNewlinesAndBackslashes) {
  QueryTrace trace;
  trace.query_id = 7;
  trace.query_name = "q\"uote\nline\\slash";
  trace.outcome = "error";
  trace.status_message = "tab\there";

  const std::string json = trace.ToJson();
  // A JSONL consumer reads one object per line: no raw control characters.
  EXPECT_EQ(std::string::npos, json.find('\n'));
  EXPECT_EQ(std::string::npos, json.find('\t'));
  EXPECT_NE(std::string::npos, json.find("q\\\"uote\\nline\\\\slash"));
  EXPECT_NE(std::string::npos, json.find("tab\\there"));
}

// ------------------------------------------------- multithreaded hammer.

TEST(ObservabilityConcurrencyTest, RegistryAndTracerHammer) {
  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("hammer_total", "Hammered counter.");
  Gauge* gauge = reg.GetGauge("hammer_gauge", "Hammered gauge.");
  Histogram* hist = reg.GetHistogram("hammer_hist", "Hammered histogram.",
                                     Histogram::LogBuckets(1.0, 2.0, 10));

  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Enable();

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<int64_t> renders{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        gauge->Increment();
        hist->Observe(static_cast<double>(i % 37));
        gauge->Decrement();
        // Re-registration from many threads must return the same cell.
        if (i % 64 == 0) {
          Counter* again = reg.GetCounter("hammer_total", "Hammered counter.");
          if (again != counter) std::abort();
        }
        const int64_t t0 = tracer.NowUs();
        tracer.RecordSpan("hammer_span", "test", t0, 1, "iter", i);
        if (i % 512 == t) {
          renders += static_cast<int64_t>(reg.RenderPrometheus().size());
          renders += static_cast<int64_t>(tracer.Snapshot().size());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  tracer.Disable();

  EXPECT_EQ(kThreads * kIters, counter->value());
  EXPECT_EQ(0, gauge->value());
  EXPECT_EQ(kThreads * kIters, hist->count());
  EXPECT_EQ(kThreads * kIters, tracer.event_count());
  EXPECT_GT(renders.load(), 0);
  tracer.Clear();
}

// ------------------------------------------------- span labels (interning).

TEST(SpanTracerTest, InternReturnsStablePointerForEqualContents) {
  SpanTracer& tracer = SpanTracer::Global();
  const std::string token = "q12345";
  const char* a = tracer.Intern(token);
  const char* b = tracer.Intern(std::string("q") + "12345");
  EXPECT_EQ(a, b);  // Same contents, same pointer.
  EXPECT_STREQ("q12345", a);
  const char* c = tracer.Intern("q12346");
  EXPECT_NE(a, c);
}

TEST(SpanTracerTest, LabelsRenderInChromeTraceArgs) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    TRACE_SPAN_NAMED(span, "labeled_work", "test");
    span.SetLabel(std::string_view("q777"));
    span.SetArg("rows", 42);
  }
  TRACE_INSTANT_TAGGED("tagged_instant", "test", "q777", "shard", 3);
  tracer.Disable();

  const std::vector<SpanEvent> events = tracer.Snapshot();
  ASSERT_EQ(2u, events.size());
  for (const SpanEvent& e : events) {
    ASSERT_NE(nullptr, e.label);
    EXPECT_STREQ("q777", e.label);
  }
  // Both events carry the same interned pointer.
  EXPECT_EQ(events[0].label, events[1].label);

  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(std::string::npos, json.find("\"label\":\"q777\""));
  // The exported trace is valid JSON a viewer can load.
  Result<JsonValue> parsed = JsonParse(json, {64, 4000000});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  tracer.Clear();
}

TEST(SpanTracerTest, SetLabelIsANoOpWhenDisabled) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  tracer.Disable();
  {
    TRACE_SPAN_NAMED(span, "dead_span", "test");
    span.SetLabel(std::string_view("never_interned"));
  }
  TRACE_INSTANT_TAGGED("dead_instant", "test", "never_interned", "x", 1);
  EXPECT_EQ(0, tracer.event_count());
}

// ------------------------------------------------- peak profile Q-error.

TEST(ExplainAnalyzeTest, PeakProfileQErrorPicksWorstOperator) {
  PlanProfileNode root;
  root.name = "ROOT";
  root.est_rows = 100.0;
  root.actual_rows = 100;
  root.completed = true;
  PlanProfileNode bad;
  bad.name = "BAD";
  bad.est_rows = 10.0;
  bad.actual_rows = 1000;
  bad.completed = true;
  PlanProfileNode unfinished;  // Not completed: must not contribute.
  unfinished.name = "PARTIAL";
  unfinished.est_rows = 1.0;
  unfinished.actual_rows = 500000;
  unfinished.completed = false;
  bad.children.push_back(unfinished);
  root.children.push_back(bad);

  const double peak = PeakProfileQError(root);
  EXPECT_NEAR((1000.0 + 1.0) / (10.0 + 1.0), peak, 1e-9);

  PlanProfileNode empty;  // No completed+estimated operator anywhere.
  empty.name = "EMPTY";
  EXPECT_DOUBLE_EQ(-1.0, PeakProfileQError(empty));
}

// ------------------------------------------------- structured query log.

TEST(QueryLogTest, RingEvictsOldestAndTracksTotals) {
  QueryLog log(/*capacity=*/3);
  EXPECT_EQ(3, log.capacity());
  for (int64_t i = 0; i < 5; ++i) {
    QueryLogEntry e;
    e.query_id = i;
    e.query_name = "q" + std::to_string(i);
    log.Append(std::move(e));
  }
  EXPECT_EQ(3, log.size());
  EXPECT_EQ(5, log.total());

  // Oldest first; the first two entries were evicted.
  const std::vector<QueryLogEntry> all = log.Tail(0);
  ASSERT_EQ(3u, all.size());
  EXPECT_EQ(2, all[0].query_id);
  EXPECT_EQ(4, all[2].query_id);

  const std::vector<QueryLogEntry> last = log.Tail(2);
  ASSERT_EQ(2u, last.size());
  EXPECT_EQ(3, last[0].query_id);
  EXPECT_EQ(4, last[1].query_id);
}

TEST(QueryLogTest, ToJsonArrayIsParseableAndCarriesDigest) {
  QueryLog log(8);
  QueryLogEntry e;
  e.query_id = 41;
  e.kind = "query";
  e.query_name = "trap";
  e.signature = "sig-abc";
  e.plan_digest = PlanTextDigest("HSJN(orders, items)");
  e.outcome = "ok";
  e.plan_cache = "miss";
  e.reopts = 2;
  e.checks_fired = 2;
  e.flavor_fired[0] = 1;  // LC
  e.flavor_fired[2] = 1;  // ECB
  e.result_rows = 7;
  e.peak_qerror = 12.5;
  e.distributed = true;
  ShardAttemptInfo shard;
  shard.shard = 1;
  shard.execute_ms = 3.25;
  shard.rows = 4;
  shard.outcome = "reoptimize";
  e.shards.push_back(shard);
  log.Append(std::move(e));

  const std::string array = log.ToJsonArray(0);
  Result<JsonValue> parsed = JsonParse(array, {16, 1000000});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Digest renders as a fixed-width hex string, never 0 for non-empty text.
  EXPECT_NE(std::string::npos, array.find("\"plan_digest\":\""));
  EXPECT_EQ(std::string::npos, array.find("\"plan_digest\":\"0\""));
  EXPECT_NE(std::string::npos, array.find("\"reopts\":2"));
  EXPECT_NE(std::string::npos, array.find("\"LC\":1"));
  EXPECT_NE(std::string::npos, array.find("\"ECB\":1"));
  EXPECT_NE(std::string::npos, array.find("\"distributed\":true"));
  EXPECT_NE(std::string::npos, array.find("\"shard\":1"));
  EXPECT_NE(std::string::npos, array.find("\"outcome\":\"reoptimize\""));
}

TEST(QueryLogTest, PlanTextDigestDistinguishesPlans) {
  const uint64_t a = PlanTextDigest("HSJN(orders, items)");
  const uint64_t b = PlanTextDigest("NLJN(items, orders)");
  EXPECT_NE(a, b);
  EXPECT_NE(0u, a);
  EXPECT_NE(0u, PlanTextDigest(""));  // Offset basis: 0 means "no plan".
}

// Concurrent writers + readers over the bounded ring; run under TSan via
// the ci.sh sanitizer stage. Invariants: size never exceeds capacity,
// total is exact, snapshots are internally consistent.
TEST(ObservabilityConcurrencyTest, QueryLogHammer) {
  QueryLog log(/*capacity=*/64);
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> done{false};
  std::atomic<int64_t> read_bytes{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < kPerWriter; ++i) {
        QueryLogEntry e;
        e.query_id = w * kPerWriter + i;
        e.query_name = "hammer";
        e.plan_digest = PlanTextDigest("plan" + std::to_string(i % 7));
        e.outcome = (i % 13 == 0) ? "error" : "ok";
        e.reopts = i % 3;
        if (i % 5 == 0) {
          ShardAttemptInfo s;
          s.shard = i % 4;
          s.rows = i;
          e.shards.push_back(s);
        }
        log.Append(std::move(e));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&]() {
      while (!done.load(std::memory_order_acquire)) {
        const std::vector<QueryLogEntry> tail = log.Tail(16);
        if (tail.size() > 16u) std::abort();
        if (log.size() > log.capacity()) std::abort();
        read_bytes += static_cast<int64_t>(log.ToJsonArray(8).size());
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(kWriters * kPerWriter, log.total());
  EXPECT_EQ(64, log.size());
  EXPECT_GT(read_bytes.load(), 0);
}

}  // namespace
}  // namespace popdb
