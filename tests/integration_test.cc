#include <gtest/gtest.h>

#include "core/pop.h"
#include "opt/query.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace popdb {
namespace {

using ::popdb::testing::BuildToyCatalog;
using ::popdb::testing::Canonicalize;
using ::popdb::testing::ReferenceExecute;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildToyCatalog(&catalog_); }

  /// Executes `query` both statically and with POP and checks both against
  /// the brute-force reference.
  void CheckQuery(const QuerySpec& query, OptimizerConfig opt = {},
                  PopConfig pop = {}) {
    const std::vector<Row> expected = ReferenceExecute(catalog_, query);
    ProgressiveExecutor exec(catalog_, opt, pop);

    Result<std::vector<Row>> stat = exec.ExecuteStatic(query);
    ASSERT_TRUE(stat.ok()) << stat.status().ToString();
    EXPECT_EQ(Canonicalize(expected), Canonicalize(stat.value()))
        << "static execution mismatch for " << query.name();

    ExecutionStats stats;
    Result<std::vector<Row>> prog = exec.Execute(query, &stats);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    EXPECT_EQ(Canonicalize(expected), Canonicalize(prog.value()))
        << "POP execution mismatch for " << query.name()
        << " (reopts=" << stats.reopts << ")";
  }

  Catalog catalog_;
};

TEST_F(IntegrationTest, SingleTableScan) {
  QuerySpec q("single");
  const int e = q.AddTable("emp");
  q.AddPred({e, 2}, PredKind::kGt, Value::Int(40));  // e_age > 40
  CheckQuery(q);
}

TEST_F(IntegrationTest, SingleTableProjection) {
  QuerySpec q("single_proj");
  const int e = q.AddTable("emp");
  q.AddPred({e, 2}, PredKind::kBetween, Value::Int(30), Value::Int(40));
  q.AddProjection({e, 0});
  q.AddProjection({e, 3});
  CheckQuery(q);
}

TEST_F(IntegrationTest, TwoWayJoin) {
  QuerySpec q("join2");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});  // e_dept = d_id
  q.AddPred({d, 2}, PredKind::kEq, Value::Int(1));  // d_region = 1
  CheckQuery(q);
}

TEST_F(IntegrationTest, ThreeWayJoinWithAgg) {
  QuerySpec q("join3_agg");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(40));
  q.AddGroupBy({d, 1});                  // d_name
  q.AddAgg(AggFunc::kCount);
  q.AddAgg(AggFunc::kSum, {s, 2});       // sum of s_year: exact in double
  CheckQuery(q);
}

TEST_F(IntegrationTest, ParamMarkerStillCorrect) {
  QuerySpec q("param");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  q.AddParamPred({e, 2}, PredKind::kLt, 0);  // e_age < ?
  q.BindParam(Value::Int(60));               // Nearly unselective.
  q.AddGroupBy({d, 2});
  q.AddAgg(AggFunc::kCount);
  CheckQuery(q);
}

TEST_F(IntegrationTest, InListAndLike) {
  QuerySpec q("inlike");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  q.AddJoin({e, 1}, {d, 0});
  q.AddInPred({d, 1}, {Value::String("eng"), Value::String("ops")});
  q.AddPred({e, 3}, PredKind::kLike, Value::String("emp1%"));
  CheckQuery(q);
}

TEST_F(IntegrationTest, CrossJoinFallback) {
  QuerySpec q("cross");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  // No join predicate: cartesian product (restricted to keep it small).
  q.AddPred({d, 0}, PredKind::kLe, Value::Int(1));
  q.AddPred({e, 0}, PredKind::kLt, Value::Int(5));
  CheckQuery(q);
}

TEST_F(IntegrationTest, OrderByIsApplied) {
  QuerySpec q("order");
  const int e = q.AddTable("emp");
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(30));
  q.AddProjection({e, 2});
  q.AddProjection({e, 0});
  q.AddOrderBy(0, /*descending=*/false);
  const std::vector<Row> expected = ReferenceExecute(catalog_, q);
  ProgressiveExecutor exec(catalog_, OptimizerConfig{}, PopConfig{});
  Result<std::vector<Row>> rows = exec.Execute(q);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(expected.size(), rows.value().size());
  for (size_t i = 1; i < rows.value().size(); ++i) {
    EXPECT_LE(rows.value()[i - 1][0].AsInt(), rows.value()[i][0].AsInt());
  }
}

TEST_F(IntegrationTest, AllJoinMethodConfigs) {
  QuerySpec q("methods");
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  q.AddPred({s, 2}, PredKind::kGe, Value::Int(2020));
  q.AddGroupBy({d, 1});
  q.AddAgg(AggFunc::kCount);

  for (int mask = 1; mask < 8; ++mask) {
    OptimizerConfig opt;
    opt.methods.enable_nljn = (mask & 1) != 0;
    opt.methods.enable_hsjn = (mask & 2) != 0;
    opt.methods.enable_mgjn = (mask & 4) != 0;
    SCOPED_TRACE("method mask " + std::to_string(mask));
    CheckQuery(q, opt);
  }
}

TEST_F(IntegrationTest, SmallMemoryBudgetSpillsStillCorrect) {
  QuerySpec q("spill");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({s, 0}, {e, 0});
  q.AddGroupBy({s, 2});
  q.AddAgg(AggFunc::kCount);
  OptimizerConfig opt;
  opt.cost.mem_rows = 32;  // Force multi-stage hash joins / external sorts.
  CheckQuery(q, opt);
}

}  // namespace
}  // namespace popdb
