// Morsel-parallelism scaling: speedup vs. intra-query dop on a scan-heavy
// and a join-heavy TPC-H query, work-normalized like
// bench_observability_overhead (identical work across dops is asserted, so
// a plan change can never masquerade as scaling).
//
// Two modes per query:
//  - pure-cpu: no simulated I/O. On a single-core host (typical CI
//    container) this measures fan-out overhead, not speedup.
//  - io-modeled: each morsel pays ParallelPolicy::morsel_stall_ms of
//    simulated page-read stall (same device as ServiceConfig::io_stall_ms).
//    Stalls overlap across workers, so speedup reflects the scheduling
//    benefit a disk-based engine would see, independent of core count.
// The headline target — >= 2x at dop 4 on the scan-heavy query — is
// evaluated on the io-modeled mode.
//
// A second section compares the vectorized engine (batch_rows = 1024, the
// production default) against row-at-a-time execution (batch_rows = 1) on
// the pure-CPU (io-free) path: per-dop scaling curves for both engines,
// the serial row-vs-batch ratio (vectorized must not be slower
// single-threaded), and a single-thread sweep of the TPC-H paper queries.
// Results go to BENCH_vectorized.json. The pure-CPU dop-4 target
// (>= 2.5x vectorized) needs >= 4 hardware cores to be meaningful; on
// smaller hosts the section reports the curves and flags the core count.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/pop.h"
#include "runtime/morsel_dispatcher.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Scan-heavy: single-table aggregation over lineitem — the whole query is
/// one parallelizable pipeline (scan -> filter -> agg).
QuerySpec MakeScanHeavy() {
  QuerySpec q("morsel_scan_heavy");
  const int l = q.AddTable("lineitem");
  q.AddPred({l, tpch::Lineitem::kQuantity}, PredKind::kGe, Value::Int(10));
  q.AddGroupBy({l, tpch::Lineitem::kReturnFlag});
  q.AddAgg(AggFunc::kCount);
  q.AddAgg(AggFunc::kMax, {l, tpch::Lineitem::kShipDate});
  return q;
}

/// Join-heavy: TPC-H Q3 (customer-orders-lineitem). Run against an
/// index-free catalog so the optimizer picks hash joins over full scans:
/// the base scans fan out and the HSJN builds partition in parallel, the
/// probe/join tail stays serial (Amdahl limits the speedup).
QuerySpec MakeJoinHeavy() { return tpch::MakeQuery(3); }

struct Point {
  double ms = 0.0;
  int64_t work = 0;
  int64_t morsels = 0;
};

Point RunAtDop(const Catalog& catalog, const QuerySpec& query, int dop,
               double stall_ms, int repeats, int trials,
               int64_t batch_rows = 1024) {
  Point best;
  for (int trial = 0; trial < trials; ++trial) {
    MorselDispatcher pool(dop > 1 ? dop - 1 : 0);
    ParallelPolicy policy;
    policy.dop = dop;
    policy.morsel_rows = 256;
    policy.min_parallel_rows = 512;
    policy.morsel_stall_ms = stall_ms;
    policy.batch_rows = batch_rows;
    Point p;
    const double t0 = WallMs();
    for (int rep = 0; rep < repeats; ++rep) {
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
      exec.set_parallel(&pool, policy);
      ExecutionStats stats;
      Result<std::vector<Row>> rows = exec.Execute(query, &stats);
      POPDB_DCHECK(rows.ok());
      p.work += stats.total_work;
      p.morsels += stats.morsels_dispatched;
    }
    p.ms = WallMs() - t0;
    if (best.ms <= 0 || p.ms < best.ms) best = p;
  }
  return best;
}

struct ModeResult {
  std::vector<int> dops;
  std::vector<Point> points;

  double SpeedupAt(int dop) const {
    for (size_t i = 0; i < dops.size(); ++i) {
      if (dops[i] == dop && points[i].ms > 0) {
        return points[0].ms / points[i].ms;
      }
    }
    return 0.0;
  }
};

ModeResult RunMode(const Catalog& catalog, const QuerySpec& query,
                   double stall_ms, int repeats, int trials,
                   int64_t batch_rows = 1024) {
  ModeResult r;
  r.dops = {1, 2, 4, 8};
  for (int dop : r.dops) {
    r.points.push_back(RunAtDop(catalog, query, dop, stall_ms, repeats,
                                trials, batch_rows));
  }
  // Work parity across dops: the parallel plans did exactly the same row
  // work as serial, so the ms ratios are honest speedups.
  for (const Point& p : r.points) {
    POPDB_DCHECK(p.work == r.points[0].work);
  }
  return r;
}

void PrintMode(const char* query, const char* mode, const ModeResult& r) {
  TablePrinter tp({"query", "mode", "dop", "ms", "work", "morsels",
                   "speedup"});
  for (size_t i = 0; i < r.dops.size(); ++i) {
    tp.AddRow({query, mode, StrFormat("%d", r.dops[i]),
               StrFormat("%.1f", r.points[i].ms),
               StrFormat("%lld", static_cast<long long>(r.points[i].work)),
               StrFormat("%lld",
                         static_cast<long long>(r.points[i].morsels)),
               StrFormat("%.2fx", r.SpeedupAt(r.dops[i]))});
  }
  std::fputs(tp.ToString().c_str(), stdout);
}

void JsonMode(JsonWriter* json, const char* key, const ModeResult& r) {
  json->Key(key).BeginArray();
  for (size_t i = 0; i < r.dops.size(); ++i) {
    json->BeginObject()
        .Key("dop")
        .Int(r.dops[i])
        .Key("ms")
        .Double(r.points[i].ms)
        .Key("work")
        .Int(r.points[i].work)
        .Key("morsels")
        .Int(r.points[i].morsels)
        .Key("speedup")
        .Double(r.SpeedupAt(r.dops[i]))
        .EndObject();
  }
  json->EndArray();
}

/// Serial (dop 1, no runner) wall time for one query at a given execution
/// batch size, best-of-trials.
double SerialMs(const Catalog& catalog, const QuerySpec& query,
                int64_t batch_rows, int repeats, int trials) {
  double best = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    ParallelPolicy policy;
    policy.batch_rows = batch_rows;
    const double t0 = WallMs();
    for (int rep = 0; rep < repeats; ++rep) {
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
      exec.set_parallel(nullptr, policy);
      Result<std::vector<Row>> rows = exec.Execute(query);
      POPDB_DCHECK(rows.ok());
    }
    const double ms = WallMs() - t0;
    if (best <= 0 || ms < best) best = ms;
  }
  return best;
}

/// The vectorized on/off pure-CPU section: io-free scaling curves for the
/// row engine (batch_rows = 1) vs the vectorized engine (batch_rows =
/// 1024), the serial row/vectorized ratio, and a single-thread TPC-H
/// paper-query sweep on both engines. Emits BENCH_vectorized.json.
void RunVectorizedSection(const Catalog& catalog,
                          const Catalog& noindex_catalog,
                          const QuerySpec& scan_q, const QuerySpec& join_q,
                          double tpch_scale, int repeats, int trials) {
  bench::PrintHeader(
      "Vectorized on/off: pure-CPU scaling, row vs batch engine",
      "batch execution (ISSUE PR 8)");

  const ModeResult scan_row =
      RunMode(catalog, scan_q, 0.0, repeats, trials, /*batch_rows=*/1);
  const ModeResult scan_vec =
      RunMode(catalog, scan_q, 0.0, repeats, trials, /*batch_rows=*/1024);
  const ModeResult join_row = RunMode(noindex_catalog, join_q, 0.0, repeats,
                                      trials, /*batch_rows=*/1);
  const ModeResult join_vec = RunMode(noindex_catalog, join_q, 0.0, repeats,
                                      trials, /*batch_rows=*/1024);

  PrintMode("scan-heavy", "row pure-cpu", scan_row);
  PrintMode("scan-heavy", "vec pure-cpu", scan_vec);
  PrintMode("join-heavy", "row pure-cpu", join_row);
  PrintMode("join-heavy", "vec pure-cpu", join_vec);

  // Single-thread TPC-H paper-query sweep: the vectorized engine must not
  // be slower than row-at-a-time when there is no parallelism to exploit.
  double tpch_row_ms = 0.0;
  double tpch_vec_ms = 0.0;
  for (int qnum : tpch::PaperQueries()) {
    const QuerySpec q = tpch::MakeQuery(qnum);
    tpch_row_ms += SerialMs(catalog, q, /*batch_rows=*/1, repeats, trials);
    tpch_vec_ms +=
        SerialMs(catalog, q, /*batch_rows=*/1024, repeats, trials);
  }

  const double vec_speedup_4x = scan_vec.SpeedupAt(4);
  const double serial_ratio =
      scan_vec.points[0].ms > 0 ? scan_row.points[0].ms /
                                      scan_vec.points[0].ms
                                : 0.0;
  const double tpch_ratio = tpch_vec_ms > 0 ? tpch_row_ms / tpch_vec_ms
                                            : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool enough_cores = cores >= 4;
  const bool meets_target = vec_speedup_4x >= 2.5;
  std::printf(
      "\nvectorized pure-cpu: dop-4 speedup %.2fx (target >= 2.5x, "
      "%u cores%s), serial row/vec %.2fx on scan-heavy, "
      "single-thread tpch row/vec %.2fx (row %.1f ms, vec %.1f ms)\n%s\n",
      vec_speedup_4x, cores,
      enough_cores ? "" : " — below the 4 cores the target assumes",
      serial_ratio, tpch_ratio, tpch_row_ms, tpch_vec_ms,
      meets_target
          ? "PASS: >= 2.5x pure-cpu at dop 4"
          : (enough_cores ? "WARN: below the 2.5x pure-cpu target"
                          : "SKIP: host has too few cores for the pure-cpu "
                            "dop-4 target"));

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("vectorized");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(tpch_scale)
      .Key("repeats")
      .Int(repeats)
      .Key("trials")
      .Int(trials)
      .Key("batch_rows")
      .Int(1024)
      .Key("hardware_cores")
      .Int(static_cast<int64_t>(cores))
      .EndObject();
  JsonMode(&json, "scan_heavy_row", scan_row);
  JsonMode(&json, "scan_heavy_vectorized", scan_vec);
  JsonMode(&json, "join_heavy_row", join_row);
  JsonMode(&json, "join_heavy_vectorized", join_vec);
  json.Key("tpch_single_thread_row_ms").Double(tpch_row_ms);
  json.Key("tpch_single_thread_vectorized_ms").Double(tpch_vec_ms);
  json.Key("tpch_single_thread_row_over_vec").Double(tpch_ratio);
  json.Key("serial_scan_row_over_vec").Double(serial_ratio);
  json.Key("vectorized_speedup_4x_scan").Double(vec_speedup_4x);
  json.Key("meets_target").Bool(meets_target);
  json.EndObject();
  bench::WriteBenchJson("vectorized", json.str());
}

void Run() {
  bench::PrintHeader("Morsel scaling: speedup vs intra-query dop",
                     "morsel-driven parallelism (ISSUE PR 3)");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", 0.002);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());
  // Index-free copy: forces hash joins over full scans for the join-heavy
  // query, which is the shape morsel parallelism targets.
  Catalog noindex_catalog;
  tpch::GenConfig noindex_gen = gen;
  noindex_gen.build_indexes = false;
  POPDB_DCHECK(tpch::BuildCatalog(noindex_gen, &noindex_catalog).ok());

  const int repeats = 3;
  const int trials = 3;
  const double stall_ms = 0.2;
  const QuerySpec scan_q = MakeScanHeavy();
  const QuerySpec join_q = MakeJoinHeavy();

  // Warm-up.
  RunAtDop(catalog, scan_q, 1, 0.0, 1, 1);

  const ModeResult scan_cpu = RunMode(catalog, scan_q, 0.0, repeats, trials);
  const ModeResult scan_io =
      RunMode(catalog, scan_q, stall_ms, repeats, trials);
  const ModeResult join_cpu =
      RunMode(noindex_catalog, join_q, 0.0, repeats, trials);
  const ModeResult join_io =
      RunMode(noindex_catalog, join_q, stall_ms, repeats, trials);

  PrintMode("scan-heavy", "pure-cpu", scan_cpu);
  PrintMode("scan-heavy", "io-modeled", scan_io);
  PrintMode("join-heavy", "pure-cpu", join_cpu);
  PrintMode("join-heavy", "io-modeled", join_io);

  const double speedup_4x_scan = scan_io.SpeedupAt(4);
  const double speedup_4x_join = join_io.SpeedupAt(4);
  const bool meets_target = speedup_4x_scan >= 2.0;
  std::printf(
      "\nio-modeled speedup at dop 4: scan-heavy %.2fx, join-heavy %.2fx "
      "(target: scan-heavy >= 2x)\n%s\n",
      speedup_4x_scan, speedup_4x_join,
      meets_target ? "PASS: >= 2x on the scan-heavy query"
                   : "WARN: below the 2x target");

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("morsel_scaling");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(gen.scale)
      .Key("repeats")
      .Int(repeats)
      .Key("trials")
      .Int(trials)
      .Key("morsel_rows")
      .Int(256)
      .Key("io_stall_ms_per_morsel")
      .Double(stall_ms)
      .EndObject();
  JsonMode(&json, "scan_heavy_pure_cpu", scan_cpu);
  JsonMode(&json, "scan_heavy_io_modeled", scan_io);
  JsonMode(&json, "join_heavy_pure_cpu", join_cpu);
  JsonMode(&json, "join_heavy_io_modeled", join_io);
  json.Key("speedup_4x_scan").Double(speedup_4x_scan);
  json.Key("speedup_4x_join").Double(speedup_4x_join);
  json.Key("meets_target").Bool(meets_target);
  json.EndObject();
  bench::WriteBenchJson("morsel_scaling", json.str());

  RunVectorizedSection(catalog, noindex_catalog, scan_q, join_q, gen.scale,
                       repeats, trials);
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
