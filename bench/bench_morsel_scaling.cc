// Morsel-parallelism scaling: speedup vs. intra-query dop on a scan-heavy
// and a join-heavy TPC-H query, work-normalized like
// bench_observability_overhead (identical work across dops is asserted, so
// a plan change can never masquerade as scaling).
//
// Two modes per query:
//  - pure-cpu: no simulated I/O. On a single-core host (typical CI
//    container) this measures fan-out overhead, not speedup.
//  - io-modeled: each morsel pays ParallelPolicy::morsel_stall_ms of
//    simulated page-read stall (same device as ServiceConfig::io_stall_ms).
//    Stalls overlap across workers, so speedup reflects the scheduling
//    benefit a disk-based engine would see, independent of core count.
// The headline target — >= 2x at dop 4 on the scan-heavy query — is
// evaluated on the io-modeled mode.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/pop.h"
#include "runtime/morsel_dispatcher.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Scan-heavy: single-table aggregation over lineitem — the whole query is
/// one parallelizable pipeline (scan -> filter -> agg).
QuerySpec MakeScanHeavy() {
  QuerySpec q("morsel_scan_heavy");
  const int l = q.AddTable("lineitem");
  q.AddPred({l, tpch::Lineitem::kQuantity}, PredKind::kGe, Value::Int(10));
  q.AddGroupBy({l, tpch::Lineitem::kReturnFlag});
  q.AddAgg(AggFunc::kCount);
  q.AddAgg(AggFunc::kMax, {l, tpch::Lineitem::kShipDate});
  return q;
}

/// Join-heavy: TPC-H Q3 (customer-orders-lineitem). Run against an
/// index-free catalog so the optimizer picks hash joins over full scans:
/// the base scans fan out and the HSJN builds partition in parallel, the
/// probe/join tail stays serial (Amdahl limits the speedup).
QuerySpec MakeJoinHeavy() { return tpch::MakeQuery(3); }

struct Point {
  double ms = 0.0;
  int64_t work = 0;
  int64_t morsels = 0;
};

Point RunAtDop(const Catalog& catalog, const QuerySpec& query, int dop,
               double stall_ms, int repeats, int trials) {
  Point best;
  for (int trial = 0; trial < trials; ++trial) {
    MorselDispatcher pool(dop > 1 ? dop - 1 : 0);
    ParallelPolicy policy;
    policy.dop = dop;
    policy.morsel_rows = 256;
    policy.min_parallel_rows = 512;
    policy.morsel_stall_ms = stall_ms;
    Point p;
    const double t0 = WallMs();
    for (int rep = 0; rep < repeats; ++rep) {
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
      exec.set_parallel(&pool, policy);
      ExecutionStats stats;
      Result<std::vector<Row>> rows = exec.Execute(query, &stats);
      POPDB_DCHECK(rows.ok());
      p.work += stats.total_work;
      p.morsels += stats.morsels_dispatched;
    }
    p.ms = WallMs() - t0;
    if (best.ms <= 0 || p.ms < best.ms) best = p;
  }
  return best;
}

struct ModeResult {
  std::vector<int> dops;
  std::vector<Point> points;

  double SpeedupAt(int dop) const {
    for (size_t i = 0; i < dops.size(); ++i) {
      if (dops[i] == dop && points[i].ms > 0) {
        return points[0].ms / points[i].ms;
      }
    }
    return 0.0;
  }
};

ModeResult RunMode(const Catalog& catalog, const QuerySpec& query,
                   double stall_ms, int repeats, int trials) {
  ModeResult r;
  r.dops = {1, 2, 4, 8};
  for (int dop : r.dops) {
    r.points.push_back(
        RunAtDop(catalog, query, dop, stall_ms, repeats, trials));
  }
  // Work parity across dops: the parallel plans did exactly the same row
  // work as serial, so the ms ratios are honest speedups.
  for (const Point& p : r.points) {
    POPDB_DCHECK(p.work == r.points[0].work);
  }
  return r;
}

void PrintMode(const char* query, const char* mode, const ModeResult& r) {
  TablePrinter tp({"query", "mode", "dop", "ms", "work", "morsels",
                   "speedup"});
  for (size_t i = 0; i < r.dops.size(); ++i) {
    tp.AddRow({query, mode, StrFormat("%d", r.dops[i]),
               StrFormat("%.1f", r.points[i].ms),
               StrFormat("%lld", static_cast<long long>(r.points[i].work)),
               StrFormat("%lld",
                         static_cast<long long>(r.points[i].morsels)),
               StrFormat("%.2fx", r.SpeedupAt(r.dops[i]))});
  }
  std::fputs(tp.ToString().c_str(), stdout);
}

void JsonMode(JsonWriter* json, const char* key, const ModeResult& r) {
  json->Key(key).BeginArray();
  for (size_t i = 0; i < r.dops.size(); ++i) {
    json->BeginObject()
        .Key("dop")
        .Int(r.dops[i])
        .Key("ms")
        .Double(r.points[i].ms)
        .Key("work")
        .Int(r.points[i].work)
        .Key("morsels")
        .Int(r.points[i].morsels)
        .Key("speedup")
        .Double(r.SpeedupAt(r.dops[i]))
        .EndObject();
  }
  json->EndArray();
}

void Run() {
  bench::PrintHeader("Morsel scaling: speedup vs intra-query dop",
                     "morsel-driven parallelism (ISSUE PR 3)");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", 0.002);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());
  // Index-free copy: forces hash joins over full scans for the join-heavy
  // query, which is the shape morsel parallelism targets.
  Catalog noindex_catalog;
  tpch::GenConfig noindex_gen = gen;
  noindex_gen.build_indexes = false;
  POPDB_DCHECK(tpch::BuildCatalog(noindex_gen, &noindex_catalog).ok());

  const int repeats = 3;
  const int trials = 3;
  const double stall_ms = 0.2;
  const QuerySpec scan_q = MakeScanHeavy();
  const QuerySpec join_q = MakeJoinHeavy();

  // Warm-up.
  RunAtDop(catalog, scan_q, 1, 0.0, 1, 1);

  const ModeResult scan_cpu = RunMode(catalog, scan_q, 0.0, repeats, trials);
  const ModeResult scan_io =
      RunMode(catalog, scan_q, stall_ms, repeats, trials);
  const ModeResult join_cpu =
      RunMode(noindex_catalog, join_q, 0.0, repeats, trials);
  const ModeResult join_io =
      RunMode(noindex_catalog, join_q, stall_ms, repeats, trials);

  PrintMode("scan-heavy", "pure-cpu", scan_cpu);
  PrintMode("scan-heavy", "io-modeled", scan_io);
  PrintMode("join-heavy", "pure-cpu", join_cpu);
  PrintMode("join-heavy", "io-modeled", join_io);

  const double speedup_4x_scan = scan_io.SpeedupAt(4);
  const double speedup_4x_join = join_io.SpeedupAt(4);
  const bool meets_target = speedup_4x_scan >= 2.0;
  std::printf(
      "\nio-modeled speedup at dop 4: scan-heavy %.2fx, join-heavy %.2fx "
      "(target: scan-heavy >= 2x)\n%s\n",
      speedup_4x_scan, speedup_4x_join,
      meets_target ? "PASS: >= 2x on the scan-heavy query"
                   : "WARN: below the 2x target");

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("morsel_scaling");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(gen.scale)
      .Key("repeats")
      .Int(repeats)
      .Key("trials")
      .Int(trials)
      .Key("morsel_rows")
      .Int(256)
      .Key("io_stall_ms_per_morsel")
      .Double(stall_ms)
      .EndObject();
  JsonMode(&json, "scan_heavy_pure_cpu", scan_cpu);
  JsonMode(&json, "scan_heavy_io_modeled", scan_io);
  JsonMode(&json, "join_heavy_pure_cpu", join_cpu);
  JsonMode(&json, "join_heavy_io_modeled", join_io);
  json.Key("speedup_4x_scan").Double(speedup_4x_scan);
  json.Key("speedup_4x_join").Double(speedup_4x_join);
  json.Key("meets_target").Bool(meets_target);
  json.EndObject();
  bench::WriteBenchJson("morsel_scaling", json.str());
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
