// Reproduces Figure 16: per-query speedup (+) or regression factor (-) of
// POP on the 39 DMV queries (same runs as Figure 15, reported as factors).
// The paper reports speedups approaching two orders of magnitude and a
// worst-case regression factor of about 5.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

namespace popdb {
namespace {

void Run() {
  bench::PrintHeader("DMV workload: per-query speedup / regression factors",
                     "Figure 16 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_DMV_SCALE", gen.scale);
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());
  const std::vector<QuerySpec> workload = dmv::MakeWorkload();

  TablePrinter tp({"query", "factor", "direction", "reopts", "bar"});
  double max_speedup = 0, max_regression = 0;

  for (const QuerySpec& query : workload) {
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    ExecutionStats sstat, pstat;
    Result<std::vector<Row>> srows = exec.ExecuteStatic(query, &sstat);
    Result<std::vector<Row>> prows = exec.Execute(query, &pstat);
    POPDB_DCHECK(srows.ok() && prows.ok());

    const double s = static_cast<double>(sstat.total_work);
    const double p = static_cast<double>(std::max<int64_t>(1, pstat.total_work));
    // Speedup factor (positive) or regression factor (negative), as in the
    // paper's bar chart.
    const bool speedup = s >= p;
    const double factor = speedup ? s / p : -(p / s);
    if (speedup) {
      max_speedup = std::max(max_speedup, factor);
    } else {
      max_regression = std::max(max_regression, -factor);
    }
    const int bar_len = std::min(
        60, static_cast<int>(std::max(1.0, std::abs(factor))));
    tp.AddRow({query.name(), StrFormat("%+.2f", factor),
               speedup ? "speedup" : "regression",
               StrFormat("%d", pstat.reopts),
               std::string(static_cast<size_t>(bar_len),
                           speedup ? '+' : '-')});
  }
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nmax speedup: %.1fx, max regression: %.1fx (paper: ~90x speedup, "
      "~5x regression)\n",
      max_speedup, max_regression);
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
