#ifndef POPDB_BENCH_BENCH_UTIL_H_
#define POPDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/json.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "opt/plan.h"

namespace popdb::bench {

/// Compact join-shape rendering of a plan: joins and scans only, wrapper
/// operators (TEMP/SORT/CHECK/aggregation) elided. Used to report which
/// plan the optimizer picked at each point of a parameter sweep.
inline std::string JoinShape(const PlanNode& node) {
  switch (node.kind) {
    case PlanOpKind::kTableScan:
      return node.table_name;
    case PlanOpKind::kMatViewScan:
      return "MV[" + node.mv_name + "]";
    case PlanOpKind::kNljn:
    case PlanOpKind::kHsjn:
    case PlanOpKind::kMgjn:
      return std::string(PlanOpKindName(node.kind)) + "(" +
             JoinShape(*node.children[0]) + "," +
             JoinShape(*node.children[1]) + ")";
    default:
      if (node.children.empty()) return "?";
      return JoinShape(*node.children[0]);
  }
}

/// Resident set size of this process in bytes (Linux /proc/self/statm;
/// 0 elsewhere or on read failure). Used to attribute server memory to
/// idle sessions in bench_net_throughput.
inline int64_t SelfRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total = 0;
  long long resident = 0;
  const int fields = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (fields != 2) return 0;
  return static_cast<int64_t>(resident) * 4096;
}

/// Reads a scale override from the environment (POPDB_TPCH_SCALE /
/// POPDB_DMV_SCALE) so users can run the experiments at larger sizes
/// without recompiling.
inline double EnvScale(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const double parsed = std::strtod(v, nullptr);
  return parsed > 0 ? parsed : fallback;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("================================================================\n");
}

/// Destination for machine-readable results: BENCH_<name>.json in the
/// working directory, or in $POPDB_BENCH_JSON_DIR when set.
inline std::string BenchJsonPath(const char* name) {
  const char* dir = std::getenv("POPDB_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/"
                         : std::string();
  return path + "BENCH_" + name + ".json";
}

/// Writes a benchmark's results (a complete JSON document, typically built
/// with JsonWriter) to BENCH_<name>.json so the perf trajectory can be
/// tracked across commits. Prints the destination; failures are reported
/// but non-fatal (benchmarks still print their tables).
inline void WriteBenchJson(const char* name, const std::string& json) {
  const std::string path = BenchJsonPath(name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("results written to %s\n", path.c_str());
}

}  // namespace popdb::bench

#endif  // POPDB_BENCH_BENCH_UTIL_H_
