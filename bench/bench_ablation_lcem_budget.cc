// Ablation of the LCEM materialization budget (DESIGN.md decision #4).
// LCEM guards NLJN outers by materializing them — cheap when the outer is
// genuinely small, pure overhead when the optimizer *knew* the outer was
// big and picked an index NLJN anyway. The budget skips LCEMs whose
// estimated TEMP cost exceeds a fraction of the plan cost. This study
// sweeps the fraction over the DMV workload and reports the aggregate
// risk/opportunity tradeoff.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

namespace popdb {
namespace {

void Run() {
  bench::PrintHeader("LCEM materialization-budget ablation",
                     "Section 4 placement restrictions, Markl et al. 2004");
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_DMV_SCALE", gen.scale);
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());
  const std::vector<QuerySpec> workload = dmv::MakeWorkload();

  // Static baseline per query.
  std::vector<int64_t> static_work;
  for (const QuerySpec& q : workload) {
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    ExecutionStats stats;
    POPDB_DCHECK(exec.ExecuteStatic(q, &stats).ok());
    static_work.push_back(stats.total_work);
  }

  TablePrinter tp({"lcem_budget", "total_work", "reopts", "improved",
                   "regressed", "worst_regression"});
  for (const double budget : {0.0, 0.01, 0.05, 0.2, 1e9}) {
    int64_t total = 0;
    int reopts = 0, improved = 0, regressed = 0;
    double worst_regression = 1.0;
    for (size_t i = 0; i < workload.size(); ++i) {
      PopConfig pop;
      pop.lcem_budget_fraction = budget;
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
      ExecutionStats stats;
      POPDB_DCHECK(exec.Execute(workload[i], &stats).ok());
      total += stats.total_work;
      reopts += stats.reopts;
      const double ratio = static_cast<double>(static_work[i]) /
                           static_cast<double>(
                               std::max<int64_t>(1, stats.total_work));
      if (ratio > 1.05) ++improved;
      if (ratio < 0.95) {
        ++regressed;
        worst_regression = std::max(worst_regression, 1.0 / ratio);
      }
    }
    tp.AddRow({budget > 1e6 ? std::string("unlimited")
                            : StrFormat("%.2f", budget),
               StrFormat("%lld", static_cast<long long>(total)),
               StrFormat("%d", reopts), StrFormat("%d", improved),
               StrFormat("%d", regressed),
               StrFormat("%.2fx", worst_regression)});
  }
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nbudget 0.00 disables LCEM (fewer re-optimizations, disasters "
      "undetected);\nan unlimited budget materializes every NLJN outer "
      "(more regressions).\nThe default 0.05 keeps the opportunities while "
      "bounding the risk.\n");
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
