// Reproduces Figure 11: robustness of TPC-H Q10 under selectivity
// misestimation. The LINEITEM predicate "l_sel < ?" sweeps the actual
// selectivity from 0 to 100% while a parameter marker hides the literal
// from the optimizer, which therefore plans for a constant default
// selectivity. Three modes are compared:
//   (a) default estimate + POP      -- checkpoints re-optimize mid-query,
//   (b) default estimate, no POP    -- the paper's suboptimal static plan,
//   (c) correct estimate (literal)  -- the optimal reference plan.
// The paper's shape: (b) degrades severely away from the default point;
// (a) stays within ~2x of (c) across the whole range.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

OptimizerConfig MakeOptConfig() {
  OptimizerConfig opt;
  // The paper's DBMS used a selective constant default for the parameter
  // marker, leading it to a nested-loop-heavy plan; mirror that.
  opt.estimator.default_range_selectivity = 0.01;
  opt.cost.mem_rows = 8000;
  return opt;
}

void Run() {
  bench::PrintHeader("TPC-H Q10 robustness sweep",
                     "Figure 11 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  TablePrinter tp({"actual_sel_%", "pop_work", "static_work", "optimal_work",
                   "pop_ms", "static_ms", "optimal_ms", "reopts",
                   "static/opt", "pop/opt", "optimal_plan"});

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("fig11_robustness");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(gen.scale)
      .Key("default_range_selectivity")
      .Double(MakeOptConfig().estimator.default_range_selectivity)
      .EndObject();
  json.Key("points").BeginArray();

  for (int sel = 0; sel <= 100; sel += 10) {
    // (a) POP with parameter marker.
    QuerySpec q_marker = tpch::MakeQ10Selectivity(sel, /*use_marker=*/true);
    ProgressiveExecutor pop(catalog, MakeOptConfig(), PopConfig{});
    ExecutionStats pop_stats;
    Result<std::vector<Row>> pop_rows = pop.Execute(q_marker, &pop_stats);
    POPDB_DCHECK(pop_rows.ok());

    // (b) Static plan with parameter marker.
    ExecutionStats static_stats;
    Result<std::vector<Row>> static_rows =
        pop.ExecuteStatic(q_marker, &static_stats);
    POPDB_DCHECK(static_rows.ok());

    // (c) Static plan with the correct literal.
    QuerySpec q_literal = tpch::MakeQ10Selectivity(sel, /*use_marker=*/false);
    ExecutionStats opt_stats;
    Result<std::vector<Row>> opt_rows =
        pop.ExecuteStatic(q_literal, &opt_stats);
    POPDB_DCHECK(opt_rows.ok());
    POPDB_DCHECK(pop_rows.value().size() == static_rows.value().size());
    POPDB_DCHECK(pop_rows.value().size() == opt_rows.value().size());

    Result<OptimizedPlan> opt_plan = pop.Plan(q_literal);
    POPDB_DCHECK(opt_plan.ok());

    tp.AddRow({StrFormat("%d", sel),
               StrFormat("%lld", static_cast<long long>(pop_stats.total_work)),
               StrFormat("%lld",
                         static_cast<long long>(static_stats.total_work)),
               StrFormat("%lld", static_cast<long long>(opt_stats.total_work)),
               StrFormat("%.1f", pop_stats.total_ms),
               StrFormat("%.1f", static_stats.total_ms),
               StrFormat("%.1f", opt_stats.total_ms),
               StrFormat("%d", pop_stats.reopts),
               StrFormat("%.2f", static_cast<double>(static_stats.total_work) /
                                     static_cast<double>(opt_stats.total_work)),
               StrFormat("%.2f", static_cast<double>(pop_stats.total_work) /
                                     static_cast<double>(opt_stats.total_work)),
               bench::JoinShape(*opt_plan.value().root)});
    json.BeginObject()
        .Key("actual_sel_pct")
        .Int(sel)
        .Key("pop_work")
        .Int(pop_stats.total_work)
        .Key("static_work")
        .Int(static_stats.total_work)
        .Key("optimal_work")
        .Int(opt_stats.total_work)
        .Key("pop_ms")
        .Double(pop_stats.total_ms)
        .Key("static_ms")
        .Double(static_stats.total_ms)
        .Key("optimal_ms")
        .Double(opt_stats.total_ms)
        .Key("reopts")
        .Int(pop_stats.reopts)
        .Key("static_over_optimal")
        .Double(static_cast<double>(static_stats.total_work) /
                static_cast<double>(opt_stats.total_work))
        .Key("pop_over_optimal")
        .Double(static_cast<double>(pop_stats.total_work) /
                static_cast<double>(opt_stats.total_work))
        .Key("optimal_plan")
        .String(bench::JoinShape(*opt_plan.value().root))
        .EndObject();
  }
  json.EndArray().EndObject();
  bench::WriteBenchJson("fig11_robustness", json.str());
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nNote: 'work' counts rows touched (deterministic, machine\n"
      "independent); ms is wall clock. The paper reports (b) up to ~4x the\n"
      "optimal plan and POP within ~2x across the sweep; the optimal plan\n"
      "changes as selectivity grows (Section 5.1).\n");
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
