// Reproduces Figure 15: scatter plot of DMV response times with and
// without POP. 39 synthetic decision-support queries run against the
// correlated DMV database; many of their CAR predicates restrict
// functionally dependent columns, so the independence-assuming optimizer
// underestimates cardinalities by orders of magnitude and picks
// nested-loop plans that scan unindexed inners. POP detects the violations
// and re-optimizes. The paper reports 22 improved / 17 regressed queries,
// with no POP query exceeding 5 minutes while the static worst case was
// over 20 minutes.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

namespace popdb {
namespace {

void Run() {
  bench::PrintHeader("DMV workload: response time with vs. without POP",
                     "Figure 15 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_DMV_SCALE", gen.scale);
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());
  const std::vector<QuerySpec> workload = dmv::MakeWorkload();

  TablePrinter tp({"query", "static_work", "pop_work", "static_ms", "pop_ms",
                   "reopts", "verdict"});
  int improved = 0, regressed = 0, unchanged = 0;
  double max_static_ms = 0, max_pop_ms = 0;

  for (const QuerySpec& query : workload) {
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    ExecutionStats sstat;
    Result<std::vector<Row>> srows = exec.ExecuteStatic(query, &sstat);
    POPDB_DCHECK(srows.ok());
    ExecutionStats pstat;
    Result<std::vector<Row>> prows = exec.Execute(query, &pstat);
    POPDB_DCHECK(prows.ok());
    POPDB_DCHECK(srows.value().size() == prows.value().size());

    const double ratio = static_cast<double>(sstat.total_work) /
                         std::max<int64_t>(1, pstat.total_work);
    const char* verdict = "=";
    if (ratio > 1.05) {
      verdict = "improved";
      ++improved;
    } else if (ratio < 0.95) {
      verdict = "regressed";
      ++regressed;
    } else {
      ++unchanged;
    }
    max_static_ms = std::max(max_static_ms, sstat.total_ms);
    max_pop_ms = std::max(max_pop_ms, pstat.total_ms);

    tp.AddRow({query.name(),
               StrFormat("%lld", static_cast<long long>(sstat.total_work)),
               StrFormat("%lld", static_cast<long long>(pstat.total_work)),
               StrFormat("%.1f", sstat.total_ms),
               StrFormat("%.1f", pstat.total_ms),
               StrFormat("%d", pstat.reopts), verdict});
  }
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nsummary: %d improved, %d regressed, %d unchanged (paper: 22 "
      "improved, 17 regressed)\n",
      improved, regressed, unchanged);
  std::printf(
      "longest query: %.0f ms without POP vs %.0f ms with POP (paper: >20 "
      "min vs <5 min)\n",
      max_static_ms, max_pop_ms);

  // The paper's prototype deliberately re-optimized over-eagerly ("a
  // generous cost model for re-optimization"), producing 17 regressions.
  // Emulate that posture by tightening every check range to a third of
  // its validity range and compare the improved/regressed split.
  int eager_improved = 0, eager_regressed = 0;
  for (const QuerySpec& query : workload) {
    PopConfig pop;
    pop.check_safety_factor = 0.33;  // Fires inside the validity range.
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
    ExecutionStats sstat, pstat;
    POPDB_DCHECK(exec.ExecuteStatic(query, &sstat).ok());
    POPDB_DCHECK(exec.Execute(query, &pstat).ok());
    const double ratio = static_cast<double>(sstat.total_work) /
                         std::max<int64_t>(1, pstat.total_work);
    if (ratio > 1.05) ++eager_improved;
    if (ratio < 0.95) ++eager_regressed;
  }
  std::printf(
      "over-eager posture (check ranges tightened 3x, emulating the "
      "paper's prototype): %d improved, %d regressed\n"
      "(spurious firings barely regress here because the re-plan reuses "
      "the materialized\nresult and confirms the estimates — the MV-reuse "
      "design absorbs the paper's\nover-eagerness risk)\n",
      eager_improved, eager_regressed);
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
