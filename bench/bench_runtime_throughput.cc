// Throughput scaling of the concurrent QueryService: a fixed batch of
// three-way join queries is pushed through the service at growing worker
// pool sizes, and queries/sec is compared against the single-worker
// baseline. Each query carries a simulated storage stall
// (ServiceConfig::io_stall_ms) so the experiment measures the scheduler's
// ability to overlap waits -- the regime the paper's DB2 host operates in
// -- rather than raw core count.
//
// A second table isolates the value of the shared re-optimization
// feedback store: the orders/items cardinality trap is executed
// repeatedly with sharing on (one store for the whole service) and off
// (one store per session, one session per query). With sharing, only the
// first query pays the re-optimization; without it, every query walks
// into the trap again.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "runtime/query_service.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --------------------------------------------------------------- catalogs.

/// dept/emp/sale star, same shape as the toy test catalog.
void BuildStarCatalog(Catalog* catalog) {
  Rng rng(3);
  Table dept("dept", Schema({{"d_id", ValueType::kInt},
                             {"d_name", ValueType::kString},
                             {"d_region", ValueType::kInt}}));
  for (int64_t i = 0; i < 8; ++i) {
    dept.AppendRow({Value::Int(i), Value::String("dept" + std::to_string(i)),
                    Value::Int(i % 3)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(dept)).ok());
  Table emp("emp", Schema({{"e_id", ValueType::kInt},
                           {"e_dept", ValueType::kInt},
                           {"e_age", ValueType::kInt}}));
  for (int64_t i = 0; i < 300; ++i) {
    emp.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 7)),
                   Value::Int(rng.UniformInt(20, 65))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(emp)).ok());
  Table sale("sale", Schema({{"s_emp", ValueType::kInt},
                             {"s_amount", ValueType::kDouble},
                             {"s_year", ValueType::kInt}}));
  for (int64_t i = 0; i < 2000; ++i) {
    sale.AppendRow({Value::Int(rng.UniformInt(0, 299)),
                    Value::Double(rng.UniformDouble() * 1000.0),
                    Value::Int(rng.UniformInt(2019, 2024))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(sale)).ok());
  catalog->AnalyzeAll();
}

QuerySpec StarQuery(int variant) {
  QuerySpec q("star" + std::to_string(variant));
  const int d = q.AddTable("dept");
  const int e = q.AddTable("emp");
  const int s = q.AddTable("sale");
  q.AddJoin({e, 1}, {d, 0});
  q.AddJoin({s, 0}, {e, 0});
  q.AddPred({e, 2}, PredKind::kLt, Value::Int(30 + (variant % 6) * 5));
  q.AddGroupBy({d, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// Orders/items cardinality trap (correlated predicates; see pop_test.cc).
void BuildTrapCatalog(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"clazz", ValueType::kInt},
                                 {"subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 50))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

QuerySpec TrapQuery(int i) {
  QuerySpec q("trap" + std::to_string(i));
  const int o = q.AddTable("orders");
  const int it = q.AddTable("items");
  q.AddJoin({o, 0}, {it, 0});
  q.AddPred({o, 1}, PredKind::kEq, Value::Int(7));
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(77));
  q.AddGroupBy({o, 1});
  q.AddAgg(AggFunc::kCount);
  return q;
}

// -------------------------------------------------------------- scaling.

struct ScalingPoint {
  int workers = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

ScalingPoint RunBatch(const Catalog& catalog, int workers, int num_queries,
                      double io_stall_ms) {
  ServiceConfig config;
  config.num_workers = workers;
  config.queue_capacity = num_queries + 8;
  config.io_stall_ms = io_stall_ms;
  QueryService service(catalog, config);

  const double t0 = WallMs();
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  tickets.reserve(static_cast<size_t>(num_queries));
  for (int i = 0; i < num_queries; ++i) {
    Result<std::shared_ptr<QueryTicket>> t = service.Submit(StarQuery(i));
    POPDB_DCHECK(t.ok());
    tickets.push_back(t.value());
  }
  for (const auto& t : tickets) {
    POPDB_DCHECK(t->Wait().status.ok());
  }
  const double elapsed_ms = WallMs() - t0;
  service.Shutdown();

  const ServiceStatsSnapshot stats = service.Stats();
  POPDB_DCHECK(stats.completed == num_queries);
  ScalingPoint point;
  point.workers = workers;
  point.qps = 1000.0 * num_queries / elapsed_ms;
  point.p50_ms = stats.p50_latency_ms;
  point.p95_ms = stats.p95_latency_ms;
  return point;
}

void RunScaling(JsonWriter* json) {
  bench::PrintHeader(
      "QueryService throughput scaling (worker pool size sweep)",
      "the runtime companion to Markl et al., SIGMOD 2004");

  Catalog catalog;
  BuildStarCatalog(&catalog);

  const int num_queries = static_cast<int>(
      bench::EnvScale("POPDB_RUNTIME_BATCH", 160));
  // Not EnvScale: 0 is a valid setting (disables the stall entirely).
  double io_stall_ms = 8.0;
  if (const char* v = std::getenv("POPDB_RUNTIME_STALL_MS")) {
    io_stall_ms = std::strtod(v, nullptr);
  }
  std::printf("batch=%d queries, simulated I/O stall=%.1f ms/query\n",
              num_queries, io_stall_ms);

  json->Key("config")
      .BeginObject()
      .Key("batch")
      .Int(num_queries)
      .Key("io_stall_ms")
      .Double(io_stall_ms)
      .EndObject();
  json->Key("scaling").BeginArray();
  TablePrinter tp({"workers", "qps", "speedup_vs_1", "p50_ms", "p95_ms"});
  double base_qps = 0.0;
  double speedup_at_8 = 0.0;
  for (int workers : {1, 2, 4, 8, 16}) {
    const ScalingPoint p = RunBatch(catalog, workers, num_queries,
                                    io_stall_ms);
    if (workers == 1) base_qps = p.qps;
    const double speedup = base_qps > 0 ? p.qps / base_qps : 0.0;
    if (workers == 8) speedup_at_8 = speedup;
    tp.AddRow({std::to_string(workers), StrFormat("%.1f", p.qps),
               StrFormat("%.2fx", speedup), StrFormat("%.2f", p.p50_ms),
               StrFormat("%.2f", p.p95_ms)});
    json->BeginObject()
        .Key("workers")
        .Int(workers)
        .Key("qps")
        .Double(p.qps)
        .Key("speedup_vs_1")
        .Double(speedup)
        .Key("p50_ms")
        .Double(p.p50_ms)
        .Key("p95_ms")
        .Double(p.p95_ms)
        .EndObject();
  }
  json->EndArray();
  std::printf("%s\n", tp.ToString().c_str());
  std::printf("scaling 1 -> 8 workers: %.2fx queries/sec (target > 3x)\n",
              speedup_at_8);
}

// ------------------------------------------------- shared-feedback value.

void RunFeedbackAblation(JsonWriter* json) {
  bench::PrintHeader(
      "Shared re-optimization feedback: one store vs per-session stores",
      "LEO-style cross-query learning, Sec. 6 'exploiting feedback'");

  Catalog catalog;
  BuildTrapCatalog(&catalog);
  const int repeats = 12;

  TablePrinter tp({"feedback", "queries", "reopt_queries", "reopt_attempts",
                   "total_ms", "ms/query"});
  json->Key("feedback_ablation").BeginArray();
  for (const bool shared : {true, false}) {
    ServiceConfig config;
    config.num_workers = 1;  // Serialize so learning order is deterministic.
    config.queue_capacity = repeats + 8;
    config.share_feedback = shared;
    QueryService service(catalog, config);

    const double t0 = WallMs();
    for (int i = 0; i < repeats; ++i) {
      SubmitOptions opts;
      // Distinct sessions: with sharing off, nobody benefits from anyone
      // else's discoveries.
      opts.session_id = static_cast<uint64_t>(i);
      const QueryResult r = service.ExecuteSync(TrapQuery(i), opts);
      POPDB_DCHECK(r.status.ok());
    }
    const double elapsed_ms = WallMs() - t0;
    service.Shutdown();

    const ServiceStatsSnapshot stats = service.Stats();
    tp.AddRow({shared ? "shared" : "per-session", std::to_string(repeats),
               std::to_string(stats.reoptimized_queries),
               std::to_string(stats.reopt_attempts),
               StrFormat("%.1f", elapsed_ms),
               StrFormat("%.2f", elapsed_ms / repeats)});
    json->BeginObject()
        .Key("mode")
        .String(shared ? "shared" : "per-session")
        .Key("queries")
        .Int(repeats)
        .Key("reopt_queries")
        .Int(stats.reoptimized_queries)
        .Key("reopt_attempts")
        .Int(stats.reopt_attempts)
        .Key("total_ms")
        .Double(elapsed_ms)
        .EndObject();
  }
  json->EndArray();
  std::printf("%s\n", tp.ToString().c_str());
}

void Run() {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("runtime_throughput");
  RunScaling(&json);
  RunFeedbackAblation(&json);
  json.EndObject();
  bench::WriteBenchJson("runtime_throughput", json.str());
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
