// Throughput and latency of the network front end: a fixed aggregation
// query is pushed through the wire protocol (TCP loopback, length-prefixed
// JSON frames, SQL text) at 1, 4, and 16 concurrent client connections,
// and queries/sec plus tail latency are compared against an in-process
// baseline that calls QueryService::ExecuteSync directly with the same
// parse step. The gap between the two isolates what the protocol layer
// costs: framing, JSON encode/decode of row batches, and one socket round
// trip per query.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/query_service.h"
#include "sql/binder.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Orders table sized so one aggregation is cheap enough that protocol
/// overhead is visible, but not so cheap the measurement is all noise.
void BuildCatalog(Catalog* catalog) {
  Rng rng(11);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_amount", ValueType::kDouble}}));
  for (int64_t i = 0; i < 20000; ++i) {
    orders.AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 19)),
                      Value::Double(rng.UniformDouble() * 100.0)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  catalog->AnalyzeAll();
}

constexpr const char* kSql =
    "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class ORDER BY 1";

struct Point {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

Point Summarize(std::vector<double> latencies, double elapsed_ms) {
  Point p;
  p.qps = 1000.0 * static_cast<double>(latencies.size()) / elapsed_ms;
  std::sort(latencies.begin(), latencies.end());
  const size_t n = latencies.size();
  p.p50_ms = latencies[n / 2];
  p.p95_ms = latencies[static_cast<size_t>(0.95 * static_cast<double>(n - 1))];
  return p;
}

/// In-process baseline: same SQL parse + ExecuteSync, no sockets.
Point RunInProcess(QueryService* service, const Catalog& catalog,
                   int num_queries) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(num_queries));
  const double t0 = WallMs();
  for (int i = 0; i < num_queries; ++i) {
    const double q0 = WallMs();
    Result<sql::BoundStatement> bound = sql::ParseSql(catalog, kSql);
    POPDB_DCHECK(bound.ok());
    const QueryResult r = service->ExecuteSync(std::move(bound.value().query));
    POPDB_DCHECK(r.status.ok());
    latencies.push_back(WallMs() - q0);
  }
  const double elapsed_ms = WallMs() - t0;
  return Summarize(std::move(latencies), elapsed_ms);
}

/// `connections` clients hammer the server concurrently, `per_conn`
/// queries each; per-query latency is the full wire round trip.
Point RunNetworked(int port, int connections, int per_conn) {
  std::vector<std::vector<double>> per_thread(
      static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  const double t0 = WallMs();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([port, per_conn, &lat = per_thread[c]]() {
      Result<net::Client> client = net::Client::Connect("127.0.0.1", port);
      POPDB_DCHECK(client.ok());
      lat.reserve(static_cast<size_t>(per_conn));
      for (int i = 0; i < per_conn; ++i) {
        const double q0 = WallMs();
        const net::ClientQueryResult r = client.value().Query(kSql);
        POPDB_DCHECK(r.status.ok());
        POPDB_DCHECK(r.rows.size() == 20);
        lat.push_back(WallMs() - q0);
      }
      client.value().Close();
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_ms = WallMs() - t0;
  std::vector<double> latencies;
  for (auto& lat : per_thread) {
    latencies.insert(latencies.end(), lat.begin(), lat.end());
  }
  return Summarize(std::move(latencies), elapsed_ms);
}

void Run() {
  bench::PrintHeader(
      "Wire-protocol throughput: networked clients vs in-process calls",
      "the service front end for Markl et al., SIGMOD 2004");

  Catalog catalog;
  BuildCatalog(&catalog);

  ServiceConfig service_config;
  service_config.num_workers = 8;
  service_config.share_feedback = true;
  QueryService service(catalog, service_config);

  net::NetServerConfig net_config;
  net_config.host = "127.0.0.1";
  net_config.port = 0;
  // One connection per worker: covers the 16-connection sweep plus the
  // parked idle sessions of the memory measurement below.
  net_config.num_workers = 48;
  net::NetServer server(&service, /*traces=*/nullptr, net_config);
  const Status started = server.Start();
  POPDB_DCHECK(started.ok());

  const int total_queries = static_cast<int>(
      bench::EnvScale("POPDB_NET_BENCH_QUERIES", 320));

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("net_throughput");
  json.Key("config")
      .BeginObject()
      .Key("queries_per_point")
      .Int(total_queries)
      .Key("sql")
      .String(kSql)
      .EndObject();

  // Warm the plan cache and feedback store so neither mode pays the
  // one-time optimization cost inside its measured window.
  RunInProcess(&service, catalog, 16);

  const Point base = RunInProcess(&service, catalog, total_queries);
  json.Key("in_process")
      .BeginObject()
      .Key("qps")
      .Double(base.qps)
      .Key("p50_ms")
      .Double(base.p50_ms)
      .Key("p95_ms")
      .Double(base.p95_ms)
      .EndObject();

  TablePrinter tp({"mode", "connections", "qps", "p50_ms", "p95_ms",
                   "qps_vs_inproc"});
  tp.AddRow({"in-process", "-", StrFormat("%.1f", base.qps),
             StrFormat("%.3f", base.p50_ms), StrFormat("%.3f", base.p95_ms),
             "1.00x"});

  json.Key("networked").BeginArray();
  for (int connections : {1, 4, 16}) {
    const int per_conn = std::max(1, total_queries / connections);
    const Point p = RunNetworked(server.port(), connections, per_conn);
    const double ratio = base.qps > 0 ? p.qps / base.qps : 0.0;
    tp.AddRow({"networked", std::to_string(connections),
               StrFormat("%.1f", p.qps), StrFormat("%.3f", p.p50_ms),
               StrFormat("%.3f", p.p95_ms), StrFormat("%.2fx", ratio)});
    json.BeginObject()
        .Key("connections")
        .Int(connections)
        .Key("queries")
        .Int(per_conn * connections)
        .Key("qps")
        .Double(p.qps)
        .Key("p50_ms")
        .Double(p.p50_ms)
        .Key("p95_ms")
        .Double(p.p95_ms)
        .Key("qps_vs_in_process")
        .Double(ratio)
        .EndObject();
  }
  json.EndArray();

  // Per-idle-session server memory: park kIdleSessions connected clients
  // that never issue a query and attribute the RSS delta to them. The
  // server is in this process, so /proc/self reflects its session state
  // (plus allocator slack — treat small numbers as noise).
  constexpr int kIdleSessions = 32;
  const int64_t rss_before = bench::SelfRssBytes();
  {
    std::vector<net::Client> idle;
    idle.reserve(kIdleSessions);
    for (int i = 0; i < kIdleSessions; ++i) {
      Result<net::Client> c = net::Client::Connect("127.0.0.1",
                                                   server.port());
      POPDB_DCHECK(c.ok());
      idle.push_back(std::move(c).TakeValue());
    }
    const int64_t rss_with = bench::SelfRssBytes();
    const double per_session_kib =
        static_cast<double>(rss_with - rss_before) / kIdleSessions / 1024.0;
    std::printf(
        "idle-session memory: %d parked sessions cost %.1f KiB each "
        "(rss %lld -> %lld bytes)\n",
        kIdleSessions, per_session_kib,
        static_cast<long long>(rss_before),
        static_cast<long long>(rss_with));
    json.Key("idle_session_memory")
        .BeginObject()
        .Key("sessions")
        .Int(kIdleSessions)
        .Key("rss_before_bytes")
        .Int(rss_before)
        .Key("rss_with_bytes")
        .Int(rss_with)
        .Key("per_session_kib")
        .Double(per_session_kib)
        .EndObject();
    for (net::Client& c : idle) c.Close();
  }
  json.EndObject();

  std::printf("%s\n", tp.ToString().c_str());
  std::printf(
      "protocol cost = in-process qps / 1-connection networked qps; "
      "concurrency should close the gap\n");

  server.Shutdown();
  service.Shutdown();
  bench::WriteBenchJson("net_throughput", json.str());
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
