// Measures the cost of the observability layer: the same progressive
// workload runs with span tracing disabled (the default) and enabled, and
// the slowdown is reported normalized by work done (rows touched), so a
// plan change between rounds cannot masquerade as instrumentation cost.
// Operator stats and EXPLAIN ANALYZE profiles are always on; what the
// toggle adds is span recording in every Open/Close, checkpoint instants,
// and the optimizer-phase spans. Target: < 5% work-normalized overhead.
//
// A second section measures the distributed path: the same scan/agg
// workload through the scatter-gather coordinator against two forked
// loopback shard processes, once with the cluster observability plane off
// (tracing disabled everywhere, shard query logs disabled) and once fully
// on (coordinator + shard tracing, structured query logs, per-shard
// profile shipping). Same < 5% budget, wall-time normalized (the work is
// identical by construction: same data, same plans).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/span.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/shard.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/query_service.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RoundResult {
  double ms = 0.0;
  int64_t work = 0;
  int64_t spans = 0;
};

/// One pass over the workload: a mix of TPC-H queries executed
/// progressively, some of which re-optimize. Returns wall time and total
/// work; the tracer (if enabled) is cleared first so span counts are
/// per-round.
RoundResult RunRound(const Catalog& catalog, int repeats) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  RoundResult r;
  const double t0 = WallMs();
  for (int rep = 0; rep < repeats; ++rep) {
    for (int qnum : {3, 4, 5, 10}) {
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
      ExecutionStats stats;
      Result<std::vector<Row>> rows =
          exec.Execute(tpch::MakeQuery(qnum), &stats);
      POPDB_DCHECK(rows.ok());
      r.work += stats.total_work;
    }
  }
  r.ms = WallMs() - t0;
  r.spans = tracer.event_count();
  return r;
}

tpch::GenConfig DataConfig() {
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  return gen;
}

/// Forked shard process serving subplans until SIGTERM; with
/// `observability_on` its tracer and structured query log are live, so
/// every subplan pays for span recording, log appends, and the profile
/// snapshot shipped in query_done. Writes its port to `port_fd`.
[[noreturn]] void ShardMain(int shard, int shard_count, int port_fd,
                            bool observability_on) {
  Catalog full;
  POPDB_DCHECK(tpch::BuildCatalog(DataConfig(), &full).ok());
  const dist::PartitionSpec spec = dist::TpchPartitionSpec();
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, spec, shard_count);
  POPDB_DCHECK(ranges.ok());
  Catalog shard_catalog;
  POPDB_DCHECK(dist::BuildShardCatalog(full, spec, ranges.value(), shard,
                                       /*histogram_buckets=*/32,
                                       &shard_catalog)
                   .ok());
  if (observability_on) SpanTracer::Global().Enable();
  ServiceConfig service_config;
  if (!observability_on) service_config.query_log_entries = 0;
  QueryService service(shard_catalog, service_config);
  dist::ShardExecutor executor(shard_catalog);
  net::NetServerConfig net_config;
  net_config.host = "127.0.0.1";
  net_config.port = 0;
  net_config.subplan_backend = &executor;
  net::NetServer server(&service, /*traces=*/nullptr, net_config);
  POPDB_DCHECK(server.Start().ok());
  char buf[16];
  const int len = std::snprintf(buf, sizeof(buf), "%d\n", server.port());
  POPDB_DCHECK(write(port_fd, buf, static_cast<size_t>(len)) == len);
  close(port_fd);
  while (true) pause();
}

struct Cluster {
  std::vector<pid_t> pids;
  std::vector<net::Endpoint> endpoints;
};

/// Forks `n` shard processes. Must run before the parent creates threads.
Cluster SpawnCluster(int n, bool observability_on) {
  Cluster cluster;
  for (int s = 0; s < n; ++s) {
    int fds[2];
    POPDB_DCHECK(pipe(fds) == 0);
    const pid_t pid = fork();
    POPDB_DCHECK(pid >= 0);
    if (pid == 0) {
      close(fds[0]);
      ShardMain(s, n, fds[1], observability_on);
    }
    close(fds[1]);
    cluster.pids.push_back(pid);
    std::string line;
    char c;
    while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    close(fds[0]);
    const int port = std::atoi(line.c_str());
    POPDB_DCHECK(port > 0);
    cluster.endpoints.push_back({"127.0.0.1", port});
  }
  return cluster;
}

void ReapCluster(const Cluster& cluster) {
  for (const pid_t pid : cluster.pids) kill(pid, SIGTERM);
  for (const pid_t pid : cluster.pids) waitpid(pid, nullptr, 0);
}

/// Drops the accumulated span buffers on every shard of an
/// observability-on cluster so round N+1 does not pay for round N's
/// events.
void ClearShardTracers(const Cluster& cluster) {
  for (const net::Endpoint& ep : cluster.endpoints) {
    Result<net::Client> client = net::Client::Connect(ep.host, ep.port);
    if (!client.ok()) continue;
    net::ClientSpansOptions opts;
    opts.clear = true;
    (void)client.value().Spans(opts);
    client.value().Close();
  }
}

/// Scan/agg-heavy shardable workload (few result rows, so the wire share
/// is small and the instrumentation share is visible).
const char* const kDistSql[] = {
    "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) "
    "FROM lineitem GROUP BY l_returnflag ORDER BY 1",
    "SELECT o_orderpriority, COUNT(*), SUM(l_extendedprice) "
    "FROM orders, lineitem WHERE o_orderkey = l_orderkey "
    "AND l_quantity > 40 GROUP BY o_orderpriority ORDER BY 1",
};

/// One pass of the distributed workload through `coordinator`.
double RunDistRound(dist::Coordinator* coordinator,
                    const std::vector<QuerySpec>& queries) {
  const double t0 = WallMs();
  for (const QuerySpec& query : queries) {
    CancelToken cancel;
    ExecutionStats stats;
    POPDB_DCHECK(coordinator->Execute(query, &cancel, nullptr, &stats).ok());
  }
  return WallMs() - t0;
}

void RunDistributed(const Cluster& off_cluster, const Cluster& on_cluster,
                    JsonWriter* json) {
  std::printf(
      "\ndistributed: 2 forked shards, observability plane on vs off\n");
  Catalog full;
  POPDB_DCHECK(tpch::BuildCatalog(DataConfig(), &full).ok());
  dist::CoordinatorConfig config;
  config.partition = dist::TpchPartitionSpec();
  config.shards = off_cluster.endpoints;
  dist::Coordinator coord_off(full, config);
  config.shards = on_cluster.endpoints;
  dist::Coordinator coord_on(full, config);

  std::vector<QuerySpec> queries;
  for (const char* sql : kDistSql) {
    Result<sql::BoundStatement> bound = sql::ParseSql(full, sql);
    POPDB_DCHECK(bound.ok());
    POPDB_DCHECK(coord_off.CanExecute(bound.value().query));
    queries.push_back(std::move(bound.value().query));
  }

  SpanTracer& tracer = SpanTracer::Global();
  const int repeats = 4;

  // Warm-up both clusters (connection pools, buffer effects).
  tracer.Disable();
  RunDistRound(&coord_off, queries);
  tracer.Enable();
  RunDistRound(&coord_on, queries);

  // Interleaved min-of rounds, same discipline as the local section.
  double best_off = -1.0, best_on = -1.0;
  for (int trial = 0; trial < 3; ++trial) {
    tracer.Disable();
    tracer.Clear();
    double off_ms = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      off_ms += RunDistRound(&coord_off, queries);
    }
    if (best_off < 0 || off_ms < best_off) best_off = off_ms;

    tracer.Enable();
    double on_ms = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      on_ms += RunDistRound(&coord_on, queries);
    }
    if (best_on < 0 || on_ms < best_on) best_on = on_ms;
    ClearShardTracers(on_cluster);
  }
  tracer.Disable();
  tracer.Clear();

  const double overhead_pct = (best_on / best_off - 1.0) * 100.0;
  TablePrinter tp({"observability", "ms_per_trial"});
  tp.AddRow({"off", StrFormat("%.1f", best_off)});
  tp.AddRow({"on", StrFormat("%.1f", best_on)});
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\ndistributed observability overhead: %+.2f%% (target < 5%%)\n"
      "%s\n",
      overhead_pct,
      overhead_pct < 5.0 ? "PASS: within the 5% budget"
                         : "WARN: above the 5% budget");

  json->Key("distributed")
      .BeginObject()
      .Key("shards")
      .Int(2)
      .Key("repeats")
      .Int(repeats)
      .Key("trials")
      .Int(3)
      .Key("off_ms")
      .Double(best_off)
      .Key("on_ms")
      .Double(best_on)
      .Key("overhead_pct")
      .Double(overhead_pct)
      .Key("within_budget")
      .Bool(overhead_pct < 5.0)
      .EndObject();
}

void Run(const Cluster& off_cluster, const Cluster& on_cluster) {
  bench::PrintHeader("Observability overhead: span tracing on vs off",
                     "instrumentation-cost check (ISSUE PR 2)");
  Catalog catalog;
  tpch::GenConfig gen = DataConfig();
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  const int repeats = 6;
  SpanTracer& tracer = SpanTracer::Global();

  // Warm-up (touches the buffer pool, feedback caches cold each round
  // because every executor is fresh).
  tracer.Disable();
  RunRound(catalog, 1);

  // Interleave off/on rounds and keep the best (min ms/work) of each mode
  // so scheduler noise doesn't decide the verdict.
  double best_off = -1.0, best_on = -1.0;
  RoundResult off_round, on_round;
  for (int trial = 0; trial < 3; ++trial) {
    tracer.Disable();
    const RoundResult off = RunRound(catalog, repeats);
    const double off_rate = off.ms / static_cast<double>(off.work);
    if (best_off < 0 || off_rate < best_off) {
      best_off = off_rate;
      off_round = off;
    }
    tracer.Enable();
    const RoundResult on = RunRound(catalog, repeats);
    const double on_rate = on.ms / static_cast<double>(on.work);
    if (best_on < 0 || on_rate < best_on) {
      best_on = on_rate;
      on_round = on;
    }
  }
  tracer.Disable();
  tracer.Clear();

  const double overhead_pct = (best_on / best_off - 1.0) * 100.0;

  TablePrinter tp({"tracing", "ms", "work", "ns_per_work_unit", "spans"});
  tp.AddRow({"off", StrFormat("%.1f", off_round.ms),
             StrFormat("%lld", static_cast<long long>(off_round.work)),
             StrFormat("%.2f", best_off * 1e6), "0"});
  tp.AddRow({"on", StrFormat("%.1f", on_round.ms),
             StrFormat("%lld", static_cast<long long>(on_round.work)),
             StrFormat("%.2f", best_on * 1e6),
             StrFormat("%lld", static_cast<long long>(on_round.spans))});
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nwork-normalized tracing overhead: %+.2f%% (target < 5%%)\n"
      "%s\n",
      overhead_pct,
      overhead_pct < 5.0 ? "PASS: within the 5% budget"
                         : "WARN: above the 5% budget");

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("observability_overhead");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(gen.scale)
      .Key("repeats")
      .Int(repeats)
      .Key("trials")
      .Int(3)
      .EndObject();
  json.Key("tracing_off")
      .BeginObject()
      .Key("ms")
      .Double(off_round.ms)
      .Key("work")
      .Int(off_round.work)
      .Key("ns_per_work_unit")
      .Double(best_off * 1e6)
      .EndObject();
  json.Key("tracing_on")
      .BeginObject()
      .Key("ms")
      .Double(on_round.ms)
      .Key("work")
      .Int(on_round.work)
      .Key("ns_per_work_unit")
      .Double(best_on * 1e6)
      .Key("spans_recorded")
      .Int(on_round.spans)
      .EndObject();
  json.Key("overhead_pct").Double(overhead_pct);
  json.Key("within_budget").Bool(overhead_pct < 5.0);
  RunDistributed(off_cluster, on_cluster, &json);
  json.EndObject();
  bench::WriteBenchJson("observability", json.str());
}

}  // namespace
}  // namespace popdb

int main() {
  // Fork every shard before this process creates any thread.
  const popdb::Cluster off_cluster = popdb::SpawnCluster(2, false);
  const popdb::Cluster on_cluster = popdb::SpawnCluster(2, true);
  popdb::Run(off_cluster, on_cluster);
  popdb::ReapCluster(off_cluster);
  popdb::ReapCluster(on_cluster);
  return 0;
}
