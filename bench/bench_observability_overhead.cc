// Measures the cost of the observability layer: the same progressive
// workload runs with span tracing disabled (the default) and enabled, and
// the slowdown is reported normalized by work done (rows touched), so a
// plan change between rounds cannot masquerade as instrumentation cost.
// Operator stats and EXPLAIN ANALYZE profiles are always on; what the
// toggle adds is span recording in every Open/Close, checkpoint instants,
// and the optimizer-phase spans. Target: < 5% work-normalized overhead.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/span.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RoundResult {
  double ms = 0.0;
  int64_t work = 0;
  int64_t spans = 0;
};

/// One pass over the workload: a mix of TPC-H queries executed
/// progressively, some of which re-optimize. Returns wall time and total
/// work; the tracer (if enabled) is cleared first so span counts are
/// per-round.
RoundResult RunRound(const Catalog& catalog, int repeats) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.Clear();
  RoundResult r;
  const double t0 = WallMs();
  for (int rep = 0; rep < repeats; ++rep) {
    for (int qnum : {3, 4, 5, 10}) {
      ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
      ExecutionStats stats;
      Result<std::vector<Row>> rows =
          exec.Execute(tpch::MakeQuery(qnum), &stats);
      POPDB_DCHECK(rows.ok());
      r.work += stats.total_work;
    }
  }
  r.ms = WallMs() - t0;
  r.spans = tracer.event_count();
  return r;
}

void Run() {
  bench::PrintHeader("Observability overhead: span tracing on vs off",
                     "instrumentation-cost check (ISSUE PR 2)");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  const int repeats = 6;
  SpanTracer& tracer = SpanTracer::Global();

  // Warm-up (touches the buffer pool, feedback caches cold each round
  // because every executor is fresh).
  tracer.Disable();
  RunRound(catalog, 1);

  // Interleave off/on rounds and keep the best (min ms/work) of each mode
  // so scheduler noise doesn't decide the verdict.
  double best_off = -1.0, best_on = -1.0;
  RoundResult off_round, on_round;
  for (int trial = 0; trial < 3; ++trial) {
    tracer.Disable();
    const RoundResult off = RunRound(catalog, repeats);
    const double off_rate = off.ms / static_cast<double>(off.work);
    if (best_off < 0 || off_rate < best_off) {
      best_off = off_rate;
      off_round = off;
    }
    tracer.Enable();
    const RoundResult on = RunRound(catalog, repeats);
    const double on_rate = on.ms / static_cast<double>(on.work);
    if (best_on < 0 || on_rate < best_on) {
      best_on = on_rate;
      on_round = on;
    }
  }
  tracer.Disable();
  tracer.Clear();

  const double overhead_pct = (best_on / best_off - 1.0) * 100.0;

  TablePrinter tp({"tracing", "ms", "work", "ns_per_work_unit", "spans"});
  tp.AddRow({"off", StrFormat("%.1f", off_round.ms),
             StrFormat("%lld", static_cast<long long>(off_round.work)),
             StrFormat("%.2f", best_off * 1e6), "0"});
  tp.AddRow({"on", StrFormat("%.1f", on_round.ms),
             StrFormat("%lld", static_cast<long long>(on_round.work)),
             StrFormat("%.2f", best_on * 1e6),
             StrFormat("%lld", static_cast<long long>(on_round.spans))});
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nwork-normalized tracing overhead: %+.2f%% (target < 5%%)\n"
      "%s\n",
      overhead_pct,
      overhead_pct < 5.0 ? "PASS: within the 5% budget"
                         : "WARN: above the 5% budget");

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("observability_overhead");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(gen.scale)
      .Key("repeats")
      .Int(repeats)
      .Key("trials")
      .Int(3)
      .EndObject();
  json.Key("tracing_off")
      .BeginObject()
      .Key("ms")
      .Double(off_round.ms)
      .Key("work")
      .Int(off_round.work)
      .Key("ns_per_work_unit")
      .Double(best_off * 1e6)
      .EndObject();
  json.Key("tracing_on")
      .BeginObject()
      .Key("ms")
      .Double(on_round.ms)
      .Key("work")
      .Int(on_round.work)
      .Key("ns_per_work_unit")
      .Double(best_on * 1e6)
      .Key("spans_recorded")
      .Int(on_round.spans)
      .EndObject();
  json.Key("overhead_pct").Double(overhead_pct);
  json.Key("within_budget").Bool(overhead_pct < 5.0);
  json.EndObject();
  bench::WriteBenchJson("observability", json.str());
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
