// Plan-cache benchmark: submit-to-execute latency (the attempt-0 window
// from submission until execution starts: cache lookup, DP enumeration or
// skeleton clone, checkpoint placement) with the plan cache on vs. off.
//
// Two workload mixes over the TPC-H paper queries:
//   repeat95 -- 95% of submissions re-issue one of the ten prepared
//               templates (marker variants, so bindings churn while the
//               cache key stays fixed); 5% are ad-hoc one-off queries.
//               The steady-state regime a plan cache exists for: expect
//               >= 5x lower submit-to-execute latency.
//   unique0  -- every submission is a query the cache has never seen, so
//               caching can only add overhead (signature computation,
//               lookup, install, skeleton clone). Expect < 2%.
//
// End-to-end wall time per Execute() call is reported alongside so the
// optimizer-phase win is kept honest against total latency.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorldResult {
  double submit_to_exec_ms = 0.0;  ///< Sum of attempt-0 optimize windows.
  double wall_ms = 0.0;            ///< Sum of full Execute() wall times.
  int64_t runs = 0;
  PlanCache::Stats cache;
};

/// Replays `stream` through one fresh world (executor + feedback store,
/// plus a plan cache when `with_cache`). The first `warmup` submissions
/// are executed but not measured.
WorldResult RunWorld(const Catalog& catalog,
                     const std::vector<QuerySpec>& stream, size_t warmup,
                     bool with_cache) {
  ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
  QueryFeedbackStore store;
  exec.set_cross_query_store(&store);
  PlanCache cache;
  if (with_cache) exec.set_plan_cache(&cache);

  WorldResult r;
  for (size_t i = 0; i < stream.size(); ++i) {
    ExecutionStats stats;
    const double t0 = WallMs();
    Result<std::vector<Row>> rows = exec.Execute(stream[i], &stats);
    const double wall = WallMs() - t0;
    if (!rows.ok()) {
      std::fprintf(stderr, "ERROR: %s failed: %s\n",
                   stream[i].name().c_str(),
                   rows.status().ToString().c_str());
      continue;
    }
    if (i < warmup) continue;
    r.submit_to_exec_ms += stats.attempts[0].optimize_ms;
    r.wall_ms += wall;
    ++r.runs;
  }
  r.cache = cache.stats();
  return r;
}

/// One ad-hoc query the cache has never seen: a paper-query shape with a
/// unique literal (a LIMIT far above any result size, so execution and the
/// join-enumeration work are unchanged while the cache signature is new).
QuerySpec AdHocQuery(const std::vector<QuerySpec>& templates, int i) {
  QuerySpec q = templates[static_cast<size_t>(i) % templates.size()];
  q.SetLimit(1000000 + i);
  return q;
}

struct MixResult {
  std::string name;
  WorldResult off;
  WorldResult on;

  double Speedup() const {
    return on.submit_to_exec_ms > 0
               ? off.submit_to_exec_ms / on.submit_to_exec_ms
               : 0.0;
  }
  double OverheadPct() const {
    return off.submit_to_exec_ms > 0
               ? 100.0 * (on.submit_to_exec_ms - off.submit_to_exec_ms) /
                     off.submit_to_exec_ms
               : 0.0;
  }
  double HitRate() const {
    return on.cache.lookups > 0
               ? static_cast<double>(on.cache.hits + on.cache.validity_hits) /
                     static_cast<double>(on.cache.lookups)
               : 0.0;
  }
};

}  // namespace

int BenchMain() {
  bench::PrintHeader(
      "Plan-cache submit-to-execute latency: repeat-heavy vs. ad-hoc mixes",
      "the progressive-optimization compilation path, Section 7 "
      "\"Learning for the Future\"");

  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", 0.002);
  if (!tpch::BuildCatalog(gen, &catalog).ok()) {
    std::fprintf(stderr, "ERROR: catalog build failed\n");
    return 1;
  }

  // Prepared templates: marker variants, so repeat submissions model a
  // prepared statement re-executed with fresh bindings.
  tpch::QueryOptions marked;
  marked.param_markers = true;
  std::vector<QuerySpec> templates;
  for (int qnum : tpch::PaperQueries()) {
    templates.push_back(tpch::MakeQuery(qnum, marked));
  }

  // repeat95: 4 warm-up passes over the templates, then 400 submissions of
  // which every 20th is ad-hoc.
  std::vector<QuerySpec> repeat_stream;
  for (int pass = 0; pass < 4; ++pass) {
    for (const QuerySpec& q : templates) repeat_stream.push_back(q);
  }
  const size_t warmup = repeat_stream.size();
  int adhoc = 0;
  for (int i = 0; i < 400; ++i) {
    if (i % 20 == 19) {
      repeat_stream.push_back(AdHocQuery(templates, adhoc++));
    } else {
      repeat_stream.push_back(
          templates[static_cast<size_t>(i) % templates.size()]);
    }
  }

  // unique0: every measured submission is new to the cache.
  std::vector<QuerySpec> unique_stream;
  for (int i = 0; i < 200; ++i) {
    unique_stream.push_back(AdHocQuery(templates, i));
  }

  std::vector<MixResult> mixes;
  {
    MixResult m;
    m.name = "repeat95";
    m.off = RunWorld(catalog, repeat_stream, warmup, /*with_cache=*/false);
    m.on = RunWorld(catalog, repeat_stream, warmup, /*with_cache=*/true);
    mixes.push_back(std::move(m));
  }
  {
    MixResult m;
    m.name = "unique0";
    m.off = RunWorld(catalog, unique_stream, 0, /*with_cache=*/false);
    m.on = RunWorld(catalog, unique_stream, 0, /*with_cache=*/true);
    mixes.push_back(std::move(m));
  }

  TablePrinter table({"mix", "runs", "opt ms (off)", "opt ms (on)",
                      "speedup", "overhead %", "hit rate",
                      "wall ms (off)", "wall ms (on)"});
  for (const MixResult& m : mixes) {
    table.AddRow(
        {m.name, StrFormat("%lld", static_cast<long long>(m.on.runs)),
         StrFormat("%.2f", m.off.submit_to_exec_ms),
         StrFormat("%.2f", m.on.submit_to_exec_ms),
         StrFormat("%.1fx", m.Speedup()),
         StrFormat("%+.2f", m.OverheadPct()),
         StrFormat("%.0f%%", 100.0 * m.HitRate()),
         StrFormat("%.2f", m.off.wall_ms),
         StrFormat("%.2f", m.on.wall_ms)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nrepeat95 target: >= 5x lower submit-to-execute latency; unique0 "
      "target: < 2%% overhead.\n");

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("plan_cache");
  w.Key("tpch_scale").Double(gen.scale);
  w.Key("mixes").BeginArray();
  for (const MixResult& m : mixes) {
    w.BeginObject();
    w.Key("name").String(m.name);
    w.Key("measured_runs").Int(m.on.runs);
    w.Key("submit_to_exec_ms_off").Double(m.off.submit_to_exec_ms);
    w.Key("submit_to_exec_ms_on").Double(m.on.submit_to_exec_ms);
    w.Key("speedup").Double(m.Speedup());
    w.Key("overhead_pct").Double(m.OverheadPct());
    w.Key("wall_ms_off").Double(m.off.wall_ms);
    w.Key("wall_ms_on").Double(m.on.wall_ms);
    w.Key("cache")
        .BeginObject()
        .Key("lookups")
        .Int(m.on.cache.lookups)
        .Key("hits")
        .Int(m.on.cache.hits)
        .Key("misses_cold")
        .Int(m.on.cache.misses_cold)
        .Key("misses_stale")
        .Int(m.on.cache.misses_stale)
        .Key("installs")
        .Int(m.on.cache.installs)
        .Key("hit_rate")
        .Double(m.HitRate())
        .EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  bench::WriteBenchJson("plan_cache", w.str());
  return 0;
}

}  // namespace popdb

int main() { return popdb::BenchMain(); }
