// Ablation of intermediate-result reuse (paper Section 2.3 and the [KD98]
// comparison). Four POP variants run over the DMV workload queries that
// actually re-optimize:
//   (a) no reuse           -- re-execution recomputes everything,
//   (b) TEMP/SORT reuse    -- the paper's prototype,
//   (c) + hash-join builds -- the extension the paper leaves to future work,
//   (d) forced reuse       -- would mimic [KD98]; approximated by noting
//       when the optimizer *declined* a matview (cost-based choice).
// Also reports how often the cost-based optimizer declined to reuse an
// available materialized view (the paper's argument against forced reuse).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

namespace popdb {
namespace {

struct VariantResult {
  int64_t work = 0;
  double ms = 0;
  int reopts = 0;
  int64_t mv_rows = 0;
};

VariantResult RunVariant(const Catalog& catalog,
                         const std::vector<QuerySpec>& queries,
                         bool reuse_matviews, bool reuse_builds) {
  VariantResult out;
  for (const QuerySpec& q : queries) {
    PopConfig pop;
    pop.reuse_matviews = reuse_matviews;
    pop.reuse_hsjn_builds = reuse_builds;
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec.Execute(q, &stats);
    POPDB_DCHECK(rows.ok());
    out.work += stats.total_work;
    out.ms += stats.total_ms;
    out.reopts += stats.reopts;
    out.mv_rows += stats.mv_rows_harvested;
  }
  return out;
}

void Run() {
  bench::PrintHeader(
      "Intermediate-result reuse ablation",
      "Section 2.3 / [KD98] comparison of Markl et al., SIGMOD 2004");
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_DMV_SCALE", gen.scale);
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());

  // Pick the workload queries that re-optimize under the default config.
  std::vector<QuerySpec> reopt_queries;
  for (const QuerySpec& q : dmv::MakeWorkload()) {
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, PopConfig{});
    ExecutionStats stats;
    POPDB_DCHECK(exec.Execute(q, &stats).ok());
    if (stats.reopts > 0) reopt_queries.push_back(q);
  }
  std::printf("\n%zu of 39 workload queries re-optimize; ablating those.\n\n",
              reopt_queries.size());

  TablePrinter tp({"variant", "total_work", "total_ms", "reopts",
                   "mv_rows_harvested", "work_vs_no_reuse"});
  const VariantResult none = RunVariant(catalog, reopt_queries, false, false);
  const VariantResult temp = RunVariant(catalog, reopt_queries, true, false);
  const VariantResult builds = RunVariant(catalog, reopt_queries, true, true);
  auto add = [&tp, &none](const char* name, const VariantResult& r) {
    tp.AddRow({name, StrFormat("%lld", static_cast<long long>(r.work)),
               StrFormat("%.1f", r.ms), StrFormat("%d", r.reopts),
               StrFormat("%lld", static_cast<long long>(r.mv_rows)),
               StrFormat("%.3f", static_cast<double>(r.work) /
                                     static_cast<double>(none.work))});
  };
  add("no reuse", none);
  add("TEMP/SORT reuse (paper default)", temp);
  add("+ hash-join build reuse (extension)", builds);
  std::fputs(tp.ToString().c_str(), stdout);

  // How often does the cost-based decision decline an available matview?
  // (paper: a large mispicked intermediate result can be worse than
  // recomputing, so reuse must not be forced.)
  int declined = 0, offered = 0;
  for (const QuerySpec& q : reopt_queries) {
    PopConfig pop;
    ProgressiveExecutor exec(catalog, OptimizerConfig{}, pop);
    ExecutionStats stats;
    POPDB_DCHECK(exec.Execute(q, &stats).ok());
    for (size_t a = 1; a < stats.attempts.size(); ++a) {
      if (stats.mv_rows_harvested > 0) {
        ++offered;
        if (stats.attempts[a].plan_text.find("MVSCAN") == std::string::npos) {
          ++declined;
        }
      }
    }
  }
  std::printf(
      "\ncost-based reuse decision: optimizer declined the offered "
      "materialized view in %d of %d re-optimized plans\n"
      "(reuse is an option, not an obligation — Section 2.3)\n",
      declined, offered);
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
