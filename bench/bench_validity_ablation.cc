// Ablation of the validity-range method (Section 2.2). Two studies:
//
// 1. Newton-Raphson iteration budget: the paper claims three iterations
//    find good validity ranges. We sweep the cap and report the check
//    ranges produced for the Figure-11 query plus the resulting POP work.
//
// 2. Validity ranges vs. ad-hoc cardinality-error thresholds ([KD98]
//    style: re-optimize when actual > K x estimate). Ad-hoc thresholds
//    either fire needlessly (re-optimization yields no better plan) or
//    miss real plan changes; sensitivity-derived ranges fire exactly when
//    an alternative plan wins.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

OptimizerConfig MakeOptConfig() {
  OptimizerConfig opt;
  opt.estimator.default_range_selectivity = 0.01;
  opt.cost.mem_rows = 8000;
  return opt;
}

void RunIterationSweep(const Catalog& catalog) {
  std::printf("\n--- Newton-Raphson iteration budget (Figure 5 cap) ---\n");
  TablePrinter tp({"max_iters", "first_check_range", "cost_evals_per_opt",
                   "pop_work_sum", "reopts_sum"});
  for (int iters : {1, 2, 3, 5, 10}) {
    PopConfig pop;
    pop.validity.max_iterations = iters;

    // Inspect the range of the first checkpoint at the default estimate.
    std::string first_range = "-";
    {
      QuerySpec q = tpch::MakeQ10Selectivity(50, /*use_marker=*/true);
      ProgressiveExecutor exec(catalog, MakeOptConfig(), pop);
      exec.set_plan_hook([&first_range](PlanNode* root, int attempt) {
        if (attempt != 0) return;
        std::vector<PlanNode*> checks = CollectChecks(root);
        if (!checks.empty()) {
          first_range = StrFormat("[%.3g, %.3g]", checks[0]->check.lo,
                                  checks[0]->check.hi);
        }
      });
      ExecutionStats st;
      POPDB_DCHECK(exec.Execute(q, &st).ok());
    }

    // Cost evaluations: measure once via a fresh analyzer on the plan.
    int64_t evals = 0;
    {
      CostModel cm(MakeOptConfig().cost);
      ValidityConfig vc;
      vc.max_iterations = iters;
      ValidityRangeAnalyzer analyzer(cm, vc);
      Optimizer opt(catalog, MakeOptConfig());
      QuerySpec q = tpch::MakeQ10Selectivity(50, true);
      POPDB_DCHECK(opt.Optimize(q, nullptr, nullptr, &analyzer).ok());
      evals = analyzer.cost_evaluations();
    }

    int64_t work_sum = 0;
    int reopts_sum = 0;
    for (int sel = 0; sel <= 100; sel += 20) {
      QuerySpec q = tpch::MakeQ10Selectivity(sel, true);
      ProgressiveExecutor exec(catalog, MakeOptConfig(), pop);
      ExecutionStats st;
      POPDB_DCHECK(exec.Execute(q, &st).ok());
      work_sum += st.total_work;
      reopts_sum += st.reopts;
    }
    tp.AddRow({StrFormat("%d", iters), first_range,
               StrFormat("%lld", static_cast<long long>(evals)),
               StrFormat("%lld", static_cast<long long>(work_sum)),
               StrFormat("%d", reopts_sum)});
  }
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "Three iterations already produce the final ranges (paper Section "
      "2.2).\n");
}

void RunThresholdComparison(const Catalog& catalog) {
  std::printf(
      "\n--- Validity ranges vs. ad-hoc cardinality-error thresholds ---\n");
  TablePrinter tp({"policy", "reopts", "useful_reopts", "needless_reopts",
                   "work_sum", "work_vs_validity"});

  struct Outcome {
    int reopts = 0;
    int useful = 0;
    int needless = 0;
    int64_t work = 0;
  };
  auto run_policy = [&catalog](double threshold_factor) {
    // threshold_factor <= 0 selects the validity-range policy.
    Outcome out;
    for (int sel = 0; sel <= 100; sel += 10) {
      QuerySpec q = tpch::MakeQ10Selectivity(sel, true);
      ProgressiveExecutor exec(catalog, MakeOptConfig(), PopConfig{});
      if (threshold_factor > 0) {
        exec.set_plan_hook([threshold_factor](PlanNode* root, int attempt) {
          (void)attempt;
          for (PlanNode* node : CollectChecks(root)) {
            // Ad-hoc policy: fire when the actual deviates from the
            // estimate by more than the threshold factor, regardless of
            // whether any alternative plan would win.
            const double est = std::max(
                1.0, node->children.empty() ? node->card
                                            : node->children[0]->card);
            node->check.lo = est / threshold_factor;
            node->check.hi = est * threshold_factor;
          }
        });
      }
      ExecutionStats pop_stats;
      POPDB_DCHECK(exec.Execute(q, &pop_stats).ok());
      ExecutionStats static_stats;
      POPDB_DCHECK(exec.ExecuteStatic(q, &static_stats).ok());

      out.reopts += pop_stats.reopts;
      out.work += pop_stats.total_work;
      if (pop_stats.reopts > 0) {
        // A re-optimization was useful if it beat the static plan by >5%.
        if (static_cast<double>(static_stats.total_work) >
            1.05 * static_cast<double>(pop_stats.total_work)) {
          ++out.useful;
        } else {
          ++out.needless;
        }
      }
    }
    return out;
  };

  const Outcome validity = run_policy(-1.0);
  tp.AddRow({"validity ranges", StrFormat("%d", validity.reopts),
             StrFormat("%d", validity.useful),
             StrFormat("%d", validity.needless),
             StrFormat("%lld", static_cast<long long>(validity.work)),
             "1.00"});
  for (double factor : {2.0, 10.0, 100.0}) {
    const Outcome out = run_policy(factor);
    tp.AddRow({StrFormat("threshold %gx", factor),
               StrFormat("%d", out.reopts), StrFormat("%d", out.useful),
               StrFormat("%d", out.needless),
               StrFormat("%lld", static_cast<long long>(out.work)),
               StrFormat("%.2f", static_cast<double>(out.work) /
                                     static_cast<double>(validity.work))});
  }
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "Tight thresholds re-optimize needlessly; loose ones miss the plan\n"
      "change entirely — the paper's argument for sensitivity-derived\n"
      "ranges over ad-hoc thresholds (Sections 1.2, 2.2).\n");
}

void Run() {
  bench::PrintHeader("Validity-range ablation",
                     "Section 2.2 / Figure 5 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());
  RunIterationSweep(catalog);
  RunThresholdComparison(catalog);
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
