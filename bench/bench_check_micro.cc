// Micro-benchmark (google-benchmark): per-row overhead of the CHECK
// operator family. The paper reports that for queries that never
// re-optimize, POP's only cost is counting rows at each CHECK and
// comparing against the range — about 2-3% of total execution time
// (Sections 1, 5.2). This benchmark isolates that per-row cost.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "exec/check.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace popdb {
namespace {

constexpr int64_t kRows = 100000;

const Table& TestTable() {
  static Table* table = [] {
    auto* t = new Table("t", Schema({{"a", ValueType::kInt},
                                     {"b", ValueType::kInt}}));
    Rng rng(3);
    for (int64_t i = 0; i < kRows; ++i) {
      t->AppendRow({Value::Int(i), Value::Int(rng.UniformInt(0, 999))});
    }
    return t;
  }();
  return *table;
}

int64_t Drain(Operator* op) {
  ExecContext ctx;
  int64_t rows = 0;
  ExecStatus s = op->Open(&ctx);
  POPDB_DCHECK(s == ExecStatus::kOk);
  Row row;
  while ((s = op->Next(&ctx, &row)) == ExecStatus::kRow) ++rows;
  op->Close(&ctx);
  POPDB_DCHECK(s == ExecStatus::kEof);
  return rows;
}

void BM_PlainScan(benchmark::State& state) {
  for (auto _ : state) {
    TableScanOp scan(&TestTable(), 0, {});
    benchmark::DoNotOptimize(Drain(&scan));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PlainScan);

void BM_ScanWithStreamingCheck(benchmark::State& state) {
  CheckSpec spec;
  spec.enabled = true;
  spec.lo = 0;
  spec.hi = 1e18;  // Never fires: measures pure counting overhead.
  spec.flavor = CheckFlavor::kEagerDeferredComp;
  for (auto _ : state) {
    CheckOp check(std::make_unique<TableScanOp>(&TestTable(), 0,
                                                std::vector<ResolvedPredicate>{}),
                  spec);
    benchmark::DoNotOptimize(Drain(&check));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanWithStreamingCheck);

void BM_ScanWithLazyCheckOverTemp(benchmark::State& state) {
  CheckSpec spec;
  spec.enabled = true;
  spec.lo = 0;
  spec.hi = 1e18;
  spec.flavor = CheckFlavor::kLazyEagerMat;
  for (auto _ : state) {
    auto temp = std::make_unique<TempOp>(
        std::make_unique<TableScanOp>(&TestTable(), 0,
                                      std::vector<ResolvedPredicate>{}),
        TableBit(0));
    CheckMaterializedOp check(std::move(temp), spec);
    benchmark::DoNotOptimize(Drain(&check));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanWithLazyCheckOverTemp);

}  // namespace
}  // namespace popdb

BENCHMARK_MAIN();
