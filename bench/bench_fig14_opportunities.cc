// Reproduces Figure 14: opportunities for the various kinds of
// checkpoints. Checkpoints of every low/medium-risk flavor (LC above
// SORT/TEMP, LC on hash-join builds, LCEM, ECB) are placed in observation
// mode, the queries are executed to completion, and each checkpoint
// reports at which fraction of total query work it was evaluated. ECB
// checkpoints report a [first-row .. decision] window (the dashed ranges
// in the paper's scatter plot).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

const char* SiteName(const CheckEvent& ev) {
  switch (ev.site) {
    case CheckSite::kHsjnBuild:
      return "LC (above HJ build)";
    case CheckSite::kMatPoint:
      return "LC (above TMP/SORT)";
    case CheckSite::kNljnOuter:
      return ev.flavor == CheckFlavor::kEagerBuffered ? "ECB" : "LCEM";
    case CheckSite::kPipeline:
      return "EC (pipeline)";
  }
  return "?";
}

void Run() {
  bench::PrintHeader("Checkpoint opportunities during query execution",
                     "Figure 14 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  TablePrinter tp({"query", "checkpoint", "frac_first", "frac_eval",
                   "rows_seen"});

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("fig14_opportunities");
  json.Key("config").BeginObject().Key("tpch_scale").Double(gen.scale)
      .Key("observe_only").Bool(true).EndObject();
  json.Key("points").BeginArray();

  for (int qnum : {2, 3, 4, 5, 7, 8, 11, 18}) {
    const QuerySpec query = tpch::MakeQuery(qnum);
    OptimizerConfig opt;
    PopConfig pop;
    pop.enable_lc = true;
    pop.enable_lcem = true;
    pop.enable_ecb = true;
    pop.observe_only = true;
    pop.require_narrowed_range = false;  // Observe every placement site.

    ProgressiveExecutor exec(catalog, opt, pop);
    ExecutionStats stats;
    Result<std::vector<Row>> rows = exec.Execute(query, &stats);
    POPDB_DCHECK(rows.ok());

    const double total = static_cast<double>(stats.total_work);
    for (const CheckEvent& ev : stats.check_events) {
      const double f_first =
          ev.work_first < 0 ? -1.0 : static_cast<double>(ev.work_first) / total;
      const double f_eval = static_cast<double>(ev.work_eval) / total;
      tp.AddRow({StrFormat("Q%d", qnum), SiteName(ev),
                 f_first < 0 ? std::string("-") : StrFormat("%.3f", f_first),
                 StrFormat("%.3f", f_eval),
                 StrFormat("%lld", static_cast<long long>(ev.count))});
      json.BeginObject()
          .Key("query")
          .String(StrFormat("Q%d", qnum))
          .Key("checkpoint")
          .String(SiteName(ev));
      if (f_first < 0) {
        json.Key("frac_first").Null();
      } else {
        json.Key("frac_first").Double(f_first);
      }
      json.Key("frac_eval")
          .Double(f_eval)
          .Key("rows_seen")
          .Int(ev.count)
          .EndObject();
    }
  }
  json.EndArray().EndObject();
  bench::WriteBenchJson("fig14_opportunities", json.str());
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\n'frac_eval' is the fraction of total query work completed when the\n"
      "checkpoint made its decision (the y-axis of the paper's scatter\n"
      "plot); ECB rows additionally show the fraction at which buffering\n"
      "began ('frac_first') — the dashed opportunity windows.\n");
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
