// Reproduces Table 1: placement, risk and opportunity of the five
// checkpoint flavors (LC, LCEM, ECB, ECWC, ECDC), measured instead of
// asserted. Each flavor runs alone on two workloads:
//   - a correlated-predicate aggregation query (DMV) whose cardinality is
//     underestimated ~50x, and
//   - a pipelined SPJ query (no aggregation), where ECDC can apply.
// For each flavor we report how many checkpoints placement produced
// (opportunity), the overhead of a run where no re-optimization triggers
// (risk, normalized to the plain run), and the effect of letting the
// checks fire (work with POP vs static).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "dmv/dmv_gen.h"
#include "dmv/dmv_queries.h"

namespace popdb {
namespace {

/// Correlated aggregation query (non-pipelined).
QuerySpec MakeAggQuery() {
  QuerySpec q("flavors_agg");
  const int car = q.AddTable("car");
  const int owner = q.AddTable("owner");
  const int reg = q.AddTable("registration");
  q.AddJoin({car, dmv::Car::kOwnerId}, {owner, dmv::Owner::kId});
  q.AddJoin({reg, dmv::Registration::kCarId}, {car, dmv::Car::kId});
  const int64_t model = 555;
  q.AddPred({car, dmv::Car::kMake}, PredKind::kEq,
            Value::Int(model / dmv::kModelsPerMake));
  q.AddPred({car, dmv::Car::kModel}, PredKind::kEq, Value::Int(model));
  q.AddPred({car, dmv::Car::kWeight}, PredKind::kEq,
            Value::Int(model % dmv::kNumWeights));
  q.AddGroupBy({owner, dmv::Owner::kState});
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// Correlated SPJ query (pipelined; ECDC-eligible).
QuerySpec MakeSpjQuery() {
  QuerySpec q("flavors_spj");
  const int car = q.AddTable("car");
  const int owner = q.AddTable("owner");
  const int reg = q.AddTable("registration");
  q.AddJoin({car, dmv::Car::kOwnerId}, {owner, dmv::Owner::kId});
  q.AddJoin({reg, dmv::Registration::kCarId}, {car, dmv::Car::kId});
  const int64_t model = 321;
  q.AddPred({car, dmv::Car::kMake}, PredKind::kEq,
            Value::Int(model / dmv::kModelsPerMake));
  q.AddPred({car, dmv::Car::kModel}, PredKind::kEq, Value::Int(model));
  q.AddPred({car, dmv::Car::kColor}, PredKind::kEq,
            Value::Int((model * 7) % dmv::kNumColors));
  q.AddProjection({owner, dmv::Owner::kName});
  q.AddProjection({reg, dmv::Registration::kYear});
  return q;
}

PopConfig FlavorConfig(int flavor) {
  PopConfig pop;
  pop.enable_lc = flavor == 0;
  pop.enable_lcem = flavor == 1;
  pop.enable_ecb = flavor == 2;
  pop.enable_ecwc = flavor == 3;
  pop.enable_ecdc = flavor == 4;
  return pop;
}

const char* kFlavorNames[5] = {"LC", "LCEM", "ECB", "ECWC", "ECDC"};

void RunWorkload(const char* label, const QuerySpec& query,
                 const Catalog& catalog, TablePrinter* tp) {
  ProgressiveExecutor plain(catalog, OptimizerConfig{}, PopConfig{});
  ExecutionStats base;
  Result<std::vector<Row>> base_rows = plain.ExecuteStatic(query, &base);
  POPDB_DCHECK(base_rows.ok());

  for (int flavor = 0; flavor < 5; ++flavor) {
    // Risk: run with checkpoints that never fire (observation mode).
    PopConfig observe = FlavorConfig(flavor);
    observe.observe_only = true;
    ProgressiveExecutor obs_exec(catalog, OptimizerConfig{}, observe);
    ExecutionStats obs;
    Result<std::vector<Row>> obs_rows = obs_exec.Execute(query, &obs);
    POPDB_DCHECK(obs_rows.ok());
    POPDB_DCHECK(obs_rows.value().size() == base_rows.value().size());

    // Opportunity/benefit: run with the checks armed.
    ProgressiveExecutor pop_exec(catalog, OptimizerConfig{},
                                 FlavorConfig(flavor));
    ExecutionStats pop;
    Result<std::vector<Row>> pop_rows = pop_exec.Execute(query, &pop);
    POPDB_DCHECK(pop_rows.ok());
    POPDB_DCHECK(pop_rows.value().size() == base_rows.value().size());

    const int placed = obs.attempts.empty() ? 0 : obs.attempts[0].checks.total();
    tp->AddRow(
        {label, kFlavorNames[flavor], StrFormat("%d", placed),
         StrFormat("%.3f", static_cast<double>(obs.total_work) /
                               static_cast<double>(base.total_work)),
         StrFormat("%d", pop.reopts),
         StrFormat("%.2f", static_cast<double>(base.total_work) /
                               static_cast<double>(
                                   std::max<int64_t>(1, pop.total_work)))});
  }
}

void Run() {
  bench::PrintHeader(
      "Checkpoint flavors: placement opportunity, risk and benefit",
      "Table 1 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  dmv::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_DMV_SCALE", gen.scale);
  POPDB_DCHECK(dmv::BuildCatalog(gen, &catalog).ok());

  TablePrinter tp({"workload", "flavor", "checks_placed", "no_reopt_overhead",
                   "reopts", "speedup_vs_static"});
  RunWorkload("agg (non-pipelined)", MakeAggQuery(), catalog, &tp);
  RunWorkload("SPJ (pipelined)", MakeSpjQuery(), catalog, &tp);
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\nReading guide (matches Table 1): LC is nearly free but only\n"
      "applies at materialization points; LCEM adds a small TEMP overhead\n"
      "but guards NLJN outers; ECB reacts before materialization\n"
      "completes; ECWC needs a materialization above it; ECDC applies in\n"
      "pipelined SPJ plans and compensates returned rows with an\n"
      "anti-join.\n");
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
