// Re-optimization latency: incremental DP (persistent memo, invalidate
// only the entries whose table set contains the changed edge) vs. full
// from-scratch enumeration, on the join-heavy TPC-H paper queries
// (Q5/Q7/Q9 six-way joins, Q8 eight-way).
//
// Each round perturbs the observed cardinality of one plan edge — the
// event a firing CHECK delivers — and re-optimizes both ways under the
// identical feedback. Scenarios vary the perturbed edge's depth:
//   leaf -- a base-table edge (dirties every superset of one table)
//   mid  -- a mid-plan join edge (about half the tables)
//   deep -- the edge under the topmost join (all but one table), the
//           classic late-firing lazy checkpoint.
// The headline gate is the corpus-aggregate deep-edge speedup (total full
// DP time over total incremental time): it must reach 5x. Per-query deep
// speedups vary with join-graph shape — an n-table deep perturbation
// dirties only the two largest sets, so the ratio grows with n (the
// eight-way Q8 re-optimizes ~9x faster, the six-way snowflakes ~4x) —
// and are all reported, including the worst one.
// Every round also gates on plan identity: the incremental plan's digest
// must equal the full-DP plan's, otherwise the run (and the process)
// fails.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

/// Join-node table sets of `node`, largest first.
void CollectJoinSets(const PlanNode& node, std::vector<TableSet>* out) {
  if ((node.kind == PlanOpKind::kNljn || node.kind == PlanOpKind::kHsjn ||
       node.kind == PlanOpKind::kMgjn) &&
      node.set != 0) {
    out->push_back(node.set);
  }
  for (const auto& c : node.children) CollectJoinSets(*c, out);
}

struct ScenarioResult {
  std::string name;
  int edge_tables = 0;
  int rounds = 0;
  double full_ms = 0.0;
  double incremental_ms = 0.0;
  int64_t reused = 0;
  int64_t invalidated = 0;
  bool identical_plans = true;

  double Speedup() const {
    return incremental_ms > 0 ? full_ms / incremental_ms : 0.0;
  }
};

struct QueryResult {
  std::string name;
  int tables = 0;
  std::vector<ScenarioResult> scenarios;
};

/// Picks the perturbed edge for a scenario from the current best plan:
/// the largest proper join edge ("deep"), the join edge closest to half
/// the query's tables ("mid"), or the first base table ("leaf").
TableSet PickEdge(const PlanNode& root, const QuerySpec& q,
                  const std::string& scenario) {
  if (scenario == "leaf") {
    const TableSet all = q.AllTables();
    return all & ~(all - 1);
  }
  std::vector<TableSet> sets;
  CollectJoinSets(root, &sets);
  const int n = PopCount(q.AllTables());
  TableSet best = q.AllTables() & ~(q.AllTables() - 1);
  for (const TableSet s : sets) {
    if (PopCount(s) >= n) continue;  // Root join covers everything.
    if (scenario == "deep") {
      if (PopCount(s) > PopCount(best)) best = s;
    } else {  // mid
      const int want = n / 2;
      if (std::abs(PopCount(s) - want) < std::abs(PopCount(best) - want)) {
        best = s;
      }
    }
  }
  return best;
}

ScenarioResult RunScenario(const Catalog& catalog, const QuerySpec& q,
                           const std::string& scenario, int rounds) {
  Optimizer opt(catalog, OptimizerConfig{});
  IncrementalMemo memo;
  FeedbackMap fb;
  Rng rng(0x5EED + static_cast<uint64_t>(scenario.size()));

  ScenarioResult r;
  r.name = scenario;
  r.rounds = rounds;

  // Warm the memo with the initial optimization (the attempt-0 work POP
  // always pays) and derive the perturbed edge from its plan.
  Result<OptimizedPlan> warm = opt.Optimize(q, &fb, nullptr, nullptr, &memo);
  if (!warm.ok()) {
    std::fprintf(stderr, "ERROR: warm-up optimize failed: %s\n",
                 warm.status().ToString().c_str());
    r.identical_plans = false;
    return r;
  }
  const TableSet edge = PickEdge(*warm.value().root, q, scenario);
  r.edge_tables = PopCount(edge);

  for (int round = 0; round < rounds; ++round) {
    // The CHECK-violation model: the edge's observed cardinality lands
    // far from its estimate (2x..100x), everything else is untouched.
    fb[edge].exact = 1.0 + rng.UniformDouble() * 10000.0;

    const double t0 = NowMs();
    Result<OptimizedPlan> inc = opt.Optimize(q, &fb, nullptr, nullptr, &memo);
    const double t1 = NowMs();
    Result<OptimizedPlan> full = opt.Optimize(q, &fb);
    const double t2 = NowMs();
    if (!inc.ok() || !full.ok()) {
      std::fprintf(stderr, "ERROR: optimize failed in round %d\n", round);
      r.identical_plans = false;
      return r;
    }
    r.incremental_ms += t1 - t0;
    r.full_ms += t2 - t1;
    r.reused += inc.value().memo_reused;
    r.invalidated += inc.value().memo_invalidated;
    if (PlanDigest(*inc.value().root) != PlanDigest(*full.value().root)) {
      std::fprintf(stderr,
                   "ERROR: plan identity violated (%s, round %d):\n"
                   "incremental:\n%s\nfull DP:\n%s\n",
                   scenario.c_str(), round,
                   inc.value().root->ToString().c_str(),
                   full.value().root->ToString().c_str());
      r.identical_plans = false;
      return r;
    }
  }
  return r;
}

}  // namespace

int BenchMain() {
  bench::PrintHeader(
      "Incremental re-optimization latency: persistent DP memo vs. full "
      "enumeration",
      "the re-optimization step of the paper's Figure 3 loop");

  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", 0.002);
  if (!tpch::BuildCatalog(gen, &catalog).ok()) {
    std::fprintf(stderr, "ERROR: catalog build failed\n");
    return 1;
  }

  const int rounds = 200;
  std::vector<QueryResult> results;
  bool all_identical = true;
  double deep_speedup_min = 0.0;
  double deep_full_ms = 0.0;
  double deep_incremental_ms = 0.0;
  for (const int qnum : {5, 7, 8, 9}) {
    QueryResult qr;
    qr.name = "q" + std::to_string(qnum);
    const QuerySpec q = tpch::MakeQuery(qnum);
    qr.tables = PopCount(q.AllTables());
    for (const char* scenario : {"leaf", "mid", "deep"}) {
      ScenarioResult r = RunScenario(catalog, q, scenario, rounds);
      all_identical = all_identical && r.identical_plans;
      if (r.name == "deep") {
        deep_full_ms += r.full_ms;
        deep_incremental_ms += r.incremental_ms;
        if (deep_speedup_min == 0.0 || r.Speedup() < deep_speedup_min) {
          deep_speedup_min = r.Speedup();
        }
      }
      qr.scenarios.push_back(std::move(r));
    }
    results.push_back(std::move(qr));
  }
  const double deep_speedup =
      deep_incremental_ms > 0 ? deep_full_ms / deep_incremental_ms : 0.0;
  const double kDeepTarget = 5.0;

  TablePrinter table({"query", "edge", "edge tables", "full ms",
                      "incremental ms", "speedup", "reused", "invalidated"});
  for (const QueryResult& qr : results) {
    for (const ScenarioResult& r : qr.scenarios) {
      table.AddRow({qr.name, r.name, StrFormat("%d", r.edge_tables),
                    StrFormat("%.2f", r.full_ms),
                    StrFormat("%.2f", r.incremental_ms),
                    StrFormat("%.1fx", r.Speedup()),
                    StrFormat("%lld", static_cast<long long>(r.reused)),
                    StrFormat("%lld", static_cast<long long>(r.invalidated))});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nplan identity gate: %s; corpus deep-edge speedup %.1fx "
      "(target >= %.0fx, worst single query %.1fx)\n",
      all_identical ? "every round identical" : "VIOLATED", deep_speedup,
      kDeepTarget, deep_speedup_min);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("reopt_latency");
  w.Key("tpch_scale").Double(gen.scale);
  w.Key("rounds_per_scenario").Int(rounds);
  w.Key("identical_plans").Bool(all_identical);
  w.Key("deep_edge_speedup").Double(deep_speedup);
  w.Key("deep_edge_speedup_min").Double(deep_speedup_min);
  w.Key("deep_edge_speedup_target").Double(kDeepTarget);
  w.Key("queries").BeginArray();
  for (const QueryResult& qr : results) {
    w.BeginObject();
    w.Key("query").String(qr.name);
    w.Key("tables").Int(qr.tables);
    w.Key("scenarios").BeginArray();
    for (const ScenarioResult& r : qr.scenarios) {
      w.BeginObject();
      w.Key("edge").String(r.name);
      w.Key("edge_tables").Int(r.edge_tables);
      w.Key("full_ms").Double(r.full_ms);
      w.Key("incremental_ms").Double(r.incremental_ms);
      w.Key("speedup").Double(r.Speedup());
      w.Key("memo_reused").Int(r.reused);
      w.Key("memo_invalidated").Int(r.invalidated);
      w.Key("identical_plans").Bool(r.identical_plans);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  bench::WriteBenchJson("reopt_latency", w.str());
  return all_identical && deep_speedup >= kDeepTarget ? 0 : 1;
}

}  // namespace popdb

int main() { return popdb::BenchMain(); }
