// Mixed OLTP/OLAP workload: TPC-C-style new-order/payment writer threads
// run through the SQL front end and the QueryService write path while
// analytical reader threads hammer the orders/items join corpus. The
// writers deliberately drift the data distribution into regions the
// statistics believe empty, so the analytical side exercises the full POP
// loop under churn: CHECK firings and re-optimizations while statistics
// are stale, threshold-gated incremental stats folds (stats-version
// bumps), plan-cache evictions on each fold, and cache-hit recovery once
// the writers stop (the settle phase).
//
// Reported per phase (churn / settle): analytical throughput, re-opt and
// CHECK-firing counts, per-query peak Q-error, plan-cache hit rate, write
// throughput by statement kind, and stats-version bumps. Results land in
// BENCH_mixed_workload.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/explain.h"
#include "runtime/query_service.h"
#include "sql/binder.h"
#include "txn/write_manager.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --------------------------------------------------------------- catalog.

/// The orders/items corpus of the toy server: o_subclass is uniform over
/// [0, 199] and correlated with o_class (= o_subclass / 10), so static
/// estimates on the join corpus are already fragile before any write.
void BuildCorpus(Catalog* catalog) {
  Rng rng(5);
  Table orders("orders", Schema({{"o_id", ValueType::kInt},
                                 {"o_class", ValueType::kInt},
                                 {"o_subclass", ValueType::kInt}}));
  for (int64_t i = 0; i < 4000; ++i) {
    const int64_t sub = rng.UniformInt(0, 199);
    orders.AppendRow({Value::Int(i), Value::Int(sub / 10), Value::Int(sub)});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(orders)).ok());
  Table items("items", Schema({{"i_order", ValueType::kInt},
                               {"i_qty", ValueType::kInt}}));
  for (int64_t i = 0; i < 12000; ++i) {
    items.AppendRow({Value::Int(rng.UniformInt(0, 3999)),
                     Value::Int(rng.UniformInt(1, 20))});
  }
  POPDB_DCHECK(catalog->AddTable(std::move(items)).ok());
  catalog->AnalyzeAll();
}

// ------------------------------------------------------------- workload.

/// One analytical query observation.
struct QueryObs {
  double ms = 0.0;
  int reopts = 0;
  int64_t checks_fired = 0;
  double peak_qerror = -1.0;
  std::string plan_cache;
};

struct PhaseResult {
  std::string name;
  double wall_ms = 0.0;
  std::vector<QueryObs> queries;
  // Writers (zero in the settle phase).
  int64_t new_orders = 0;
  int64_t payments = 0;
  int64_t rows_written = 0;
  int64_t stats_version_bumps = 0;
  // Plan-cache deltas over the phase.
  PlanCache::Stats cache;

  int64_t reopts() const {
    int64_t n = 0;
    for (const QueryObs& q : queries) n += q.reopts;
    return n;
  }
  int64_t checks_fired() const {
    int64_t n = 0;
    for (const QueryObs& q : queries) n += q.checks_fired;
    return n;
  }
  double qerror_max() const {
    double m = 0.0;
    for (const QueryObs& q : queries) m = std::max(m, q.peak_qerror);
    return m;
  }
  double qerror_mean() const {
    double sum = 0.0;
    int64_t n = 0;
    for (const QueryObs& q : queries) {
      if (q.peak_qerror >= 0) {
        sum += q.peak_qerror;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }
  double cache_hit_rate() const {
    return cache.lookups == 0
               ? 0.0
               : static_cast<double>(cache.hits + cache.validity_hits) /
                     static_cast<double>(cache.lookups);
  }
};

PlanCache::Stats DiffStats(const PlanCache::Stats& a,
                           const PlanCache::Stats& b) {
  PlanCache::Stats d;
  d.lookups = b.lookups - a.lookups;
  d.hits = b.hits - a.hits;
  d.validity_hits = b.validity_hits - a.validity_hits;
  d.misses_cold = b.misses_cold - a.misses_cold;
  d.misses_stale = b.misses_stale - a.misses_stale;
  d.misses_epoch = b.misses_epoch - a.misses_epoch;
  d.misses_validity = b.misses_validity - a.misses_validity;
  d.evictions_stale_stats = b.evictions_stale_stats - a.evictions_stale_stats;
  return d;
}

/// The repeat-submission join: stable region, exercises the plan cache.
QuerySpec RepeatQuery() {
  QuerySpec q("oltp_mix_repeat");
  const int o = q.AddTable("orders");
  const int i = q.AddTable("items");
  q.AddJoin({o, 0}, {i, 0});
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(5));
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// The drift probe: scans a subclass region that is empty until the
/// writers populate it. Probing the region once while it is still empty
/// makes the shared feedback store learn "this region yields ~0 rows";
/// the post-churn replan then estimates the scan as ~empty and guards it
/// with a tight validity range — the believed-empty-region trap that
/// makes checkpoints fire under write churn.
QuerySpec DriftQuery(int region) {
  QuerySpec q("oltp_mix_drift");
  const int o = q.AddTable("orders");
  const int i = q.AddTable("items");
  q.AddJoin({o, 0}, {i, 0});
  // A literal (not a parameter marker): the feedback store keys learned
  // cardinalities by the bound literal, so each region is its own lesson.
  q.AddPred({o, 2}, PredKind::kEq, Value::Int(region));
  q.AddAgg(AggFunc::kCount);
  return q;
}

/// Runs one analytical query and records the observation.
void RunAnalytical(QueryService* service, QuerySpec query,
                   std::vector<QueryObs>* out, std::mutex* mu) {
  QueryObs obs;
  const std::string query_name = query.name();
  const QueryResult r = service->ExecuteSync(std::move(query));
  if (!r.status.ok()) {
    std::fprintf(stderr, "WARN: analytical query failed: %s\n",
                 r.status.message().c_str());
    return;
  }
  obs.ms = r.trace.total_ms;
  obs.reopts = r.trace.reopts;
  obs.checks_fired = r.trace.checks_fired;
  obs.plan_cache = r.trace.plan_cache;
  for (const TraceAttempt& a : r.trace.attempts) {
    if (a.has_profile) {
      obs.peak_qerror = std::max(obs.peak_qerror, PeakProfileQError(a.profile));
    }
  }
  if (std::getenv("POPDB_DEBUG_DRIFT") != nullptr &&
      query_name == "oltp_mix_drift") {
    static std::mutex dbg_mu;
    std::lock_guard<std::mutex> dbg_lock(dbg_mu);
    std::fprintf(stderr,
                 "DBG query rows=%lld reopts=%d checks=%lld cache=%s "
                 "attempts=%zu\n",
                 r.rows.empty() ? -1LL
                               : static_cast<long long>(r.rows[0][0].AsInt()),
                 obs.reopts, static_cast<long long>(obs.checks_fired),
                 obs.plan_cache.c_str(), r.trace.attempts.size());
    for (const TraceAttempt& a : r.trace.attempts) {
      if (a.has_profile) {
        std::fprintf(stderr, "%s", RenderProfileText(a.profile).c_str());
      }
    }
  }
  std::lock_guard<std::mutex> lock(*mu);
  out->push_back(std::move(obs));
}

/// One writer thread: alternates TPC-C-style new-order transactions
/// (INSERT an order header into a drifting subclass region plus its order
/// lines) with payments (delta UPDATE on the order lines), all through
/// the SQL front end and QueryService::ExecuteWrite.
/// Transactions (= order-header rows) per drift region. 50 rows is well
/// past the believed-empty plan's validity range but far below the stats
/// fold threshold (10% of 4000), so the CHECK fires while stats are stale.
constexpr int kTxnsPerRegion = 50;

struct WriterTotals {
  std::atomic<int64_t> new_orders{0};
  std::atomic<int64_t> payments{0};
  std::atomic<int64_t> rows{0};
  std::atomic<int64_t> errors{0};
};

void WriterThread(const Catalog* catalog, QueryService* service, int index,
                  int transactions, int drift_base, WriterTotals* totals,
                  std::atomic<int>* progress) {
  Rng rng(1000 + index);
  int64_t next_id = 1000000 + static_cast<int64_t>(index) * 1000000;
  for (int t = 0; t < transactions; ++t) {
    // The drift region advances every kTxnsPerRegion transactions: each
    // region starts out believed-empty, fills up, and the next one opens.
    const int region = drift_base + (t / kTxnsPerRegion);
    const int64_t id = next_id++;
    {
      std::string sql = "INSERT INTO orders VALUES (" + std::to_string(id) +
                        ", 9, " + std::to_string(region) + ")";
      Result<sql::BoundStatement> b = sql::ParseSqlStatement(*catalog, sql);
      POPDB_DCHECK(b.ok());
      const WriteQueryResult w = service->ExecuteWrite(b.value().write);
      if (!w.status.ok()) {
        totals->errors.fetch_add(1);
        continue;
      }
      totals->rows.fetch_add(w.affected_rows);
    }
    {
      // Three order lines per new order, bound through '?' markers like a
      // prepared statement.
      Result<sql::BoundStatement> b = sql::ParseSqlStatement(
          *catalog, "INSERT INTO items VALUES (?, ?), (?, ?), (?, ?)",
          {Value::Int(id), Value::Int(rng.UniformInt(1, 20)), Value::Int(id),
           Value::Int(rng.UniformInt(1, 20)), Value::Int(id),
           Value::Int(rng.UniformInt(1, 20))});
      POPDB_DCHECK(b.ok());
      const WriteQueryResult w = service->ExecuteWrite(b.value().write);
      if (!w.status.ok()) {
        totals->errors.fetch_add(1);
        continue;
      }
      totals->rows.fetch_add(w.affected_rows);
      totals->new_orders.fetch_add(1);
    }
    {
      // Payment: bump the quantity on a previously inserted order's lines.
      const int64_t target =
          t == 0 ? id : id - rng.UniformInt(0, std::min<int64_t>(t, 20));
      Result<sql::BoundStatement> b = sql::ParseSqlStatement(
          *catalog, "UPDATE items SET i_qty = i_qty + 1 WHERE i_order = ?",
          {Value::Int(target)});
      POPDB_DCHECK(b.ok());
      const WriteQueryResult w = service->ExecuteWrite(b.value().write);
      if (!w.status.ok()) {
        totals->errors.fetch_add(1);
        continue;
      }
      totals->rows.fetch_add(w.affected_rows);
      totals->payments.fetch_add(1);
    }
    progress->store(t + 1, std::memory_order_release);
  }
}

}  // namespace

int Run() {
  bench::PrintHeader(
      "Mixed OLTP/OLAP workload: writes + progressive analytics",
      "Section 6 setting under continuous data churn");

  Catalog catalog;
  BuildCorpus(&catalog);

  ServiceConfig config;
  config.num_workers = 4;
  txn::WriteManager writes(&catalog);
  QueryService service(catalog, config);
  service.AttachWriteManager(&writes);

  const int kWriters = 2;
  const int kReaders = 2;
  const int kTransactions = 250;    // Per writer.
  const int kRegions = kTransactions / kTxnsPerRegion;  // Per writer.
  const int kChurnQueries = 40;     // Per reader, churn phase.
  const int kSettleQueries = 30;    // Per reader, settle phase.

  std::vector<QueryObs> churn_obs;
  std::vector<QueryObs> settle_obs;
  std::mutex obs_mu;

  // ------------------------------------------------- phase 1: churn.
  PhaseResult churn;
  churn.name = "churn";
  const PlanCache::Stats cache0 = service.plan_cache()->stats();
  const int64_t version0 = catalog.stats_version();
  const double t0 = WallMs();

  // Seed the believed-empty belief: probe every drift region once while
  // it is still empty, so the shared feedback store learns "~0 rows" for
  // each region literal. The post-fill probe below then replans with that
  // learned cardinality (its feedback digest moved), walks into the
  // misestimate, and the guarding CHECK fires — the same sequence the
  // toy-server smoke validates end to end.
  for (int w = 0; w < kWriters; ++w) {
    for (int reg = 0; reg < kRegions; ++reg) {
      RunAnalytical(&service, DriftQuery(220 + w * 50 + reg), &churn_obs,
                    &obs_mu);
    }
  }

  WriterTotals totals;
  std::vector<std::unique_ptr<std::atomic<int>>> progress;
  for (int w = 0; w < kWriters; ++w) {
    progress.push_back(std::make_unique<std::atomic<int>>(0));
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back(WriterThread, &catalog, &service, w, kTransactions,
                         /*drift_base=*/220 + w * 50, &totals,
                         progress[static_cast<size_t>(w)].get());
  }
  std::atomic<bool> writers_done{false};
  for (int r = 0; r < kReaders; ++r) {
    // Reader r shadows writer r: each drift region is re-probed exactly
    // once, right after its writer finished filling it. That probe plans
    // against the learned "empty" cardinality from the seeding pass above
    // while the region now holds kTxnsPerRegion rows — stale knowledge the
    // CHECK must catch.
    threads.emplace_back([&, r] {
      int probed_regions = 0;
      for (int i = 0; i < kChurnQueries || !writers_done.load(); ++i) {
        if (i >= kChurnQueries * 4) break;  // Safety cap.
        const int completed =
            progress[static_cast<size_t>(r)]->load(std::memory_order_acquire) /
            kTxnsPerRegion;
        if (probed_regions < completed) {
          const int region = 220 + r * 50 + probed_regions;
          ++probed_regions;
          RunAnalytical(&service, DriftQuery(region), &churn_obs, &obs_mu);
        } else {
          RunAnalytical(&service, RepeatQuery(), &churn_obs, &obs_mu);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  writers_done.store(true);
  for (size_t t = static_cast<size_t>(kWriters); t < threads.size(); ++t) {
    threads[t].join();
  }

  churn.wall_ms = WallMs() - t0;
  churn.queries = churn_obs;
  churn.new_orders = totals.new_orders.load();
  churn.payments = totals.payments.load();
  churn.rows_written = totals.rows.load();
  churn.stats_version_bumps = catalog.stats_version() - version0;
  churn.cache = DiffStats(cache0, service.plan_cache()->stats());

  // ------------------------------------------------ phase 2: settle.
  PhaseResult settle;
  settle.name = "settle";
  const PlanCache::Stats cache1 = service.plan_cache()->stats();
  const int64_t version1 = catalog.stats_version();
  const double t1 = WallMs();
  {
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        for (int i = 0; i < kSettleQueries; ++i) {
          RunAnalytical(&service, RepeatQuery(), &settle_obs, &obs_mu);
        }
      });
    }
    for (std::thread& t : readers) t.join();
  }
  settle.wall_ms = WallMs() - t1;
  settle.queries = settle_obs;
  settle.stats_version_bumps = catalog.stats_version() - version1;
  settle.cache = DiffStats(cache1, service.plan_cache()->stats());

  service.Shutdown();

  // ------------------------------------------------------- reporting.
  TablePrinter table({"phase", "queries", "reopts", "checks_fired",
                      "qerr_mean", "qerr_max", "cache_hits", "hit_rate",
                      "stale_evicts", "writes", "stats_bumps", "wall_ms"});
  for (const PhaseResult* p : {&churn, &settle}) {
    table.AddRow(
        {p->name, std::to_string(p->queries.size()),
         std::to_string(p->reopts()), std::to_string(p->checks_fired()),
         StrFormat("%.2f", p->qerror_mean()),
         StrFormat("%.2f", p->qerror_max()),
         std::to_string(p->cache.hits + p->cache.validity_hits),
         StrFormat("%.2f", p->cache_hit_rate()),
         std::to_string(p->cache.evictions_stale_stats),
         std::to_string(p->new_orders + p->payments),
         std::to_string(p->stats_version_bumps),
         StrFormat("%.1f", p->wall_ms)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "writer errors: %lld; write rows applied: %lld; stats folds: %lld\n",
      static_cast<long long>(totals.errors.load()),
      static_cast<long long>(churn.rows_written),
      static_cast<long long>(writes.stats_folds()));

  const bool checks_ok = churn.checks_fired() > 0;
  const bool recovery_ok = settle.cache_hit_rate() > churn.cache_hit_rate();
  std::printf("%s: CHECK firings under churn (%lld) %s\n",
              checks_ok ? "ok" : "MISS",
              static_cast<long long>(churn.checks_fired()),
              checks_ok ? "> 0" : "== 0");
  std::printf("%s: settle hit rate %.2f vs churn %.2f\n",
              recovery_ok ? "ok" : "MISS", settle.cache_hit_rate(),
              churn.cache_hit_rate());

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("mixed_workload");
  w.Key("writers").Int(kWriters);
  w.Key("readers").Int(kReaders);
  w.Key("transactions_per_writer").Int(kTransactions);
  w.Key("phases").BeginArray();
  for (const PhaseResult* p : {&churn, &settle}) {
    w.BeginObject();
    w.Key("phase").String(p->name);
    w.Key("wall_ms").Double(p->wall_ms);
    w.Key("analytical_queries").Int(static_cast<int64_t>(p->queries.size()));
    w.Key("reopts").Int(p->reopts());
    w.Key("checks_fired").Int(p->checks_fired());
    w.Key("qerror_mean").Double(p->qerror_mean());
    w.Key("qerror_max").Double(p->qerror_max());
    w.Key("plan_cache")
        .BeginObject()
        .Key("lookups").Int(p->cache.lookups)
        .Key("hits").Int(p->cache.hits + p->cache.validity_hits)
        .Key("hit_rate").Double(p->cache_hit_rate())
        .Key("misses_epoch").Int(p->cache.misses_epoch)
        .Key("evictions_stale_stats").Int(p->cache.evictions_stale_stats)
        .EndObject();
    w.Key("writes")
        .BeginObject()
        .Key("new_orders").Int(p->new_orders)
        .Key("payments").Int(p->payments)
        .Key("rows_written").Int(p->rows_written)
        .Key("stats_version_bumps").Int(p->stats_version_bumps)
        .EndObject();
    w.Key("queries").BeginArray();
    for (const QueryObs& q : p->queries) {
      w.BeginObject();
      w.Key("ms").Double(q.ms);
      w.Key("reopts").Int(q.reopts);
      w.Key("checks_fired").Int(q.checks_fired);
      if (q.peak_qerror >= 0) w.Key("peak_qerror").Double(q.peak_qerror);
      w.Key("plan_cache").String(q.plan_cache);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("stats_folds").Int(writes.stats_folds());
  w.EndObject();
  bench::WriteBenchJson("mixed_workload", w.str());

  return (checks_ok && recovery_ok) ? 0 : 1;
}

}  // namespace popdb

int main() { return popdb::Run(); }
