// Reproduces Figure 12: cost of lazy-check (LC) re-optimization. Hash
// joins are disabled so the plans are full of SORT materialization points
// guarded by LC checkpoints (as in the paper's setup). Each query runs
// once without re-optimization, then once per checkpoint with a *dummy*
// re-optimization forced at that checkpoint: the estimates were accurate,
// so the re-optimizer sees confirming actuals, reuses the materialized
// intermediate results, and picks (essentially) the same plan. The paper
// reports a total overhead of only 2-3%.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

void Run() {
  bench::PrintHeader(
      "Normalized execution time with LC re-optimization (hash join "
      "disabled)",
      "Figure 12 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  OptimizerConfig opt;
  opt.methods.enable_hsjn = false;  // Force SORT/TEMP materializations.

  TablePrinter tp({"query", "checkpoint", "before_reopt", "optimize",
                   "after_reopt", "total_norm", "reopts"});

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("fig12_lc_overhead");
  json.Key("config")
      .BeginObject()
      .Key("tpch_scale")
      .Double(gen.scale)
      .Key("hash_join_enabled")
      .Bool(false)
      .EndObject();
  json.Key("points").BeginArray();

  for (int qnum : {3, 4, 5, 7, 9}) {
    const QuerySpec query = tpch::MakeQuery(qnum);

    // Baseline: no checkpoints, no re-optimization.
    ProgressiveExecutor base(catalog, opt, PopConfig{});
    ExecutionStats base_stats;
    Result<std::vector<Row>> base_rows = base.ExecuteStatic(query, &base_stats);
    POPDB_DCHECK(base_rows.ok());
    const double t_plain = static_cast<double>(base_stats.total_work);

    // Count the checkpoints the default placement produces.
    int num_checks = 0;
    {
      ProgressiveExecutor probe(catalog, opt, PopConfig{});
      probe.set_plan_hook([&num_checks](PlanNode* root, int attempt) {
        if (attempt == 0) {
          num_checks = static_cast<int>(CollectChecks(root).size());
        }
      });
      ExecutionStats st;
      POPDB_DCHECK(probe.Execute(query, &st).ok());
    }

    // Force a dummy re-optimization at each of the first two checkpoints.
    const int to_force = std::min(2, num_checks);
    for (int k = 0; k < to_force; ++k) {
      ProgressiveExecutor pop(catalog, opt, PopConfig{});
      pop.set_plan_hook([k](PlanNode* root, int attempt) {
        if (attempt != 0) return;
        std::vector<PlanNode*> checks = CollectChecks(root);
        if (k < static_cast<int>(checks.size())) {
          // An unsatisfiable range: the check fires with the (accurate)
          // actual cardinality once its materialization completes.
          checks[static_cast<size_t>(k)]->check.lo = 1e30;
          checks[static_cast<size_t>(k)]->check.hi = 2e30;
        }
      });
      ExecutionStats stats;
      Result<std::vector<Row>> rows = pop.Execute(query, &stats);
      POPDB_DCHECK(rows.ok());
      POPDB_DCHECK(rows.value().size() == base_rows.value().size());

      double before = 0, after = 0;
      double opt_ms_frac = 0;
      if (stats.attempts.size() >= 2) {
        before = static_cast<double>(stats.attempts[0].work) / t_plain;
        after = static_cast<double>(stats.attempts[1].work) / t_plain;
        // Optimization has no "work units"; report its share of wall time
        // scaled onto the same axis via the run's work/ms rate.
        const double work_per_ms =
            static_cast<double>(stats.total_work) /
            std::max(1e-3, stats.total_ms);
        opt_ms_frac = stats.attempts[1].optimize_ms * work_per_ms / t_plain;
      }
      tp.AddRow({StrFormat("Q%d", qnum),
                 StrFormat("%c", static_cast<char>('a' + k)),
                 StrFormat("%.3f", before), StrFormat("%.3f", opt_ms_frac),
                 StrFormat("%.3f", after),
                 StrFormat("%.3f",
                           static_cast<double>(stats.total_work) / t_plain),
                 StrFormat("%d", stats.reopts)});
      json.BeginObject()
          .Key("query")
          .String(StrFormat("Q%d", qnum))
          .Key("checkpoint")
          .Int(k)
          .Key("before_reopt")
          .Double(before)
          .Key("optimize")
          .Double(opt_ms_frac)
          .Key("after_reopt")
          .Double(after)
          .Key("total_norm")
          .Double(static_cast<double>(stats.total_work) / t_plain)
          .Key("reopts")
          .Int(stats.reopts)
          .EndObject();
    }
  }
  json.EndArray().EndObject();
  bench::WriteBenchJson("fig12_lc_overhead", json.str());
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\n'before_reopt'/'after_reopt' are the work shares of the two\n"
      "execution phases, 'total_norm' the full POP run normalized to the\n"
      "run without re-optimization (paper: ~1.02-1.03).\n");
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
