// Scatter-gather speedup: scan/agg-heavy TPC-H queries through the
// sharded coordinator (2 and 4 forked shard processes on loopback) against
// the single-node progressive executor over the same data. Shards are real
// processes, so on a multi-core host the partitions scan in parallel; the
// queries return few rows, keeping the wire share of the runtime small.
//
// Emits BENCH_sharded.json: per-query single-node / 2-shard / 4-shard
// times and the resulting speedups.
//
// POPDB_SHARDED_SCALE  TPC-H scale factor (default 0.05)
// POPDB_SHARDED_REPS   measured repetitions per point (default 3, min-of)

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/shard.h"
#include "net/server.h"
#include "runtime/query_service.h"
#include "sql/binder.h"
#include "tpch/tpch_gen.h"

namespace popdb {
namespace {

double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchQuery {
  const char* label;
  const char* sql;
};

// Scan/agg-heavy: full lineitem passes and a co-partitioned join, all
// reducing to a handful of groups.
const BenchQuery kQueries[] = {
    {"q1_pricing",
     "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) "
     "FROM lineitem GROUP BY l_returnflag ORDER BY 1"},
    {"scan_filter_agg",
     "SELECT l_shipmode, COUNT(*), AVG(l_discount) FROM lineitem "
     "WHERE l_quantity > 25 GROUP BY l_shipmode ORDER BY 1"},
    {"join_agg",
     "SELECT o_orderpriority, COUNT(*), SUM(l_extendedprice) "
     "FROM orders, lineitem WHERE o_orderkey = l_orderkey "
     "AND l_quantity > 40 GROUP BY o_orderpriority ORDER BY 1"},
};

tpch::GenConfig DataConfig() {
  tpch::GenConfig config;
  config.scale = bench::EnvScale("POPDB_SHARDED_SCALE", 0.05);
  return config;
}

/// Forked shard process: rebuilds the (deterministic) TPC-H catalog,
/// carves out its partition, serves subplans until SIGTERM. Writes its
/// port to `port_fd` as one text line.
[[noreturn]] void ShardMain(int shard, int shard_count, int port_fd) {
  Catalog full;
  POPDB_DCHECK(tpch::BuildCatalog(DataConfig(), &full).ok());
  const dist::PartitionSpec spec = dist::TpchPartitionSpec();
  Result<std::vector<dist::KeyRange>> ranges =
      dist::ComputeRanges(full, spec, shard_count);
  POPDB_DCHECK(ranges.ok());
  Catalog shard_catalog;
  POPDB_DCHECK(dist::BuildShardCatalog(full, spec, ranges.value(), shard,
                                       /*histogram_buckets=*/32,
                                       &shard_catalog)
                   .ok());
  ServiceConfig service_config;
  QueryService service(shard_catalog, service_config);
  dist::ShardExecutor executor(shard_catalog);
  net::NetServerConfig net_config;
  net_config.host = "127.0.0.1";
  net_config.port = 0;
  net_config.subplan_backend = &executor;
  net::NetServer server(&service, /*traces=*/nullptr, net_config);
  POPDB_DCHECK(server.Start().ok());
  char buf[16];
  const int len = std::snprintf(buf, sizeof(buf), "%d\n", server.port());
  POPDB_DCHECK(write(port_fd, buf, static_cast<size_t>(len)) == len);
  close(port_fd);
  // Serve until the parent SIGTERMs us (default disposition: terminate).
  while (true) pause();
}

struct Cluster {
  std::vector<pid_t> pids;
  std::vector<net::Endpoint> endpoints;
};

/// Forks `n` shard processes. Must run before the parent creates threads.
Cluster SpawnCluster(int n) {
  Cluster cluster;
  for (int s = 0; s < n; ++s) {
    int fds[2];
    POPDB_DCHECK(pipe(fds) == 0);
    const pid_t pid = fork();
    POPDB_DCHECK(pid >= 0);
    if (pid == 0) {
      close(fds[0]);
      ShardMain(s, n, fds[1]);
    }
    close(fds[1]);
    cluster.pids.push_back(pid);
    std::string line;
    char c;
    while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    close(fds[0]);
    const int port = std::atoi(line.c_str());
    POPDB_DCHECK(port > 0);
    cluster.endpoints.push_back({"127.0.0.1", port});
  }
  return cluster;
}

void ReapCluster(const Cluster& cluster) {
  for (const pid_t pid : cluster.pids) kill(pid, SIGTERM);
  for (const pid_t pid : cluster.pids) waitpid(pid, nullptr, 0);
}

QuerySpec Parse(const Catalog& catalog, const std::string& sql) {
  Result<sql::BoundStatement> bound = sql::ParseSql(catalog, sql);
  POPDB_DCHECK(bound.ok());
  return bound.value().query;
}

/// Min-of-`reps` wall time for one thunk (plus one untimed warmup).
template <typename Fn>
double MeasureMs(int reps, const Fn& fn) {
  fn();
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const double t0 = WallMs();
    fn();
    best = std::min(best, WallMs() - t0);
  }
  return best;
}

void Run() {
  // Fork every shard before any thread exists in this process.
  Cluster two = SpawnCluster(2);
  Cluster four = SpawnCluster(4);

  bench::PrintHeader(
      "Sharded scatter-gather speedup vs single-node execution",
      "the distributed-POP extension of Markl et al., SIGMOD 2004");

  Catalog full;
  POPDB_DCHECK(tpch::BuildCatalog(DataConfig(), &full).ok());
  const int reps =
      static_cast<int>(bench::EnvScale("POPDB_SHARDED_REPS", 3));

  ProgressiveExecutor local(full, OptimizerConfig{}, PopConfig{});
  dist::CoordinatorConfig base_config;
  base_config.partition = dist::TpchPartitionSpec();
  base_config.shards = two.endpoints;
  dist::Coordinator coord2(full, base_config);
  base_config.shards = four.endpoints;
  dist::Coordinator coord4(full, base_config);

  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("sharded");
  json.Key("config")
      .BeginObject()
      .Key("scale")
      .Double(DataConfig().scale)
      .Key("reps")
      .Int(reps)
      .Key("lineitem_rows")
      .Int(full.GetTable("lineitem")->num_rows())
      // Speedup is bounded by free cores: shards are processes, so a
      // 1-core host serializes them and measures protocol overhead only.
      .Key("host_cpus")
      .Int(static_cast<int64_t>(sysconf(_SC_NPROCESSORS_ONLN)))
      .EndObject();
  json.Key("queries").BeginArray();

  TablePrinter tp({"query", "single_ms", "2shard_ms", "speedup2",
                   "4shard_ms", "speedup4"});
  for (const BenchQuery& bq : kQueries) {
    const QuerySpec query = Parse(full, bq.sql);
    POPDB_DCHECK(coord2.CanExecute(query));

    const double single_ms = MeasureMs(reps, [&] {
      POPDB_DCHECK(local.Execute(query).ok());
    });
    const double two_ms = MeasureMs(reps, [&] {
      CancelToken cancel;
      ExecutionStats stats;
      POPDB_DCHECK(coord2.Execute(query, &cancel, nullptr, &stats).ok());
    });
    const double four_ms = MeasureMs(reps, [&] {
      CancelToken cancel;
      ExecutionStats stats;
      POPDB_DCHECK(coord4.Execute(query, &cancel, nullptr, &stats).ok());
    });

    const double s2 = two_ms > 0 ? single_ms / two_ms : 0.0;
    const double s4 = four_ms > 0 ? single_ms / four_ms : 0.0;
    tp.AddRow({bq.label, StrFormat("%.2f", single_ms),
               StrFormat("%.2f", two_ms), StrFormat("%.2fx", s2),
               StrFormat("%.2f", four_ms), StrFormat("%.2fx", s4)});
    json.BeginObject()
        .Key("query")
        .String(bq.label)
        .Key("sql")
        .String(bq.sql)
        .Key("single_node_ms")
        .Double(single_ms)
        .Key("shards2_ms")
        .Double(two_ms)
        .Key("speedup_2_shards")
        .Double(s2)
        .Key("shards4_ms")
        .Double(four_ms)
        .Key("speedup_4_shards")
        .Double(s4)
        .EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::printf("%s\n", tp.ToString().c_str());
  std::printf(
      "shards are separate processes; speedup needs free cores "
      "(single-core hosts measure protocol overhead instead)\n");

  ReapCluster(two);
  ReapCluster(four);
  bench::WriteBenchJson("sharded", json.str());
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
