// Reproduces Figure 13: cost of lazy checking with eager materialization
// (LCEM). All join methods are enabled; a CHECK-TEMP pair is proactively
// added on the outer of every NLJN; re-optimization never triggers
// (observation mode). The overhead of the artificial materializations is
// reported normalized to the plain execution — the paper's hypothesis is
// that when the optimizer picks NLJN, the outer is small, so materializing
// it is nearly free (reported <= 1.03).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/pop.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace popdb {
namespace {

void Run() {
  bench::PrintHeader("Cost of LCEM (CHECK-TEMP on every NLJN outer)",
                     "Figure 13 of Markl et al., SIGMOD 2004");
  Catalog catalog;
  tpch::GenConfig gen;
  gen.scale = bench::EnvScale("POPDB_TPCH_SCALE", gen.scale);
  POPDB_DCHECK(tpch::BuildCatalog(gen, &catalog).ok());

  TablePrinter tp({"query", "plain_work", "lcem_work", "overhead",
                   "lcem_checks", "plain_ms", "lcem_ms"});

  for (int qnum : {3, 4, 5, 7, 9}) {
    const QuerySpec query = tpch::MakeQuery(qnum);
    OptimizerConfig opt;

    ProgressiveExecutor exec(catalog, opt, PopConfig{});
    ExecutionStats plain;
    Result<std::vector<Row>> plain_rows = exec.ExecuteStatic(query, &plain);
    POPDB_DCHECK(plain_rows.ok());

    PopConfig pop;
    pop.enable_lc = false;  // Isolate the LCEM materialization overhead.
    pop.enable_lcem = true;
    pop.require_narrowed_range = false;  // "on the outer of every NLJN".
    pop.observe_only = true;
    ProgressiveExecutor lcem_exec(catalog, opt, pop);
    ExecutionStats lcem;
    Result<std::vector<Row>> lcem_rows = lcem_exec.Execute(query, &lcem);
    POPDB_DCHECK(lcem_rows.ok());
    POPDB_DCHECK(lcem_rows.value().size() == plain_rows.value().size());

    tp.AddRow(
        {StrFormat("Q%d", qnum),
         StrFormat("%lld", static_cast<long long>(plain.total_work)),
         StrFormat("%lld", static_cast<long long>(lcem.total_work)),
         StrFormat("%.4f", static_cast<double>(lcem.total_work) /
                               static_cast<double>(plain.total_work)),
         StrFormat("%d", lcem.attempts.empty()
                             ? 0
                             : lcem.attempts[0].checks.lcem),
         StrFormat("%.1f", plain.total_ms), StrFormat("%.1f", lcem.total_ms)});
  }
  std::fputs(tp.ToString().c_str(), stdout);
  std::printf(
      "\n'overhead' is LCEM work / plain work (paper: 1.00-1.03, validating\n"
      "that NLJN outers are small enough to materialize aggressively).\n");
}

}  // namespace
}  // namespace popdb

int main() {
  popdb::Run();
  return 0;
}
