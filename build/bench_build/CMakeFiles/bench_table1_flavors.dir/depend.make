# Empty dependencies file for bench_table1_flavors.
# This may be replaced when dependencies are built.
