file(REMOVE_RECURSE
  "../bench/bench_table1_flavors"
  "../bench/bench_table1_flavors.pdb"
  "CMakeFiles/bench_table1_flavors.dir/bench_table1_flavors.cc.o"
  "CMakeFiles/bench_table1_flavors.dir/bench_table1_flavors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
