# Empty dependencies file for bench_ablation_lcem_budget.
# This may be replaced when dependencies are built.
