file(REMOVE_RECURSE
  "../bench/bench_ablation_lcem_budget"
  "../bench/bench_ablation_lcem_budget.pdb"
  "CMakeFiles/bench_ablation_lcem_budget.dir/bench_ablation_lcem_budget.cc.o"
  "CMakeFiles/bench_ablation_lcem_budget.dir/bench_ablation_lcem_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lcem_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
