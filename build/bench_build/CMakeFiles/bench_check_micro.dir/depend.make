# Empty dependencies file for bench_check_micro.
# This may be replaced when dependencies are built.
