file(REMOVE_RECURSE
  "../bench/bench_check_micro"
  "../bench/bench_check_micro.pdb"
  "CMakeFiles/bench_check_micro.dir/bench_check_micro.cc.o"
  "CMakeFiles/bench_check_micro.dir/bench_check_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_check_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
