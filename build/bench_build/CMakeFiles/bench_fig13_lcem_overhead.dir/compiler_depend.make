# Empty compiler generated dependencies file for bench_fig13_lcem_overhead.
# This may be replaced when dependencies are built.
