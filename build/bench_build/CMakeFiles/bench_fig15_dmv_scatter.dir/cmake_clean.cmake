file(REMOVE_RECURSE
  "../bench/bench_fig15_dmv_scatter"
  "../bench/bench_fig15_dmv_scatter.pdb"
  "CMakeFiles/bench_fig15_dmv_scatter.dir/bench_fig15_dmv_scatter.cc.o"
  "CMakeFiles/bench_fig15_dmv_scatter.dir/bench_fig15_dmv_scatter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dmv_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
