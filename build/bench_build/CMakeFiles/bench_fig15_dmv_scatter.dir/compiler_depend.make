# Empty compiler generated dependencies file for bench_fig15_dmv_scatter.
# This may be replaced when dependencies are built.
