# Empty compiler generated dependencies file for bench_fig14_opportunities.
# This may be replaced when dependencies are built.
