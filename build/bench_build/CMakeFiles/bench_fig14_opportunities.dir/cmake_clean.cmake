file(REMOVE_RECURSE
  "../bench/bench_fig14_opportunities"
  "../bench/bench_fig14_opportunities.pdb"
  "CMakeFiles/bench_fig14_opportunities.dir/bench_fig14_opportunities.cc.o"
  "CMakeFiles/bench_fig14_opportunities.dir/bench_fig14_opportunities.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_opportunities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
