file(REMOVE_RECURSE
  "../bench/bench_ablation_reuse"
  "../bench/bench_ablation_reuse.pdb"
  "CMakeFiles/bench_ablation_reuse.dir/bench_ablation_reuse.cc.o"
  "CMakeFiles/bench_ablation_reuse.dir/bench_ablation_reuse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
