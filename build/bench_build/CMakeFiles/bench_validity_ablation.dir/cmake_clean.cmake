file(REMOVE_RECURSE
  "../bench/bench_validity_ablation"
  "../bench/bench_validity_ablation.pdb"
  "CMakeFiles/bench_validity_ablation.dir/bench_validity_ablation.cc.o"
  "CMakeFiles/bench_validity_ablation.dir/bench_validity_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validity_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
