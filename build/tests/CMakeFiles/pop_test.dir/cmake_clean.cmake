file(REMOVE_RECURSE
  "CMakeFiles/pop_test.dir/pop_test.cc.o"
  "CMakeFiles/pop_test.dir/pop_test.cc.o.d"
  "pop_test"
  "pop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
