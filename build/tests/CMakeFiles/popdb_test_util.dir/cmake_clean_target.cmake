file(REMOVE_RECURSE
  "libpopdb_test_util.a"
)
