# Empty compiler generated dependencies file for popdb_test_util.
# This may be replaced when dependencies are built.
