file(REMOVE_RECURSE
  "CMakeFiles/popdb_test_util.dir/test_util.cc.o"
  "CMakeFiles/popdb_test_util.dir/test_util.cc.o.d"
  "libpopdb_test_util.a"
  "libpopdb_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
