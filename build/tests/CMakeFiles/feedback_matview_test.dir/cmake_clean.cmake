file(REMOVE_RECURSE
  "CMakeFiles/feedback_matview_test.dir/feedback_matview_test.cc.o"
  "CMakeFiles/feedback_matview_test.dir/feedback_matview_test.cc.o.d"
  "feedback_matview_test"
  "feedback_matview_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_matview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
