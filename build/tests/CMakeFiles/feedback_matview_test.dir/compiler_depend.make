# Empty compiler generated dependencies file for feedback_matview_test.
# This may be replaced when dependencies are built.
