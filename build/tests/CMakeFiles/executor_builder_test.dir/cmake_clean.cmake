file(REMOVE_RECURSE
  "CMakeFiles/executor_builder_test.dir/executor_builder_test.cc.o"
  "CMakeFiles/executor_builder_test.dir/executor_builder_test.cc.o.d"
  "executor_builder_test"
  "executor_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
