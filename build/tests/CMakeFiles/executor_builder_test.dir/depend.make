# Empty dependencies file for executor_builder_test.
# This may be replaced when dependencies are built.
