# Empty dependencies file for pipelined_ecdc.
# This may be replaced when dependencies are built.
