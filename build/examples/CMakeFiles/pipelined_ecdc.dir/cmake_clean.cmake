file(REMOVE_RECURSE
  "CMakeFiles/pipelined_ecdc.dir/pipelined_ecdc.cpp.o"
  "CMakeFiles/pipelined_ecdc.dir/pipelined_ecdc.cpp.o.d"
  "pipelined_ecdc"
  "pipelined_ecdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_ecdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
