
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parallel_local_checks.cpp" "examples/CMakeFiles/parallel_local_checks.dir/parallel_local_checks.cpp.o" "gcc" "examples/CMakeFiles/parallel_local_checks.dir/parallel_local_checks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/popdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/popdb_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/dmv/CMakeFiles/popdb_dmv.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/popdb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/popdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/popdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/popdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
