file(REMOVE_RECURSE
  "CMakeFiles/parallel_local_checks.dir/parallel_local_checks.cpp.o"
  "CMakeFiles/parallel_local_checks.dir/parallel_local_checks.cpp.o.d"
  "parallel_local_checks"
  "parallel_local_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_local_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
