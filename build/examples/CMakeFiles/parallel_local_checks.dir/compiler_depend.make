# Empty compiler generated dependencies file for parallel_local_checks.
# This may be replaced when dependencies are built.
