file(REMOVE_RECURSE
  "CMakeFiles/parameter_marker_robustness.dir/parameter_marker_robustness.cpp.o"
  "CMakeFiles/parameter_marker_robustness.dir/parameter_marker_robustness.cpp.o.d"
  "parameter_marker_robustness"
  "parameter_marker_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_marker_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
