# Empty dependencies file for parameter_marker_robustness.
# This may be replaced when dependencies are built.
