# Empty dependencies file for correlated_olap.
# This may be replaced when dependencies are built.
