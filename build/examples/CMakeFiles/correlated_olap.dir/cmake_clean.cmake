file(REMOVE_RECURSE
  "CMakeFiles/correlated_olap.dir/correlated_olap.cpp.o"
  "CMakeFiles/correlated_olap.dir/correlated_olap.cpp.o.d"
  "correlated_olap"
  "correlated_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlated_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
