# Empty dependencies file for popdb_shell.
# This may be replaced when dependencies are built.
