file(REMOVE_RECURSE
  "CMakeFiles/popdb_shell.dir/popdb_shell.cpp.o"
  "CMakeFiles/popdb_shell.dir/popdb_shell.cpp.o.d"
  "popdb_shell"
  "popdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
