# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_param_robustness "/root/repo/build/examples/parameter_marker_robustness")
set_tests_properties(example_param_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_correlated_olap "/root/repo/build/examples/correlated_olap")
set_tests_properties(example_correlated_olap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipelined_ecdc "/root/repo/build/examples/pipelined_ecdc")
set_tests_properties(example_pipelined_ecdc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_local_checks "/root/repo/build/examples/parallel_local_checks")
set_tests_properties(example_parallel_local_checks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shell_sql "/root/repo/build/examples/popdb_shell" "toy" "SELECT o_class, COUNT(*) FROM orders GROUP BY o_class ORDER BY 1 LIMIT 3")
set_tests_properties(example_shell_sql PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
