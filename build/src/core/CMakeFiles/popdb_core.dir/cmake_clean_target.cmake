file(REMOVE_RECURSE
  "libpopdb_core.a"
)
