
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/executor_builder.cc" "src/core/CMakeFiles/popdb_core.dir/executor_builder.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/executor_builder.cc.o.d"
  "/root/repo/src/core/feedback.cc" "src/core/CMakeFiles/popdb_core.dir/feedback.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/feedback.cc.o.d"
  "/root/repo/src/core/leo.cc" "src/core/CMakeFiles/popdb_core.dir/leo.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/leo.cc.o.d"
  "/root/repo/src/core/matview.cc" "src/core/CMakeFiles/popdb_core.dir/matview.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/matview.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/popdb_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/placement.cc.o.d"
  "/root/repo/src/core/pop.cc" "src/core/CMakeFiles/popdb_core.dir/pop.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/pop.cc.o.d"
  "/root/repo/src/core/validity.cc" "src/core/CMakeFiles/popdb_core.dir/validity.cc.o" "gcc" "src/core/CMakeFiles/popdb_core.dir/validity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/popdb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/popdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/popdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/popdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
