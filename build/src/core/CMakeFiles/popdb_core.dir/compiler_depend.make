# Empty compiler generated dependencies file for popdb_core.
# This may be replaced when dependencies are built.
