file(REMOVE_RECURSE
  "CMakeFiles/popdb_core.dir/executor_builder.cc.o"
  "CMakeFiles/popdb_core.dir/executor_builder.cc.o.d"
  "CMakeFiles/popdb_core.dir/feedback.cc.o"
  "CMakeFiles/popdb_core.dir/feedback.cc.o.d"
  "CMakeFiles/popdb_core.dir/leo.cc.o"
  "CMakeFiles/popdb_core.dir/leo.cc.o.d"
  "CMakeFiles/popdb_core.dir/matview.cc.o"
  "CMakeFiles/popdb_core.dir/matview.cc.o.d"
  "CMakeFiles/popdb_core.dir/placement.cc.o"
  "CMakeFiles/popdb_core.dir/placement.cc.o.d"
  "CMakeFiles/popdb_core.dir/pop.cc.o"
  "CMakeFiles/popdb_core.dir/pop.cc.o.d"
  "CMakeFiles/popdb_core.dir/validity.cc.o"
  "CMakeFiles/popdb_core.dir/validity.cc.o.d"
  "libpopdb_core.a"
  "libpopdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
