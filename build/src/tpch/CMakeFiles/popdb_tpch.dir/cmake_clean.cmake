file(REMOVE_RECURSE
  "CMakeFiles/popdb_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/popdb_tpch.dir/tpch_gen.cc.o.d"
  "CMakeFiles/popdb_tpch.dir/tpch_queries.cc.o"
  "CMakeFiles/popdb_tpch.dir/tpch_queries.cc.o.d"
  "libpopdb_tpch.a"
  "libpopdb_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
