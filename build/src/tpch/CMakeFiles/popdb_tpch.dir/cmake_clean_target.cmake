file(REMOVE_RECURSE
  "libpopdb_tpch.a"
)
