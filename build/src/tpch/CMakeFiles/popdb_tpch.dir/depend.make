# Empty dependencies file for popdb_tpch.
# This may be replaced when dependencies are built.
