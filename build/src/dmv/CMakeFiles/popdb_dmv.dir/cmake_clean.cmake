file(REMOVE_RECURSE
  "CMakeFiles/popdb_dmv.dir/dmv_gen.cc.o"
  "CMakeFiles/popdb_dmv.dir/dmv_gen.cc.o.d"
  "CMakeFiles/popdb_dmv.dir/dmv_queries.cc.o"
  "CMakeFiles/popdb_dmv.dir/dmv_queries.cc.o.d"
  "libpopdb_dmv.a"
  "libpopdb_dmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_dmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
