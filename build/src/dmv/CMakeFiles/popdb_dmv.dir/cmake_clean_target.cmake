file(REMOVE_RECURSE
  "libpopdb_dmv.a"
)
