
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmv/dmv_gen.cc" "src/dmv/CMakeFiles/popdb_dmv.dir/dmv_gen.cc.o" "gcc" "src/dmv/CMakeFiles/popdb_dmv.dir/dmv_gen.cc.o.d"
  "/root/repo/src/dmv/dmv_queries.cc" "src/dmv/CMakeFiles/popdb_dmv.dir/dmv_queries.cc.o" "gcc" "src/dmv/CMakeFiles/popdb_dmv.dir/dmv_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/popdb_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/popdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/popdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/popdb_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
