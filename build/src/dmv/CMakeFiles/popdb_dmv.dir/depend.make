# Empty dependencies file for popdb_dmv.
# This may be replaced when dependencies are built.
