# Empty dependencies file for popdb_exec.
# This may be replaced when dependencies are built.
