file(REMOVE_RECURSE
  "CMakeFiles/popdb_exec.dir/agg.cc.o"
  "CMakeFiles/popdb_exec.dir/agg.cc.o.d"
  "CMakeFiles/popdb_exec.dir/check.cc.o"
  "CMakeFiles/popdb_exec.dir/check.cc.o.d"
  "CMakeFiles/popdb_exec.dir/expr.cc.o"
  "CMakeFiles/popdb_exec.dir/expr.cc.o.d"
  "CMakeFiles/popdb_exec.dir/join.cc.o"
  "CMakeFiles/popdb_exec.dir/join.cc.o.d"
  "CMakeFiles/popdb_exec.dir/layout.cc.o"
  "CMakeFiles/popdb_exec.dir/layout.cc.o.d"
  "CMakeFiles/popdb_exec.dir/operator.cc.o"
  "CMakeFiles/popdb_exec.dir/operator.cc.o.d"
  "CMakeFiles/popdb_exec.dir/project.cc.o"
  "CMakeFiles/popdb_exec.dir/project.cc.o.d"
  "CMakeFiles/popdb_exec.dir/scan.cc.o"
  "CMakeFiles/popdb_exec.dir/scan.cc.o.d"
  "CMakeFiles/popdb_exec.dir/sort.cc.o"
  "CMakeFiles/popdb_exec.dir/sort.cc.o.d"
  "libpopdb_exec.a"
  "libpopdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
