
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg.cc" "src/exec/CMakeFiles/popdb_exec.dir/agg.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/agg.cc.o.d"
  "/root/repo/src/exec/check.cc" "src/exec/CMakeFiles/popdb_exec.dir/check.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/check.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/popdb_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/popdb_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/layout.cc" "src/exec/CMakeFiles/popdb_exec.dir/layout.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/layout.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/popdb_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/exec/CMakeFiles/popdb_exec.dir/project.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/project.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/popdb_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/scan.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/exec/CMakeFiles/popdb_exec.dir/sort.cc.o" "gcc" "src/exec/CMakeFiles/popdb_exec.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/popdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/popdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
