file(REMOVE_RECURSE
  "libpopdb_exec.a"
)
