file(REMOVE_RECURSE
  "CMakeFiles/popdb_common.dir/status.cc.o"
  "CMakeFiles/popdb_common.dir/status.cc.o.d"
  "CMakeFiles/popdb_common.dir/string_util.cc.o"
  "CMakeFiles/popdb_common.dir/string_util.cc.o.d"
  "CMakeFiles/popdb_common.dir/table_printer.cc.o"
  "CMakeFiles/popdb_common.dir/table_printer.cc.o.d"
  "CMakeFiles/popdb_common.dir/value.cc.o"
  "CMakeFiles/popdb_common.dir/value.cc.o.d"
  "libpopdb_common.a"
  "libpopdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
