file(REMOVE_RECURSE
  "libpopdb_common.a"
)
