# Empty compiler generated dependencies file for popdb_common.
# This may be replaced when dependencies are built.
