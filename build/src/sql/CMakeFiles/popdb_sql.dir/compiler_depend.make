# Empty compiler generated dependencies file for popdb_sql.
# This may be replaced when dependencies are built.
