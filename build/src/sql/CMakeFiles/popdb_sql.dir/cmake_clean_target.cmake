file(REMOVE_RECURSE
  "libpopdb_sql.a"
)
