file(REMOVE_RECURSE
  "CMakeFiles/popdb_sql.dir/binder.cc.o"
  "CMakeFiles/popdb_sql.dir/binder.cc.o.d"
  "CMakeFiles/popdb_sql.dir/lexer.cc.o"
  "CMakeFiles/popdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/popdb_sql.dir/parser.cc.o"
  "CMakeFiles/popdb_sql.dir/parser.cc.o.d"
  "libpopdb_sql.a"
  "libpopdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
