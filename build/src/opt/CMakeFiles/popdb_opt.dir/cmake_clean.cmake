file(REMOVE_RECURSE
  "CMakeFiles/popdb_opt.dir/cardinality.cc.o"
  "CMakeFiles/popdb_opt.dir/cardinality.cc.o.d"
  "CMakeFiles/popdb_opt.dir/cost_model.cc.o"
  "CMakeFiles/popdb_opt.dir/cost_model.cc.o.d"
  "CMakeFiles/popdb_opt.dir/enumerator.cc.o"
  "CMakeFiles/popdb_opt.dir/enumerator.cc.o.d"
  "CMakeFiles/popdb_opt.dir/optimizer.cc.o"
  "CMakeFiles/popdb_opt.dir/optimizer.cc.o.d"
  "CMakeFiles/popdb_opt.dir/plan.cc.o"
  "CMakeFiles/popdb_opt.dir/plan.cc.o.d"
  "CMakeFiles/popdb_opt.dir/query.cc.o"
  "CMakeFiles/popdb_opt.dir/query.cc.o.d"
  "libpopdb_opt.a"
  "libpopdb_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
