file(REMOVE_RECURSE
  "libpopdb_opt.a"
)
