# Empty dependencies file for popdb_opt.
# This may be replaced when dependencies are built.
