
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cardinality.cc" "src/opt/CMakeFiles/popdb_opt.dir/cardinality.cc.o" "gcc" "src/opt/CMakeFiles/popdb_opt.dir/cardinality.cc.o.d"
  "/root/repo/src/opt/cost_model.cc" "src/opt/CMakeFiles/popdb_opt.dir/cost_model.cc.o" "gcc" "src/opt/CMakeFiles/popdb_opt.dir/cost_model.cc.o.d"
  "/root/repo/src/opt/enumerator.cc" "src/opt/CMakeFiles/popdb_opt.dir/enumerator.cc.o" "gcc" "src/opt/CMakeFiles/popdb_opt.dir/enumerator.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/opt/CMakeFiles/popdb_opt.dir/optimizer.cc.o" "gcc" "src/opt/CMakeFiles/popdb_opt.dir/optimizer.cc.o.d"
  "/root/repo/src/opt/plan.cc" "src/opt/CMakeFiles/popdb_opt.dir/plan.cc.o" "gcc" "src/opt/CMakeFiles/popdb_opt.dir/plan.cc.o.d"
  "/root/repo/src/opt/query.cc" "src/opt/CMakeFiles/popdb_opt.dir/query.cc.o" "gcc" "src/opt/CMakeFiles/popdb_opt.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/popdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/popdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/popdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
