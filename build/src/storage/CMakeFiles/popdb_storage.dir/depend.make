# Empty dependencies file for popdb_storage.
# This may be replaced when dependencies are built.
