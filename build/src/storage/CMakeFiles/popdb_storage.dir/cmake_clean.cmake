file(REMOVE_RECURSE
  "CMakeFiles/popdb_storage.dir/catalog.cc.o"
  "CMakeFiles/popdb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/popdb_storage.dir/csv.cc.o"
  "CMakeFiles/popdb_storage.dir/csv.cc.o.d"
  "CMakeFiles/popdb_storage.dir/index.cc.o"
  "CMakeFiles/popdb_storage.dir/index.cc.o.d"
  "CMakeFiles/popdb_storage.dir/schema.cc.o"
  "CMakeFiles/popdb_storage.dir/schema.cc.o.d"
  "CMakeFiles/popdb_storage.dir/statistics.cc.o"
  "CMakeFiles/popdb_storage.dir/statistics.cc.o.d"
  "CMakeFiles/popdb_storage.dir/table.cc.o"
  "CMakeFiles/popdb_storage.dir/table.cc.o.d"
  "libpopdb_storage.a"
  "libpopdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
