file(REMOVE_RECURSE
  "libpopdb_storage.a"
)
