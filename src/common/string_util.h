#ifndef POPDB_COMMON_STRING_UTIL_H_
#define POPDB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace popdb {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// SQL LIKE matching with '%' (any run) and '_' (any single char)
/// wildcards. Case sensitive, no escape support.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// True if `text` starts with / ends with / contains `piece`.
bool StartsWith(std::string_view text, std::string_view piece);
bool EndsWith(std::string_view text, std::string_view piece);
bool Contains(std::string_view text, std::string_view piece);

}  // namespace popdb

#endif  // POPDB_COMMON_STRING_UTIL_H_
