#include "common/cancel.h"

#include <chrono>

namespace popdb {

namespace {
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void CancelToken::TripIfFirst(CancelReason reason) {
  CancelReason expected = CancelReason::kNone;
  reason_.compare_exchange_strong(expected, reason,
                                  std::memory_order_acq_rel);
}

void CancelToken::SetDeadlineAfterMs(double ms) {
  if (ms <= 0) {
    deadline_ns_.store(0, std::memory_order_release);
    return;
  }
  deadline_ns_.store(NowNs() + static_cast<int64_t>(ms * 1e6),
                     std::memory_order_release);
}

bool CancelToken::Expired() {
  if (reason_.load(std::memory_order_relaxed) != CancelReason::kNone) {
    return true;
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && NowNs() >= deadline) {
    TripIfFirst(CancelReason::kDeadline);
    return true;
  }
  return false;
}

}  // namespace popdb
