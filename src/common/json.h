#ifndef POPDB_COMMON_JSON_H_
#define POPDB_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace popdb {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added): ", \, control characters.
std::string JsonEscape(std::string_view text);

/// Minimal streaming JSON writer producing compact, valid JSON. Handles
/// comma placement and string escaping; the caller is responsible for
/// balancing Begin/End calls and writing a Key before each object member.
///
/// Example:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("query").String("q1");
///   w.Key("attempts").BeginArray().Int(1).Int(2).EndArray();
///   w.EndObject();
///   w.str();  // {"query":"q1","attempts":[1,2]}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Inserts pre-rendered JSON verbatim (e.g. a nested ToJson() result).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// true = a value was already written at this nesting level (next one
  /// needs a comma separator).
  std::vector<bool> wrote_value_;
  bool pending_key_ = false;
};

}  // namespace popdb

#endif  // POPDB_COMMON_JSON_H_
