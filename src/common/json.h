#ifndef POPDB_COMMON_JSON_H_
#define POPDB_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace popdb {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added): ", \, control characters.
std::string JsonEscape(std::string_view text);

/// Minimal streaming JSON writer producing compact, valid JSON. Handles
/// comma placement and string escaping; the caller is responsible for
/// balancing Begin/End calls and writing a Key before each object member.
///
/// Example:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("query").String("q1");
///   w.Key("attempts").BeginArray().Int(1).Int(2).EndArray();
///   w.EndObject();
///   w.str();  // {"query":"q1","attempts":[1,2]}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Inserts pre-rendered JSON verbatim (e.g. a nested ToJson() result).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// true = a value was already written at this nesting level (next one
  /// needs a comma separator).
  std::vector<bool> wrote_value_;
  bool pending_key_ = false;
};

/// A parsed JSON document node. Numbers keep the int/double distinction
/// from the source text (no decimal point or exponent = kInt) so integral
/// ids survive a round trip exactly; object members preserve source order
/// and are looked up linearly (wire-protocol messages are small).
class JsonValue {
 public:
  enum class Kind { kNull = 0, kBool, kInt, kDouble, kString, kArray,
                    kObject };

  JsonValue() = default;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeInt(int64_t v);
  static JsonValue MakeDouble(double v);
  static JsonValue MakeString(std::string v);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Accessors. Preconditions: the node holds the requested kind
  /// (AsDouble also accepts kInt and coerces).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key, or nullptr (also when this is not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Typed object-member lookups with defaults: missing key (or kind
  /// mismatch) returns `fallback`. GetNumber accepts kInt and kDouble.
  std::string GetString(std::string_view key, std::string fallback) const;
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  double GetNumber(std::string_view key, double fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Re-serializes this node as compact JSON (parse → ToJsonString is a
  /// semantic round trip; key order and number formatting may differ from
  /// the source text).
  void WriteTo(JsonWriter* w) const;
  std::string ToJsonString() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Limits applied while parsing untrusted JSON (wire frames).
struct JsonParseLimits {
  int max_depth = 64;           ///< Nesting depth of arrays/objects.
  int64_t max_nodes = 1 << 20;  ///< Total values in the document.
};

/// Strict parser: one JSON value covering the whole input (trailing
/// whitespace allowed, trailing content rejected), no comments, no
/// trailing commas, \uXXXX escapes (including surrogate pairs) decoded to
/// UTF-8. Errors carry the byte offset of the offending character.
Result<JsonValue> JsonParse(std::string_view text, JsonParseLimits limits = {});

}  // namespace popdb

#endif  // POPDB_COMMON_JSON_H_
