#ifndef POPDB_COMMON_STATUS_H_
#define POPDB_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace popdb {

/// Error codes used across the engine. The project does not use C++
/// exceptions; fallible operations return `Status` (or `Result<T>`).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kInternal,
  kResourceExhausted,
  kUnimplemented,
  kCancelled,
  kDeadlineExceeded,
  /// The target is (possibly transiently) unreachable: a refused TCP
  /// connect, a shard process that died mid-query. Retry semantics are the
  /// caller's call; the code exists so transport failures are
  /// distinguishable from in-engine kInternal errors.
  kUnavailable,
};

/// Lightweight status object carrying a code and a human-readable message.
///
/// Example:
///   Status s = catalog.AddTable(std::move(table));
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Minimal StatusOr analogue;
/// T need not be default-constructible.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so call sites can `return value;`
  /// or `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Status status) : status_(std::move(status)) {}        // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Returns the contained value.
  T& value() { return *value_; }
  const T& value() const { return *value_; }

  /// Moves the contained value out. Precondition: ok().
  T&& TakeValue() && { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
/// Prints the failure and aborts. Used by POPDB_DCHECK.
[[noreturn]] void AssertFail(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace popdb

/// Internal invariant check; aborts with a message on violation. Enabled in
/// all build types: this is a database engine and silent corruption is worse
/// than a crash.
#define POPDB_DCHECK(expr)                                        \
  do {                                                            \
    if (!(expr)) {                                                \
      ::popdb::internal::AssertFail(#expr, __FILE__, __LINE__);   \
    }                                                             \
  } while (false)

#endif  // POPDB_COMMON_STATUS_H_
