#include "common/span.h"

#include <algorithm>
#include <chrono>

#include "common/json.h"

namespace popdb {

namespace {
int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SpanTracer& SpanTracer::Global() {
  static SpanTracer* tracer = new SpanTracer();  // Never destroyed.
  return *tracer;
}

SpanTracer::SpanTracer() : epoch_ns_(MonotonicNanos()) {}

int64_t SpanTracer::NowUs() const {
  return (MonotonicNanos() - epoch_ns_) / 1000;
}

SpanTracer::ThreadLog* SpanTracer::LogForThisThread() {
  // One log per (tracer, thread). The raw pointer stays valid after thread
  // exit because the tracer owns the log; the global tracer lives forever.
  thread_local ThreadLog* cached = nullptr;
  thread_local const SpanTracer* cached_owner = nullptr;
  if (cached == nullptr || cached_owner != this) {
    std::lock_guard<std::mutex> lock(logs_mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    logs_.back()->tid = next_tid_++;
    cached = logs_.back().get();
    cached_owner = this;
  }
  return cached;
}

const char* SpanTracer::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  // std::unordered_set is node-based, so the string's address — and its
  // c_str() — survive rehashing and later inserts.
  return interned_.emplace(s).first->c_str();
}

void SpanTracer::RecordSpan(const char* name, const char* category,
                            int64_t ts_us, int64_t dur_us,
                            const char* arg_name, int64_t arg,
                            const char* label) {
  ThreadLog* log = LogForThisThread();
  SpanEvent ev;
  ev.name = name;
  ev.category = category;
  ev.tid = log->tid;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us < 0 ? 0 : dur_us;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.label = label;
  std::lock_guard<std::mutex> lock(log->mu);
  log->events.push_back(ev);
}

void SpanTracer::RecordInstant(const char* name, const char* category,
                               const char* arg_name, int64_t arg,
                               const char* label) {
  ThreadLog* log = LogForThisThread();
  SpanEvent ev;
  ev.name = name;
  ev.category = category;
  ev.tid = log->tid;
  ev.ts_us = NowUs();
  ev.dur_us = -1;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ev.label = label;
  std::lock_guard<std::mutex> lock(log->mu);
  log->events.push_back(ev);
}

std::vector<SpanEvent> SpanTracer::Snapshot() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(logs_mu_);
    for (const auto& log : logs_) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      out.insert(out.end(), log->events.begin(), log->events.end());
    }
  }
  // Parent-before-child order: by thread, then start time, then longest
  // first so an enclosing span sorts ahead of the spans it contains.
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;
            });
  return out;
}

void SpanTracer::Clear() {
  std::lock_guard<std::mutex> lock(logs_mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

int64_t SpanTracer::event_count() const {
  int64_t n = 0;
  std::lock_guard<std::mutex> lock(logs_mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    n += static_cast<int64_t>(log->events.size());
  }
  return n;
}

namespace {
void EventToJson(const SpanEvent& ev, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(ev.name);
  w->Key("cat").String(ev.category);
  if (ev.IsInstant()) {
    w->Key("ph").String("i");
    w->Key("s").String("t");  // Thread-scoped instant.
  } else {
    w->Key("ph").String("X");
    w->Key("dur").Int(ev.dur_us);
  }
  w->Key("ts").Int(ev.ts_us);
  w->Key("pid").Int(0);
  w->Key("tid").Int(static_cast<int64_t>(ev.tid));
  if (ev.arg_name != nullptr || ev.label != nullptr) {
    w->Key("args").BeginObject();
    if (ev.label != nullptr) w->Key("label").String(ev.label);
    if (ev.arg_name != nullptr) w->Key(ev.arg_name).Int(ev.arg);
    w->EndObject();
  }
  w->EndObject();
}
}  // namespace

std::string SpanTracer::ExportChromeTrace() const {
  const std::vector<SpanEvent> events = Snapshot();
  JsonWriter w;
  w.BeginArray();
  for (const SpanEvent& ev : events) EventToJson(ev, &w);
  w.EndArray();
  return w.str();
}

std::string SpanTracer::ExportJsonl() const {
  const std::vector<SpanEvent> events = Snapshot();
  std::string out;
  for (const SpanEvent& ev : events) {
    JsonWriter w;
    EventToJson(ev, &w);
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace popdb
