#ifndef POPDB_COMMON_RNG_H_
#define POPDB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace popdb {

/// Deterministic pseudo-random generator (xorshift64*). All data generation
/// and workload synthesis in the repository goes through this class so tests
/// and benchmarks are reproducible across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x853c49e6748fea9bull : seed) {}

  /// Next raw 64-bit output.
  uint64_t NextU64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    POPDB_DCHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextU64() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-distributed integer in [0, n); `theta` in (0, 1) controls skew
  /// (higher = more skewed). Uses the standard CDF-inversion approximation.
  int64_t Zipf(int64_t n, double theta) {
    POPDB_DCHECK(n > 0);
    // Cache normalization constants per (n, theta).
    if (zipf_n_ != n || zipf_theta_ != theta) {
      zipf_n_ = n;
      zipf_theta_ = theta;
      zeta2_ = Zeta(2, theta);
      zetan_ = Zeta(n, theta);
      zipf_alpha_ = 1.0 / (1.0 - theta);
      zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                  (1.0 - zeta2_ / zetan_);
    }
    const double u = UniformDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta)) return 1;
    return static_cast<int64_t>(
        static_cast<double>(n) *
        std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  }

 private:
  static double Zeta(int64_t n, double theta) {
    double sum = 0.0;
    for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t state_;
  // Zipf cache.
  int64_t zipf_n_ = -1;
  double zipf_theta_ = 0.0;
  double zeta2_ = 0.0;
  double zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace popdb

#endif  // POPDB_COMMON_RNG_H_
