#ifndef POPDB_COMMON_CANCEL_H_
#define POPDB_COMMON_CANCEL_H_

#include <atomic>
#include <cstdint>

namespace popdb {

/// Why a cancellation token tripped.
enum class CancelReason : uint8_t {
  kNone = 0,
  kRequested,  ///< Explicit RequestCancel() from a client.
  kDeadline,   ///< The query's deadline passed.
};

/// Cooperative cancellation token shared between a query's client and the
/// worker thread executing it. The executor polls Expired() between row
/// batches (one relaxed atomic load on the untripped fast path); clients
/// call RequestCancel() from any thread. A deadline, once armed, is checked
/// by the poll itself, so no timer thread is needed — precision is bounded
/// by the polling stride, which is fine for millisecond-scale deadlines.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread. The first
  /// trip wins: a deadline expiring after an explicit cancel (or vice
  /// versa) does not change the recorded reason.
  void RequestCancel() { TripIfFirst(CancelReason::kRequested); }

  /// Arms a deadline `ms` milliseconds from now; ms <= 0 disarms.
  void SetDeadlineAfterMs(double ms);

  /// True once cancellation was requested or the deadline passed; trips
  /// the token as a side effect when the deadline just expired.
  bool Expired();

  /// True if the token has already tripped (no deadline re-check).
  bool cancelled() const {
    return reason_.load(std::memory_order_acquire) != CancelReason::kNone;
  }

  CancelReason reason() const {
    return reason_.load(std::memory_order_acquire);
  }

 private:
  void TripIfFirst(CancelReason reason);

  std::atomic<CancelReason> reason_{CancelReason::kNone};
  std::atomic<int64_t> deadline_ns_{0};  ///< steady_clock ns since epoch; 0 = none.
};

}  // namespace popdb

#endif  // POPDB_COMMON_CANCEL_H_
