#ifndef POPDB_COMMON_SPAN_H_
#define POPDB_COMMON_SPAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace popdb {

/// One recorded trace event. `name` and `category` are pointers to string
/// literals (the macros below only accept literals), so events are
/// trivially copyable and recording never allocates for the strings.
struct SpanEvent {
  const char* name = "";
  const char* category = "popdb";
  uint32_t tid = 0;       ///< Tracer-assigned dense thread id.
  int64_t ts_us = 0;      ///< Start, microseconds since tracer epoch.
  int64_t dur_us = -1;    ///< Duration; -1 marks an instant event.
  int64_t arg = 0;        ///< Optional numeric payload (see arg_name).
  const char* arg_name = nullptr;  ///< Null when no payload.
  /// Optional dynamic tag (query trace token, shard id, ...). Unlike
  /// `name`/`category` it need not be a literal: pass runtime strings
  /// through SpanTracer::Intern(), which returns a stable pointer owned by
  /// the tracer. Null when untagged.
  const char* label = nullptr;

  bool IsInstant() const { return dur_us < 0; }
  /// True if `other` lies entirely within this span (same thread).
  bool Encloses(const SpanEvent& other) const {
    return tid == other.tid && ts_us <= other.ts_us &&
           other.ts_us + (other.dur_us < 0 ? 0 : other.dur_us) <=
               ts_us + dur_us;
  }
};

/// Process-wide low-overhead span collector. Threads record into
/// thread-local buffers (one uncontended mutex acquisition per event, only
/// taken against a concurrent Snapshot/Clear); when tracing is disabled the
/// cost of an instrumentation point is a single relaxed atomic load.
///
/// Exports the collected events as Chrome `trace_event` JSON ("complete"
/// X events plus instant i events) loadable in Perfetto / chrome://tracing,
/// or as one-JSON-object-per-line JSONL.
class SpanTracer {
 public:
  /// The process-wide tracer used by the TRACE_* macros.
  static SpanTracer& Global();

  SpanTracer();
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the tracer's epoch (monotonic clock).
  int64_t NowUs() const;

  /// Interns a dynamic string so it can be attached to events as
  /// SpanEvent::label. Returns a stable pointer owned by the tracer (the
  /// global tracer is never destroyed); interning the same contents twice
  /// returns the same pointer. Intended for low-cardinality tags — query
  /// trace tokens, shard ids — not per-row data.
  const char* Intern(std::string_view s);

  /// Records a completed span. `name`/`category`/`arg_name` must be string
  /// literals (or otherwise outlive the tracer); `label`, when non-null,
  /// must come from Intern() or be a literal.
  void RecordSpan(const char* name, const char* category, int64_t ts_us,
                  int64_t dur_us, const char* arg_name = nullptr,
                  int64_t arg = 0, const char* label = nullptr);

  /// Records an instant event at the current time.
  void RecordInstant(const char* name, const char* category,
                     const char* arg_name = nullptr, int64_t arg = 0,
                     const char* label = nullptr);

  /// Point-in-time copy of all recorded events, sorted by (tid, ts, -dur)
  /// so a parent span always precedes the spans it encloses.
  std::vector<SpanEvent> Snapshot() const;

  /// Drops all recorded events (buffers of finished threads included).
  void Clear();

  int64_t event_count() const;

  /// Chrome trace_event JSON: an array of objects with ph/ts/dur/pid/tid.
  std::string ExportChromeTrace() const;

  /// One JSON object per line (name, cat, tid, ts_us, dur_us, arg).
  std::string ExportJsonl() const;

 private:
  struct ThreadLog {
    mutable std::mutex mu;
    uint32_t tid = 0;
    std::vector<SpanEvent> events;
  };

  ThreadLog* LogForThisThread();

  std::atomic<bool> enabled_{false};
  int64_t epoch_ns_ = 0;

  mutable std::mutex logs_mu_;
  /// Owned logs, one per thread that ever recorded; kept after thread exit
  /// so late Snapshots still see their events.
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  uint32_t next_tid_ = 0;

  mutable std::mutex intern_mu_;
  /// Node-based so element addresses (and thus c_str() pointers) are stable.
  std::unordered_set<std::string> interned_;
};

/// RAII guard recording one span from construction to destruction on the
/// global tracer. Near-zero cost when tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "popdb")
      : name_(name), category_(category) {
    SpanTracer& tracer = SpanTracer::Global();
    if (tracer.enabled()) {
      active_ = true;
      start_us_ = tracer.NowUs();
    }
  }
  TraceSpan(const char* name, const char* category, const char* arg_name,
            int64_t arg)
      : TraceSpan(name, category) {
    arg_name_ = arg_name;
    arg_ = arg;
  }
  ~TraceSpan() {
    if (active_) {
      SpanTracer& tracer = SpanTracer::Global();
      tracer.RecordSpan(name_, category_, start_us_,
                        tracer.NowUs() - start_us_, arg_name_, arg_, label_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches/updates the numeric payload before the span closes.
  void SetArg(const char* arg_name, int64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  /// Tags the span with a dynamic string (query trace token, shard id).
  /// Interned lazily; a no-op — no allocation, no intern lookup — when the
  /// span is inactive (tracing was disabled at construction).
  void SetLabel(std::string_view label) {
    if (active_) label_ = SpanTracer::Global().Intern(label);
  }

  /// Tags the span with an already-interned (or literal) label.
  void SetLabel(const char* interned_label) {
    if (active_) label_ = interned_label;
  }

 private:
  const char* name_;
  const char* category_;
  const char* arg_name_ = nullptr;
  const char* label_ = nullptr;
  int64_t arg_ = 0;
  int64_t start_us_ = 0;
  bool active_ = false;
};

#define POPDB_SPAN_CONCAT2(a, b) a##b
#define POPDB_SPAN_CONCAT(a, b) POPDB_SPAN_CONCAT2(a, b)

/// Scoped span covering the rest of the enclosing block:
///   TRACE_SPAN("dp_enumeration");
///   TRACE_SPAN("optimize", "opt");
#define TRACE_SPAN(...) \
  ::popdb::TraceSpan POPDB_SPAN_CONCAT(popdb_span_, __LINE__)(__VA_ARGS__)

/// Named scoped span (when the guard must be referenced, e.g. SetArg):
///   TRACE_SPAN_NAMED(span, "execute_attempt", "pop");
///   span.SetArg("rows", n);
#define TRACE_SPAN_NAMED(var, ...) ::popdb::TraceSpan var(__VA_ARGS__)

/// Instant event:
///   TRACE_INSTANT("check_fired", "pop");
///   TRACE_INSTANT_ARG("check_fired", "pop", "rows", observed);
#define TRACE_INSTANT(name, category)                                \
  do {                                                               \
    ::popdb::SpanTracer& popdb_tracer = ::popdb::SpanTracer::Global(); \
    if (popdb_tracer.enabled())                                      \
      popdb_tracer.RecordInstant((name), (category));                \
  } while (0)

#define TRACE_INSTANT_ARG(name, category, arg_name, arg_value)       \
  do {                                                               \
    ::popdb::SpanTracer& popdb_tracer = ::popdb::SpanTracer::Global(); \
    if (popdb_tracer.enabled())                                      \
      popdb_tracer.RecordInstant((name), (category), (arg_name),     \
                                 static_cast<int64_t>(arg_value));   \
  } while (0)

/// Instant event tagged with a dynamic label (interned only when tracing
/// is enabled — the disabled path is still one relaxed load):
///   TRACE_INSTANT_TAGGED("check_violation", "dist", token, "shard", i);
#define TRACE_INSTANT_TAGGED(name, category, label_value, arg_name, arg_value) \
  do {                                                                         \
    ::popdb::SpanTracer& popdb_tracer = ::popdb::SpanTracer::Global();         \
    if (popdb_tracer.enabled())                                                \
      popdb_tracer.RecordInstant((name), (category), (arg_name),               \
                                 static_cast<int64_t>(arg_value),              \
                                 popdb_tracer.Intern(label_value));            \
  } while (0)

}  // namespace popdb

#endif  // POPDB_COMMON_SPAN_H_
