#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace popdb {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

namespace {
// Recursive matcher over (text position, pattern position). The pattern
// grammar is tiny, so plain recursion with the greedy '%' loop is clear and
// fast enough.
bool LikeMatchImpl(std::string_view text, size_t ti, std::string_view pat,
                   size_t pi) {
  while (pi < pat.size()) {
    const char pc = pat[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < pat.size() && pat[pi] == '%') ++pi;
      if (pi == pat.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatchImpl(text, k, pat, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}
}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  return LikeMatchImpl(text, 0, pattern, 0);
}

bool StartsWith(std::string_view text, std::string_view piece) {
  return text.size() >= piece.size() &&
         text.substr(0, piece.size()) == piece;
}

bool EndsWith(std::string_view text, std::string_view piece) {
  return text.size() >= piece.size() &&
         text.substr(text.size() - piece.size()) == piece;
}

bool Contains(std::string_view text, std::string_view piece) {
  return text.find(piece) != std::string_view::npos;
}

}  // namespace popdb
