#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace popdb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void AssertFail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "POPDB_DCHECK failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}
}  // namespace internal

}  // namespace popdb
