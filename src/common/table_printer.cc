#include "common/table_printer.h"

#include "common/status.h"

namespace popdb {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  POPDB_DCHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out->append(c == 0 ? "| " : " | ");
      out->append(row[c]);
      out->append(widths[c] - row[c].size(), ' ');
    }
    out->append(" |\n");
  };
  std::string out;
  emit_row(headers_, &out);
  for (size_t c = 0; c < widths.size(); ++c) {
    out.append(c == 0 ? "|-" : "-|-");
    out.append(widths[c], '-');
  }
  out.append("-|\n");
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      out.append(row[c]);
    }
    out.push_back('\n');
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace popdb
