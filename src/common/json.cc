#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace popdb {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Key() already emitted the separator.
  }
  if (!wrote_value_.empty()) {
    if (wrote_value_.back()) out_ += ',';
    wrote_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  wrote_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  wrote_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  wrote_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  wrote_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!wrote_value_.empty()) {
    if (wrote_value_.back()) out_ += ',';
    wrote_value_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN.
    return *this;
  }
  out_ += StrFormat("%.6g", value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

// ------------------------------------------------------------- JsonValue

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::MakeInt(int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::MakeDouble(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

bool JsonValue::AsBool() const {
  POPDB_DCHECK(kind_ == Kind::kBool);
  return bool_;
}

int64_t JsonValue::AsInt() const {
  POPDB_DCHECK(kind_ == Kind::kInt);
  return int_;
}

double JsonValue::AsDouble() const {
  POPDB_DCHECK(is_number());
  return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::AsString() const {
  POPDB_DCHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  POPDB_DCHECK(kind_ == Kind::kArray);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  POPDB_DCHECK(kind_ == Kind::kObject);
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind_ == Kind::kString ? v->string_
                                                   : std::move(fallback);
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind_ == Kind::kInt ? v->int_ : fallback;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind_ == Kind::kBool ? v->bool_ : fallback;
}

void JsonValue::WriteTo(JsonWriter* w) const {
  switch (kind_) {
    case Kind::kNull:
      w->Null();
      break;
    case Kind::kBool:
      w->Bool(bool_);
      break;
    case Kind::kInt:
      w->Int(int_);
      break;
    case Kind::kDouble:
      if (std::isfinite(double_)) {
        // %.17g round-trips every finite double exactly.
        w->Raw(StrFormat("%.17g", double_));
      } else {
        w->Null();
      }
      break;
    case Kind::kString:
      w->String(string_);
      break;
    case Kind::kArray:
      w->BeginArray();
      for (const JsonValue& item : items_) item.WriteTo(w);
      w->EndArray();
      break;
    case Kind::kObject:
      w->BeginObject();
      for (const auto& [key, value] : members_) {
        w->Key(key);
        value.WriteTo(w);
      }
      w->EndObject();
      break;
  }
}

std::string JsonValue::ToJsonString() const {
  JsonWriter w;
  WriteTo(&w);
  return w.str();
}

// ------------------------------------------------------------ JsonParser

/// Recursive-descent parser over a string_view; all methods leave `pos_`
/// on the first unconsumed byte. Friended by JsonValue so it can fill the
/// representation directly.
class JsonParser {
 public:
  JsonParser(std::string_view text, JsonParseLimits limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    Status s = ParseValue(&root, 0);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > limits_.max_depth) return Error("nesting too deep");
    if (++nodes_ > limits_.max_nodes) return Error("too many values");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(JsonValue* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.rfind("true", 0) == 0) {
      pos_ += 4;
      *out = JsonValue::MakeBool(true);
      return Status::Ok();
    }
    if (rest.rfind("false", 0) == 0) {
      pos_ += 5;
      *out = JsonValue::MakeBool(false);
      return Status::Ok();
    }
    if (rest.rfind("null", 0) == 0) {
      pos_ += 4;
      *out = JsonValue();
      return Status::Ok();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Error("invalid number");
    }
    const size_t int_start = text_[start] == '-' ? start + 1 : start;
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      return Error("leading zeros are not allowed");
    }
    if (Consume('.')) {
      is_double = true;
      const size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) return Error("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) return Error("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (is_double) {
      *out = JsonValue::MakeDouble(std::strtod(token.c_str(), nullptr));
      return Status::Ok();
    }
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE) {
      // Out of int64 range: fall back to double (JSON numbers are one
      // type; we only keep the distinction when it is exact).
      *out = JsonValue::MakeDouble(std::strtod(token.c_str(), nullptr));
      return Status::Ok();
    }
    *out = JsonValue::MakeInt(static_cast<int64_t>(v));
    return Status::Ok();
  }

  /// Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // Backslash.
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out->push_back('"');  break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/');  break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          Status s = ParseHex4(&cp);
          if (!s.ok()) return s;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            s = ParseHex4(&low);
            if (!s.ok()) return s;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue item;
      Status s = ParseValue(&item, depth + 1);
      if (!s.ok()) return s;
      out->items_.push_back(std::move(item));
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  JsonParseLimits limits_;
  size_t pos_ = 0;
  int64_t nodes_ = 0;
};

Result<JsonValue> JsonParse(std::string_view text, JsonParseLimits limits) {
  return JsonParser(text, limits).Parse();
}

}  // namespace popdb
