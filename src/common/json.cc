#include "common/json.h"

#include <cmath>

#include "common/string_util.h"

namespace popdb {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Key() already emitted the separator.
  }
  if (!wrote_value_.empty()) {
    if (wrote_value_.back()) out_ += ',';
    wrote_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  wrote_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  wrote_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  wrote_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  wrote_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!wrote_value_.empty()) {
    if (wrote_value_.back()) out_ += ',';
    wrote_value_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN.
    return *this;
  }
  out_ += StrFormat("%.6g", value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace popdb
