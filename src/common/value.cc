#include "common/value.h"

#include <cstdio>
#include <functional>

#include "common/status.h"

namespace popdb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::AsNumeric() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  POPDB_DCHECK(type() == ValueType::kDouble);
  return AsDouble();
}

namespace {
bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType lt = type();
  const ValueType rt = other.type();
  if (lt == ValueType::kNull || rt == ValueType::kNull) {
    // NULLs sort first and compare equal to each other.
    if (lt == rt) return 0;
    return lt == ValueType::kNull ? -1 : 1;
  }
  if (IsNumeric(lt) && IsNumeric(rt)) {
    if (lt == ValueType::kInt && rt == ValueType::kInt) {
      const int64_t a = AsInt();
      const int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsNumeric();
    const double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (lt != rt) {
    return static_cast<int>(lt) < static_cast<int>(rt) ? -1 : 1;
  }
  // Both strings.
  const int c = AsString().compare(other.AsString());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueType::kInt:
      // Hash ints through double so Int(1) and Double(1.0) collide, matching
      // operator==.
      return std::hash<double>()(static_cast<double>(AsInt()));
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t HashRow(const Row& row) {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b9ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace popdb
