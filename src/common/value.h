#ifndef POPDB_COMMON_VALUE_H_
#define POPDB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace popdb {

/// Runtime type of a Value / column.
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

/// Returns a human-readable name ("int", "double", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed SQL value (NULL, 64-bit integer, double or string).
///
/// Values are ordered with NULL sorting first; cross-type comparison between
/// kInt and kDouble compares numerically, any other cross-type comparison
/// orders by type tag. Equality follows the same rules (so Int(1) ==
/// Double(1.0)).
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  /// Copy-assigns `other` through an explicit switch on the alternative
  /// instead of std::variant's generic visit-based operator=. The column
  /// fill loops of vectorized execution are dominated by this assignment;
  /// the switch inlines where the visit dispatch does not, and the string
  /// case reuses this value's heap buffer when both sides hold strings.
  void AssignFrom(const Value& other) {
    switch (other.rep_.index()) {
      case 0:
        rep_.emplace<std::monostate>();
        break;
      case 1:
        rep_ = *std::get_if<int64_t>(&other.rep_);
        break;
      case 2:
        rep_ = *std::get_if<double>(&other.rep_);
        break;
      default:
        if (std::string* mine = std::get_if<std::string>(&rep_)) {
          mine->assign(*std::get_if<std::string>(&other.rep_));
        } else {
          rep_ = *std::get_if<std::string>(&other.rep_);
        }
        break;
    }
  }

  /// Move flavor of AssignFrom (same dispatch, steals string storage).
  void AssignFrom(Value&& other) {
    switch (other.rep_.index()) {
      case 0:
        rep_.emplace<std::monostate>();
        break;
      case 1:
        rep_ = *std::get_if<int64_t>(&other.rep_);
        break;
      case 2:
        rep_ = *std::get_if<double>(&other.rep_);
        break;
      default:
        if (std::string* mine = std::get_if<std::string>(&rep_)) {
          *mine = std::move(*std::get_if<std::string>(&other.rep_));
        } else {
          rep_ = std::move(*std::get_if<std::string>(&other.rep_));
        }
        break;
    }
  }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors. Preconditions: the value holds the requested type.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric coercion: kInt and kDouble convert to double, anything else is
  /// an error checked by POPDB_DCHECK.
  double AsNumeric() const;

  /// Three-way comparison per the class ordering contract:
  /// negative if *this < other, 0 if equal, positive if greater.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator== (numeric values hash by double value).
  size_t Hash() const;

  /// Renders the value for debugging and result printing.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Hash functor for containers keyed on Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A tuple of values; the unit flowing between executor operators.
using Row = std::vector<Value>;

/// Hash of a full row, combining per-value hashes.
size_t HashRow(const Row& row);

/// Hash functor for containers keyed on Row.
struct RowHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

/// Renders a row as "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace popdb

#endif  // POPDB_COMMON_VALUE_H_
