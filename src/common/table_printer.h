#ifndef POPDB_COMMON_TABLE_PRINTER_H_
#define POPDB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace popdb {

/// Accumulates rows of strings and renders an aligned ASCII table. Used by
/// the benchmark harnesses to print paper-style result tables.
///
/// Example:
///   TablePrinter tp({"query", "time_ms"});
///   tp.AddRow({"Q10", "12.3"});
///   std::fputs(tp.ToString().c_str(), stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders header, separator and all rows, right-padding each column.
  std::string ToString() const;

  /// Renders as comma-separated values (header row first).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace popdb

#endif  // POPDB_COMMON_TABLE_PRINTER_H_
