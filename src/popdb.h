#ifndef POPDB_POPDB_H_
#define POPDB_POPDB_H_

/// Umbrella header for the popdb progressive-query-optimization library.
///
/// Typical usage:
///   #include "popdb.h"
///   popdb::Catalog catalog;
///   popdb::LoadCsvFile("t", "t.csv", &catalog);
///   auto stmt = popdb::sql::ParseSql(catalog, "SELECT ... FROM t ...");
///   popdb::ProgressiveExecutor exec(catalog, popdb::OptimizerConfig{},
///                                   popdb::PopConfig{});
///   auto rows = exec.Execute(stmt.value().query);
///
/// Individual components can be included directly; see README.md for the
/// module map.

#include "core/leo.h"               // IWYU pragma: export
#include "core/pop.h"               // IWYU pragma: export
#include "opt/optimizer.h"          // IWYU pragma: export
#include "opt/query.h"              // IWYU pragma: export
#include "runtime/query_service.h"  // IWYU pragma: export
#include "sql/binder.h"             // IWYU pragma: export
#include "storage/catalog.h"        // IWYU pragma: export
#include "storage/csv.h"            // IWYU pragma: export

#endif  // POPDB_POPDB_H_
