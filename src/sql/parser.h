#ifndef POPDB_SQL_PARSER_H_
#define POPDB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/agg.h"
#include "exec/expr.h"

namespace popdb::sql {

/// A (possibly qualified) column reference in the AST.
struct AstColumn {
  std::string qualifier;  ///< Table name or alias; empty if unqualified.
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// One SELECT-list item: a column, or an aggregate over a column / '*'.
struct AstSelectItem {
  bool is_aggregate = false;
  AggFunc func = AggFunc::kCount;
  bool count_star = false;  ///< COUNT(*).
  AstColumn column;         ///< Unused for COUNT(*).
  std::string alias;        ///< AS alias (may be empty).
};

/// A conjunct of the WHERE clause: either a column-literal restriction
/// (including IN/BETWEEN/LIKE and '?' parameter markers) or a
/// column = column equi-join predicate.
struct AstComparison {
  AstColumn lhs;
  PredKind kind = PredKind::kEq;
  bool rhs_is_column = false;  ///< Equi-join predicate.
  AstColumn rhs_column;
  bool is_param = false;  ///< RHS is a '?' marker.
  Value value;            ///< Literal RHS (or BETWEEN lower bound).
  Value value2;           ///< BETWEEN upper bound.
  std::vector<Value> in_list;
};

/// HAVING conjunct: an aggregate (or group-by column) compared to a
/// literal.
struct AstHaving {
  bool is_aggregate = false;
  AggFunc func = AggFunc::kCount;
  bool count_star = false;
  AstColumn column;  ///< Aggregate argument, or the group-by column.
  PredKind kind = PredKind::kEq;
  Value value;
  Value value2;  ///< BETWEEN upper bound.
};

/// ORDER BY key: a 1-based output position, or an output column/alias.
struct AstOrderItem {
  bool by_position = false;
  int position = 0;  ///< 1-based.
  AstColumn column;
  bool descending = false;
};

/// Parsed SELECT statement.
struct AstSelect {
  bool explain = false;   ///< EXPLAIN prefix.
  bool distinct = false;
  bool select_star = false;
  std::vector<AstSelectItem> items;
  struct TableRef {
    std::string table;
    std::string alias;  ///< Defaults to the table name.
  };
  std::vector<TableRef> from;
  std::vector<AstComparison> where;  ///< AND-ed conjuncts.
  std::vector<AstColumn> group_by;
  std::vector<AstHaving> having;
  std::vector<AstOrderItem> order_by;
  int64_t limit = -1;
};

/// A literal position in a DML statement: a Value or a '?' marker bound
/// from the request's parameter list.
struct AstDmlValue {
  bool is_param = false;
  Value value;
};

/// Parsed INSERT statement.
struct AstInsert {
  std::string table;
  /// Explicit column list; empty = full schema order.
  std::vector<std::string> columns;
  std::vector<std::vector<AstDmlValue>> rows;
};

/// One UPDATE assignment: `col = value` or the same-column numeric delta
/// `col = col + value` / `col = col - value`.
struct AstSetClause {
  std::string column;
  bool is_delta = false;
  std::string delta_column;  ///< Must name `column` again (binder-checked).
  bool negate = false;       ///< '-' delta.
  AstDmlValue value;
};

/// Parsed UPDATE statement.
struct AstUpdate {
  std::string table;
  std::vector<AstSetClause> sets;
  std::vector<AstComparison> where;  ///< AND-ed; single-table restrictions.
};

/// Parsed DELETE statement.
struct AstDelete {
  std::string table;
  std::vector<AstComparison> where;
};

enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

/// Any parsed statement. Exactly the member selected by `kind` is
/// meaningful.
struct AstStatement {
  StatementKind kind = StatementKind::kSelect;
  AstSelect select;
  AstInsert insert;
  AstUpdate update;
  AstDelete delete_;
};

/// Parses one SELECT statement (optionally prefixed with EXPLAIN and
/// terminated with ';'). The supported grammar is the SPJ + aggregation
/// fragment the engine executes:
///
///   [EXPLAIN] SELECT [DISTINCT] select_item (, select_item)*
///   FROM table [alias] (, table [alias])* | ... JOIN ... ON col = col
///   [WHERE conjunct (AND conjunct)*]
///   [GROUP BY col (, col)*]
///   [HAVING having (AND having)*]
///   [ORDER BY key [ASC|DESC] (, key [ASC|DESC])*]
///   [LIMIT n]
///
/// Disjunctions (OR) are rejected with a clear error (the optimizer's
/// predicate model is conjunctive, as in the paper's experiments).
Result<AstSelect> Parse(const std::string& sql);

/// Parses one statement of any supported kind. DML grammar:
///
///   INSERT INTO table [(col (, col)*)] VALUES (v (, v)*) (, (...))*
///   UPDATE table SET col = v | col = col + v | col = col - v
///          (, ...)* [WHERE conjunct (AND conjunct)*]
///   DELETE FROM table [WHERE conjunct (AND conjunct)*]
///
/// where v is a literal, NULL, or a '?' parameter marker (literals may be
/// sign-prefixed). SELECT text parses exactly as Parse() does.
Result<AstStatement> ParseStatement(const std::string& sql);

}  // namespace popdb::sql

#endif  // POPDB_SQL_PARSER_H_
