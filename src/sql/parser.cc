#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace popdb::sql {

namespace {

/// Token cursor with convenience matchers; all errors carry the byte
/// position of the offending token.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const {
    const size_t idx = pos_ + static_cast<size_t>(ahead);
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchKeyword(const char* kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekSymbol(const char* sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StrFormat(
        "%s at position %d (near '%s')", message.c_str(), Peek().position,
        Peek().text.c_str()));
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Parses [qualifier .] column.
Result<AstColumn> ParseColumn(Cursor* cur) {
  if (cur->Peek().kind != TokenKind::kIdent) {
    return cur->Error("expected column name");
  }
  AstColumn col;
  col.column = cur->Advance().text;
  if (cur->MatchSymbol(".")) {
    if (cur->Peek().kind != TokenKind::kIdent) {
      return cur->Error("expected column name after '.'");
    }
    col.qualifier = std::move(col.column);
    col.column = cur->Advance().text;
  }
  return col;
}

/// Parses an integer/decimal/string literal into a Value.
Result<Value> ParseLiteral(Cursor* cur) {
  const Token& tok = cur->Peek();
  switch (tok.kind) {
    case TokenKind::kInt: {
      const int64_t v = tok.int_value;
      cur->Advance();
      return Value::Int(v);
    }
    case TokenKind::kDouble: {
      const double v = tok.double_value;
      cur->Advance();
      return Value::Double(v);
    }
    case TokenKind::kString: {
      std::string v = tok.text;
      cur->Advance();
      return Value::String(std::move(v));
    }
    case TokenKind::kKeyword:
      if (tok.text == "NULL") {
        cur->Advance();
        return Value::Null();
      }
      [[fallthrough]];
    default:
      return cur->Error("expected literal");
  }
}

/// Maps a comparison symbol to PredKind.
bool SymbolToPredKind(const std::string& sym, PredKind* out) {
  if (sym == "=") {
    *out = PredKind::kEq;
  } else if (sym == "<>") {
    *out = PredKind::kNe;
  } else if (sym == "<") {
    *out = PredKind::kLt;
  } else if (sym == "<=") {
    *out = PredKind::kLe;
  } else if (sym == ">") {
    *out = PredKind::kGt;
  } else if (sym == ">=") {
    *out = PredKind::kGe;
  } else {
    return false;
  }
  return true;
}

/// Parses AGGFUNC '(' arg ')' after the keyword has been peeked. Returns
/// false via `*is_agg` if the cursor is not at an aggregate.
Result<bool> TryParseAggregate(Cursor* cur, AggFunc* func, bool* count_star,
                               AstColumn* column) {
  const Token& tok = cur->Peek();
  if (tok.kind != TokenKind::kKeyword) return false;
  if (tok.text == "COUNT") {
    *func = AggFunc::kCount;
  } else if (tok.text == "SUM") {
    *func = AggFunc::kSum;
  } else if (tok.text == "MIN") {
    *func = AggFunc::kMin;
  } else if (tok.text == "MAX") {
    *func = AggFunc::kMax;
  } else if (tok.text == "AVG") {
    *func = AggFunc::kAvg;
  } else {
    return false;
  }
  cur->Advance();
  if (!cur->MatchSymbol("(")) return cur->Error("expected '('");
  *count_star = false;
  if (cur->MatchSymbol("*")) {
    if (*func != AggFunc::kCount) {
      return cur->Error("'*' is only valid in COUNT(*)");
    }
    *count_star = true;
  } else {
    Result<AstColumn> col = ParseColumn(cur);
    if (!col.ok()) return col.status();
    *column = std::move(col.value());
  }
  if (!cur->MatchSymbol(")")) return cur->Error("expected ')'");
  return true;
}

/// Parses one WHERE/ON conjunct.
Result<AstComparison> ParseComparison(Cursor* cur) {
  AstComparison cmp;
  Result<AstColumn> lhs = ParseColumn(cur);
  if (!lhs.ok()) return lhs.status();
  cmp.lhs = std::move(lhs.value());

  if (cur->MatchKeyword("BETWEEN")) {
    cmp.kind = PredKind::kBetween;
    Result<Value> lo = ParseLiteral(cur);
    if (!lo.ok()) return lo.status();
    if (!cur->MatchKeyword("AND")) {
      return cur->Error("expected AND in BETWEEN");
    }
    Result<Value> hi = ParseLiteral(cur);
    if (!hi.ok()) return hi.status();
    cmp.value = std::move(lo.value());
    cmp.value2 = std::move(hi.value());
    return cmp;
  }
  if (cur->MatchKeyword("LIKE")) {
    cmp.kind = PredKind::kLike;
    if (cur->MatchSymbol("?")) {
      cmp.is_param = true;
      return cmp;
    }
    Result<Value> pattern = ParseLiteral(cur);
    if (!pattern.ok()) return pattern.status();
    if (pattern.value().type() != ValueType::kString) {
      return cur->Error("LIKE pattern must be a string");
    }
    cmp.value = std::move(pattern.value());
    return cmp;
  }
  if (cur->MatchKeyword("IN")) {
    cmp.kind = PredKind::kIn;
    if (!cur->MatchSymbol("(")) return cur->Error("expected '(' after IN");
    do {
      Result<Value> item = ParseLiteral(cur);
      if (!item.ok()) return item.status();
      cmp.in_list.push_back(std::move(item.value()));
    } while (cur->MatchSymbol(","));
    if (!cur->MatchSymbol(")")) return cur->Error("expected ')'");
    return cmp;
  }
  if (cur->Peek().kind != TokenKind::kSymbol ||
      !SymbolToPredKind(cur->Peek().text, &cmp.kind)) {
    return cur->Error("expected comparison operator");
  }
  cur->Advance();
  if (cur->Peek().kind == TokenKind::kIdent) {
    Result<AstColumn> rhs = ParseColumn(cur);
    if (!rhs.ok()) return rhs.status();
    cmp.rhs_is_column = true;
    cmp.rhs_column = std::move(rhs.value());
    return cmp;
  }
  if (cur->MatchSymbol("?")) {
    cmp.is_param = true;
    return cmp;
  }
  Result<Value> literal = ParseLiteral(cur);
  if (!literal.ok()) return literal.status();
  cmp.value = std::move(literal.value());
  return cmp;
}

Result<AstSelect> ParseSelect(Cursor* cur) {
  AstSelect sel;
  sel.explain = cur->MatchKeyword("EXPLAIN");
  if (!cur->MatchKeyword("SELECT")) return cur->Error("expected SELECT");
  sel.distinct = cur->MatchKeyword("DISTINCT");

  // Select list.
  if (cur->MatchSymbol("*")) {
    sel.select_star = true;
  } else {
    do {
      AstSelectItem item;
      Result<bool> agg = TryParseAggregate(cur, &item.func,
                                           &item.count_star, &item.column);
      if (!agg.ok()) return agg.status();
      if (agg.value()) {
        item.is_aggregate = true;
      } else {
        Result<AstColumn> col = ParseColumn(cur);
        if (!col.ok()) return col.status();
        item.column = std::move(col.value());
      }
      if (cur->MatchKeyword("AS")) {
        if (cur->Peek().kind != TokenKind::kIdent) {
          return cur->Error("expected alias after AS");
        }
        item.alias = cur->Advance().text;
      }
      sel.items.push_back(std::move(item));
    } while (cur->MatchSymbol(","));
  }

  // FROM clause: comma list and/or JOIN ... ON chains.
  if (!cur->MatchKeyword("FROM")) return cur->Error("expected FROM");
  auto parse_table_ref = [&]() -> Status {
    if (cur->Peek().kind != TokenKind::kIdent) {
      return cur->Error("expected table name");
    }
    AstSelect::TableRef ref;
    ref.table = cur->Advance().text;
    ref.alias = ref.table;
    if (cur->MatchKeyword("AS")) {
      if (cur->Peek().kind != TokenKind::kIdent) {
        return cur->Error("expected alias after AS");
      }
      ref.alias = cur->Advance().text;
    } else if (cur->Peek().kind == TokenKind::kIdent) {
      ref.alias = cur->Advance().text;
    }
    sel.from.push_back(std::move(ref));
    return Status::Ok();
  };
  Status s = parse_table_ref();
  if (!s.ok()) return s;
  while (true) {
    if (cur->MatchSymbol(",")) {
      s = parse_table_ref();
      if (!s.ok()) return s;
    } else if (cur->MatchKeyword("JOIN")) {
      s = parse_table_ref();
      if (!s.ok()) return s;
      if (!cur->MatchKeyword("ON")) return cur->Error("expected ON");
      do {
        Result<AstComparison> cmp = ParseComparison(cur);
        if (!cmp.ok()) return cmp.status();
        sel.where.push_back(std::move(cmp.value()));
      } while (cur->MatchKeyword("AND"));
    } else {
      break;
    }
  }

  if (cur->MatchKeyword("WHERE")) {
    do {
      if (cur->PeekKeyword("OR")) {
        return cur->Error("OR is not supported (conjunctive predicates only)");
      }
      Result<AstComparison> cmp = ParseComparison(cur);
      if (!cmp.ok()) return cmp.status();
      sel.where.push_back(std::move(cmp.value()));
      if (cur->PeekKeyword("OR")) {
        return cur->Error("OR is not supported (conjunctive predicates only)");
      }
    } while (cur->MatchKeyword("AND"));
  }

  if (cur->MatchKeyword("GROUP")) {
    if (!cur->MatchKeyword("BY")) return cur->Error("expected BY");
    do {
      Result<AstColumn> col = ParseColumn(cur);
      if (!col.ok()) return col.status();
      sel.group_by.push_back(std::move(col.value()));
    } while (cur->MatchSymbol(","));
  }

  if (cur->MatchKeyword("HAVING")) {
    do {
      AstHaving h;
      Result<bool> agg =
          TryParseAggregate(cur, &h.func, &h.count_star, &h.column);
      if (!agg.ok()) return agg.status();
      if (agg.value()) {
        h.is_aggregate = true;
      } else {
        Result<AstColumn> col = ParseColumn(cur);
        if (!col.ok()) return col.status();
        h.column = std::move(col.value());
      }
      if (cur->MatchKeyword("BETWEEN")) {
        h.kind = PredKind::kBetween;
        Result<Value> lo = ParseLiteral(cur);
        if (!lo.ok()) return lo.status();
        if (!cur->MatchKeyword("AND")) {
          return cur->Error("expected AND in BETWEEN");
        }
        Result<Value> hi = ParseLiteral(cur);
        if (!hi.ok()) return hi.status();
        h.value = std::move(lo.value());
        h.value2 = std::move(hi.value());
      } else {
        if (cur->Peek().kind != TokenKind::kSymbol ||
            !SymbolToPredKind(cur->Peek().text, &h.kind)) {
          return cur->Error("expected comparison operator in HAVING");
        }
        cur->Advance();
        Result<Value> literal = ParseLiteral(cur);
        if (!literal.ok()) return literal.status();
        h.value = std::move(literal.value());
      }
      sel.having.push_back(std::move(h));
    } while (cur->MatchKeyword("AND"));
  }

  if (cur->MatchKeyword("ORDER")) {
    if (!cur->MatchKeyword("BY")) return cur->Error("expected BY");
    do {
      AstOrderItem item;
      if (cur->Peek().kind == TokenKind::kInt) {
        item.by_position = true;
        item.position = static_cast<int>(cur->Advance().int_value);
      } else {
        Result<AstColumn> col = ParseColumn(cur);
        if (!col.ok()) return col.status();
        item.column = std::move(col.value());
      }
      if (cur->MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        cur->MatchKeyword("ASC");
      }
      sel.order_by.push_back(std::move(item));
    } while (cur->MatchSymbol(","));
  }

  if (cur->MatchKeyword("LIMIT")) {
    if (cur->Peek().kind != TokenKind::kInt) {
      return cur->Error("expected integer after LIMIT");
    }
    sel.limit = cur->Advance().int_value;
  }

  cur->MatchSymbol(";");
  if (!cur->AtEnd()) return cur->Error("unexpected trailing input");
  return sel;
}

/// Parses a DML value position: '?', or an optionally sign-prefixed
/// literal / NULL.
Result<AstDmlValue> ParseDmlValue(Cursor* cur) {
  AstDmlValue v;
  if (cur->MatchSymbol("?")) {
    v.is_param = true;
    return v;
  }
  bool negate = false;
  if (cur->MatchSymbol("-")) {
    negate = true;
  } else {
    cur->MatchSymbol("+");
  }
  Result<Value> lit = ParseLiteral(cur);
  if (!lit.ok()) return lit.status();
  v.value = std::move(lit.value());
  if (negate) {
    if (v.value.type() == ValueType::kInt) {
      v.value = Value::Int(-v.value.AsInt());
    } else if (v.value.type() == ValueType::kDouble) {
      v.value = Value::Double(-v.value.AsDouble());
    } else {
      return cur->Error("'-' requires a numeric literal");
    }
  }
  return v;
}

/// Parses the shared [WHERE conjunct (AND conjunct)*] tail of UPDATE and
/// DELETE, rejecting OR like the SELECT path does.
Status ParseDmlWhere(Cursor* cur, std::vector<AstComparison>* where) {
  if (!cur->MatchKeyword("WHERE")) return Status::Ok();
  do {
    if (cur->PeekKeyword("OR")) {
      return cur->Error("OR is not supported (conjunctive predicates only)");
    }
    Result<AstComparison> cmp = ParseComparison(cur);
    if (!cmp.ok()) return cmp.status();
    where->push_back(std::move(cmp.value()));
    if (cur->PeekKeyword("OR")) {
      return cur->Error("OR is not supported (conjunctive predicates only)");
    }
  } while (cur->MatchKeyword("AND"));
  return Status::Ok();
}

Status ExpectStatementEnd(Cursor* cur) {
  cur->MatchSymbol(";");
  if (!cur->AtEnd()) return cur->Error("unexpected trailing input");
  return Status::Ok();
}

Result<AstInsert> ParseInsert(Cursor* cur) {
  AstInsert ins;
  if (!cur->MatchKeyword("INSERT")) return cur->Error("expected INSERT");
  if (!cur->MatchKeyword("INTO")) return cur->Error("expected INTO");
  if (cur->Peek().kind != TokenKind::kIdent) {
    return cur->Error("expected table name");
  }
  ins.table = cur->Advance().text;
  if (cur->MatchSymbol("(")) {
    do {
      if (cur->Peek().kind != TokenKind::kIdent) {
        return cur->Error("expected column name");
      }
      ins.columns.push_back(cur->Advance().text);
    } while (cur->MatchSymbol(","));
    if (!cur->MatchSymbol(")")) return cur->Error("expected ')'");
  }
  if (!cur->MatchKeyword("VALUES")) return cur->Error("expected VALUES");
  do {
    if (!cur->MatchSymbol("(")) return cur->Error("expected '('");
    std::vector<AstDmlValue> row;
    do {
      Result<AstDmlValue> v = ParseDmlValue(cur);
      if (!v.ok()) return v.status();
      row.push_back(std::move(v.value()));
    } while (cur->MatchSymbol(","));
    if (!cur->MatchSymbol(")")) return cur->Error("expected ')'");
    ins.rows.push_back(std::move(row));
  } while (cur->MatchSymbol(","));
  Status s = ExpectStatementEnd(cur);
  if (!s.ok()) return s;
  return ins;
}

Result<AstUpdate> ParseUpdate(Cursor* cur) {
  AstUpdate upd;
  if (!cur->MatchKeyword("UPDATE")) return cur->Error("expected UPDATE");
  if (cur->Peek().kind != TokenKind::kIdent) {
    return cur->Error("expected table name");
  }
  upd.table = cur->Advance().text;
  if (!cur->MatchKeyword("SET")) return cur->Error("expected SET");
  do {
    AstSetClause set;
    if (cur->Peek().kind != TokenKind::kIdent) {
      return cur->Error("expected column name");
    }
    set.column = cur->Advance().text;
    if (!cur->MatchSymbol("=")) return cur->Error("expected '='");
    // `col = col + v` / `col = col - v` delta form: detect an identifier
    // followed by a sign.
    if (cur->Peek().kind == TokenKind::kIdent &&
        (cur->Peek(1).kind == TokenKind::kSymbol &&
         (cur->Peek(1).text == "+" || cur->Peek(1).text == "-"))) {
      set.is_delta = true;
      set.delta_column = cur->Advance().text;
      set.negate = cur->Advance().text == "-";
      Result<AstDmlValue> v = ParseDmlValue(cur);
      if (!v.ok()) return v.status();
      set.value = std::move(v.value());
    } else if (cur->Peek().kind == TokenKind::kIdent) {
      return cur->Error("expected literal, '?', or 'col + literal'");
    } else {
      Result<AstDmlValue> v = ParseDmlValue(cur);
      if (!v.ok()) return v.status();
      set.value = std::move(v.value());
    }
    upd.sets.push_back(std::move(set));
  } while (cur->MatchSymbol(","));
  Status s = ParseDmlWhere(cur, &upd.where);
  if (!s.ok()) return s;
  s = ExpectStatementEnd(cur);
  if (!s.ok()) return s;
  return upd;
}

Result<AstDelete> ParseDelete(Cursor* cur) {
  AstDelete del;
  if (!cur->MatchKeyword("DELETE")) return cur->Error("expected DELETE");
  if (!cur->MatchKeyword("FROM")) return cur->Error("expected FROM");
  if (cur->Peek().kind != TokenKind::kIdent) {
    return cur->Error("expected table name");
  }
  del.table = cur->Advance().text;
  Status s = ParseDmlWhere(cur, &del.where);
  if (!s.ok()) return s;
  s = ExpectStatementEnd(cur);
  if (!s.ok()) return s;
  return del;
}

}  // namespace

Result<AstSelect> Parse(const std::string& sql) {
  Result<std::vector<Token>> tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Cursor cur(std::move(tokens.value()));
  return ParseSelect(&cur);
}

Result<AstStatement> ParseStatement(const std::string& sql) {
  Result<std::vector<Token>> tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Cursor cur(std::move(tokens.value()));
  AstStatement stmt;
  if (cur.PeekKeyword("INSERT")) {
    stmt.kind = StatementKind::kInsert;
    Result<AstInsert> ins = ParseInsert(&cur);
    if (!ins.ok()) return ins.status();
    stmt.insert = std::move(ins.value());
    return stmt;
  }
  if (cur.PeekKeyword("UPDATE")) {
    stmt.kind = StatementKind::kUpdate;
    Result<AstUpdate> upd = ParseUpdate(&cur);
    if (!upd.ok()) return upd.status();
    stmt.update = std::move(upd.value());
    return stmt;
  }
  if (cur.PeekKeyword("DELETE")) {
    stmt.kind = StatementKind::kDelete;
    Result<AstDelete> del = ParseDelete(&cur);
    if (!del.ok()) return del.status();
    stmt.delete_ = std::move(del.value());
    return stmt;
  }
  stmt.kind = StatementKind::kSelect;
  Result<AstSelect> sel = ParseSelect(&cur);
  if (!sel.ok()) return sel.status();
  stmt.select = std::move(sel.value());
  return stmt;
}

}  // namespace popdb::sql
