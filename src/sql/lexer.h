#ifndef POPDB_SQL_LEXER_H_
#define POPDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace popdb::sql {

/// Token kinds produced by the SQL lexer. Keywords are case-insensitive
/// and surface as kKeyword with upper-cased text.
enum class TokenKind {
  kEnd,
  kIdent,    ///< Bare identifier (table/column/alias), original case kept.
  kKeyword,  ///< Reserved word, upper-cased in `text`.
  kInt,      ///< Integer literal (value in `int_value`).
  kDouble,   ///< Decimal literal (value in `double_value`).
  kString,   ///< 'single quoted' string (unescaped content in `text`).
  kSymbol,   ///< Operator/punctuation: ( ) , . * ? = <> <= >= < > + -
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  int position = 0;  ///< Byte offset in the input (for error messages).
};

/// Tokenizes `sql`. Returns the token list ending with a kEnd token, or an
/// error pointing at the offending byte. Supports: identifiers
/// ([A-Za-z_][A-Za-z0-9_]*), integer and decimal literals, 'strings' with
/// '' as the escaped quote, line comments (--), and the symbols above.
Result<std::vector<Token>> Lex(const std::string& sql);

/// True if `word` (upper-cased) is one of the reserved keywords.
bool IsKeyword(const std::string& upper);

}  // namespace popdb::sql

#endif  // POPDB_SQL_LEXER_H_
