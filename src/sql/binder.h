#ifndef POPDB_SQL_BINDER_H_
#define POPDB_SQL_BINDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "opt/query.h"
#include "sql/parser.h"
#include "storage/catalog.h"
#include "txn/write.h"

namespace popdb::sql {

/// A bound statement: either an engine-executable QuerySpec (reads) or a
/// txn::WriteStatement (DML), plus statement-level flags that are not part
/// of the query itself.
struct BoundStatement {
  QuerySpec query{""};
  bool explain = false;
  /// True for INSERT/UPDATE/DELETE; `write` is then the payload and
  /// `query` is unused.
  bool is_write = false;
  txn::WriteStatement write;
};

/// Resolves a parsed SELECT against the catalog into a QuerySpec:
/// table/alias lookup, (qualified or unambiguous unqualified) column
/// resolution, WHERE conjunct classification into local restrictions vs.
/// equi-join predicates, '?' markers bound from `params` in occurrence
/// order, GROUP BY / HAVING / ORDER BY / DISTINCT / LIMIT mapping.
///
/// Restrictions (each rejected with a descriptive error): aggregate select
/// lists must name the group-by columns first and every GROUP BY column
/// must be selected (the engine's aggregate output is group columns
/// followed by aggregates); non-equality column-to-column comparisons are
/// unsupported.
Result<BoundStatement> Bind(const Catalog& catalog, const AstSelect& ast,
                            std::vector<Value> params = {});

/// One-call facade: lex + parse + bind.
Result<BoundStatement> ParseSql(const Catalog& catalog,
                                const std::string& sql,
                                std::vector<Value> params = {});

/// Resolves a parsed statement of any kind. DML binding: column names map
/// to schema positions (INSERT columns not listed become NULL), integer
/// literals coerce into double columns, '?' markers bind from `params` in
/// textual order (VALUES, then SET, then WHERE), and WHERE conjuncts must
/// be single-table restrictions (no column-to-column comparisons).
Result<BoundStatement> BindStatement(const Catalog& catalog,
                                     const AstStatement& ast,
                                     std::vector<Value> params = {});

/// One-call facade for any statement kind: lex + parse + bind.
Result<BoundStatement> ParseSqlStatement(const Catalog& catalog,
                                         const std::string& sql,
                                         std::vector<Value> params = {});

/// Renders a lex/parse/bind failure for presentation (shell output, wire
/// error frames): the status message plus, when the message carries a
/// "position N" byte offset into `sql`, the statement with a caret line
/// marking the offending spot. Falls back to the plain message when no
/// position is present.
std::string AnnotateError(const std::string& sql, const Status& status);

}  // namespace popdb::sql

#endif  // POPDB_SQL_BINDER_H_
