#ifndef POPDB_SQL_BINDER_H_
#define POPDB_SQL_BINDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "opt/query.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace popdb::sql {

/// A bound statement: the engine-executable QuerySpec plus statement-level
/// flags that are not part of the query itself.
struct BoundStatement {
  QuerySpec query{""};
  bool explain = false;
};

/// Resolves a parsed SELECT against the catalog into a QuerySpec:
/// table/alias lookup, (qualified or unambiguous unqualified) column
/// resolution, WHERE conjunct classification into local restrictions vs.
/// equi-join predicates, '?' markers bound from `params` in occurrence
/// order, GROUP BY / HAVING / ORDER BY / DISTINCT / LIMIT mapping.
///
/// Restrictions (each rejected with a descriptive error): aggregate select
/// lists must name the group-by columns first and every GROUP BY column
/// must be selected (the engine's aggregate output is group columns
/// followed by aggregates); non-equality column-to-column comparisons are
/// unsupported.
Result<BoundStatement> Bind(const Catalog& catalog, const AstSelect& ast,
                            std::vector<Value> params = {});

/// One-call facade: lex + parse + bind.
Result<BoundStatement> ParseSql(const Catalog& catalog,
                                const std::string& sql,
                                std::vector<Value> params = {});

}  // namespace popdb::sql

#endif  // POPDB_SQL_BINDER_H_
