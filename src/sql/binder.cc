#include "sql/binder.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "opt/optimizer.h"

namespace popdb::sql {

namespace {

/// Binder scope: FROM-clause tables with their aliases and schemas.
class Scope {
 public:
  Scope(const Catalog& catalog, const QuerySpec& query,
        const std::vector<AstSelect::TableRef>& from)
      : catalog_(catalog), query_(query), from_(from) {}

  /// Resolves `col` to a (table_id, column) pair.
  Result<ColRef> Resolve(const AstColumn& col) const {
    if (!col.qualifier.empty()) {
      for (size_t t = 0; t < from_.size(); ++t) {
        if (from_[t].alias != col.qualifier &&
            from_[t].table != col.qualifier) {
          continue;
        }
        const int pos = ColumnIndex(static_cast<int>(t), col.column);
        if (pos < 0) {
          return Status::InvalidArgument(
              StrFormat("no column '%s' in table '%s'", col.column.c_str(),
                        from_[t].table.c_str()));
        }
        return ColRef{static_cast<int>(t), pos};
      }
      return Status::InvalidArgument("unknown table or alias '" +
                                     col.qualifier + "'");
    }
    // Unqualified: must be unambiguous across the FROM tables.
    int found_table = -1;
    int found_col = -1;
    for (size_t t = 0; t < from_.size(); ++t) {
      const int pos = ColumnIndex(static_cast<int>(t), col.column);
      if (pos < 0) continue;
      if (found_table >= 0) {
        return Status::InvalidArgument("ambiguous column '" + col.column +
                                       "' (qualify it with a table alias)");
      }
      found_table = static_cast<int>(t);
      found_col = pos;
    }
    if (found_table < 0) {
      return Status::InvalidArgument("unknown column '" + col.column + "'");
    }
    return ColRef{found_table, found_col};
  }

 private:
  int ColumnIndex(int table_id, const std::string& column) const {
    const Table* table = catalog_.GetTable(query_.table_name(table_id));
    return table == nullptr ? -1 : table->schema().IndexOf(column);
  }

  const Catalog& catalog_;
  const QuerySpec& query_;
  const std::vector<AstSelect::TableRef>& from_;
};

bool SameColRef(const ColRef& a, const ColRef& b) {
  return a.table_id == b.table_id && a.column == b.column;
}

}  // namespace

Result<BoundStatement> Bind(const Catalog& catalog, const AstSelect& ast,
                            std::vector<Value> params) {
  BoundStatement out;
  out.explain = ast.explain;
  QuerySpec& q = out.query;
  q = QuerySpec("sql");

  // --- FROM: tables and alias uniqueness.
  if (ast.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  for (const AstSelect::TableRef& ref : ast.from) {
    if (catalog.GetTable(ref.table) == nullptr) {
      return Status::NotFound("no such table: " + ref.table);
    }
    for (int t = 0; t < q.num_tables(); ++t) {
      // Aliases must be unique; repeating a bare table name is fine only
      // when an explicit alias disambiguates it.
      if (ast.from[static_cast<size_t>(t)].alias == ref.alias) {
        return Status::InvalidArgument(
            "duplicate table alias '" + ref.alias +
            "' (self-joins need distinct aliases)");
      }
    }
    q.AddTable(ref.table);
  }
  Scope scope(catalog, q, ast.from);

  // --- WHERE: split into local restrictions and equi-join predicates;
  // assign '?' parameter indexes in occurrence order.
  int next_param = 0;
  for (const AstComparison& cmp : ast.where) {
    Result<ColRef> lhs = scope.Resolve(cmp.lhs);
    if (!lhs.ok()) return lhs.status();
    if (cmp.rhs_is_column) {
      Result<ColRef> rhs = scope.Resolve(cmp.rhs_column);
      if (!rhs.ok()) return rhs.status();
      if (cmp.kind != PredKind::kEq) {
        return Status::Unimplemented(
            "only equality column-to-column comparisons are supported");
      }
      if (lhs.value().table_id == rhs.value().table_id) {
        return Status::Unimplemented(
            "column comparisons within one table are not supported");
      }
      q.AddJoin(lhs.value(), rhs.value());
      continue;
    }
    if (cmp.is_param) {
      q.AddParamPred(lhs.value(), cmp.kind, next_param);
      if (next_param >= static_cast<int>(params.size())) {
        return Status::InvalidArgument(
            "not enough parameter bindings for the '?' markers");
      }
      ++next_param;
      continue;
    }
    if (cmp.kind == PredKind::kIn) {
      q.AddInPred(lhs.value(), cmp.in_list);
    } else {
      q.AddPred(lhs.value(), cmp.kind, cmp.value, cmp.value2);
    }
  }
  for (Value& v : params) q.BindParam(std::move(v));

  // --- Select list / GROUP BY.
  const bool has_agg_items =
      std::any_of(ast.items.begin(), ast.items.end(),
                  [](const AstSelectItem& i) { return i.is_aggregate; });
  std::vector<ColRef> group_cols;
  std::vector<std::pair<AggFunc, ColRef>> agg_items;
  std::vector<std::string> output_names;  // For ORDER BY by name.

  if (has_agg_items || !ast.group_by.empty()) {
    if (ast.select_star) {
      return Status::Unimplemented(
          "SELECT * with GROUP BY/aggregates is not supported");
    }
    // Resolve the GROUP BY columns.
    for (const AstColumn& col : ast.group_by) {
      Result<ColRef> r = scope.Resolve(col);
      if (!r.ok()) return r.status();
      group_cols.push_back(r.value());
    }
    // The engine's aggregate output is [group columns..., aggregates...]:
    // require the select list in that shape.
    size_t item_idx = 0;
    for (; item_idx < ast.items.size() &&
           !ast.items[item_idx].is_aggregate;
         ++item_idx) {
      Result<ColRef> r = scope.Resolve(ast.items[item_idx].column);
      if (!r.ok()) return r.status();
      const size_t pos = item_idx;
      if (pos >= group_cols.size() ||
          !SameColRef(group_cols[pos], r.value())) {
        return Status::InvalidArgument(
            "aggregate select lists must start with the GROUP BY columns "
            "in order (column '" + ast.items[item_idx].column.ToString() +
            "')");
      }
      output_names.push_back(ast.items[item_idx].alias.empty()
                                 ? ast.items[item_idx].column.column
                                 : ast.items[item_idx].alias);
    }
    if (item_idx != group_cols.size()) {
      return Status::InvalidArgument(
          "every GROUP BY column must appear in the select list");
    }
    for (; item_idx < ast.items.size(); ++item_idx) {
      const AstSelectItem& item = ast.items[item_idx];
      if (!item.is_aggregate) {
        return Status::InvalidArgument(
            "non-aggregate column '" + item.column.ToString() +
            "' after aggregates must be part of GROUP BY");
      }
      ColRef arg{};
      if (!item.count_star) {
        Result<ColRef> r = scope.Resolve(item.column);
        if (!r.ok()) return r.status();
        arg = r.value();
      }
      agg_items.emplace_back(item.func, arg);
      output_names.push_back(item.alias);
    }
    if (agg_items.empty() && group_cols.empty()) {
      return Status::InvalidArgument("empty aggregate select list");
    }
    for (const ColRef& c : group_cols) q.AddGroupBy(c);
    for (const auto& [func, arg] : agg_items) q.AddAgg(func, arg);
  } else if (!ast.select_star) {
    for (const AstSelectItem& item : ast.items) {
      Result<ColRef> r = scope.Resolve(item.column);
      if (!r.ok()) return r.status();
      q.AddProjection(r.value());
      output_names.push_back(item.alias.empty() ? item.column.column
                                                : item.alias);
    }
  }
  q.SetDistinct(ast.distinct);

  // --- HAVING: map onto output positions.
  for (const AstHaving& h : ast.having) {
    int pos = -1;
    if (h.is_aggregate) {
      ColRef arg{};
      if (!h.count_star) {
        Result<ColRef> r = scope.Resolve(h.column);
        if (!r.ok()) return r.status();
        arg = r.value();
      }
      for (size_t a = 0; a < agg_items.size(); ++a) {
        if (agg_items[a].first != h.func) continue;
        if (h.func == AggFunc::kCount ||
            SameColRef(agg_items[a].second, arg)) {
          pos = static_cast<int>(group_cols.size() + a);
          break;
        }
      }
      if (pos < 0) {
        return Status::InvalidArgument(
            "HAVING aggregate must also appear in the select list");
      }
    } else {
      Result<ColRef> r = scope.Resolve(h.column);
      if (!r.ok()) return r.status();
      for (size_t g = 0; g < group_cols.size(); ++g) {
        if (SameColRef(group_cols[g], r.value())) {
          pos = static_cast<int>(g);
          break;
        }
      }
      if (pos < 0) {
        return Status::InvalidArgument(
            "HAVING column must be a GROUP BY column");
      }
    }
    q.AddHaving(pos, h.kind, h.value, h.value2);
  }

  // --- ORDER BY: map onto output positions.
  int output_arity;
  if (q.has_aggregation()) {
    output_arity = static_cast<int>(group_cols.size() + agg_items.size());
  } else if (!q.projections().empty()) {
    output_arity = static_cast<int>(q.projections().size());
  } else {
    const std::vector<int> widths = QueryTableWidths(catalog, q);
    output_arity = 0;
    for (int w : widths) output_arity += w;
  }
  for (const AstOrderItem& item : ast.order_by) {
    int pos = -1;
    if (item.by_position) {
      if (item.position < 1 || item.position > output_arity) {
        return Status::InvalidArgument(
            StrFormat("ORDER BY position %d out of range", item.position));
      }
      pos = item.position - 1;
    } else {
      // Match a select-item alias/name first.
      if (item.column.qualifier.empty()) {
        for (size_t i = 0; i < output_names.size(); ++i) {
          if (output_names[i] == item.column.column) {
            pos = static_cast<int>(i);
            break;
          }
        }
      }
      if (pos < 0) {
        Result<ColRef> r = scope.Resolve(item.column);
        if (!r.ok()) return r.status();
        if (q.has_aggregation()) {
          for (size_t g = 0; g < group_cols.size(); ++g) {
            if (SameColRef(group_cols[g], r.value())) {
              pos = static_cast<int>(g);
              break;
            }
          }
        } else if (!q.projections().empty()) {
          for (size_t p = 0; p < q.projections().size(); ++p) {
            if (SameColRef(q.projections()[p], r.value())) {
              pos = static_cast<int>(p);
              break;
            }
          }
        } else {
          const std::vector<int> widths = QueryTableWidths(catalog, q);
          pos = RowLayout(q.AllTables(), widths).Resolve(r.value());
        }
        if (pos < 0) {
          return Status::InvalidArgument(
              "ORDER BY column '" + item.column.ToString() +
              "' is not part of the output");
        }
      }
    }
    q.AddOrderBy(pos, item.descending);
  }

  if (ast.limit >= 0) q.SetLimit(ast.limit);
  return out;
}

Result<BoundStatement> ParseSql(const Catalog& catalog,
                                const std::string& sql,
                                std::vector<Value> params) {
  Result<AstSelect> ast = Parse(sql);
  if (!ast.ok()) return ast.status();
  return Bind(catalog, ast.value(), std::move(params));
}

namespace {

/// Sequential '?' binding cursor over the request's parameter list.
class ParamCursor {
 public:
  explicit ParamCursor(std::vector<Value> params)
      : params_(std::move(params)) {}

  Result<Value> Next() {
    if (next_ >= params_.size()) {
      return Status::InvalidArgument(
          "not enough parameter bindings for the '?' markers");
    }
    return params_[next_++];
  }

 private:
  std::vector<Value> params_;
  size_t next_ = 0;
};

/// Integer literals flow into double columns (the only implicit coercion).
Value CoerceTo(ValueType type, Value v) {
  if (!v.is_null() && type == ValueType::kDouble &&
      v.type() == ValueType::kInt) {
    return Value::Double(static_cast<double>(v.AsInt()));
  }
  return v;
}

Result<Value> BindDmlValue(const AstDmlValue& v, ValueType column_type,
                           ParamCursor* params) {
  if (!v.is_param) return CoerceTo(column_type, v.value);
  Result<Value> bound = params->Next();
  if (!bound.ok()) return bound.status();
  return CoerceTo(column_type, std::move(bound.value()));
}

/// Binds the single-table WHERE of an UPDATE/DELETE: every conjunct must be
/// a restriction on `schema`'s columns; positions are schema column
/// indexes, so txn::WriteManager evaluates them directly against rows.
Status BindDmlWhere(const std::string& table, const Schema& schema,
                    const std::vector<AstComparison>& where,
                    ParamCursor* params,
                    std::vector<ResolvedPredicate>* out) {
  for (const AstComparison& cmp : where) {
    if (!cmp.lhs.qualifier.empty() && cmp.lhs.qualifier != table) {
      return Status::InvalidArgument("unknown table or alias '" +
                                     cmp.lhs.qualifier + "'");
    }
    const int pos = schema.IndexOf(cmp.lhs.column);
    if (pos < 0) {
      return Status::InvalidArgument(
          StrFormat("no column '%s' in table '%s'", cmp.lhs.column.c_str(),
                    table.c_str()));
    }
    if (cmp.rhs_is_column) {
      return Status::Unimplemented(
          "column-to-column comparisons are not supported in DML WHERE");
    }
    ResolvedPredicate pred;
    pred.pos = pos;
    pred.kind = cmp.kind;
    if (cmp.is_param) {
      Result<Value> bound = params->Next();
      if (!bound.ok()) return bound.status();
      pred.operand = std::move(bound.value());
    } else {
      pred.operand = cmp.value;
      pred.operand2 = cmp.value2;
      pred.in_list = cmp.in_list;
    }
    out->push_back(std::move(pred));
  }
  return Status::Ok();
}

Result<txn::WriteStatement> BindInsert(const Catalog& catalog,
                                       const AstInsert& ast,
                                       ParamCursor* params) {
  const Table* table = catalog.GetTable(ast.table);
  if (table == nullptr) return Status::NotFound("no such table: " + ast.table);
  const Schema& schema = table->schema();

  // Map the column list (or the full schema order) to schema positions.
  std::vector<int> positions;
  if (ast.columns.empty()) {
    for (int c = 0; c < schema.num_columns(); ++c) positions.push_back(c);
  } else {
    for (const std::string& name : ast.columns) {
      const int pos = schema.IndexOf(name);
      if (pos < 0) {
        return Status::InvalidArgument(
            StrFormat("no column '%s' in table '%s'", name.c_str(),
                      ast.table.c_str()));
      }
      for (int seen : positions) {
        if (seen == pos) {
          return Status::InvalidArgument("duplicate INSERT column '" + name +
                                         "'");
        }
      }
      positions.push_back(pos);
    }
  }

  txn::WriteStatement stmt;
  stmt.op = txn::WriteOp::kInsert;
  stmt.table = ast.table;
  stmt.rows.reserve(ast.rows.size());
  for (const std::vector<AstDmlValue>& ast_row : ast.rows) {
    if (ast_row.size() != positions.size()) {
      return Status::InvalidArgument(
          StrFormat("INSERT row has %d values for %d columns",
                    static_cast<int>(ast_row.size()),
                    static_cast<int>(positions.size())));
    }
    // Unlisted columns are NULL.
    Row row(static_cast<size_t>(schema.num_columns()));
    for (size_t i = 0; i < positions.size(); ++i) {
      const int pos = positions[i];
      Result<Value> v =
          BindDmlValue(ast_row[i], schema.column(pos).type, params);
      if (!v.ok()) return v.status();
      row[static_cast<size_t>(pos)] = std::move(v.value());
    }
    stmt.rows.push_back(std::move(row));
  }
  return stmt;
}

Result<txn::WriteStatement> BindUpdate(const Catalog& catalog,
                                       const AstUpdate& ast,
                                       ParamCursor* params) {
  const Table* table = catalog.GetTable(ast.table);
  if (table == nullptr) return Status::NotFound("no such table: " + ast.table);
  const Schema& schema = table->schema();

  txn::WriteStatement stmt;
  stmt.op = txn::WriteOp::kUpdate;
  stmt.table = ast.table;
  for (const AstSetClause& ast_set : ast.sets) {
    const int pos = schema.IndexOf(ast_set.column);
    if (pos < 0) {
      return Status::InvalidArgument(
          StrFormat("no column '%s' in table '%s'", ast_set.column.c_str(),
                    ast.table.c_str()));
    }
    txn::SetClause set;
    set.column = pos;
    set.is_delta = ast_set.is_delta;
    if (ast_set.is_delta && ast_set.delta_column != ast_set.column) {
      return Status::Unimplemented(
          "UPDATE deltas must reference the assigned column itself "
          "('" + ast_set.column + " = " + ast_set.column + " + ...')");
    }
    Result<Value> v =
        BindDmlValue(ast_set.value, schema.column(pos).type, params);
    if (!v.ok()) return v.status();
    set.value = std::move(v.value());
    if (ast_set.negate) {
      if (set.value.type() == ValueType::kInt) {
        set.value = Value::Int(-set.value.AsInt());
      } else if (set.value.type() == ValueType::kDouble) {
        set.value = Value::Double(-set.value.AsDouble());
      } else {
        return Status::InvalidArgument("delta assignment requires a number");
      }
    }
    stmt.sets.push_back(std::move(set));
  }
  Status s =
      BindDmlWhere(ast.table, schema, ast.where, params, &stmt.where);
  if (!s.ok()) return s;
  return stmt;
}

Result<txn::WriteStatement> BindDelete(const Catalog& catalog,
                                       const AstDelete& ast,
                                       ParamCursor* params) {
  const Table* table = catalog.GetTable(ast.table);
  if (table == nullptr) return Status::NotFound("no such table: " + ast.table);
  txn::WriteStatement stmt;
  stmt.op = txn::WriteOp::kDelete;
  stmt.table = ast.table;
  Status s = BindDmlWhere(ast.table, table->schema(), ast.where, params,
                          &stmt.where);
  if (!s.ok()) return s;
  return stmt;
}

}  // namespace

Result<BoundStatement> BindStatement(const Catalog& catalog,
                                     const AstStatement& ast,
                                     std::vector<Value> params) {
  if (ast.kind == StatementKind::kSelect) {
    return Bind(catalog, ast.select, std::move(params));
  }
  ParamCursor cursor(std::move(params));
  Result<txn::WriteStatement> write = [&]() -> Result<txn::WriteStatement> {
    switch (ast.kind) {
      case StatementKind::kInsert:
        return BindInsert(catalog, ast.insert, &cursor);
      case StatementKind::kUpdate:
        return BindUpdate(catalog, ast.update, &cursor);
      case StatementKind::kDelete:
        return BindDelete(catalog, ast.delete_, &cursor);
      case StatementKind::kSelect:
        break;
    }
    return Status::Internal("unhandled statement kind");
  }();
  if (!write.ok()) return write.status();
  BoundStatement out;
  out.is_write = true;
  out.write = std::move(write.value());
  return out;
}

Result<BoundStatement> ParseSqlStatement(const Catalog& catalog,
                                         const std::string& sql,
                                         std::vector<Value> params) {
  Result<AstStatement> ast = ParseStatement(sql);
  if (!ast.ok()) return ast.status();
  return BindStatement(catalog, ast.value(), std::move(params));
}

std::string AnnotateError(const std::string& sql, const Status& status) {
  const std::string& message = status.message();
  const std::string needle = "position ";
  const size_t at = message.rfind(needle);
  if (at == std::string::npos) return message;
  size_t digits = at + needle.size();
  long offset = -1;
  if (digits < message.size() && std::isdigit(message[digits]) != 0) {
    offset = std::strtol(message.c_str() + digits, nullptr, 10);
  }
  if (offset < 0 || static_cast<size_t>(offset) > sql.size()) {
    return message;
  }
  // Single-line caret rendering; newlines in the statement are flattened
  // so the caret column stays aligned.
  std::string flat = sql;
  for (char& c : flat) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  std::string out = message;
  out += "\n  ";
  out += flat;
  out += "\n  ";
  out.append(static_cast<size_t>(offset), ' ');
  out += "^";
  return out;
}

}  // namespace popdb::sql
