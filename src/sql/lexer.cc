#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace popdb::sql {

namespace {
const char* const kKeywords[] = {
    "SELECT", "DISTINCT", "FROM", "WHERE",  "AND",   "GROUP", "BY",
    "HAVING", "ORDER",    "ASC",  "DESC",   "LIMIT", "AS",    "IN",
    "BETWEEN", "LIKE",    "COUNT", "SUM",   "MIN",   "MAX",   "AVG",
    "EXPLAIN", "NOT",     "OR",   "JOIN",   "ON",    "NULL",
    "INSERT", "INTO",     "VALUES", "UPDATE", "SET", "DELETE",
};

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}
}  // namespace

bool IsKeyword(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      tok.text = sql.substr(i, j - i);
      const std::string upper = ToUpper(tok.text);
      if (IsKeyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdent;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') is_double = true;
        ++j;
      }
      tok.text = sql.substr(i, j - i);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      i = j;
    } else if (c == '\'') {
      std::string content;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // Escaped quote.
            content.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        content.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(StrFormat(
            "unterminated string literal at position %d", tok.position));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(content);
      i = j;
    } else if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      tok.kind = TokenKind::kSymbol;
      tok.text = "<>";
      i += 2;
    } else if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      tok.kind = TokenKind::kSymbol;
      tok.text = "<>";
      i += 2;
    } else if ((c == '<' || c == '>') && i + 1 < n && sql[i + 1] == '=') {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c) + "=";
      i += 2;
    } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == '*' ||
               c == '?' || c == '=' || c == '<' || c == '>' || c == ';' ||
               c == '+' || c == '-') {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at position %d", c,
                    static_cast<int>(i)));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  out.push_back(end);
  return out;
}

}  // namespace popdb::sql
