#include "opt/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace popdb {

namespace {
constexpr double kMinCard = 1e-6;

const ColumnStats* StatsFor(const Catalog& catalog, const QuerySpec& query,
                            int table_id, int column) {
  const TableStats* ts = catalog.GetStats(query.table_name(table_id));
  if (ts == nullptr) return nullptr;
  if (column < 0 || column >= static_cast<int>(ts->columns.size())) {
    return nullptr;
  }
  return &ts->column(column);
}
}  // namespace

CardinalityEstimator::CardinalityEstimator(const Catalog& catalog,
                                           const QuerySpec& query,
                                           const FeedbackMap* feedback,
                                           const EstimatorConfig& config)
    : catalog_(catalog), query_(query), feedback_(feedback), config_(config) {
  table_card_.reserve(static_cast<size_t>(query.num_tables()));
  for (int t = 0; t < query.num_tables(); ++t) {
    const TableStats* ts = catalog.GetStats(query.table_name(t));
    if (ts != nullptr) {
      table_card_.push_back(std::max<double>(1.0,
                                             static_cast<double>(ts->row_count)));
    } else {
      const Table* table = catalog.GetTable(query.table_name(t));
      table_card_.push_back(
          table != nullptr
              ? std::max<double>(1.0, static_cast<double>(table->live_rows()))
              : 1000.0);
    }
  }
  for (const Predicate& p : query.local_preds()) {
    local_sel_.push_back(ComputeLocalSelectivity(p));
  }
  for (const JoinPredicate& j : query.join_preds()) {
    join_sel_.push_back(ComputeJoinSelectivity(j));
  }
}

double CardinalityEstimator::TableCard(int table_id) const {
  return table_card_[static_cast<size_t>(table_id)];
}

double CardinalityEstimator::ColumnNdv(int table_id, int column) const {
  const ColumnStats* cs = StatsFor(catalog_, query_, table_id, column);
  if (cs == nullptr || cs->num_distinct <= 0) return TableCard(table_id);
  return static_cast<double>(cs->num_distinct);
}

double CardinalityEstimator::IndexMatchesPerProbe(int table_id,
                                                  int column) const {
  return TableCard(table_id) / std::max(1.0, ColumnNdv(table_id, column));
}

double CardinalityEstimator::ComputeLocalSelectivity(
    const Predicate& pred) const {
  // Parameter markers: the literal is unknown at compile time; use the
  // system default selectivity (this is the error-injection mechanism the
  // paper's Section 5.1 experiment relies on).
  if (pred.is_param) {
    switch (pred.kind) {
      case PredKind::kEq:
        return config_.default_eq_selectivity;
      case PredKind::kLike:
        return config_.default_like_selectivity;
      default:
        return config_.default_range_selectivity;
    }
  }
  const ColumnStats* cs =
      StatsFor(catalog_, query_, pred.col.table_id, pred.col.column);
  const double ndv =
      cs != nullptr && cs->num_distinct > 0
          ? static_cast<double>(cs->num_distinct)
          : 1.0 / config_.default_eq_selectivity;
  switch (pred.kind) {
    case PredKind::kEq:
      return 1.0 / std::max(1.0, ndv);
    case PredKind::kNe:
      return 1.0 - 1.0 / std::max(1.0, ndv);
    case PredKind::kIn:
      return std::min(1.0, static_cast<double>(pred.in_list.size()) /
                               std::max(1.0, ndv));
    case PredKind::kLike:
      return config_.default_like_selectivity;
    case PredKind::kLt:
    case PredKind::kLe:
    case PredKind::kGt:
    case PredKind::kGe:
    case PredKind::kBetween: {
      if (cs == nullptr || cs->histogram.empty() ||
          pred.operand.is_null() ||
          (pred.operand.type() == ValueType::kString)) {
        return config_.default_range_selectivity;
      }
      const EquiDepthHistogram& h = cs->histogram;
      const double x = pred.operand.AsNumeric();
      switch (pred.kind) {
        case PredKind::kLt:
        case PredKind::kLe:
          return std::clamp(h.FractionLeq(x), 0.0, 1.0);
        case PredKind::kGt:
        case PredKind::kGe:
          return std::clamp(1.0 - h.FractionLeq(x), 0.0, 1.0);
        case PredKind::kBetween: {
          if (pred.operand2.is_null() ||
              pred.operand2.type() == ValueType::kString) {
            return config_.default_range_selectivity;
          }
          return std::clamp(h.FractionBetween(x, pred.operand2.AsNumeric()),
                            0.0, 1.0);
        }
        default:
          break;
      }
      return config_.default_range_selectivity;
    }
  }
  return config_.default_range_selectivity;
}

double CardinalityEstimator::ComputeJoinSelectivity(
    const JoinPredicate& join) const {
  const ColumnStats* ls =
      StatsFor(catalog_, query_, join.left.table_id, join.left.column);
  const ColumnStats* rs =
      StatsFor(catalog_, query_, join.right.table_id, join.right.column);
  if (ls == nullptr || rs == nullptr || ls->num_distinct <= 0 ||
      rs->num_distinct <= 0) {
    return config_.default_join_selectivity;
  }
  // Classic System-R containment assumption: 1 / max(ndv_l, ndv_r).
  return 1.0 / static_cast<double>(
                   std::max(ls->num_distinct, rs->num_distinct));
}

int CardinalityEstimator::AssumptionCount(TableSet set) const {
  int factors = 0;
  int defaults = 0;
  for (const Predicate& p : query_.local_preds()) {
    if (!ContainsTable(set, p.col.table_id)) continue;
    ++factors;
    if (p.is_param || p.kind == PredKind::kLike) ++defaults;
  }
  for (const JoinPredicate& j : query_.join_preds()) {
    if (ContainsTable(set, j.left.table_id) &&
        ContainsTable(set, j.right.table_id)) {
      ++factors;
    }
  }
  return std::max(0, factors - 1) + defaults;
}

double CardinalityEstimator::RawSubsetCard(TableSet set) const {
  double card = 1.0;
  for (int t = 0; t < query_.num_tables(); ++t) {
    if (!ContainsTable(set, t)) continue;
    card *= TableCard(t);
    for (int pid : query_.PredsOnTable(t)) {
      card *= LocalSelectivity(pid);
    }
  }
  const auto& joins = query_.join_preds();
  for (size_t j = 0; j < joins.size(); ++j) {
    if (ContainsTable(set, joins[j].left.table_id) &&
        ContainsTable(set, joins[j].right.table_id)) {
      card *= JoinSelectivity(static_cast<int>(j));
    }
  }
  return std::max(kMinCard, card);
}

double CardinalityEstimator::SubsetCard(TableSet set) const {
  auto memo = memo_.find(set);
  if (memo != memo_.end()) return memo->second;

  double card = RawSubsetCard(set);
  if (feedback_ != nullptr) {
    auto exact_it = feedback_->find(set);
    if (exact_it != feedback_->end() && exact_it->second.exact >= 0) {
      card = std::max(kMinCard, exact_it->second.exact);
    } else {
      // Correct by the largest disjoint known subsets: multiply the raw
      // estimate by actual/raw for each, then clamp with any lower bound
      // known for `set` itself.
      std::vector<TableSet> known;
      for (const auto& [sub, fb] : *feedback_) {
        if (fb.exact >= 0 && sub != set && (sub & set) == sub) {
          known.push_back(sub);
        }
      }
      std::sort(known.begin(), known.end(), [](TableSet a, TableSet b) {
        return PopCount(a) > PopCount(b);
      });
      TableSet remaining = set;
      double factor = 1.0;
      for (TableSet sub : known) {
        if ((sub & remaining) != sub) continue;
        const double raw = RawSubsetCard(sub);
        const double actual = feedback_->at(sub).exact;
        factor *= std::max(kMinCard, actual) / raw;
        remaining &= ~sub;
      }
      card = std::max(kMinCard, card * factor);
      if (exact_it != feedback_->end() &&
          exact_it->second.lower_bound >= 0) {
        card = std::max(card, exact_it->second.lower_bound);
      }
    }
  }
  memo_[set] = card;
  return card;
}

}  // namespace popdb
