#ifndef POPDB_OPT_OPTIMIZER_H_
#define POPDB_OPT_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/enumerator.h"
#include "opt/plan.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb {

/// All optimizer knobs in one place.
struct OptimizerConfig {
  JoinMethodConfig methods;
  CostParams cost;
  EstimatorConfig estimator;
};

/// Output of one optimization: a private (deep-cloned) plan tree plus
/// diagnostics.
struct OptimizedPlan {
  std::shared_ptr<PlanNode> root;
  int64_t candidates = 0;
  double est_cost = 0.0;
  double est_card = 0.0;
  /// Incremental re-optimization: memo entries reused / discarded by this
  /// optimization (0 without an attached IncrementalMemo).
  int64_t memo_reused = 0;
  int64_t memo_invalidated = 0;
};

/// Cost-based query optimizer facade: cardinality estimation, dynamic
/// programming join enumeration (with optional validity-range pruning
/// observer) and top-of-plan construction (aggregation, projection, final
/// sort).
class Optimizer {
 public:
  Optimizer(const Catalog& catalog, OptimizerConfig config)
      : catalog_(catalog), config_(std::move(config)) {}

  /// Optimizes `query`. `feedback` carries actual cardinalities from
  /// earlier execution steps (may be null), `matviews` the reusable
  /// intermediate results (may be null), `observer` the validity-range
  /// narrowing hook (may be null for a plain System-R optimizer), `memo`
  /// the persistent DP memo for incremental re-optimization (may be null
  /// for from-scratch enumeration; with a memo the produced plan is
  /// bit-identical, only cheaper to find).
  Result<OptimizedPlan> Optimize(
      const QuerySpec& query, const FeedbackMap* feedback = nullptr,
      const std::vector<AvailableMatView>* matviews = nullptr,
      PruneObserver* observer = nullptr, IncrementalMemo* memo = nullptr) const;

  const OptimizerConfig& config() const { return config_; }
  const Catalog& catalog() const { return catalog_; }

 private:
  const Catalog& catalog_;
  OptimizerConfig config_;
};

/// Column widths of the query's tables, indexed by query table id (shared
/// helper for layout resolution).
std::vector<int> QueryTableWidths(const Catalog& catalog,
                                  const QuerySpec& query);

}  // namespace popdb

#endif  // POPDB_OPT_OPTIMIZER_H_
