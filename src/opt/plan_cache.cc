#include "opt/plan_cache.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>

#include "common/span.h"
#include "common/string_util.h"

namespace popdb {

namespace {

double CacheNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Renders one local predicate with its id embedded. Markers stay
/// abstract (`?k`); literals are part of the signature.
std::string SigPred(const Predicate& pred) {
  std::string rhs;
  if (pred.is_param) {
    rhs = StrFormat("?%d", pred.param_index);
  } else if (pred.kind == PredKind::kBetween) {
    rhs = pred.operand.ToString() + ".." + pred.operand2.ToString();
  } else if (pred.kind == PredKind::kIn) {
    std::vector<std::string> items;
    items.reserve(pred.in_list.size());
    for (const Value& v : pred.in_list) items.push_back(v.ToString());
    std::sort(items.begin(), items.end());
    rhs = "(" + StrJoin(items, ",") + ")";
  } else {
    rhs = pred.operand.ToString();
  }
  return StrFormat("#%d:t%d.c%d%s%s", pred.pred_id, pred.col.table_id,
                   pred.col.column, PredKindName(pred.kind), rhs.c_str());
}

std::string SigCol(const ColRef& col) {
  return StrFormat("t%d.c%d", col.table_id, col.column);
}

void FnvMix(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;
  }
}

void FnvMixDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  FnvMix(h, &bits, sizeof(bits));
}

int64_t CountPlanNodes(const PlanNode& node) {
  int64_t n = 1;
  for (const auto& child : node.children) n += CountPlanNodes(*child);
  return n;
}

bool ContainsMatViewScan(const PlanNode& node) {
  if (node.kind == PlanOpKind::kMatViewScan || node.mv_rows != nullptr) {
    return true;
  }
  for (const auto& child : node.children) {
    if (ContainsMatViewScan(*child)) return true;
  }
  return false;
}

void CollectValidityInto(const PlanNode& node,
                         std::map<TableSet, ValidityRange>* out) {
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i < node.child_validity.size() &&
        node.child_validity[i].IsNarrowed()) {
      const PlanNode* child = LogicalChild(node, static_cast<int>(i));
      if (child != nullptr && child->set != 0) {
        // Keep the tightest range when several edges guard one table set.
        auto [slot, inserted] =
            out->emplace(child->set, node.child_validity[i]);
        if (!inserted) {
          slot->second.lo = std::max(slot->second.lo, node.child_validity[i].lo);
          slot->second.hi = std::min(slot->second.hi, node.child_validity[i].hi);
        }
      }
    }
    CollectValidityInto(*node.children[i], out);
  }
}

/// Does `feedback` contradict a recorded validity range? An exact
/// cardinality outside [lo, hi], or a lower bound above hi, proves the
/// cached plan left the interval in which it is optimal.
bool ViolatesValidity(const std::map<TableSet, ValidityRange>& validity,
                      const FeedbackMap& feedback) {
  for (const auto& [set, fb] : feedback) {
    auto it = validity.find(set);
    if (it == validity.end()) continue;
    if (fb.exact >= 0 && !it->second.Contains(fb.exact)) return true;
    if (fb.exact < 0 && fb.lower_bound > it->second.hi) return true;
  }
  return false;
}

}  // namespace

std::string QueryCacheSignature(const QuerySpec& query) {
  std::string out = "tables:";
  for (int t = 0; t < query.num_tables(); ++t) {
    out += StrFormat("t%d=%s;", t, query.table_name(t).c_str());
  }

  // Normalized predicate order: the rendered strings (ids embedded) are
  // sorted, so the signature does not depend on container iteration
  // details while still pinning each predicate to its id.
  std::vector<std::string> preds;
  preds.reserve(query.local_preds().size());
  for (const Predicate& p : query.local_preds()) preds.push_back(SigPred(p));
  std::sort(preds.begin(), preds.end());
  out += "|preds:" + StrJoin(preds, "&");

  std::vector<std::string> joins;
  joins.reserve(query.join_preds().size());
  for (const JoinPredicate& j : query.join_preds()) {
    std::string a = SigCol(j.left);
    std::string b = SigCol(j.right);
    if (b < a) std::swap(a, b);
    joins.push_back(a + "=" + b);
  }
  std::sort(joins.begin(), joins.end());
  out += "|joins:" + StrJoin(joins, "&");

  out += "|proj:";
  for (const ColRef& c : query.projections()) out += SigCol(c) + ",";
  out += "|group:";
  for (const ColRef& c : query.group_by()) out += SigCol(c) + ",";
  out += "|aggs:";
  for (const QuerySpec::Agg& a : query.aggs()) {
    out += StrFormat("%s(%s),", AggFuncName(a.func), SigCol(a.arg).c_str());
  }
  out += "|order:";
  for (const QuerySpec::OrderKey& k : query.order_by()) {
    out += StrFormat("%d%s,", k.output_pos, k.descending ? "d" : "a");
  }
  out += "|having:";
  for (const QuerySpec::HavingPred& h : query.having()) {
    out += StrFormat("%d%s%s/%s,", h.output_pos, PredKindName(h.kind),
                     h.operand.ToString().c_str(),
                     h.operand2.ToString().c_str());
  }
  out += StrFormat("|distinct:%d|limit:%lld", query.distinct() ? 1 : 0,
                   static_cast<long long>(query.limit()));
  return out;
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;

void FnvMixU64(uint64_t* h, uint64_t v) { FnvMix(h, &v, sizeof(v)); }

void FnvMixInt(uint64_t* h, int64_t v) { FnvMixU64(h, static_cast<uint64_t>(v)); }

void FnvMixValue(uint64_t* h, const Value& v) {
  FnvMixInt(h, static_cast<int64_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
    case ValueType::kDouble:
      FnvMixDouble(h, v.AsNumeric());
      break;
    case ValueType::kString:
      FnvMix(h, v.AsString().data(), v.AsString().size());
      break;
  }
}

uint64_t HashCol(const ColRef& col) {
  uint64_t h = kFnvOffset;
  FnvMixInt(&h, col.table_id);
  FnvMixInt(&h, col.column);
  return h;
}

/// Standalone hash of one local predicate; predicates combine by addition
/// so the fingerprint, like the signature's sorted rendering, does not
/// depend on their container order.
uint64_t HashPred(const Predicate& pred) {
  uint64_t h = kFnvOffset;
  FnvMixInt(&h, pred.pred_id);
  FnvMixInt(&h, pred.col.table_id);
  FnvMixInt(&h, pred.col.column);
  FnvMixInt(&h, static_cast<int64_t>(pred.kind));
  if (pred.is_param) {
    FnvMixInt(&h, pred.param_index);
    return h;  // Markers stay abstract: the literal is not part of it.
  }
  FnvMixValue(&h, pred.operand);
  FnvMixValue(&h, pred.operand2);
  uint64_t in_acc = 0;  // IN lists are order-free too.
  for (const Value& v : pred.in_list) {
    uint64_t vh = kFnvOffset;
    FnvMixValue(&vh, v);
    in_acc += vh;
  }
  FnvMixU64(&h, in_acc);
  FnvMixInt(&h, static_cast<int64_t>(pred.in_list.size()));
  return h;
}

}  // namespace

uint64_t QueryMemoFingerprint(const QuerySpec& query) {
  uint64_t h = kFnvOffset;
  FnvMixInt(&h, query.num_tables());
  for (int t = 0; t < query.num_tables(); ++t) {
    const std::string& name = query.table_name(t);
    FnvMix(&h, name.data(), name.size());
    FnvMixInt(&h, t);
  }
  uint64_t preds_acc = 0;
  for (const Predicate& p : query.local_preds()) preds_acc += HashPred(p);
  FnvMixU64(&h, preds_acc);
  FnvMixInt(&h, static_cast<int64_t>(query.local_preds().size()));
  uint64_t joins_acc = 0;
  for (const JoinPredicate& j : query.join_preds()) {
    uint64_t a = HashCol(j.left);
    uint64_t b = HashCol(j.right);
    if (b < a) std::swap(a, b);  // Commutation-normalized like the signature.
    uint64_t jh = kFnvOffset;
    FnvMixU64(&jh, a);
    FnvMixU64(&jh, b);
    joins_acc += jh;
  }
  FnvMixU64(&h, joins_acc);
  FnvMixInt(&h, static_cast<int64_t>(query.join_preds().size()));
  for (const ColRef& c : query.projections()) FnvMixU64(&h, HashCol(c));
  FnvMixInt(&h, static_cast<int64_t>(query.projections().size()));
  for (const ColRef& c : query.group_by()) FnvMixU64(&h, HashCol(c));
  FnvMixInt(&h, static_cast<int64_t>(query.group_by().size()));
  for (const QuerySpec::Agg& a : query.aggs()) {
    FnvMixInt(&h, static_cast<int64_t>(a.func));
    FnvMixU64(&h, HashCol(a.arg));
  }
  FnvMixInt(&h, static_cast<int64_t>(query.aggs().size()));
  for (const QuerySpec::OrderKey& k : query.order_by()) {
    FnvMixInt(&h, k.output_pos);
    FnvMixInt(&h, k.descending ? 1 : 0);
  }
  FnvMixInt(&h, static_cast<int64_t>(query.order_by().size()));
  for (const QuerySpec::HavingPred& hp : query.having()) {
    FnvMixInt(&h, hp.output_pos);
    FnvMixInt(&h, static_cast<int64_t>(hp.kind));
    FnvMixValue(&h, hp.operand);
    FnvMixValue(&h, hp.operand2);
  }
  FnvMixInt(&h, static_cast<int64_t>(query.having().size()));
  FnvMixInt(&h, query.distinct() ? 1 : 0);
  FnvMixInt(&h, query.limit());
  return h;
}

uint64_t DigestFeedback(const FeedbackMap& feedback) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (const auto& [set, fb] : feedback) {  // std::map: sorted, stable.
    FnvMix(&h, &set, sizeof(set));
    FnvMixDouble(&h, fb.exact);
    FnvMixDouble(&h, fb.lower_bound);
  }
  return h;
}

std::map<TableSet, ValidityRange> CollectValidityRanges(const PlanNode& plan) {
  std::map<TableSet, ValidityRange> out;
  CollectValidityInto(plan, &out);
  return out;
}

const char* PlanCacheOutcomeName(PlanCacheOutcome outcome) {
  switch (outcome) {
    case PlanCacheOutcome::kNone:
      return "none";
    case PlanCacheOutcome::kHit:
      return "hit";
    case PlanCacheOutcome::kValidityHit:
      return "validity_hit";
    case PlanCacheOutcome::kMissCold:
      return "miss_cold";
    case PlanCacheOutcome::kMissStale:
      return "miss_stale";
    case PlanCacheOutcome::kMissEpoch:
      return "miss_epoch";
    case PlanCacheOutcome::kMissValidity:
      return "miss_validity";
  }
  return "unknown";
}

PlanCache::PlanCache(PlanCacheConfig config) : config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.max_entries < 0) config_.max_entries = 0;
  per_shard_cap_ =
      std::max<int64_t>(1, (config_.max_entries + config_.shards - 1) /
                               config_.shards);
  shards_.reserve(static_cast<size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& signature) {
  const size_t h = std::hash<std::string>{}(signature);
  return *shards_[h % shards_.size()];
}

void PlanCache::EvictLocked(
    Shard* shard, std::unordered_map<std::string, Entry>::iterator it) {
  shard->lru.erase(it->second.lru_pos);
  shard->entries.erase(it);
}

PlanCache::LookupResult PlanCache::Lookup(const std::string& signature,
                                          int64_t external_epoch,
                                          int64_t catalog_version,
                                          uint64_t feedback_digest,
                                          const FeedbackMap& feedback) {
  LookupResult result;
  bool evicted_invalid = false;
  bool evicted_stale_stats = false;
  {
    Shard& shard = ShardFor(signature);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(signature);
    if (it == shard.entries.end()) {
      result.outcome = PlanCacheOutcome::kMissCold;
    } else {
      Entry& entry = it->second;
      if (entry.external_epoch != external_epoch ||
          entry.catalog_version != catalog_version) {
        // Out-of-band world change (stats refresh, matview DDL, manual
        // bump). Epochs are monotone, so the entry can never match again.
        result.outcome = PlanCacheOutcome::kMissEpoch;
        evicted_stale_stats = entry.catalog_version != catalog_version;
        EvictLocked(&shard, it);
        evicted_invalid = true;
      } else if (entry.feedback_digest == feedback_digest) {
        result.outcome = PlanCacheOutcome::kHit;
      } else if (ViolatesValidity(entry.validity, feedback)) {
        // Feedback left the plan's validity range: provably suboptimal.
        result.outcome = PlanCacheOutcome::kMissValidity;
        EvictLocked(&shard, it);
        evicted_invalid = true;
      } else if (config_.validity_hits) {
        result.outcome = PlanCacheOutcome::kValidityHit;
      } else {
        // Near miss: same signature, feedback digest moved. Hand out the
        // stale skeleton and its install-time feedback so the caller can
        // warm-start incremental re-optimization from it.
        result.outcome = PlanCacheOutcome::kMissStale;
        result.stale_plan = entry.plan;
        result.stale_feedback = entry.feedback;
      }
      if (result.hit()) {
        result.plan = entry.plan;
        if (result.outcome == PlanCacheOutcome::kHit &&
            entry.placed_plan != nullptr) {
          // Identical digest: the placement pass would reproduce this
          // placed plan bit for bit, so the hit skips placement too.
          result.placed_plan = entry.placed_plan;
          result.placed_checks = entry.placed_checks;
        }
        result.candidates = entry.candidates;
        result.est_cost = entry.est_cost;
        result.est_card = entry.est_card;
        result.age_ms = CacheNowMs() - entry.install_ms;
        ++entry.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.lookups;
    switch (result.outcome) {
      case PlanCacheOutcome::kHit:
        ++stats_.hits;
        break;
      case PlanCacheOutcome::kValidityHit:
        ++stats_.validity_hits;
        break;
      case PlanCacheOutcome::kMissCold:
        ++stats_.misses_cold;
        break;
      case PlanCacheOutcome::kMissStale:
        ++stats_.misses_stale;
        ++stats_.near_misses;
        break;
      case PlanCacheOutcome::kMissEpoch:
        ++stats_.misses_epoch;
        break;
      case PlanCacheOutcome::kMissValidity:
        ++stats_.misses_validity;
        break;
      case PlanCacheOutcome::kNone:
        break;
    }
    if (evicted_invalid) ++stats_.evictions_invalid;
    if (evicted_stale_stats) ++stats_.evictions_stale_stats;
    if (result.placed_plan != nullptr) ++stats_.placement_hits;
  }
  if (result.hit()) {
    TRACE_INSTANT_ARG("plan_cache_hit", "opt", "age_ms",
                      static_cast<int64_t>(result.age_ms));
  } else if (result.outcome == PlanCacheOutcome::kMissStale) {
    TRACE_INSTANT("plan_cache_near_miss", "opt");
  } else if (evicted_invalid) {
    TRACE_INSTANT("plan_cache_invalidate", "opt");
  }
  return result;
}

void PlanCache::Install(const std::string& signature,
                        std::shared_ptr<const PlanNode> plan,
                        int64_t external_epoch, int64_t catalog_version,
                        uint64_t feedback_digest, int64_t candidates,
                        double est_cost, double est_card,
                        FeedbackMap feedback) {
  if (plan == nullptr || config_.max_entries <= 0) return;
  // Matview scans reference rows owned by one execution; caching them
  // would dangle. Oversized plans are not worth the memory.
  if (ContainsMatViewScan(*plan)) return;
  if (CountPlanNodes(*plan) > config_.max_plan_nodes) return;

  int evictions = 0;
  {
    Shard& shard = ShardFor(signature);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(signature);
    if (it != shard.entries.end()) {
      shard.lru.erase(it->second.lru_pos);
      shard.entries.erase(it);
    }
    while (static_cast<int64_t>(shard.entries.size()) >= per_shard_cap_) {
      auto victim = shard.entries.find(shard.lru.back());
      EvictLocked(&shard, victim);
      ++evictions;
    }
    Entry entry;
    entry.plan = std::move(plan);
    entry.feedback_digest = feedback_digest;
    entry.feedback = std::move(feedback);
    entry.external_epoch = external_epoch;
    entry.catalog_version = catalog_version;
    entry.validity = CollectValidityRanges(*entry.plan);
    entry.candidates = candidates;
    entry.est_cost = est_cost;
    entry.est_card = est_card;
    entry.install_ms = CacheNowMs();
    shard.lru.push_front(signature);
    entry.lru_pos = shard.lru.begin();
    shard.entries.emplace(signature, std::move(entry));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.installs;
    stats_.evictions_lru += evictions;
  }
  if (evictions > 0) {
    TRACE_INSTANT_ARG("plan_cache_evict", "opt", "count", evictions);
  }
}

void PlanCache::InstallPlacement(const std::string& signature,
                                 std::shared_ptr<const PlanNode> placed_plan,
                                 int64_t external_epoch,
                                 int64_t catalog_version,
                                 uint64_t feedback_digest,
                                 PlacedCheckCounts checks) {
  if (placed_plan == nullptr || config_.max_entries <= 0) return;
  if (ContainsMatViewScan(*placed_plan)) return;
  // The placed plan carries extra CHECK/TEMP nodes; apply the same size
  // cap as skeletons (a placement roughly doubling the node count signals
  // a degenerate plan not worth caching).
  if (CountPlanNodes(*placed_plan) > config_.max_plan_nodes) return;

  bool installed = false;
  {
    Shard& shard = ShardFor(signature);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(signature);
    if (it == shard.entries.end()) return;
    Entry& entry = it->second;
    // The entry may have been replaced since the caller's lookup; attach
    // the placement only when it belongs to exactly this entry.
    if (entry.external_epoch != external_epoch ||
        entry.catalog_version != catalog_version ||
        entry.feedback_digest != feedback_digest) {
      return;
    }
    entry.placed_plan = std::move(placed_plan);
    entry.placed_checks = checks;
    installed = true;
  }
  if (installed) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.placement_installs;
  }
}

void PlanCache::InvalidateAll() {
  int64_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += static_cast<int64_t>(shard->entries.size());
    shard->entries.clear();
    shard->lru.clear();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.evictions_invalid += dropped;
  }
  if (dropped > 0) {
    TRACE_INSTANT_ARG("plan_cache_invalidate", "opt", "dropped", dropped);
  }
}

int64_t PlanCache::size() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->entries.size());
  }
  return n;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace popdb
