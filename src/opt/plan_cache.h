#ifndef POPDB_OPT_PLAN_CACHE_H_
#define POPDB_OPT_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "opt/cardinality.h"
#include "opt/plan.h"
#include "opt/query.h"

namespace popdb {

/// Canonical text signature of a query for plan-cache keying: tables,
/// local and join predicates (normalized order), projections, grouping,
/// aggregates, ORDER BY / HAVING / DISTINCT / LIMIT. Parameter markers are
/// abstracted to their positions (`?k`), never to their bound literals, so
/// every re-submission of a prepared statement maps to one key regardless
/// of binding — exactly the repeat-query population a plan cache exists
/// for. Literal operands are part of the signature (a different constant
/// can legitimately change the plan).
///
/// The signature embeds query-local table and predicate ids: a cached plan
/// skeleton stores `table_id`/`pred_ids` indices into the installing
/// QuerySpec, so a hit is only sound when the submitted spec assigns the
/// same ids. Structurally identical specs built in the same order (the
/// repeat-submission case) share a key; permuted constructions of the same
/// query conservatively miss.
std::string QueryCacheSignature(const QuerySpec& query);

/// 64-bit FNV-1a fingerprint over the same canonical content as
/// QueryCacheSignature, streamed without building the signature string.
/// Used where the fingerprint is recomputed on a hot path (the incremental
/// re-optimization memo checks it on every optimize call) and the
/// negligible collision probability of a 64-bit digest is acceptable.
/// Local/join predicates combine order-independently, mirroring the
/// signature's sorted rendering.
uint64_t QueryMemoFingerprint(const QuerySpec& query);

/// Order-independent 64-bit FNV-1a digest of a feedback snapshot. Two
/// snapshots digest equal iff they contain the same (table set, exact,
/// lower bound) entries — the plan cache's definition of "feedback has not
/// moved for this query".
uint64_t DigestFeedback(const FeedbackMap& feedback);

/// Narrowed validity ranges of `plan`, keyed by the table set of the
/// guarded edge (child subplan). Recorded at install time; lookups test
/// current feedback against them to classify stale entries (paper
/// Section 2.2: within the range the plan above the edge stays optimal).
std::map<TableSet, ValidityRange> CollectValidityRanges(const PlanNode& plan);

/// What one plan-cache lookup decided.
enum class PlanCacheOutcome {
  kNone = 0,        ///< Cache not consulted (disabled / non-progressive).
  kHit,             ///< Identical optimizer inputs; cached plan is exact.
  kValidityHit,     ///< Feedback moved but stayed inside validity ranges
                    ///< (served only with PlanCacheConfig::validity_hits).
  kMissCold,        ///< No entry for the signature.
  kMissStale,       ///< Feedback moved since install (digest changed).
  kMissEpoch,       ///< Out-of-band invalidation: stats refresh, matview
                    ///< DDL, or manual epoch bump; entry evicted.
  kMissValidity,    ///< Feedback moved outside a recorded validity range;
                    ///< entry evicted (provably no longer optimal).
};

const char* PlanCacheOutcomeName(PlanCacheOutcome outcome);

/// Checkpoint counts of a cached placement, mirrored from the placement
/// pass as plain ints (the opt layer cannot see core's PlacementStats).
struct PlacedCheckCounts {
  int lc = 0;
  int lcem = 0;
  int ecb = 0;
  int ecwc = 0;
  int ecdc = 0;
  int work_bound = 0;
};

struct PlanCacheConfig {
  /// Total entry cap across shards (LRU per shard). <= 0 disables installs.
  int64_t max_entries = 256;
  /// Concurrency shards, each with its own mutex and LRU list.
  int shards = 8;
  /// Serve entries whose feedback digest changed as long as every current
  /// cardinality stays inside the plan's recorded validity ranges. Off by
  /// default: strict mode guarantees a hit is bit-identical to a fresh
  /// optimization, which the differential equivalence suite relies on.
  bool validity_hits = false;
  /// Plans with more nodes than this are not installed (size cap).
  int64_t max_plan_nodes = 4096;
};

/// Process-wide cache of optimized plan skeletons keyed by canonical query
/// signature, gated by a feedback epoch. An entry is served only when the
/// optimizer would provably reproduce it:
///   - the external epoch (stats refreshes, matview DDL, manual bumps) and
///     the catalog stats version match the install-time values, and
///   - the seeded-feedback digest matches (harvested feedback that changed
///     any cardinality estimate for the query's subplans forces a miss).
/// With `validity_hits` enabled, the digest gate is relaxed to POP's
/// validity-range test: feedback that moved but stayed inside every
/// recorded range still hits (the plan is still optimal, though a fresh
/// optimization might tie-break differently).
///
/// Entries hold immutable plan skeletons captured *before* checkpoint
/// placement; a hit clones the skeleton and proceeds straight to
/// placement, skipping DP enumeration entirely.
///
/// Thread safe: lookups and installs from concurrent QueryService workers
/// serialize per shard; statistics are atomics. Entries are handed out as
/// shared_ptr, so eviction never invalidates a concurrent reader.
///
/// One PlanCache must only be shared by executors with identical optimizer
/// configuration over the same catalog; ProgressiveExecutor folds a config
/// fingerprint into the signature to keep distinct configurations apart.
class PlanCache {
 public:
  struct LookupResult {
    PlanCacheOutcome outcome = PlanCacheOutcome::kMissCold;
    /// Set on (validity-)hits; clone before mutating.
    std::shared_ptr<const PlanNode> plan;
    /// Checkpoint-placed variant of `plan`, set only on exact hits (the
    /// feedback digest is identical, so the placement pass would reproduce
    /// it verbatim) when InstallPlacement recorded one. Validity hits
    /// re-place: moved feedback can change check ranges.
    std::shared_ptr<const PlanNode> placed_plan;
    PlacedCheckCounts placed_checks;
    int64_t candidates = 0;  ///< DP candidates of the installing run.
    double est_cost = 0.0;
    double est_card = 0.0;
    double age_ms = 0.0;     ///< Entry age at hit time.
    /// Near miss (kMissStale) only: the stale skeleton and the feedback
    /// snapshot it was optimized under. The plan is NOT servable — the
    /// feedback moved — but it warm-starts incremental re-optimization:
    /// every subplan untouched by the feedback delta is provably still the
    /// DP best for its table set.
    std::shared_ptr<const PlanNode> stale_plan;
    FeedbackMap stale_feedback;

    bool hit() const {
      return outcome == PlanCacheOutcome::kHit ||
             outcome == PlanCacheOutcome::kValidityHit;
    }
  };

  /// Monotone counters (point-in-time copy via stats()).
  struct Stats {
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t validity_hits = 0;
    int64_t misses_cold = 0;
    int64_t misses_stale = 0;
    int64_t misses_epoch = 0;
    int64_t misses_validity = 0;
    /// Stale misses are also near misses: the signature matched and only
    /// the feedback digest moved, so the entry warm-starts incremental
    /// re-optimization. Counted separately so the warm-start path is
    /// observable (== misses_stale today; kept distinct in case future
    /// outcomes qualify).
    int64_t near_misses = 0;
    int64_t installs = 0;
    int64_t placement_installs = 0;  ///< Placed plans attached to entries.
    int64_t placement_hits = 0;      ///< Exact hits served with placement.
    int64_t evictions_lru = 0;
    int64_t evictions_invalid = 0;
    /// Subset of evictions_invalid where the catalog stats version moved
    /// (a write-path statistics fold), as opposed to an external feedback
    /// epoch bump. Observable as
    /// popdb_plan_cache_stale_stats_evictions_total.
    int64_t evictions_stale_stats = 0;

    int64_t misses() const {
      return misses_cold + misses_stale + misses_epoch + misses_validity;
    }
  };

  explicit PlanCache(PlanCacheConfig config = {});
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Looks up `signature`. `external_epoch` is the out-of-band feedback
  /// epoch (QueryFeedbackStore::external_epoch()), `catalog_version` the
  /// catalog's stats version, `feedback_digest` the digest of the feedback
  /// the optimizer would be seeded with, and `feedback` that snapshot (for
  /// the validity-range test).
  LookupResult Lookup(const std::string& signature, int64_t external_epoch,
                      int64_t catalog_version, uint64_t feedback_digest,
                      const FeedbackMap& feedback);

  /// Installs (or replaces) the entry for `signature`. `plan` is the
  /// pre-checkpoint skeleton and must not contain matview scans (those are
  /// scoped to one execution). Oversized plans are silently skipped.
  /// `feedback` is the snapshot the plan was optimized under (the one
  /// `feedback_digest` digests); a later near-miss lookup returns it so
  /// incremental re-optimization can diff against it.
  void Install(const std::string& signature,
               std::shared_ptr<const PlanNode> plan, int64_t external_epoch,
               int64_t catalog_version, uint64_t feedback_digest,
               int64_t candidates, double est_cost, double est_card,
               FeedbackMap feedback = {});

  /// Attaches the checkpoint-placed variant of an installed skeleton.
  /// No-op unless an entry for `signature` exists and its gating values
  /// (epoch, catalog version, feedback digest) match `placed_plan`'s —
  /// placement is deterministic given the skeleton and the placement
  /// config (part of the signature), so an exact future hit may reuse the
  /// placed plan and skip the placement pass too.
  void InstallPlacement(const std::string& signature,
                        std::shared_ptr<const PlanNode> placed_plan,
                        int64_t external_epoch, int64_t catalog_version,
                        uint64_t feedback_digest, PlacedCheckCounts checks);

  /// Drops every entry (DDL-style invalidation).
  void InvalidateAll();

  int64_t size() const;
  Stats stats() const;
  const PlanCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const PlanNode> plan;
    /// Checkpoint-placed variant (null until InstallPlacement).
    std::shared_ptr<const PlanNode> placed_plan;
    PlacedCheckCounts placed_checks;
    uint64_t feedback_digest = 0;
    /// Install-time feedback snapshot (what feedback_digest digests).
    FeedbackMap feedback;
    int64_t external_epoch = 0;
    int64_t catalog_version = 0;
    std::map<TableSet, ValidityRange> validity;
    int64_t candidates = 0;
    double est_cost = 0.0;
    double est_card = 0.0;
    double install_ms = 0.0;
    int64_t hits = 0;
    /// Position in the shard's LRU list (front = most recent).
    std::list<std::string>::iterator lru_pos;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru;  ///< Signatures, most recent first.
  };

  Shard& ShardFor(const std::string& signature);
  /// Removes `it` from `shard`; caller holds the shard mutex.
  void EvictLocked(Shard* shard,
                   std::unordered_map<std::string, Entry>::iterator it);

  PlanCacheConfig config_;
  int64_t per_shard_cap_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace popdb

#endif  // POPDB_OPT_PLAN_CACHE_H_
