#ifndef POPDB_OPT_COST_MODEL_H_
#define POPDB_OPT_COST_MODEL_H_

#include <cstdint>

namespace popdb {

/// Cost model parameters. Units are "row touches", which the executor
/// mirrors one-for-one in ExecContext::work, so estimated cost and actual
/// work are directly comparable.
struct CostParams {
  /// Memory budget (rows) for hash builds and sorts; must equal the
  /// executor's ExecContext::mem_rows for the cost cliffs to be real.
  double mem_rows = 20000;

  double scan_per_row = 1.0;
  double mv_scan_per_row = 1.0;
  double temp_per_row = 1.0;
  double hash_build_per_row = 1.5;
  double hash_probe_per_row = 1.0;
  double partition_per_row = 1.0;  ///< Per extra hash-join stage.
  double sort_per_compare = 0.2;   ///< Multiplies n*log2(n).
  double sort_merge_pass_per_row = 1.0;
  double mgjn_per_row = 1.0;
  double nljn_outer_per_row = 1.0;
  double nljn_probe_per_match = 1.5;  ///< Index probe + verify per match.
  double nljn_scan_per_inner_row = 0.8;
  double agg_per_row = 1.5;
  double check_per_row = 0.01;  ///< CHECK counting overhead (Section 5.2).
  int hash_fanout = 16;         ///< Partitioning fan-out (HsjnOp::kFanOut).
};

/// Per-operator cost functions. All of them are functions of input
/// cardinalities so that the validity-range sensitivity analysis
/// (Section 2.2) can re-evaluate them at perturbed cardinalities. The hash
/// join and sort functions are deliberately non-smooth: they contain the
/// memory-spill staircases that make ad-hoc cardinality-error thresholds
/// unusable and motivate numeric root finding.
class CostModel {
 public:
  explicit CostModel(const CostParams& params) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Full scan of a base table with `base_rows` rows.
  double ScanCost(double base_rows) const;

  /// Scan of a materialized view with `rows` rows.
  double MatViewScanCost(double rows) const;

  /// TEMP materialization of `rows` input rows.
  double TempCost(double rows) const;

  /// Sort of `rows` input rows, including the external merge pass cliff.
  double SortCost(double rows) const;

  /// Hash join operator cost: build `build_rows`, probe with `probe_rows`.
  /// Multi-stage when the build exceeds memory: each extra stage
  /// repartitions both inputs (paper: a small cardinality increase can turn
  /// a two-stage join into a three-stage join).
  double HsjnCost(double probe_rows, double build_rows) const;

  /// Number of partitioning stages a build of `build_rows` needs (0 = in
  /// memory).
  int HsjnStages(double build_rows) const;

  /// Merge join operator cost over two sorted inputs (children sort costs
  /// are separate).
  double MgjnCost(double left_rows, double right_rows,
                  double out_rows) const;

  /// Nested-loop join operator cost. `per_probe_cost` is the expected cost
  /// of finding the matches for one outer row (see NljnProbeCost).
  double NljnCost(double outer_rows, double per_probe_cost) const;

  /// Cost of one NLJN inner probe: an index probe touching
  /// `matches_per_probe` candidate rows, or a full scan of
  /// `inner_base_rows`.
  double NljnProbeCost(bool use_index, double inner_base_rows,
                       double matches_per_probe) const;

  /// Group-by aggregation over `rows` input rows.
  double AggCost(double rows) const;

  /// Per-row CHECK overhead for `rows` rows.
  double CheckCost(double rows) const;

  /// One-off cost of building a hash index over `rows` rows (used when the
  /// re-optimizer indexes a temporary materialized view before reuse).
  double IndexBuildCost(double rows) const;

 private:
  CostParams params_;
};

}  // namespace popdb

#endif  // POPDB_OPT_COST_MODEL_H_
