#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/span.h"

namespace popdb {

std::vector<int> QueryTableWidths(const Catalog& catalog,
                                  const QuerySpec& query) {
  std::vector<int> widths;
  widths.reserve(static_cast<size_t>(query.num_tables()));
  for (int t = 0; t < query.num_tables(); ++t) {
    const Table* table = catalog.GetTable(query.table_name(t));
    widths.push_back(table != nullptr ? table->schema().num_columns() : 0);
  }
  return widths;
}

Result<OptimizedPlan> Optimizer::Optimize(
    const QuerySpec& query, const FeedbackMap* feedback,
    const std::vector<AvailableMatView>* matviews, PruneObserver* observer,
    IncrementalMemo* memo) const {
  SpanTracer& tracer = SpanTracer::Global();
  // The estimator front-loads base-table cardinality estimation (local
  // predicates, feedback overrides) in its constructor.
  const int64_t card_t0 = tracer.enabled() ? tracer.NowUs() : -1;
  CardinalityEstimator estimator(catalog_, query, feedback,
                                 config_.estimator);
  CostModel cost_model(config_.cost);
  if (card_t0 >= 0) {
    tracer.RecordSpan("card_estimation", "opt", card_t0,
                      tracer.NowUs() - card_t0);
  }
  // Dynamic programming runs without the narrowing observer: by the
  // structural-equivalence theorem, validity ranges are only needed on the
  // final plan's edges, so the sensitivity analysis runs as a cheap
  // post-pass over the chosen tree instead of on every pruned candidate.
  JoinEnumerator enumerator(catalog_, query, estimator, cost_model,
                            config_.methods, matviews, nullptr, memo);
  Result<std::shared_ptr<PlanNode>> join_tree = [&] {
    TRACE_SPAN_NAMED(dp_span, "dp_enumeration", "opt");
    Result<std::shared_ptr<PlanNode>> tree = enumerator.EnumerateJoinTree();
    dp_span.SetArg("candidates", enumerator.candidates_considered());
    return tree;
  }();
  if (!join_tree.ok()) return join_tree.status();

  // Deep-clone so downstream passes (checkpoint placement) can mutate the
  // tree without affecting the enumerator's shared memo entries.
  std::shared_ptr<PlanNode> root = join_tree.value()->Clone();
  if (observer != nullptr) {
    TRACE_SPAN("validity_ranges", "opt");
    enumerator.NarrowPlanRanges(root.get(), observer);
  }

  const std::vector<int> widths = QueryTableWidths(catalog_, query);
  const RowLayout full_layout(query.AllTables(), widths);

  if (query.has_aggregation()) {
    auto agg = std::make_shared<PlanNode>();
    agg->kind = PlanOpKind::kAgg;
    agg->set = 0;
    for (const ColRef& c : query.group_by()) {
      agg->group_positions.push_back(full_layout.Resolve(c));
    }
    for (const QuerySpec::Agg& a : query.aggs()) {
      ResolvedAgg ra;
      ra.func = a.func;
      ra.pos = a.func == AggFunc::kCount ? 0 : full_layout.Resolve(a.arg);
      agg->agg_specs.push_back(ra);
    }
    // Estimated group count: product of group-column NDVs capped by the
    // input cardinality.
    double groups = 1.0;
    for (const ColRef& c : query.group_by()) {
      groups *= estimator.ColumnNdv(c.table_id, c.column);
    }
    if (query.group_by().empty()) groups = 1.0;
    agg->card = std::min(groups, std::max(1.0, root->card));
    agg->op_cost = cost_model.AggCost(root->card);
    agg->cost = root->cost + agg->op_cost;
    agg->children = {root};
    agg->child_validity.resize(1);
    root = std::move(agg);
  } else if (query.distinct()) {
    // SELECT DISTINCT without aggregation: deduplicate via a group-by over
    // the projected columns (all columns when there is no projection).
    auto dedup = std::make_shared<PlanNode>();
    dedup->kind = PlanOpKind::kAgg;
    dedup->set = 0;
    if (query.projections().empty()) {
      for (int pos = 0; pos < full_layout.width(); ++pos) {
        dedup->group_positions.push_back(pos);
      }
    } else {
      for (const ColRef& c : query.projections()) {
        dedup->group_positions.push_back(full_layout.Resolve(c));
      }
    }
    dedup->card = std::max(1.0, root->card * 0.5);
    dedup->op_cost = cost_model.AggCost(root->card);
    dedup->cost = root->cost + dedup->op_cost;
    dedup->children = {root};
    dedup->child_validity.resize(1);
    root = std::move(dedup);
  } else if (!query.projections().empty()) {
    auto project = std::make_shared<PlanNode>();
    project->kind = PlanOpKind::kProject;
    project->set = 0;
    for (const ColRef& c : query.projections()) {
      project->positions.push_back(full_layout.Resolve(c));
    }
    project->card = root->card;
    project->op_cost = 0.0;
    project->cost = root->cost;
    project->children = {root};
    project->child_validity.resize(1);
    root = std::move(project);
  }

  if (!query.having().empty()) {
    auto filter = std::make_shared<PlanNode>();
    filter->kind = PlanOpKind::kFilter;
    filter->set = 0;
    for (const QuerySpec::HavingPred& h : query.having()) {
      ResolvedPredicate rp;
      rp.pos = h.output_pos;
      rp.kind = h.kind;
      rp.operand = h.operand;
      rp.operand2 = h.operand2;
      filter->filter_preds.push_back(std::move(rp));
    }
    filter->card = std::max(1.0, root->card * 0.5);
    filter->op_cost = 0.0;
    filter->cost = root->cost;
    filter->children = {root};
    filter->child_validity.resize(1);
    root = std::move(filter);
  }

  if (!query.order_by().empty()) {
    auto sort = std::make_shared<PlanNode>();
    sort->kind = PlanOpKind::kSort;
    sort->set = 0;
    for (const QuerySpec::OrderKey& k : query.order_by()) {
      sort->sort_keys.push_back(SortKey{k.output_pos, k.descending});
    }
    sort->card = root->card;
    sort->op_cost = cost_model.SortCost(root->card);
    sort->cost = root->cost + sort->op_cost;
    sort->children = {root};
    sort->child_validity.resize(1);
    root = std::move(sort);
  }

  OptimizedPlan out;
  out.root = std::move(root);
  out.candidates = enumerator.candidates_considered();
  out.est_cost = out.root->cost;
  out.est_card = out.root->card;
  out.memo_reused = enumerator.memo_reused();
  out.memo_invalidated = enumerator.memo_invalidated();
  return out;
}

}  // namespace popdb
