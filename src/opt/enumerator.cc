#include "opt/enumerator.h"

#include <algorithm>
#include <functional>

#include "opt/plan_cache.h"

namespace popdb {

namespace {
/// Unordered pair of child table sets identifying a join partition.
std::pair<TableSet, TableSet> PartitionOf(const PlanNode& node) {
  TableSet a = LogicalChild(node, 0)->set;
  TableSet b = LogicalChild(node, 1)->set;
  if (a > b) std::swap(a, b);
  return {a, b};
}

bool IsJoin(const PlanNode& node) {
  return node.kind == PlanOpKind::kNljn || node.kind == PlanOpKind::kHsjn ||
         node.kind == PlanOpKind::kMgjn;
}
}  // namespace

namespace {
/// Re-optimization-opportunity risk of a plan's root operator: 0 = both
/// inputs materialized (merge join), 1 = fully pipelined (NLJN).
double OperatorRisk(const PlanNode& node) {
  switch (node.kind) {
    case PlanOpKind::kMgjn:
      return 0.0;
    case PlanOpKind::kHsjn:
      return 0.5;  // Build side materialized, probe side pipelined.
    case PlanOpKind::kNljn:
      return 1.0;
    default:
      return 0.0;
  }
}
}  // namespace

bool SamePartition(const PlanNode& a, const PlanNode& b) {
  if (!IsJoin(a) || !IsJoin(b)) return false;
  return PartitionOf(a) == PartitionOf(b);
}

void IncrementalMemo::SeedFromSkeleton(const PlanNode& skeleton,
                                       const FeedbackMap& feedback,
                                       uint64_t fingerprint) {
  Reset();
  std::shared_ptr<PlanNode> root = skeleton.Clone();
  std::function<void(const std::shared_ptr<PlanNode>&)> walk =
      [&](const std::shared_ptr<PlanNode>& node) {
        // Memo entries are pre-narrowing; the skeleton was narrowed after
        // its install-time enumeration.
        for (ValidityRange& range : node->child_validity) {
          range = ValidityRange{};
        }
        if ((node->kind == PlanOpKind::kNljn ||
             node->kind == PlanOpKind::kHsjn ||
             node->kind == PlanOpKind::kMgjn) &&
            node->set != 0) {
          entries_[node->set] = node;
        }
        for (const std::shared_ptr<PlanNode>& child : node->children) {
          walk(child);
        }
      };
  walk(root);
  feedback_ = feedback;
  // Cached skeletons never contain matview scans (the plan cache rejects
  // them), and the install-time enumeration ran without matviews.
  matviews_.clear();
  fingerprint_ = fingerprint;
  valid_ = true;
}

JoinEnumerator::JoinEnumerator(const Catalog& catalog, const QuerySpec& query,
                               const CardinalityEstimator& estimator,
                               const CostModel& cost,
                               const JoinMethodConfig& methods,
                               const std::vector<AvailableMatView>* matviews,
                               PruneObserver* observer, IncrementalMemo* memo)
    : catalog_(catalog),
      query_(query),
      estimator_(estimator),
      cost_(cost),
      methods_(methods),
      matviews_(matviews),
      observer_(observer),
      memo_(memo) {
  table_widths_.reserve(static_cast<size_t>(query.num_tables()));
  for (int t = 0; t < query.num_tables(); ++t) {
    const Table* table = catalog.GetTable(query.table_name(t));
    table_widths_.push_back(table != nullptr ? table->schema().num_columns()
                                             : 0);
  }
}

const RowLayout& JoinEnumerator::LayoutFor(TableSet set) const {
  auto it = layout_cache_.find(set);
  if (it == layout_cache_.end()) {
    it = layout_cache_.emplace(set, RowLayout(set, table_widths_)).first;
  }
  return it->second;
}

std::vector<int> JoinEnumerator::CrossingJoins(TableSet left,
                                               TableSet right) const {
  std::vector<int> out;
  const auto& joins = query_.join_preds();
  for (size_t j = 0; j < joins.size(); ++j) {
    const int lt = joins[j].left.table_id;
    const int rt = joins[j].right.table_id;
    const bool crosses =
        (ContainsTable(left, lt) && ContainsTable(right, rt)) ||
        (ContainsTable(left, rt) && ContainsTable(right, lt));
    if (crosses) out.push_back(static_cast<int>(j));
  }
  return out;
}

std::shared_ptr<PlanNode> JoinEnumerator::BestAccessPath(int table_id) {
  const TableSet set = TableBit(table_id);
  auto scan = std::make_shared<PlanNode>();
  scan->kind = PlanOpKind::kTableScan;
  scan->set = set;
  scan->table_id = table_id;
  scan->table_name = query_.table_name(table_id);
  scan->pred_ids = query_.PredsOnTable(table_id);
  scan->card = estimator_.SubsetCard(set);
  scan->assumptions = estimator_.AssumptionCount(set);
  scan->op_cost = cost_.ScanCost(estimator_.TableCard(table_id));
  scan->cost = scan->op_cost;
  ++candidates_;

  std::shared_ptr<PlanNode> best = scan;
  if (methods_.consider_matviews && matviews_ != nullptr) {
    for (const AvailableMatView& mv : *matviews_) {
      if (mv.set != set || mv.rows == nullptr) continue;
      auto mvscan = std::make_shared<PlanNode>();
      mvscan->kind = PlanOpKind::kMatViewScan;
      mvscan->set = set;
      mvscan->table_id = table_id;
      mvscan->mv_name = mv.name;
      mvscan->mv_rows = mv.rows;
      mvscan->card = estimator_.SubsetCard(set);
      for (int pos : mv.sorted_positions) {
        mvscan->sort_keys.push_back(SortKey{pos, false});
      }
      mvscan->op_cost = cost_.MatViewScanCost(mv.card);
      mvscan->cost = mvscan->op_cost;
      ++candidates_;
      if (mvscan->cost < best->cost) best = mvscan;
    }
  }
  return best;
}

std::shared_ptr<PlanNode> JoinEnumerator::MakeHsjn(
    TableSet set, std::shared_ptr<PlanNode> probe,
    std::shared_ptr<PlanNode> build, const std::vector<int>& joins,
    double set_card, int set_assumptions) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanOpKind::kHsjn;
  node->set = set;
  node->children = {std::move(probe), std::move(build)};
  node->child_validity.resize(2);
  node->join_pred_ids = joins;
  node->card = set_card;
  node->assumptions = set_assumptions;
  const double probe_card = node->children[0]->card;
  const double build_card = node->children[1]->card;
  node->op_cost = cost_.HsjnCost(probe_card, build_card);
  node->cost =
      node->children[0]->cost + node->children[1]->cost + node->op_cost;
  return node;
}

std::shared_ptr<PlanNode> JoinEnumerator::MakeMgjn(
    TableSet set, std::shared_ptr<PlanNode> left,
    std::shared_ptr<PlanNode> right, const std::vector<int>& joins,
    double set_card, int set_assumptions) {
  auto make_sort = [this, &joins](std::shared_ptr<PlanNode> child,
                                  bool is_left) -> std::shared_ptr<PlanNode> {
    (void)is_left;
    const RowLayout& layout = LayoutFor(child->set);
    std::vector<int> required;
    for (int j : joins) {
      const JoinPredicate& jp = query_.join_preds()[static_cast<size_t>(j)];
      const ColRef& side =
          ContainsTable(child->set, jp.left.table_id) ? jp.left : jp.right;
      required.push_back(layout.Resolve(side));
    }
    // A reused materialized view that is already sorted on the join keys
    // needs no re-sort (the interesting-orders payoff of harvesting SORT
    // results as views).
    if (child->kind == PlanOpKind::kMatViewScan &&
        child->sort_keys.size() >= required.size()) {
      bool ordered = true;
      for (size_t k = 0; k < required.size(); ++k) {
        if (child->sort_keys[k].pos != required[k] ||
            child->sort_keys[k].descending) {
          ordered = false;
          break;
        }
      }
      if (ordered) return child;
    }
    auto sort = std::make_shared<PlanNode>();
    sort->kind = PlanOpKind::kSort;
    sort->set = child->set;
    sort->card = child->card;
    sort->assumptions = child->assumptions;
    for (int pos : required) {
      sort->sort_keys.push_back(SortKey{pos, false});
    }
    sort->op_cost = cost_.SortCost(child->card);
    sort->cost = child->cost + sort->op_cost;
    sort->children = {std::move(child)};
    sort->child_validity.resize(1);
    return sort;
  };
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanOpKind::kMgjn;
  node->set = set;
  node->children = {make_sort(std::move(left), true),
                    make_sort(std::move(right), false)};
  node->child_validity.resize(2);
  node->join_pred_ids = joins;
  node->card = set_card;
  node->assumptions = set_assumptions;
  node->op_cost = cost_.MgjnCost(node->children[0]->card,
                                 node->children[1]->card, node->card);
  node->cost =
      node->children[0]->cost + node->children[1]->cost + node->op_cost;
  return node;
}

std::shared_ptr<PlanNode> JoinEnumerator::MakeNljn(
    TableSet set, std::shared_ptr<PlanNode> outer, int inner_table,
    const std::vector<int>& joins, double set_card, int set_assumptions) {
  const TableSet inner_set = TableBit(inner_table);
  auto inner = std::make_shared<PlanNode>();
  inner->kind = PlanOpKind::kTableScan;
  inner->set = inner_set;
  inner->table_id = inner_table;
  inner->table_name = query_.table_name(inner_table);
  inner->pred_ids = query_.PredsOnTable(inner_table);
  inner->card = estimator_.SubsetCard(inner_set);
  inner->assumptions = estimator_.AssumptionCount(inner_set);
  inner->op_cost = 0.0;  // Probe cost is charged by the NLJN operator.
  inner->cost = 0.0;

  auto node = std::make_shared<PlanNode>();
  node->kind = PlanOpKind::kNljn;
  node->set = set;
  node->join_pred_ids = joins;
  node->card = set_card;
  node->assumptions = set_assumptions;

  // Prefer probing through an index: pick the first crossing join predicate
  // whose inner column has a hash index, and move it to the front.
  node->use_index = false;
  for (size_t k = 0; k < joins.size(); ++k) {
    const JoinPredicate& jp =
        query_.join_preds()[static_cast<size_t>(joins[k])];
    const ColRef& inner_side =
        jp.left.table_id == inner_table ? jp.left : jp.right;
    if (inner_side.table_id != inner_table) continue;
    if (catalog_.FindIndex(query_.table_name(inner_table),
                           inner_side.column) != nullptr) {
      node->use_index = true;
      node->index_col = inner_side.column;
      std::swap(node->join_pred_ids[0], node->join_pred_ids[k]);
      break;
    }
  }
  const double inner_base = estimator_.TableCard(inner_table);
  const double matches =
      node->use_index
          ? estimator_.IndexMatchesPerProbe(inner_table, node->index_col)
          : 0.0;
  node->per_probe_cost =
      cost_.NljnProbeCost(node->use_index, inner_base, matches);
  node->op_cost = cost_.NljnCost(outer->card, node->per_probe_cost);
  node->cost = outer->cost + node->op_cost;
  node->children = {std::move(outer), std::move(inner)};
  node->child_validity.resize(2);
  return node;
}

const AvailableMatView* JoinEnumerator::FindMatView(int table_id) const {
  if (!methods_.consider_matviews || matviews_ == nullptr) return nullptr;
  for (const AvailableMatView& mv : *matviews_) {
    if (mv.set == TableBit(table_id) && mv.rows != nullptr) return &mv;
  }
  return nullptr;
}

std::shared_ptr<PlanNode> JoinEnumerator::MakeNljnOverMv(
    TableSet set, std::shared_ptr<PlanNode> outer, int inner_table,
    const std::vector<int>& joins, const AvailableMatView& mv,
    double set_card, int set_assumptions) {
  const TableSet inner_set = TableBit(inner_table);
  auto inner = std::make_shared<PlanNode>();
  inner->kind = PlanOpKind::kMatViewScan;
  inner->set = inner_set;
  inner->table_id = inner_table;
  inner->mv_name = mv.name;
  inner->mv_rows = mv.rows;
  inner->card = estimator_.SubsetCard(inner_set);
  inner->assumptions = estimator_.AssumptionCount(inner_set);
  inner->op_cost = 0.0;  // Probe cost is charged by the NLJN operator.
  inner->cost = 0.0;

  auto node = std::make_shared<PlanNode>();
  node->kind = PlanOpKind::kNljn;
  node->set = set;
  node->join_pred_ids = joins;
  node->card = set_card;
  node->assumptions = set_assumptions;
  double per_probe;
  if (joins.empty()) {
    node->use_index = false;
    per_probe = cost_.NljnProbeCost(false, mv.card, 0.0);
    node->op_cost = cost_.NljnCost(outer->card, per_probe);
  } else {
    // Build a hash index on the view before reusing it (Section 2.3); the
    // one-off build cost is charged to this operator.
    const JoinPredicate& jp =
        query_.join_preds()[static_cast<size_t>(joins[0])];
    const ColRef& inner_side =
        jp.left.table_id == inner_table ? jp.left : jp.right;
    node->use_index = true;
    node->index_col = inner_side.column;
    const double matches =
        mv.card / std::max(1.0, estimator_.ColumnNdv(inner_table,
                                                     inner_side.column));
    per_probe = cost_.NljnProbeCost(true, mv.card, matches);
    node->op_cost = cost_.NljnCost(outer->card, per_probe) +
                    cost_.IndexBuildCost(mv.card);
  }
  node->per_probe_cost = per_probe;
  node->cost = outer->cost + node->op_cost;
  node->children = {std::move(outer), std::move(inner)};
  node->child_validity.resize(2);
  return node;
}

double JoinEnumerator::BiasedCost(const PlanNode& node) const {
  if (methods_.volatile_mode_bias <= 0.0) return node.cost;
  return node.cost * (1.0 + methods_.volatile_mode_bias * OperatorRisk(node));
}

void JoinEnumerator::Offer(TableSet set,
                           std::shared_ptr<PlanNode> candidate) {
  auto it = best_.find(set);
  if (it == best_.end()) {
    best_[set] = std::move(candidate);
    return;
  }
  std::shared_ptr<PlanNode>& best = it->second;
  // Cross-partition comparison: different join orders are never
  // structurally equivalent, so no validity narrowing happens here
  // (Section 2.2's restriction).
  if (BiasedCost(*candidate) < BiasedCost(*best)) {
    best = std::move(candidate);
  }
}

void JoinEnumerator::AddJoinCandidates(TableSet set, TableSet left,
                                       TableSet right,
                                       const std::vector<int>& joins,
                                       double set_card,
                                       int set_assumptions) {
  const std::shared_ptr<PlanNode>& lp = best_[left];
  const std::shared_ptr<PlanNode>& rp = best_[right];
  if (lp == nullptr || rp == nullptr) return;

  // All candidates of one partition are structurally equivalent (same
  // input edges, commutation included): prune among them first, narrowing
  // the survivor's validity ranges per Figure 5, then offer the partition
  // winner for the cross-partition (join-order) comparison.
  std::vector<std::shared_ptr<PlanNode>> candidates;
  if (methods_.enable_hsjn) {
    candidates.push_back(
        MakeHsjn(set, lp, rp, joins, set_card, set_assumptions));  // Build R.
    candidates.push_back(
        MakeHsjn(set, rp, lp, joins, set_card, set_assumptions));  // Commuted.
  }
  if (methods_.enable_mgjn && !joins.empty()) {
    candidates.push_back(
        MakeMgjn(set, lp, rp, joins, set_card, set_assumptions));
  }
  if (methods_.enable_nljn) {
    if (PopCount(right) == 1) {
      const int t = static_cast<int>(__builtin_ctzll(right));
      candidates.push_back(
          MakeNljn(set, lp, t, joins, set_card, set_assumptions));
      if (const AvailableMatView* mv = FindMatView(t)) {
        candidates.push_back(
            MakeNljnOverMv(set, lp, t, joins, *mv, set_card,
                           set_assumptions));
      }
    }
    if (PopCount(left) == 1) {
      const int t = static_cast<int>(__builtin_ctzll(left));
      candidates.push_back(
          MakeNljn(set, rp, t, joins, set_card, set_assumptions));
      if (const AvailableMatView* mv = FindMatView(t)) {
        candidates.push_back(
            MakeNljnOverMv(set, rp, t, joins, *mv, set_card,
                           set_assumptions));
      }
    }
  }
  if (candidates.empty()) return;
  candidates_ += static_cast<int64_t>(candidates.size());

  std::shared_ptr<PlanNode> winner = std::move(candidates[0]);
  for (size_t i = 1; i < candidates.size(); ++i) {
    std::shared_ptr<PlanNode>& challenger = candidates[i];
    if (BiasedCost(*challenger) < BiasedCost(*winner)) {
      if (observer_ != nullptr) observer_->OnPrune(challenger.get(), *winner);
      winner = std::move(challenger);
    } else {
      if (observer_ != nullptr) observer_->OnPrune(winner.get(), *challenger);
    }
  }
  Offer(set, std::move(winner));
}

void JoinEnumerator::NarrowPlanRanges(PlanNode* root,
                                      PruneObserver* observer) {
  if (root->kind == PlanOpKind::kNljn || root->kind == PlanOpKind::kHsjn ||
      root->kind == PlanOpKind::kMgjn) {
    const PlanNode* left = LogicalChild(*root, 0);
    const PlanNode* right = LogicalChild(*root, 1);
    // Regenerate the structurally equivalent alternatives over the same
    // (already-optimized) children and narrow against each.
    const std::vector<int> joins = CrossingJoins(left->set, right->set);
    auto share = [this](const PlanNode* node) {
      // Alternatives only read card/cost/set of the children; a shallow
      // copy is enough and avoids touching the real tree. An NLJN inner
      // scan carries zero cost (the probe is charged by the join), so it
      // must be re-costed as a standalone access path or the regenerated
      // alternatives would get its scan for free.
      auto copy = std::make_shared<PlanNode>(*node);
      if (copy->kind == PlanOpKind::kTableScan && copy->cost == 0.0) {
        copy->op_cost = cost_.ScanCost(estimator_.TableCard(copy->table_id));
        copy->cost = copy->op_cost;
      }
      return copy;
    };
    const double set_card = estimator_.SubsetCard(root->set);
    const int set_assumptions = estimator_.AssumptionCount(root->set);
    std::vector<std::shared_ptr<PlanNode>> alternatives;
    if (methods_.enable_hsjn) {
      alternatives.push_back(MakeHsjn(root->set, share(left), share(right),
                                      joins, set_card, set_assumptions));
      alternatives.push_back(MakeHsjn(root->set, share(right), share(left),
                                      joins, set_card, set_assumptions));
    }
    if (methods_.enable_mgjn && !joins.empty()) {
      alternatives.push_back(MakeMgjn(root->set, share(left), share(right),
                                      joins, set_card, set_assumptions));
    }
    if (methods_.enable_nljn) {
      if (PopCount(right->set) == 1 &&
          right->kind == PlanOpKind::kTableScan) {
        alternatives.push_back(MakeNljn(
            root->set, share(left),
            static_cast<int>(__builtin_ctzll(right->set)), joins, set_card,
            set_assumptions));
      }
      if (PopCount(left->set) == 1 && left->kind == PlanOpKind::kTableScan) {
        alternatives.push_back(MakeNljn(
            root->set, share(right),
            static_cast<int>(__builtin_ctzll(left->set)), joins, set_card,
            set_assumptions));
      }
    }
    for (const auto& alt : alternatives) {
      if (alt->kind == root->kind && SamePartition(*alt, *root) &&
          LogicalChild(*alt, 0)->set == left->set &&
          alt->use_index == root->use_index &&
          alt->children[1]->kind == root->children[1]->kind) {
        // Skip the candidate that *is* this plan.
        continue;
      }
      observer->OnPrune(root, *alt);
    }
  }
  for (const auto& child : root->children) {
    NarrowPlanRanges(child.get(), observer);
  }
}

std::vector<MemoMatViewKey> JoinEnumerator::CurrentMatViewKeys() const {
  std::vector<MemoMatViewKey> keys;
  if (!methods_.consider_matviews || matviews_ == nullptr) return keys;
  keys.reserve(matviews_->size());
  for (const AvailableMatView& mv : *matviews_) {
    keys.push_back(MemoMatViewKey{mv.name, mv.set, mv.card, mv.rows,
                                  mv.sorted_positions});
  }
  return keys;
}

void JoinEnumerator::ReuseMemoEntries() {
  // Dirty roots: every table set whose cardinality knowledge or matview
  // identity changed since the memo was committed. A memo entry for set S
  // is stale iff some dirty root is a subset of S — SubsetCard(S) reads
  // only feedback entries that are subsets of S, matviews over M are only
  // candidates for sets containing M, and a stale child taints every
  // candidate cost above it.
  std::vector<TableSet> dirty;
  static const FeedbackMap kEmptyFeedback;
  const FeedbackMap& old_fb = memo_->feedback_;
  const FeedbackMap& new_fb = estimator_.feedback() != nullptr
                                  ? *estimator_.feedback()
                                  : kEmptyFeedback;
  auto ita = old_fb.begin();
  auto itb = new_fb.begin();
  while (ita != old_fb.end() || itb != new_fb.end()) {
    if (itb == new_fb.end() || (ita != old_fb.end() && ita->first < itb->first)) {
      dirty.push_back(ita->first);  // Key vanished.
      ++ita;
    } else if (ita == old_fb.end() || itb->first < ita->first) {
      dirty.push_back(itb->first);  // Key appeared.
      ++itb;
    } else {
      if (ita->second.exact != itb->second.exact ||
          ita->second.lower_bound != itb->second.lower_bound) {
        dirty.push_back(ita->first);
      }
      ++ita;
      ++itb;
    }
  }
  const std::vector<MemoMatViewKey> new_mv = CurrentMatViewKeys();
  for (const MemoMatViewKey& old_key : memo_->matviews_) {
    if (std::find(new_mv.begin(), new_mv.end(), old_key) == new_mv.end()) {
      dirty.push_back(old_key.set);
    }
  }
  for (const MemoMatViewKey& new_key : new_mv) {
    if (std::find(memo_->matviews_.begin(), memo_->matviews_.end(),
                  new_key) == memo_->matviews_.end()) {
      dirty.push_back(new_key.set);
    }
  }

  // Adopt the memo wholesale by move and evict the stale entries: with few
  // dirty roots this is a handful of erases instead of re-inserting every
  // surviving entry one at a time. The memo is hollow until CommitMemo
  // repopulates it, so mark it invalid in case enumeration fails midway.
  best_ = std::move(memo_->entries_);
  memo_->entries_.clear();
  memo_->valid_ = false;
  for (auto it = best_.begin(); it != best_.end();) {
    bool stale = false;
    for (TableSet root : dirty) {
      if ((root & it->first) == root) {
        stale = true;
        break;
      }
    }
    if (stale) {
      ++memo_invalidated_;
      it = best_.erase(it);
    } else {
      // Map iteration is ascending, so the end() hint keeps this O(1).
      reused_.insert(reused_.end(), it->first);
      ++memo_reused_;
      ++it;
    }
  }
}

void JoinEnumerator::CommitMemo() {
  memo_->entries_ = std::move(best_);
  memo_->feedback_ = estimator_.feedback() != nullptr ? *estimator_.feedback()
                                                      : FeedbackMap{};
  memo_->matviews_ = CurrentMatViewKeys();
  memo_->fingerprint_ = memo_fingerprint_;
  memo_->valid_ = true;
}

Result<std::shared_ptr<PlanNode>> JoinEnumerator::EnumerateJoinTree() {
  const int n = query_.num_tables();
  if (n == 0) {
    return Status::InvalidArgument("query has no tables");
  }
  if (n > 20) {
    return Status::InvalidArgument(
        "too many tables for exhaustive dynamic programming");
  }
  if (memo_ != nullptr) {
    memo_fingerprint_ = QueryMemoFingerprint(query_);
    if (memo_->valid_ && memo_->fingerprint_ == memo_fingerprint_) {
      ReuseMemoEntries();
    }
  }
  for (int t = 0; t < n; ++t) {
    if (catalog_.GetTable(query_.table_name(t)) == nullptr) {
      return Status::NotFound("no such table: " + query_.table_name(t));
    }
    if (reused_.count(TableBit(t)) != 0) continue;
    best_[TableBit(t)] = BestAccessPath(t);
  }

  // Multi-table materialized views seed their table set directly.
  if (methods_.consider_matviews && matviews_ != nullptr) {
    for (const AvailableMatView& mv : *matviews_) {
      if (PopCount(mv.set) < 2 || mv.rows == nullptr) continue;
      if (reused_.count(mv.set) != 0) continue;
      auto mvscan = std::make_shared<PlanNode>();
      mvscan->kind = PlanOpKind::kMatViewScan;
      mvscan->set = mv.set;
      mvscan->mv_name = mv.name;
      mvscan->mv_rows = mv.rows;
      mvscan->card = estimator_.SubsetCard(mv.set);
      for (int pos : mv.sorted_positions) {
        mvscan->sort_keys.push_back(SortKey{pos, false});
      }
      mvscan->op_cost = cost_.MatViewScanCost(mv.card);
      mvscan->cost = mvscan->op_cost;
      Offer(mv.set, std::move(mvscan));
    }
  }

  const TableSet full = query_.AllTables();
  std::vector<std::vector<TableSet>> by_size(static_cast<size_t>(n + 1));
  for (TableSet set = 1; set <= full; ++set) {
    const int pc = PopCount(set);
    if (pc >= 2) by_size[static_cast<size_t>(pc)].push_back(set);
  }

  for (int size = 2; size <= n; ++size) {
    for (TableSet set : by_size[static_cast<size_t>(size)]) {
      if (reused_.count(set) != 0) continue;  // Memo entry still valid.
      // One estimator probe per set, shared by every split's candidates.
      const double set_card = estimator_.SubsetCard(set);
      const int set_assumptions = estimator_.AssumptionCount(set);
      const TableSet low_bit = set & (~set + 1);
      // Pass 1: partitions connected by at least one join predicate.
      bool connected_found = false;
      for (TableSet sub = (set - 1) & set; sub != 0; sub = (sub - 1) & set) {
        if ((sub & low_bit) == 0) continue;  // Dedupe unordered partitions.
        const TableSet rest = set & ~sub;
        if (best_.count(sub) == 0 || best_.count(rest) == 0) continue;
        const std::vector<int> joins = CrossingJoins(sub, rest);
        if (joins.empty()) continue;
        connected_found = true;
        AddJoinCandidates(set, sub, rest, joins, set_card, set_assumptions);
      }
      if (!connected_found) {
        // Pass 2: no connected partition exists; allow cross products.
        for (TableSet sub = (set - 1) & set; sub != 0;
             sub = (sub - 1) & set) {
          if ((sub & low_bit) == 0) continue;
          const TableSet rest = set & ~sub;
          if (best_.count(sub) == 0 || best_.count(rest) == 0) continue;
          AddJoinCandidates(set, sub, rest, {}, set_card, set_assumptions);
        }
      }
    }
  }

  auto it = best_.find(full);
  if (it == best_.end() || it->second == nullptr) {
    return Status::Internal("join enumeration produced no plan");
  }
  // CommitMemo moves best_ into the memo; keep the winner alive first.
  std::shared_ptr<PlanNode> winner = it->second;
  if (memo_ != nullptr) CommitMemo();
  return winner;
}

}  // namespace popdb
