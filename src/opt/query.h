#ifndef POPDB_OPT_QUERY_H_
#define POPDB_OPT_QUERY_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "exec/agg.h"
#include "exec/expr.h"
#include "exec/layout.h"

namespace popdb {

/// Declarative select-project-join(-aggregate) query over catalog tables:
/// the engine's logical query representation. Construct it directly through
/// this builder API, or from SQL text via sql::ParseSql (sql/binder.h).
///
/// Example (Q: one join, one parameterized selection, group-by):
///   QuerySpec q("demo");
///   int o = q.AddTable("orders");
///   int l = q.AddTable("lineitem");
///   q.AddJoin({o, 0}, {l, 0});                           // o_okey = l_okey
///   q.AddParamPred({l, 4}, PredKind::kLe, /*param=*/0);  // l_qty <= ?
///   q.BindParam(Value::Int(10));
///   q.AddGroupBy({o, 1});
///   q.AddAgg(AggFunc::kSum, {l, 5});
class QuerySpec {
 public:
  struct Agg {
    AggFunc func = AggFunc::kCount;
    ColRef arg;  ///< Ignored for COUNT.
  };
  /// ORDER BY key over the final output row (post projection/aggregation).
  struct OrderKey {
    int output_pos = 0;
    bool descending = false;
  };
  /// HAVING restriction over the final output row (group-by columns first,
  /// then one column per aggregate).
  struct HavingPred {
    int output_pos = 0;
    PredKind kind = PredKind::kEq;
    Value operand;
    Value operand2;
  };

  explicit QuerySpec(std::string name) : name_(std::move(name)) {}

  /// Adds a catalog table; returns its query table id.
  int AddTable(const std::string& table_name);

  /// Adds a literal restriction; returns the predicate id.
  int AddPred(ColRef col, PredKind kind, Value operand,
              Value operand2 = Value::Null());
  /// Adds an IN-list restriction.
  int AddInPred(ColRef col, std::vector<Value> in_list);
  /// Adds a parameter-marker restriction bound at execution time; the
  /// optimizer cannot see the literal and must use default selectivities.
  int AddParamPred(ColRef col, PredKind kind, int param_index);

  /// Adds an equality join predicate.
  void AddJoin(ColRef left, ColRef right);

  /// Appends a projected output column (SPJ queries). If none are added the
  /// query returns all columns of all tables.
  void AddProjection(ColRef col) { projections_.push_back(col); }

  void AddGroupBy(ColRef col) { group_by_.push_back(col); }
  void AddAgg(AggFunc func, ColRef arg = ColRef{}) {
    aggs_.push_back(Agg{func, arg});
  }
  void AddOrderBy(int output_pos, bool descending = false) {
    order_by_.push_back(OrderKey{output_pos, descending});
  }
  void AddHaving(int output_pos, PredKind kind, Value operand,
                 Value operand2 = Value::Null()) {
    having_.push_back(
        HavingPred{output_pos, kind, std::move(operand), std::move(operand2)});
  }
  /// SELECT DISTINCT: deduplicates the projected rows (no-op for
  /// aggregation queries, whose group-by already deduplicates).
  void SetDistinct(bool distinct) { distinct_ = distinct; }
  /// LIMIT: truncates the final result to at most `n` rows (applied after
  /// any ORDER BY). Negative = no limit.
  void SetLimit(int64_t n) { limit_ = n; }

  /// Binds the value for the next parameter index (call in order).
  void BindParam(Value v) { params_.push_back(std::move(v)); }
  /// Replaces the binding of parameter `index`.
  void RebindParam(int index, Value v) {
    params_[static_cast<size_t>(index)] = std::move(v);
  }

  const std::string& name() const { return name_; }
  int num_tables() const { return static_cast<int>(tables_.size()); }
  const std::string& table_name(int table_id) const {
    return tables_[static_cast<size_t>(table_id)];
  }
  const std::vector<std::string>& tables() const { return tables_; }
  const std::vector<Predicate>& local_preds() const { return local_preds_; }
  const std::vector<JoinPredicate>& join_preds() const { return join_preds_; }
  const std::vector<ColRef>& projections() const { return projections_; }
  const std::vector<ColRef>& group_by() const { return group_by_; }
  const std::vector<Agg>& aggs() const { return aggs_; }
  const std::vector<OrderKey>& order_by() const { return order_by_; }
  const std::vector<HavingPred>& having() const { return having_; }
  bool distinct() const { return distinct_; }
  int64_t limit() const { return limit_; }
  const std::vector<Value>& params() const { return params_; }

  bool has_aggregation() const { return !aggs_.empty() || !group_by_.empty(); }

  /// Bitmask of all query tables.
  TableSet AllTables() const {
    return tables_.empty() ? 0
                           : (TableSet{1} << tables_.size()) - 1;
  }

  /// Local predicate ids restricting `table_id`.
  std::vector<int> PredsOnTable(int table_id) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> tables_;
  std::vector<Predicate> local_preds_;
  std::vector<JoinPredicate> join_preds_;
  std::vector<ColRef> projections_;
  std::vector<ColRef> group_by_;
  std::vector<Agg> aggs_;
  std::vector<OrderKey> order_by_;
  std::vector<HavingPred> having_;
  bool distinct_ = false;
  int64_t limit_ = -1;
  std::vector<Value> params_;
};

}  // namespace popdb

#endif  // POPDB_OPT_QUERY_H_
