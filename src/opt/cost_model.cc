#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace popdb {

double CostModel::ScanCost(double base_rows) const {
  return params_.scan_per_row * std::max(0.0, base_rows);
}

double CostModel::MatViewScanCost(double rows) const {
  return params_.mv_scan_per_row * std::max(0.0, rows);
}

double CostModel::TempCost(double rows) const {
  return params_.temp_per_row * std::max(0.0, rows);
}

double CostModel::SortCost(double rows) const {
  const double n = std::max(1.0, rows);
  double cost = params_.sort_per_compare * n * std::log2(n + 1.0);
  if (n > params_.mem_rows) {
    // External sort: one full extra merge pass per doubling beyond memory
    // (ceil of log2 of the run count) — a staircase, not a smooth function.
    const double runs = std::ceil(n / params_.mem_rows);
    const double passes = std::ceil(std::log2(runs));
    cost += params_.sort_merge_pass_per_row * n * std::max(1.0, passes);
  }
  return cost;
}

int CostModel::HsjnStages(double build_rows) const {
  if (build_rows <= params_.mem_rows) return 0;
  const double ratio = build_rows / params_.mem_rows;
  return static_cast<int>(
      std::ceil(std::log(ratio) / std::log(static_cast<double>(
                                      std::max(2, params_.hash_fanout)))));
}

double CostModel::HsjnCost(double probe_rows, double build_rows) const {
  const double b = std::max(0.0, build_rows);
  const double p = std::max(0.0, probe_rows);
  double cost = params_.hash_build_per_row * b + params_.hash_probe_per_row * p;
  const int stages = HsjnStages(b);
  if (stages > 0) {
    // Each stage rewrites both inputs once (and the probe side must be
    // fully materialized first, which the partition pass accounts for).
    cost += static_cast<double>(stages) * params_.partition_per_row * (b + p);
  }
  return cost;
}

double CostModel::MgjnCost(double left_rows, double right_rows,
                           double out_rows) const {
  return params_.mgjn_per_row *
         (std::max(0.0, left_rows) + std::max(0.0, right_rows) +
          std::max(0.0, out_rows));
}

double CostModel::NljnProbeCost(bool use_index, double inner_base_rows,
                                double matches_per_probe) const {
  if (use_index) {
    return 1.0 + params_.nljn_probe_per_match * std::max(0.0, matches_per_probe);
  }
  return params_.nljn_scan_per_inner_row * std::max(1.0, inner_base_rows);
}

double CostModel::NljnCost(double outer_rows, double per_probe_cost) const {
  const double n = std::max(0.0, outer_rows);
  return params_.nljn_outer_per_row * n + n * per_probe_cost;
}

double CostModel::AggCost(double rows) const {
  return params_.agg_per_row * std::max(0.0, rows);
}

double CostModel::CheckCost(double rows) const {
  return params_.check_per_row * std::max(0.0, rows);
}

double CostModel::IndexBuildCost(double rows) const {
  return params_.hash_build_per_row * std::max(0.0, rows);
}

}  // namespace popdb
