#ifndef POPDB_OPT_PLAN_H_
#define POPDB_OPT_PLAN_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/agg.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "opt/cost_model.h"

namespace popdb {

/// Physical operator kinds a query execution plan can contain.
enum class PlanOpKind {
  kTableScan,
  kMatViewScan,
  kNljn,  ///< children[0]=outer subplan, children[1]=inner access path.
  kHsjn,  ///< children[0]=probe/outer, children[1]=build/inner.
  kMgjn,  ///< children are kSort nodes over the join inputs.
  kSort,
  kTemp,
  kAgg,
  kProject,
  kFilter,     ///< Residual predicates over resolved positions (HAVING).
  kCheck,      ///< Streaming CHECK (eager flavors).
  kCheckMat,   ///< Lazy CHECK evaluated once above a materialization.
  kBufCheck,   ///< CHECK fused with a bounded buffer (Figures 8/10).
  kWorkBound,  ///< Extension: execution-work budget guard (Section 8).
  kRidTrack,   ///< Records returned rows for deferred compensation.
  kAntiComp,   ///< Anti-join against previously returned rows.
};

const char* PlanOpKindName(PlanOpKind kind);

/// Cardinality interval within which the plan above an edge remains optimal
/// with respect to the optimizer's cost model (paper Section 2.2). Computed
/// conservatively during dynamic-programming pruning; an un-narrowed range
/// is [0, +inf) and never triggers re-optimization.
struct ValidityRange {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();

  bool IsNarrowed() const {
    return lo > 0.0 || hi < std::numeric_limits<double>::infinity();
  }
  bool Contains(double card) const { return card >= lo && card <= hi; }
};

/// A node of a physical query execution plan. During optimization children
/// are shared between candidate plans (dynamic programming keeps one best
/// plan per table set); the final plan is deep-cloned before the checkpoint
/// placement post-pass mutates it.
///
/// `child_validity[i]` is the validity range of the edge from children[i]
/// into this node; it lives on the parent because the child subplan is
/// shared between candidates.
struct PlanNode {
  PlanOpKind kind = PlanOpKind::kTableScan;
  /// Mutable pointers, but shared subtrees must never be mutated: the
  /// optimizer deep-clones the winning plan before any pass rewrites it.
  std::vector<std::shared_ptr<PlanNode>> children;
  std::vector<ValidityRange> child_validity;

  TableSet set = 0;       ///< Tables joined by this subplan (0 = post-join).
  double card = 0.0;      ///< Estimated output cardinality.
  double cost = 0.0;      ///< Cumulative estimated cost.
  double op_cost = 0.0;   ///< This operator's own cost share.
  /// Optimizer assumptions behind `card` (independence multiplications and
  /// parameter-marker defaults) — the confidence model of Section 4.
  int assumptions = 0;

  // --- Scan payload.
  int table_id = -1;
  std::string table_name;
  std::vector<int> pred_ids;  ///< Local predicate ids applied here.
  std::string mv_name;        ///< For kMatViewScan.
  const std::vector<Row>* mv_rows = nullptr;

  // --- Join payload.
  std::vector<int> join_pred_ids;
  bool use_index = false;
  int index_col = -1;          ///< Inner column probed via hash index.
  double per_probe_cost = 0.0; ///< NLJN expected cost per outer row.

  // --- Sort payload (kSort; also final order-by).
  std::vector<SortKey> sort_keys;

  // --- Aggregation payload.
  std::vector<int> group_positions;
  std::vector<ResolvedAgg> agg_specs;

  // --- Projection payload.
  std::vector<int> positions;

  // --- Residual filter payload (kFilter; HAVING).
  std::vector<ResolvedPredicate> filter_preds;

  // --- Checkpoint payload.
  CheckSpec check;
  /// For kWorkBound: fire once ExecContext::work exceeds this.
  double work_budget = 0.0;

  /// Deep copy (children cloned too, breaking sharing).
  std::shared_ptr<PlanNode> Clone() const;

  /// Multi-line indented plan rendering including cards, costs, validity
  /// ranges and check ranges.
  std::string ToString() const;

  /// Sum of rows produced by join/scan operators — used by benchmarks as a
  /// deterministic "work" proxy.
  double TotalCost() const { return cost; }
};

/// Order-sensitive 64-bit FNV-1a digest of a full plan tree: operator
/// kinds, table sets, bit-exact cards/costs, predicates, sort keys,
/// validity ranges and check ranges. Two plans digest equal only when they
/// are structurally and numerically identical — the incremental
/// re-optimization oracle's definition of "the same plan" (stricter than
/// comparing the %g-formatted ToString rendering).
uint64_t PlanDigest(const PlanNode& plan);

/// Recomputes the cumulative cost of a join candidate `root` assuming its
/// logical input edge in child slot `slot` carried `edge_card` rows instead
/// of the estimate. Sort/Temp wrappers directly above the shared subplan
/// are re-costed; the shared subplans below are sunk constants. This is the
/// cost(P, c) function used by validity-range root finding (Figure 4).
double RecostCandidateWithEdgeCard(const PlanNode& root, int slot,
                                   double edge_card, const CostModel& cm);

/// The logical subplan feeding slot `slot` of `root` (skipping a Sort/Temp
/// wrapper inserted by the join candidate itself).
const PlanNode* LogicalChild(const PlanNode& root, int slot);

}  // namespace popdb

#endif  // POPDB_OPT_PLAN_H_
