#ifndef POPDB_OPT_ENUMERATOR_H_
#define POPDB_OPT_ENUMERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/plan.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb {

/// A temporary materialized view (from a previous execution step of the
/// same query) offered to the optimizer. The optimizer costs a scan of the
/// view against recomputing the subplan and picks whichever is cheaper
/// (Section 2.3 — reuse is a cost-based decision, never forced).
struct AvailableMatView {
  std::string name;
  TableSet set = 0;
  double card = 0.0;
  const std::vector<Row>* rows = nullptr;
  /// Canonical positions the rows are sorted on (ascending); a merge join
  /// over the view can skip its sort when these cover the join keys.
  std::vector<int> sorted_positions;
};

/// Join methods the optimizer may use. Experiments toggle these (e.g. the
/// LC overhead study disables hash join to create many SORT/TEMP
/// materialization points).
struct JoinMethodConfig {
  bool enable_nljn = true;
  bool enable_hsjn = true;
  bool enable_mgjn = true;
  bool consider_matviews = true;

  /// "Conservative mode of query execution" (paper Section 7, Checking
  /// Opportunities): bias plan choice toward operators that offer more
  /// re-optimization opportunities — merge joins materialize both inputs
  /// (two lazy checkpoints), hash joins one, pipelined NLJNs none. A
  /// candidate's comparison cost is inflated by
  /// (1 + bias * operator_risk); its recorded cost stays unbiased so the
  /// validity analysis still reasons about true costs. 0 disables.
  double volatile_mode_bias = 0.0;
};

/// Observer invoked whenever dynamic programming prunes a structurally
/// equivalent alternative (same table set, same unordered child partition).
/// The POP validity-range analysis implements this interface; a null
/// observer makes the enumerator a plain System-R optimizer.
class PruneObserver {
 public:
  virtual ~PruneObserver() = default;

  /// `winner` survives, `loser` is pruned. The observer may narrow
  /// `winner->child_validity`.
  virtual void OnPrune(PlanNode* winner, const PlanNode& loser) = 0;
};

/// Selinger-style dynamic-programming join enumerator: one best plan per
/// table subset, bushy partitions, hash/merge/nested-loop candidates, and
/// materialized-view seeding. Produces the join tree only; the Optimizer
/// facade adds aggregation / sort / projection on top.
class JoinEnumerator {
 public:
  JoinEnumerator(const Catalog& catalog, const QuerySpec& query,
                 const CardinalityEstimator& estimator, const CostModel& cost,
                 const JoinMethodConfig& methods,
                 const std::vector<AvailableMatView>* matviews,
                 PruneObserver* observer);

  /// Runs DP over all table subsets and returns the best full join tree.
  Result<std::shared_ptr<PlanNode>> EnumerateJoinTree();

  /// Narrows the validity ranges of every join edge of (the already
  /// chosen, deep-cloned) `root` by regenerating the structurally
  /// equivalent alternatives of each join node and invoking `observer` as
  /// if they were pruned. By the structural-equivalence theorem
  /// (Section 2.2) ranges are only needed on the final plan's edges, so
  /// doing this as a post-pass costs O(plan size) cost-model evaluations
  /// instead of O(3^n).
  void NarrowPlanRanges(PlanNode* root, PruneObserver* observer);

  /// Number of candidate plans costed (diagnostics).
  int64_t candidates_considered() const { return candidates_; }

 private:
  std::shared_ptr<PlanNode> BestAccessPath(int table_id);
  /// Join predicate indexes with one side in `left` and the other in
  /// `right`.
  std::vector<int> CrossingJoins(TableSet left, TableSet right) const;

  void AddJoinCandidates(TableSet set, TableSet left, TableSet right,
                         const std::vector<int>& joins);
  std::shared_ptr<PlanNode> MakeHsjn(TableSet set,
                                     std::shared_ptr<PlanNode> probe,
                                     std::shared_ptr<PlanNode> build,
                                     const std::vector<int>& joins);
  std::shared_ptr<PlanNode> MakeMgjn(TableSet set,
                                     std::shared_ptr<PlanNode> left,
                                     std::shared_ptr<PlanNode> right,
                                     const std::vector<int>& joins);
  std::shared_ptr<PlanNode> MakeNljn(TableSet set,
                                     std::shared_ptr<PlanNode> outer,
                                     int inner_table,
                                     const std::vector<int>& joins);
  /// NLJN probing a temporary materialized view covering the inner table,
  /// through a hash index built on the view before reuse (the paper's
  /// Section 2.3 "create an index on the materialized view if worthwhile").
  std::shared_ptr<PlanNode> MakeNljnOverMv(TableSet set,
                                           std::shared_ptr<PlanNode> outer,
                                           int inner_table,
                                           const std::vector<int>& joins,
                                           const AvailableMatView& mv);
  /// Singleton-set materialized view covering `table_id`, or null.
  const AvailableMatView* FindMatView(int table_id) const;
  /// Offers `candidate` for table set `set`, pruning with validity-range
  /// narrowing when structurally comparable.
  void Offer(TableSet set, std::shared_ptr<PlanNode> candidate);
  /// Comparison cost including the volatile-mode robustness bias.
  double BiasedCost(const PlanNode& node) const;

  RowLayout LayoutFor(TableSet set) const;

  const Catalog& catalog_;
  const QuerySpec& query_;
  const CardinalityEstimator& estimator_;
  const CostModel& cost_;
  JoinMethodConfig methods_;
  const std::vector<AvailableMatView>* matviews_;
  PruneObserver* observer_;

  std::vector<int> table_widths_;
  std::map<TableSet, std::shared_ptr<PlanNode>> best_;
  int64_t candidates_ = 0;
};

/// True if `a` and `b` are join candidates over the same unordered child
/// partition (the paper's structural-equivalence restriction: alternative
/// root operators and commuted inputs, but never different join orders).
bool SamePartition(const PlanNode& a, const PlanNode& b);

}  // namespace popdb

#endif  // POPDB_OPT_ENUMERATOR_H_
