#ifndef POPDB_OPT_ENUMERATOR_H_
#define POPDB_OPT_ENUMERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/plan.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb {

/// A temporary materialized view (from a previous execution step of the
/// same query) offered to the optimizer. The optimizer costs a scan of the
/// view against recomputing the subplan and picks whichever is cheaper
/// (Section 2.3 — reuse is a cost-based decision, never forced).
struct AvailableMatView {
  std::string name;
  TableSet set = 0;
  double card = 0.0;
  const std::vector<Row>* rows = nullptr;
  /// Canonical positions the rows are sorted on (ascending); a merge join
  /// over the view can skip its sort when these cover the join keys.
  std::vector<int> sorted_positions;
};

/// Join methods the optimizer may use. Experiments toggle these (e.g. the
/// LC overhead study disables hash join to create many SORT/TEMP
/// materialization points).
struct JoinMethodConfig {
  bool enable_nljn = true;
  bool enable_hsjn = true;
  bool enable_mgjn = true;
  bool consider_matviews = true;

  /// "Conservative mode of query execution" (paper Section 7, Checking
  /// Opportunities): bias plan choice toward operators that offer more
  /// re-optimization opportunities — merge joins materialize both inputs
  /// (two lazy checkpoints), hash joins one, pipelined NLJNs none. A
  /// candidate's comparison cost is inflated by
  /// (1 + bias * operator_risk); its recorded cost stays unbiased so the
  /// validity analysis still reasons about true costs. 0 disables.
  double volatile_mode_bias = 0.0;
};

/// Identity of one offered materialized view, captured when the memo is
/// committed. A view whose identity changed between optimizations (new
/// rows, different sort order, dropped/replaced) dirties every memo entry
/// whose table set could have used it.
struct MemoMatViewKey {
  std::string name;
  TableSet set = 0;
  double card = 0.0;
  const std::vector<Row>* rows = nullptr;
  std::vector<int> sorted_positions;

  bool operator==(const MemoMatViewKey&) const = default;
};

/// Persistent dynamic-programming memo carried across the optimizations of
/// one progressive execution (and across the coordinator's cluster-level
/// re-optimizations). After a successful enumeration the one-best-plan-per-
/// table-set map is committed here together with the feedback snapshot and
/// matview identities it was computed under; the next enumeration for the
/// same query reuses every entry whose table set contains no changed
/// feedback key and no changed matview — by construction those entries are
/// bit-identical to what a from-scratch enumeration would produce, because
/// SubsetCard(S) only ever reads feedback entries that are subsets of S.
/// Entries whose set covers a changed edge are discarded and re-costed
/// upward through their supersets by the normal DP passes.
///
/// Memo entries are pre-narrowing plan trees (the Optimizer deep-clones the
/// winner before NarrowPlanRanges mutates validity ranges), so reuse never
/// leaks state between attempts. Not thread safe; one memo belongs to one
/// executor.
class IncrementalMemo {
 public:
  /// Drops all state; the next enumeration runs full DP.
  void Reset() {
    entries_.clear();
    feedback_.clear();
    matviews_.clear();
    fingerprint_ = 0;
    valid_ = false;
  }

  /// Warm start from a cached pre-checkpoint plan skeleton (plan-cache
  /// near miss: same signature, stale feedback digest). Every join-node
  /// subtree of the skeleton with table set S is the install-time DP best
  /// plan for S, so it seeds the memo entry for S; `feedback` must be the
  /// install-time snapshot so the next enumeration can diff against it.
  /// The skeleton is post-narrowing, so every validity range of the seeded
  /// clone is reset to its default — memo entries are pre-narrowing.
  void SeedFromSkeleton(const PlanNode& skeleton, const FeedbackMap& feedback,
                        uint64_t fingerprint);

  bool valid() const { return valid_; }
  int64_t entries() const { return static_cast<int64_t>(entries_.size()); }

 private:
  friend class JoinEnumerator;

  std::map<TableSet, std::shared_ptr<PlanNode>> entries_;
  /// Feedback snapshot the entries were computed under.
  FeedbackMap feedback_;
  /// Identities of the matviews offered to the committing enumeration.
  std::vector<MemoMatViewKey> matviews_;
  /// QueryMemoFingerprint of the committing query; a mismatch invalidates
  /// the whole memo.
  uint64_t fingerprint_ = 0;
  bool valid_ = false;
};

/// Observer invoked whenever dynamic programming prunes a structurally
/// equivalent alternative (same table set, same unordered child partition).
/// The POP validity-range analysis implements this interface; a null
/// observer makes the enumerator a plain System-R optimizer.
class PruneObserver {
 public:
  virtual ~PruneObserver() = default;

  /// `winner` survives, `loser` is pruned. The observer may narrow
  /// `winner->child_validity`.
  virtual void OnPrune(PlanNode* winner, const PlanNode& loser) = 0;
};

/// Selinger-style dynamic-programming join enumerator: one best plan per
/// table subset, bushy partitions, hash/merge/nested-loop candidates, and
/// materialized-view seeding. Produces the join tree only; the Optimizer
/// facade adds aggregation / sort / projection on top.
class JoinEnumerator {
 public:
  JoinEnumerator(const Catalog& catalog, const QuerySpec& query,
                 const CardinalityEstimator& estimator, const CostModel& cost,
                 const JoinMethodConfig& methods,
                 const std::vector<AvailableMatView>* matviews,
                 PruneObserver* observer, IncrementalMemo* memo = nullptr);

  /// Runs DP over all table subsets and returns the best full join tree.
  /// With an attached memo, entries untouched by feedback/matview changes
  /// since the memo's commit are reused instead of re-enumerated, and the
  /// new best-plan table is committed back on success.
  Result<std::shared_ptr<PlanNode>> EnumerateJoinTree();

  /// Narrows the validity ranges of every join edge of (the already
  /// chosen, deep-cloned) `root` by regenerating the structurally
  /// equivalent alternatives of each join node and invoking `observer` as
  /// if they were pruned. By the structural-equivalence theorem
  /// (Section 2.2) ranges are only needed on the final plan's edges, so
  /// doing this as a post-pass costs O(plan size) cost-model evaluations
  /// instead of O(3^n).
  void NarrowPlanRanges(PlanNode* root, PruneObserver* observer);

  /// Number of candidate plans costed (diagnostics).
  int64_t candidates_considered() const { return candidates_; }

  /// Memo entries reused / discarded by the last EnumerateJoinTree call
  /// (0 without a memo or when the memo was empty).
  int64_t memo_reused() const { return memo_reused_; }
  int64_t memo_invalidated() const { return memo_invalidated_; }

 private:
  /// Seeds `best_` from the memo: diffs the memo's feedback snapshot and
  /// matview identities against the current ones, then reuses every entry
  /// whose table set contains no changed edge.
  void ReuseMemoEntries();
  /// Commits `best_` (plus current feedback/matview identities) to the
  /// memo after a successful enumeration.
  void CommitMemo();
  /// Identity list of the currently offered matviews.
  std::vector<MemoMatViewKey> CurrentMatViewKeys() const;
  std::shared_ptr<PlanNode> BestAccessPath(int table_id);
  /// Join predicate indexes with one side in `left` and the other in
  /// `right`.
  std::vector<int> CrossingJoins(TableSet left, TableSet right) const;

  /// `set_card` / `set_assumptions` are the output set's estimate and
  /// assumption count, hoisted by the DP loop so the (up to six) candidate
  /// constructors of every split share one estimator probe per set.
  void AddJoinCandidates(TableSet set, TableSet left, TableSet right,
                         const std::vector<int>& joins, double set_card,
                         int set_assumptions);
  std::shared_ptr<PlanNode> MakeHsjn(TableSet set,
                                     std::shared_ptr<PlanNode> probe,
                                     std::shared_ptr<PlanNode> build,
                                     const std::vector<int>& joins,
                                     double set_card, int set_assumptions);
  std::shared_ptr<PlanNode> MakeMgjn(TableSet set,
                                     std::shared_ptr<PlanNode> left,
                                     std::shared_ptr<PlanNode> right,
                                     const std::vector<int>& joins,
                                     double set_card, int set_assumptions);
  std::shared_ptr<PlanNode> MakeNljn(TableSet set,
                                     std::shared_ptr<PlanNode> outer,
                                     int inner_table,
                                     const std::vector<int>& joins,
                                     double set_card, int set_assumptions);
  /// NLJN probing a temporary materialized view covering the inner table,
  /// through a hash index built on the view before reuse (the paper's
  /// Section 2.3 "create an index on the materialized view if worthwhile").
  std::shared_ptr<PlanNode> MakeNljnOverMv(TableSet set,
                                           std::shared_ptr<PlanNode> outer,
                                           int inner_table,
                                           const std::vector<int>& joins,
                                           const AvailableMatView& mv,
                                           double set_card,
                                           int set_assumptions);
  /// Singleton-set materialized view covering `table_id`, or null.
  const AvailableMatView* FindMatView(int table_id) const;
  /// Offers `candidate` for table set `set`, pruning with validity-range
  /// narrowing when structurally comparable.
  void Offer(TableSet set, std::shared_ptr<PlanNode> candidate);
  /// Comparison cost including the volatile-mode robustness bias.
  double BiasedCost(const PlanNode& node) const;

  /// Layout for `set`, memoized for the enumerator's lifetime: MGJN builds
  /// two sort children per connected split, and reconstructing the layout
  /// (two vector allocations plus an offset scan) each time dominates the
  /// candidate constructors on large sets.
  const RowLayout& LayoutFor(TableSet set) const;

  const Catalog& catalog_;
  const QuerySpec& query_;
  const CardinalityEstimator& estimator_;
  const CostModel& cost_;
  JoinMethodConfig methods_;
  const std::vector<AvailableMatView>* matviews_;
  PruneObserver* observer_;

  std::vector<int> table_widths_;
  mutable std::unordered_map<TableSet, RowLayout> layout_cache_;
  std::map<TableSet, std::shared_ptr<PlanNode>> best_;
  int64_t candidates_ = 0;

  IncrementalMemo* memo_;  ///< May be null (plain full-DP enumeration).
  /// Canonical query signature, computed once per enumeration when a memo
  /// is attached.
  uint64_t memo_fingerprint_ = 0;
  /// Table sets whose best plan came from the memo this enumeration; the
  /// DP passes skip recomputing them.
  std::set<TableSet> reused_;
  int64_t memo_reused_ = 0;
  int64_t memo_invalidated_ = 0;
};

/// True if `a` and `b` are join candidates over the same unordered child
/// partition (the paper's structural-equivalence restriction: alternative
/// root operators and commuted inputs, but never different join orders).
bool SamePartition(const PlanNode& a, const PlanNode& b);

}  // namespace popdb

#endif  // POPDB_OPT_ENUMERATOR_H_
