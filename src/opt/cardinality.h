#ifndef POPDB_OPT_CARDINALITY_H_
#define POPDB_OPT_CARDINALITY_H_

#include <map>
#include <vector>

#include "exec/layout.h"
#include "opt/query.h"
#include "storage/catalog.h"

namespace popdb {

/// Runtime cardinality knowledge about one subplan edge, keyed by the set
/// of tables the subplan joins (with all eligible predicates applied — the
/// engine always pushes predicates down, so the table set identifies the
/// edge). Exact values come from completed materializations and from lazy
/// checks; lower bounds come from eager checks that fired before their
/// input was exhausted (Section 3.4).
struct CardFeedback {
  double exact = -1.0;        ///< Actual cardinality, or -1 if unknown.
  double lower_bound = -1.0;  ///< Best known lower bound, or -1.
};

/// Feedback for one query execution, keyed by subplan table set.
using FeedbackMap = std::map<TableSet, CardFeedback>;

/// Tuning knobs for estimation; the defaults mirror classic System-R style
/// magic numbers (and the "constant default value" the paper's DBMS uses
/// for parameter markers).
struct EstimatorConfig {
  double default_eq_selectivity = 0.04;     ///< Parameter-marker equality.
  double default_range_selectivity = 0.33;  ///< Parameter-marker range.
  double default_like_selectivity = 0.10;
  double default_join_selectivity = 0.10;   ///< No stats available.
  int histogram_buckets = 32;
};

/// Estimates cardinalities for one query using catalog statistics, the
/// independence assumption between predicates, and — crucially for POP —
/// the feedback gathered during previous execution steps of the same query.
///
/// Feedback integration: exact actuals replace the estimate for their table
/// set; for supersets the estimate is corrected multiplicatively by the
/// ratio actual/estimate of the largest disjoint known subsets; lower
/// bounds clamp the estimate from below.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const Catalog& catalog, const QuerySpec& query,
                       const FeedbackMap* feedback,
                       const EstimatorConfig& config);

  /// Base-table row count of query table `table_id`.
  double TableCard(int table_id) const;

  /// Selectivity of local predicate `pred_id` (parameter markers get the
  /// configured defaults — the optimizer cannot see the bound literal).
  double LocalSelectivity(int pred_id) const {
    return local_sel_[static_cast<size_t>(pred_id)];
  }

  /// Selectivity of join predicate `join_idx` (1 / max NDV).
  double JoinSelectivity(int join_idx) const {
    return join_sel_[static_cast<size_t>(join_idx)];
  }

  /// Estimated cardinality of the canonical subplan joining exactly `set`
  /// (all local predicates on member tables and all join predicates inside
  /// `set` applied), corrected by feedback. Memoized.
  double SubsetCard(TableSet set) const;

  /// The pure formula estimate, ignoring feedback.
  double RawSubsetCard(TableSet set) const;

  /// How many optimizer assumptions the estimate for `set` rests on: one
  /// per multiplicative selectivity combination beyond the first
  /// (independence assumption) plus one per parameter-marker/LIKE default.
  /// A starting point for the reliability heuristic the paper sketches in
  /// Section 4.
  int AssumptionCount(TableSet set) const;

  /// Number of distinct values of (table_id, column), from stats
  /// (>=1; falls back to table cardinality when never analyzed).
  double ColumnNdv(int table_id, int column) const;

  /// Expected base-table rows matched by one hash-index probe on `column`.
  double IndexMatchesPerProbe(int table_id, int column) const;

  const QuerySpec& query() const { return query_; }

  /// Feedback snapshot the estimator was constructed with (may be null) —
  /// the incremental memo diffs consecutive snapshots to find stale
  /// entries.
  const FeedbackMap* feedback() const { return feedback_; }

 private:
  double ComputeLocalSelectivity(const Predicate& pred) const;
  double ComputeJoinSelectivity(const JoinPredicate& join) const;

  const Catalog& catalog_;
  const QuerySpec& query_;
  const FeedbackMap* feedback_;  ///< May be null.
  EstimatorConfig config_;

  std::vector<double> table_card_;
  std::vector<double> local_sel_;
  std::vector<double> join_sel_;
  mutable std::map<TableSet, double> memo_;
};

}  // namespace popdb

#endif  // POPDB_OPT_CARDINALITY_H_
