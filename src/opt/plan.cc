#include "opt/plan.h"

#include <cmath>
#include <cstring>

#include "common/status.h"
#include "common/string_util.h"

namespace popdb {

const char* PlanOpKindName(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kTableScan:
      return "TBSCAN";
    case PlanOpKind::kMatViewScan:
      return "MVSCAN";
    case PlanOpKind::kNljn:
      return "NLJN";
    case PlanOpKind::kHsjn:
      return "HSJN";
    case PlanOpKind::kMgjn:
      return "MGJN";
    case PlanOpKind::kSort:
      return "SORT";
    case PlanOpKind::kTemp:
      return "TEMP";
    case PlanOpKind::kAgg:
      return "GRPBY";
    case PlanOpKind::kProject:
      return "PROJECT";
    case PlanOpKind::kFilter:
      return "FILTER";
    case PlanOpKind::kCheck:
      return "CHECK";
    case PlanOpKind::kCheckMat:
      return "CHECK";
    case PlanOpKind::kBufCheck:
      return "BUFCHECK";
    case PlanOpKind::kWorkBound:
      return "WORKBOUND";
    case PlanOpKind::kRidTrack:
      return "INSERT(S)";
    case PlanOpKind::kAntiComp:
      return "ANTIJOIN(S)";
  }
  return "?";
}

std::shared_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_shared<PlanNode>(*this);
  for (size_t i = 0; i < copy->children.size(); ++i) {
    copy->children[i] = copy->children[i]->Clone();
  }
  return copy;
}

namespace {
void Render(const PlanNode& node, int indent, std::string* out,
            const ValidityRange* incoming) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(PlanOpKindName(node.kind));
  if (node.kind == PlanOpKind::kTableScan) {
    out->append("(" + node.table_name + ")");
  } else if (node.kind == PlanOpKind::kMatViewScan) {
    out->append("(" + node.mv_name + ")");
  } else if (node.kind == PlanOpKind::kNljn && node.use_index) {
    out->append("[ix]");
  }
  out->append(StrFormat("  card=%.4g cost=%.4g", node.card, node.cost));
  if (incoming != nullptr && incoming->IsNarrowed()) {
    out->append(StrFormat("  validity=[%.4g, %.4g]", incoming->lo,
                          incoming->hi));
  }
  if (node.kind == PlanOpKind::kWorkBound) {
    out->append(StrFormat("  budget=%.4g", node.work_budget));
  }
  if ((node.kind == PlanOpKind::kCheck ||
       node.kind == PlanOpKind::kCheckMat ||
       node.kind == PlanOpKind::kBufCheck) &&
      node.check.enabled) {
    out->append(StrFormat("  %s range=[%.4g, %.4g]",
                          CheckFlavorName(node.check.flavor), node.check.lo,
                          node.check.hi));
  }
  out->push_back('\n');
  for (size_t i = 0; i < node.children.size(); ++i) {
    const ValidityRange* vr =
        i < node.child_validity.size() ? &node.child_validity[i] : nullptr;
    Render(*node.children[i], indent + 1, out, vr);
  }
}
}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(*this, 0, &out, nullptr);
  return out;
}

namespace {
void DigestMix(uint64_t* h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;
  }
}

void DigestInt(uint64_t* h, int64_t v) { DigestMix(h, &v, sizeof(v)); }

void DigestDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  DigestMix(h, &bits, sizeof(bits));
}

void DigestString(uint64_t* h, const std::string& s) {
  DigestInt(h, static_cast<int64_t>(s.size()));
  DigestMix(h, s.data(), s.size());
}

void DigestNode(uint64_t* h, const PlanNode& node) {
  DigestInt(h, static_cast<int64_t>(node.kind));
  DigestInt(h, static_cast<int64_t>(node.set));
  DigestDouble(h, node.card);
  DigestDouble(h, node.cost);
  DigestDouble(h, node.op_cost);
  DigestInt(h, node.assumptions);
  DigestInt(h, node.table_id);
  DigestString(h, node.table_name);
  for (int p : node.pred_ids) DigestInt(h, p);
  DigestString(h, node.mv_name);
  for (int p : node.join_pred_ids) DigestInt(h, p);
  DigestInt(h, node.use_index ? 1 : 0);
  DigestInt(h, node.index_col);
  DigestDouble(h, node.per_probe_cost);
  for (const SortKey& k : node.sort_keys) {
    DigestInt(h, k.pos);
    DigestInt(h, k.descending ? 1 : 0);
  }
  for (int p : node.group_positions) DigestInt(h, p);
  for (const ResolvedAgg& a : node.agg_specs) {
    DigestInt(h, static_cast<int64_t>(a.func));
    DigestInt(h, a.pos);
  }
  for (int p : node.positions) DigestInt(h, p);
  for (const ResolvedPredicate& rp : node.filter_preds) {
    DigestInt(h, rp.pos);
    DigestInt(h, static_cast<int64_t>(rp.kind));
    DigestString(h, rp.operand.ToString());
    DigestString(h, rp.operand2.ToString());
  }
  DigestInt(h, node.check.enabled ? 1 : 0);
  DigestDouble(h, node.check.lo);
  DigestDouble(h, node.check.hi);
  DigestInt(h, static_cast<int64_t>(node.check.flavor));
  DigestInt(h, static_cast<int64_t>(node.check.edge_set));
  DigestInt(h, node.check.observe_only ? 1 : 0);
  DigestDouble(h, node.work_budget);
  for (const ValidityRange& vr : node.child_validity) {
    DigestDouble(h, vr.lo);
    DigestDouble(h, vr.hi);
  }
  DigestInt(h, static_cast<int64_t>(node.children.size()));
  for (const auto& child : node.children) DigestNode(h, *child);
}
}  // namespace

uint64_t PlanDigest(const PlanNode& plan) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  DigestNode(&h, plan);
  return h;
}

const PlanNode* LogicalChild(const PlanNode& root, int slot) {
  const PlanNode* child = root.children[static_cast<size_t>(slot)].get();
  if (child->kind == PlanOpKind::kSort || child->kind == PlanOpKind::kTemp) {
    return child->children[0].get();
  }
  return child;
}

double RecostCandidateWithEdgeCard(const PlanNode& root, int slot,
                                   double edge_card, const CostModel& cm) {
  POPDB_DCHECK(root.kind == PlanOpKind::kNljn ||
               root.kind == PlanOpKind::kHsjn ||
               root.kind == PlanOpKind::kMgjn);
  double base = 0.0;
  std::vector<double> cards(root.children.size());
  for (size_t i = 0; i < root.children.size(); ++i) {
    const PlanNode* wrapper = root.children[i].get();
    const PlanNode* shared = LogicalChild(root, static_cast<int>(i));
    const double c =
        static_cast<int>(i) == slot ? edge_card : shared->card;
    cards[i] = c;
    base += shared->cost;  // Sunk: the subplan below the edge.
    if (wrapper != shared) {
      base += wrapper->kind == PlanOpKind::kSort ? cm.SortCost(c)
                                                 : cm.TempCost(c);
    }
  }
  const PlanNode* varied = LogicalChild(root, slot);
  const double est = std::max(1e-9, varied->card);
  const double scale = edge_card / est;
  double op = 0.0;
  switch (root.kind) {
    case PlanOpKind::kHsjn:
      op = cm.HsjnCost(cards[0], cards[1]);
      break;
    case PlanOpKind::kMgjn:
      op = cm.MgjnCost(cards[0], cards[1], root.card * scale);
      break;
    case PlanOpKind::kNljn: {
      double per_probe = root.per_probe_cost;
      if (slot == 1 && root.use_index) {
        // More inner rows per key when the inner edge grows.
        per_probe = 1.0 + (per_probe - 1.0) * scale;
      }
      op = cm.NljnCost(cards[0], per_probe);
      break;
    }
    default:
      op = root.op_cost * scale;  // Linear fallback (unused for joins).
      break;
  }
  return base + op;
}

}  // namespace popdb
