#include "opt/query.h"

#include "common/string_util.h"

namespace popdb {

int QuerySpec::AddTable(const std::string& table_name) {
  tables_.push_back(table_name);
  return static_cast<int>(tables_.size()) - 1;
}

int QuerySpec::AddPred(ColRef col, PredKind kind, Value operand,
                       Value operand2) {
  Predicate p;
  p.pred_id = static_cast<int>(local_preds_.size());
  p.col = col;
  p.kind = kind;
  p.operand = std::move(operand);
  p.operand2 = std::move(operand2);
  local_preds_.push_back(std::move(p));
  return static_cast<int>(local_preds_.size()) - 1;
}

int QuerySpec::AddInPred(ColRef col, std::vector<Value> in_list) {
  Predicate p;
  p.pred_id = static_cast<int>(local_preds_.size());
  p.col = col;
  p.kind = PredKind::kIn;
  p.in_list = std::move(in_list);
  local_preds_.push_back(std::move(p));
  return static_cast<int>(local_preds_.size()) - 1;
}

int QuerySpec::AddParamPred(ColRef col, PredKind kind, int param_index) {
  Predicate p;
  p.pred_id = static_cast<int>(local_preds_.size());
  p.col = col;
  p.kind = kind;
  p.is_param = true;
  p.param_index = param_index;
  local_preds_.push_back(std::move(p));
  return static_cast<int>(local_preds_.size()) - 1;
}

void QuerySpec::AddJoin(ColRef left, ColRef right) {
  join_preds_.push_back(JoinPredicate{left, right});
}

std::vector<int> QuerySpec::PredsOnTable(int table_id) const {
  std::vector<int> out;
  for (const Predicate& p : local_preds_) {
    if (p.col.table_id == table_id) out.push_back(p.pred_id);
  }
  return out;
}

std::string QuerySpec::ToString() const {
  std::string out = StrFormat("QUERY %s\n  FROM ", name_.c_str());
  std::vector<std::string> names;
  for (size_t i = 0; i < tables_.size(); ++i) {
    names.push_back(StrFormat("%s t%zu", tables_[i].c_str(), i));
  }
  out += StrJoin(names, ", ");
  out += "\n  WHERE ";
  std::vector<std::string> conds;
  for (const Predicate& p : local_preds_) conds.push_back(p.ToString());
  for (const JoinPredicate& j : join_preds_) conds.push_back(j.ToString());
  out += StrJoin(conds, " AND ");
  if (!group_by_.empty()) {
    out += "\n  GROUP BY ";
    std::vector<std::string> gb;
    for (const ColRef& c : group_by_) {
      gb.push_back(StrFormat("t%d.c%d", c.table_id, c.column));
    }
    out += StrJoin(gb, ", ");
  }
  out += "\n";
  return out;
}

}  // namespace popdb
