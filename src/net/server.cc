#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/span.h"
#include "common/string_util.h"
#include "core/explain.h"
#include "core/pop.h"
#include "sql/binder.h"

namespace popdb::net {

namespace {

/// Wire frames are small control messages; row batches are produced by the
/// server, never parsed. Bound the parse work an untrusted frame can cause.
constexpr JsonParseLimits kRequestParseLimits{/*max_depth=*/32,
                                             /*max_nodes=*/200000};

std::string ErrorFrame(StatusCode code, const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("error");
  w.Key("code").String(StatusCodeWireName(code));
  w.Key("message").String(message);
  w.EndObject();
  return w.str();
}

}  // namespace

/// Per-connection state threaded through the request handlers.
struct NetServer::ConnState {
  int fd = -1;
  uint64_t session_id = 0;  ///< 0 until hello completed.
  /// Session-default trace token from hello; query/subplan requests may
  /// override it per request.
  std::string trace_token;
};

NetServer::NetServer(QueryService* service, TraceStore* traces,
                     NetServerConfig config)
    : service_(service), traces_(traces), config_(std::move(config)) {
  POPDB_DCHECK(service_ != nullptr);
  if (config_.num_workers < 1) config_.num_workers = 1;
  if (config_.max_pending_connections < 1) {
    config_.max_pending_connections = 1;
  }
  if (config_.default_batch_rows < 1) config_.default_batch_rows = 1;
  if (config_.max_batch_rows < config_.default_batch_rows) {
    config_.max_batch_rows = config_.default_batch_rows;
  }
  if (config_.max_frame_bytes > kAbsoluteMaxFrameBytes) {
    config_.max_frame_bytes = kAbsoluteMaxFrameBytes;
  }

  MetricsRegistry& registry = service_->metrics_registry();
  connections_total_ = registry.GetCounter(
      "popdb_net_connections_total", "TCP connections accepted.");
  connections_active_ = registry.GetGauge(
      "popdb_net_connections_active",
      "Connections currently served by a worker.");
  sessions_open_ = registry.GetGauge("popdb_net_sessions_open",
                                     "Client sessions currently open.");
  frames_read_ = registry.GetCounter("popdb_net_frames_read_total",
                                     "Wire frames received from clients.");
  frames_written_ = registry.GetCounter(
      "popdb_net_frames_written_total", "Wire frames sent to clients.");
  bytes_read_ = registry.GetCounter("popdb_net_bytes_read_total",
                                    "Bytes received from clients.");
  bytes_written_ = registry.GetCounter("popdb_net_bytes_written_total",
                                       "Bytes sent to clients.");
  protocol_errors_ = registry.GetCounter(
      "popdb_net_protocol_errors_total",
      "Malformed, oversized, or out-of-order client frames.");
  queries_total_ = registry.GetCounter(
      "popdb_net_queries_total", "Query requests accepted over the wire.");
  cancels_total_ = registry.GetCounter("popdb_net_cancels_total",
                                       "Cancel requests received.");
  connections_shed_ = registry.GetCounter(
      "popdb_net_connections_shed_total",
      "Connections closed immediately because the pending queue was "
      "full.");
  subplans_total_ = registry.GetCounter(
      "popdb_net_subplans_total",
      "Subplan requests executed on behalf of a coordinator.");
  writes_total_ = registry.GetCounter(
      "popdb_net_writes_total",
      "DML statements applied over the wire (write_done responses).");
}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  Result<Listener> listener =
      ListenTcp(config_.host, config_.port, config_.accept_backlog);
  if (!listener.ok()) return listener.status();
  listen_fd_ = listener.value().fd;
  port_ = listener.value().port;
  started_ = true;

  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void NetServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  stop_.store(true, std::memory_order_release);
  // Unblock connection workers waiting on tickets, then wake every thread
  // blocked in poll/recv/send via a half-close of its descriptor.
  sessions_.CancelAll();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : active_fds_) ShutdownFd(fd);
  }
  ShutdownFd(listen_fd_);
  cv_.notify_all();
  shutdown_cv_.notify_all();

  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Threads are gone; release what they never picked up.
  for (const int fd : pending_) CloseFd(fd);
  pending_.clear();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

bool NetServer::WaitForShutdownRequest(double timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto pred = [this] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           stop_.load(std::memory_order_acquire);
  };
  if (timeout_ms > 0) {
    shutdown_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms), pred);
  } else {
    shutdown_cv_.wait(lock, pred);
  }
  return shutdown_requested_.load(std::memory_order_acquire);
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;
      }
      break;  // Listener closed or broken.
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    connections_total_->Increment();
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_.load(std::memory_order_acquire) ||
          static_cast<int>(pending_.size()) >=
              config_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      connections_shed_->Increment();
      CloseFd(fd);
    } else {
      cv_.notify_one();
    }
  }
}

void NetServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
      active_fds_.insert(fd);
    }
    connections_active_->Increment();
    ServeConnection(fd);
    connections_active_->Decrement();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_fds_.erase(fd);
    }
    CloseFd(fd);
  }
}

void NetServer::ServeConnection(int fd) {
  ConnState conn;
  conn.fd = fd;

  while (!stop_.load(std::memory_order_acquire)) {
    std::atomic<int64_t> delta{0};
    FrameResult frame = ReadFrame(fd, config_.max_frame_bytes,
                                  config_.read_timeout_ms, &stop_, &delta);
    bytes_read_->Increment(delta.load(std::memory_order_relaxed));
    switch (frame.status) {
      case FrameStatus::kOk:
        break;
      case FrameStatus::kEof:
      case FrameStatus::kStopped:
        goto done;
      case FrameStatus::kTimeout:
        SendError(&conn, StatusCode::kDeadlineExceeded,
                  "connection idle timeout");
        goto done;
      case FrameStatus::kTooLarge:
        protocol_errors_->Increment();
        SendError(&conn, StatusCode::kInvalidArgument, frame.error);
        goto done;
      case FrameStatus::kError:
        protocol_errors_->Increment();
        goto done;
    }
    frames_read_->Increment();
    if (!HandleFrame(&conn, frame.payload)) break;
  }
done:
  if (conn.session_id != 0) {
    sessions_.CloseSession(conn.session_id);
    sessions_open_->Set(sessions_.open_sessions());
  }
}

bool NetServer::SendFrame(ConnState* conn, const std::string& payload) {
  std::atomic<int64_t> delta{0};
  const Status s = WriteFrame(conn->fd, payload, config_.write_timeout_ms,
                              &stop_, &delta);
  bytes_written_->Increment(delta.load(std::memory_order_relaxed));
  if (!s.ok()) return false;
  frames_written_->Increment();
  return true;
}

bool NetServer::SendError(ConnState* conn, StatusCode code,
                          const std::string& message) {
  return SendFrame(conn, ErrorFrame(code, message));
}

bool NetServer::HandleFrame(ConnState* conn, const std::string& payload) {
  Result<JsonValue> parsed = JsonParse(payload, kRequestParseLimits);
  if (!parsed.ok()) {
    // Framing is still sound (the length prefix was honored), so the
    // connection survives a malformed payload.
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     parsed.status().message());
  }
  const JsonValue& request = parsed.value();
  if (request.kind() != JsonValue::Kind::kObject) {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     "request frame must be a JSON object");
  }
  const std::string type = request.GetString("type", "");
  if (type.empty()) {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     "request frame has no \"type\"");
  }

  if (conn->session_id == 0 && type != "hello") {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     "first request must be \"hello\"");
  }

  if (type == "hello") return HandleHello(conn, request);
  if (type == "query") return HandleQuery(conn, request);
  if (type == "subplan") return HandleSubplan(conn, request);
  if (type == "wait") return HandleWait(conn, request);
  if (type == "cancel") return HandleCancel(conn, request);
  if (type == "trace") return HandleTrace(conn, request);
  if (type == "spans") return HandleSpans(conn, request);
  if (type == "query_log") return HandleQueryLog(conn, request);
  if (type == "metrics") return HandleMetrics(conn, request);
  if (type == "goodbye") return HandleGoodbye(conn);
  if (type == "shutdown") return HandleShutdownRequest(conn);

  protocol_errors_->Increment();
  return SendError(conn, StatusCode::kUnimplemented,
                   "unknown request type \"" + type + "\"");
}

bool NetServer::HandleHello(ConnState* conn, const JsonValue& request) {
  if (conn->session_id != 0) {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     "session already established");
  }
  const int64_t protocol = request.GetInt("protocol", -1);
  if (protocol != kProtocolVersion) {
    protocol_errors_->Increment();
    return SendError(
        conn, StatusCode::kInvalidArgument,
        StrFormat("unsupported protocol version %lld (server speaks %d)",
                  static_cast<long long>(protocol), kProtocolVersion));
  }
  conn->session_id = sessions_.OpenSession();
  conn->trace_token = request.GetString("trace_token", "");
  sessions_open_->Set(sessions_.open_sessions());

  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("hello_ok");
  w.Key("session_id").Int(static_cast<int64_t>(conn->session_id));
  w.Key("protocol").Int(kProtocolVersion);
  w.Key("server").String(config_.server_name);
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleQuery(ConnState* conn, const JsonValue& request) {
  const JsonValue* sql = request.Find("sql");
  if (sql == nullptr || sql->kind() != JsonValue::Kind::kString) {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     "query request needs a string \"sql\"");
  }

  std::vector<Value> params;
  if (const JsonValue* p = request.Find("params"); p != nullptr) {
    if (p->kind() != JsonValue::Kind::kArray) {
      return SendError(conn, StatusCode::kInvalidArgument,
                       "\"params\" must be an array");
    }
    for (const JsonValue& item : p->items()) {
      Result<Value> v = ValueFromJson(item);
      if (!v.ok()) {
        return SendError(conn, StatusCode::kInvalidArgument,
                         "bad parameter: " + v.status().message());
      }
      params.push_back(std::move(v).TakeValue());
    }
  }

  // SQL errors travel back as protocol error frames, annotated with a
  // caret into the offending statement.
  Result<sql::BoundStatement> bound = sql::ParseSqlStatement(
      service_->catalog(), sql->AsString(), std::move(params));
  if (!bound.ok()) {
    return SendError(conn, bound.status().code(),
                     sql::AnnotateError(sql->AsString(), bound.status()));
  }
  if (bound.value().explain) {
    return SendError(conn, StatusCode::kUnimplemented,
                     "EXPLAIN is not supported over the wire; use the "
                     "trace request for executed-plan diagnostics");
  }
  if (bound.value().is_write) {
    // DML applies synchronously on the connection worker (the per-table
    // write lane is the concurrency control; the admission queue is for
    // analytical work) and answers with a single write_done frame.
    const WriteQueryResult wr =
        service_->ExecuteWrite(bound.value().write);
    if (!wr.status.ok()) {
      return SendError(conn, wr.status.code(), wr.status.message());
    }
    writes_total_->Increment();
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("write_done");
    w.Key("query_id").Int(wr.query_id);
    w.Key("affected_rows").Int(wr.affected_rows);
    w.Key("stats_version").Int(wr.stats_version);
    w.Key("stats_folded").Bool(wr.stats_folded);
    w.Key("total_ms").Double(wr.total_ms);
    w.EndObject();
    return SendFrame(conn, w.str());
  }

  SubmitOptions opts;
  opts.session_id = conn->session_id;
  opts.trace_token = request.GetString("trace_token", conn->trace_token);
  opts.deadline_ms = request.GetNumber("deadline_ms", -1.0);
  if (request.GetString("priority", "normal") == "high") {
    opts.priority = QueryPriority::kHigh;
  }

  Result<std::shared_ptr<QueryTicket>> ticket =
      service_->Submit(std::move(bound.value().query), opts);
  if (!ticket.ok()) {
    return SendError(conn, ticket.status().code(),
                     ticket.status().message());
  }
  const int64_t query_id = ticket.value()->query_id();
  const Status registered = sessions_.RegisterQuery(
      conn->session_id, ticket.value(), config_.max_inflight_per_session);
  if (!registered.ok()) {
    // Over the per-session bound: the query was already admitted, so undo
    // the submission by cancelling before rejecting the request.
    ticket.value()->Cancel();
    return SendError(conn, registered.code(), registered.message());
  }
  queries_total_->Increment();

  int64_t batch_rows =
      request.GetInt("batch_rows", config_.default_batch_rows);
  if (batch_rows < 1) batch_rows = config_.default_batch_rows;
  if (batch_rows > config_.max_batch_rows) {
    batch_rows = config_.max_batch_rows;
  }

  if (request.GetBool("async", false)) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("query_accepted");
    w.Key("query_id").Int(query_id);
    w.EndObject();
    return SendFrame(conn, w.str());
  }
  return StreamResult(conn, query_id, batch_rows);
}

bool NetServer::HandleSubplan(ConnState* conn, const JsonValue& request) {
  if (config_.subplan_backend == nullptr) {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kUnimplemented,
                     "this server does not execute subplans (not a shard)");
  }

  // Subplans bypass the ticket model (rows stream while the query runs),
  // so cancellation rides a bare token registered under a service-scoped
  // query id: cancel-by-id from any session, session close and server
  // shutdown all trip it.
  const int64_t query_id = service_->AllocateQueryId();
  auto token = std::make_shared<CancelToken>();
  const double deadline_ms = request.GetNumber("deadline_ms", -1.0);
  if (deadline_ms > 0) token->SetDeadlineAfterMs(deadline_ms);
  const Status registered = sessions_.RegisterCancelable(
      conn->session_id, query_id, token, config_.max_inflight_per_session);
  if (!registered.ok()) {
    return SendError(conn, registered.code(), registered.message());
  }
  subplans_total_->Increment();

  // Distributed trace stitching: spans recorded under the coordinator's
  // trace token line up with its timeline when the dumps are merged.
  const std::string trace_token = request.GetString(
      "trace_token", conn->trace_token.empty()
                         ? "q" + std::to_string(query_id)
                         : conn->trace_token);
  TRACE_SPAN_NAMED(subplan_span, "subplan", "dist");
  subplan_span.SetLabel(std::string_view(trace_token));
  subplan_span.SetArg("query_id", query_id);

  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("subplan_ok");
    w.Key("query_id").Int(query_id);
    w.EndObject();
    if (!SendFrame(conn, w.str())) {
      sessions_.ReleaseCancelable(conn->session_id, query_id);
      return false;
    }
  }

  bool alive = true;
  const auto emit = [&](const std::vector<Row>& rows) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("row_batch");
    w.Key("query_id").Int(query_id);
    w.Key("rows").BeginArray();
    for (const Row& row : rows) AppendRowJson(row, &w);
    w.EndArray();
    w.EndObject();
    if (!SendFrame(conn, w.str())) {
      alive = false;
      return false;
    }
    // Chaos knob: hold the stream open so tests can kill or cancel the
    // shard mid-query; sliced so cancellation stays responsive.
    double remaining_ms = config_.subplan_stall_ms;
    while (remaining_ms > 0 && !token->Expired() &&
           !stop_.load(std::memory_order_acquire)) {
      const double slice = remaining_ms < 5.0 ? remaining_ms : 5.0;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining_ms -= slice;
    }
    return true;
  };

  SubplanBackend::RunResult result =
      config_.subplan_backend->Run(request, token.get(), emit);
  sessions_.ReleaseCancelable(conn->session_id, query_id);

  // Subplans bypass FinishTicket, so the shard-local trace store and query
  // log are fed here: the shard's own `trace`/`query_log` endpoints resolve
  // subplan ids too.
  if (traces_ != nullptr || service_->query_log() != nullptr) {
    QueryTrace trace;
    trace.query_id = query_id;
    trace.query_name = result.query_name;
    trace.session_id = conn->session_id;
    trace.outcome = result.outcome;
    if (!result.status.ok()) trace.status_message = result.status.message();
    trace.execute_ms = result.execute_ms;
    trace.total_ms = result.execute_ms;
    trace.result_rows = result.rows_sent;
    trace.plan_cache = "none";
    TraceAttempt attempt;
    attempt.execute_ms = result.execute_ms;
    attempt.rows_returned = result.rows_sent;
    attempt.reoptimized = !result.violation_json.empty();
    if (!result.profile_json.empty()) {
      Result<JsonValue> parsed_profile = JsonParse(result.profile_json);
      if (parsed_profile.ok() &&
          ProfileFromJson(parsed_profile.value(), &attempt.profile)) {
        attempt.has_profile = true;
      }
    }
    trace.attempts.push_back(std::move(attempt));
    if (traces_ != nullptr) traces_->Emit(trace);
    if (QueryLog* log = service_->query_log(); log != nullptr) {
      QueryLogEntry entry;
      entry.query_id = query_id;
      entry.end_ms = NowMs();
      entry.kind = "subplan";
      entry.query_name = result.query_name;
      entry.outcome = result.outcome;
      if (!result.status.ok()) entry.status_message = result.status.message();
      entry.plan_cache = "none";
      entry.checks_fired = result.violation_json.empty() ? 0 : 1;
      entry.execute_ms = result.execute_ms;
      entry.total_ms = result.execute_ms;
      entry.result_rows = result.rows_sent;
      if (trace.attempts.back().has_profile) {
        entry.peak_qerror = PeakProfileQError(trace.attempts.back().profile);
      }
      log->Append(std::move(entry));
    }
  }
  if (!alive) return false;

  if (!result.violation_json.empty()) {
    if (!SendFrame(conn, result.violation_json)) return false;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("query_done");
  w.Key("query_id").Int(query_id);
  w.Key("status").String(StatusCodeWireName(result.status.code()));
  if (!result.status.ok()) {
    w.Key("message").String(result.status.message());
  }
  w.Key("outcome").String(result.outcome);
  w.Key("result_rows").Int(result.rows_sent);
  w.Key("execute_ms").Double(result.execute_ms);
  w.Key("observations").Raw(result.observations_json);
  if (!result.profile_json.empty()) {
    w.Key("profile").Raw(result.profile_json);
  }
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleWait(ConnState* conn, const JsonValue& request) {
  const int64_t query_id = request.GetInt("query_id", -1);
  if (sessions_.FindSessionQuery(conn->session_id, query_id) == nullptr) {
    return SendError(conn, StatusCode::kNotFound,
                     StrFormat("query %lld is not in flight in this session",
                               static_cast<long long>(query_id)));
  }
  int64_t batch_rows =
      request.GetInt("batch_rows", config_.default_batch_rows);
  if (batch_rows < 1) batch_rows = config_.default_batch_rows;
  if (batch_rows > config_.max_batch_rows) {
    batch_rows = config_.max_batch_rows;
  }
  return StreamResult(conn, query_id, batch_rows);
}

bool NetServer::StreamResult(ConnState* conn, int64_t query_id,
                             int64_t batch_rows) {
  std::shared_ptr<QueryTicket> ticket =
      sessions_.FindSessionQuery(conn->session_id, query_id);
  if (ticket == nullptr) {
    return SendError(conn, StatusCode::kNotFound, "query vanished");
  }
  // Blocking wait: a server Shutdown() cancels every registered ticket, so
  // this wakes under cooperative shutdown too.
  const QueryResult& result = ticket->Wait();
  sessions_.ReleaseQuery(conn->session_id, query_id);

  for (size_t offset = 0; offset < result.rows.size();
       offset += static_cast<size_t>(batch_rows)) {
    const size_t end =
        std::min(result.rows.size(), offset + static_cast<size_t>(batch_rows));
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("row_batch");
    w.Key("query_id").Int(query_id);
    w.Key("rows").BeginArray();
    for (size_t i = offset; i < end; ++i) {
      AppendRowJson(result.rows[i], &w);
    }
    w.EndArray();
    w.EndObject();
    if (!SendFrame(conn, w.str())) return false;
  }

  const QueryTrace& trace = result.trace;
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("query_done");
  w.Key("query_id").Int(query_id);
  w.Key("status").String(StatusCodeWireName(result.status.code()));
  if (!result.status.ok()) {
    w.Key("message").String(result.status.message());
  }
  w.Key("outcome").String(trace.outcome);
  w.Key("result_rows").Int(static_cast<int64_t>(result.rows.size()));
  w.Key("reopts").Int(trace.reopts);
  w.Key("total_ms").Double(trace.total_ms);
  w.Key("queue_ms").Double(trace.queue_ms);
  w.Key("plan_cache").String(trace.plan_cache);
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleCancel(ConnState* conn, const JsonValue& request) {
  const int64_t query_id = request.GetInt("query_id", -1);
  cancels_total_->Increment();
  const bool found = sessions_.CancelQuery(query_id);
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("cancel_ok");
  w.Key("query_id").Int(query_id);
  w.Key("found").Bool(found);
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleTrace(ConnState* conn, const JsonValue& request) {
  const int64_t query_id = request.GetInt("query_id", -1);
  std::optional<std::string> trace;
  if (traces_ != nullptr) trace = traces_->Get(query_id);
  if (!trace.has_value()) {
    return SendError(
        conn, StatusCode::kNotFound,
        StrFormat("no trace for query %lld (unknown id, still running, or "
                  "evicted)",
                  static_cast<long long>(query_id)));
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("trace_ok");
  w.Key("query_id").Int(query_id);
  w.Key("trace").Raw(*trace);
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleSpans(ConnState* conn, const JsonValue& request) {
  SpanTracer& tracer = SpanTracer::Global();
  // Remote tracer control (benchmarks and tests toggle shard tracers over
  // the wire); an enable/disable-only request still returns the dump.
  if (const JsonValue* enable = request.Find("enable"); enable != nullptr) {
    if (enable->AsBool()) {
      tracer.Enable();
    } else {
      tracer.Disable();
    }
  }

  const std::string scope = request.GetString("scope", "local");
  if (scope == "cluster") {
    if (config_.cluster == nullptr) {
      return SendError(conn, StatusCode::kUnimplemented,
                       "this server is not a coordinator (no cluster "
                       "observability hook)");
    }
    Result<std::string> stitched = config_.cluster->ClusterTraceJson();
    if (!stitched.ok()) {
      return SendError(conn, stitched.status().code(),
                       stitched.status().message());
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("spans_ok");
    w.Key("scope").String("cluster");
    w.Key("now_us").Int(tracer.NowUs());
    w.Key("trace").Raw(stitched.value());
    w.EndObject();
    return SendFrame(conn, w.str());
  }
  if (scope != "local") {
    return SendError(conn, StatusCode::kInvalidArgument,
                     "spans scope must be \"local\" or \"cluster\"");
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("spans_ok");
  w.Key("scope").String("local");
  w.Key("now_us").Int(tracer.NowUs());
  w.Key("event_count").Int(tracer.event_count());
  w.Key("trace").Raw(tracer.ExportChromeTrace());
  w.EndObject();
  if (request.GetBool("clear", false)) tracer.Clear();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleQueryLog(ConnState* conn, const JsonValue& request) {
  QueryLog* log = service_->query_log();
  if (log == nullptr) {
    return SendError(conn, StatusCode::kNotFound,
                     "the query log is disabled on this server "
                     "(query_log_entries <= 0)");
  }
  const int64_t limit = request.GetInt("limit", 0);
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("query_log_ok");
  w.Key("total").Int(log->total());
  w.Key("entries").Raw(log->ToJsonArray(limit));
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleMetrics(ConnState* conn, const JsonValue& request) {
  std::string text = service_->MetricsText();
  if (request.GetBool("cluster", false)) {
    if (config_.cluster == nullptr) {
      return SendError(conn, StatusCode::kUnimplemented,
                       "this server is not a coordinator (no cluster "
                       "observability hook)");
    }
    Result<std::string> federated =
        config_.cluster->FederatedMetricsText(text);
    if (!federated.ok()) {
      return SendError(conn, federated.status().code(),
                       federated.status().message());
    }
    text = std::move(federated).TakeValue();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("metrics_ok");
  w.Key("text").String(text);
  w.EndObject();
  return SendFrame(conn, w.str());
}

bool NetServer::HandleGoodbye(ConnState* conn) {
  // Unregister the session before acknowledging: a client that waited for
  // goodbye_ok must not still observe its session as open.
  if (conn->session_id != 0) {
    sessions_.CloseSession(conn->session_id);
    conn->session_id = 0;
    sessions_open_->Set(sessions_.open_sessions());
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("goodbye_ok");
  w.EndObject();
  SendFrame(conn, w.str());
  return false;  // Close the connection.
}

bool NetServer::HandleShutdownRequest(ConnState* conn) {
  if (!config_.allow_shutdown_request) {
    protocol_errors_->Increment();
    return SendError(conn, StatusCode::kInvalidArgument,
                     "shutdown requests are not enabled on this server");
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("shutdown_ok");
  w.EndObject();
  SendFrame(conn, w.str());
  shutdown_requested_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
  return false;
}

}  // namespace popdb::net
