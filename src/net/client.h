#ifndef POPDB_NET_CLIENT_H_
#define POPDB_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/value.h"
#include "net/wire.h"

namespace popdb::net {

/// Result of one query round trip over the wire.
struct ClientQueryResult {
  Status status;            ///< Decoded from the query_done/error frame.
  std::vector<Row> rows;    ///< Concatenation of every row_batch.
  int64_t query_id = -1;
  std::string outcome;      ///< Server-side outcome ("ok", "cancelled", ...).
  int reopts = 0;
  double total_ms = 0.0;
  double queue_ms = 0.0;
  std::string plan_cache;   ///< Plan-cache disposition ("hit", "miss", ...).
};

/// Result of one DML round trip (the write_done frame).
struct ClientWriteResult {
  Status status;
  int64_t query_id = -1;
  int64_t affected_rows = 0;
  int64_t stats_version = 0;   ///< Catalog stats version after the write.
  bool stats_folded = false;   ///< This statement triggered a stats fold.
  double total_ms = 0.0;
};

/// Options for Client::Query / Client::QueryAsync.
struct ClientQueryOptions {
  std::vector<Value> params;
  double deadline_ms = -1.0;   ///< -1 = server default, 0 = none.
  int64_t batch_rows = 0;      ///< <= 0 = server default.
  bool high_priority = false;
  /// Trace token tagging the query's server-side spans (cluster trace
  /// stitching). Empty = server assigns "q<query_id>".
  std::string trace_token;
};

/// Options for Client::Spans.
struct ClientSpansOptions {
  bool cluster = false;  ///< Stitched cluster trace (coordinators only).
  bool clear = false;    ///< Drop the server's recorded spans after export.
  /// -1 = leave the server's tracer alone; 0/1 = disable/enable it before
  /// exporting (remote tracer control for benchmarks and tests).
  int enable = -1;
};

/// A server's span dump (Client::Spans).
struct ClientSpanDump {
  std::string trace_json;   ///< Chrome trace_event JSON array.
  int64_t now_us = 0;       ///< Server tracer clock at export time.
  int64_t event_count = 0;  ///< Events recorded (local scope only).
};

/// Options for Client::Connect. The connect timeout is separate from the
/// per-frame timeout: a connect should fail fast (the peer is either
/// listening or it is not) while frames may legitimately take a while on a
/// loaded server.
struct ClientConnectOptions {
  double connect_timeout_ms = 5000.0;  ///< TCP connect only (<= 0 = none).
  double frame_timeout_ms = 10000.0;   ///< Each frame round trip.
  /// Retry the TCP connect exactly once when it is refused (kUnavailable).
  /// Shards may bind their listener slightly after the coordinator starts
  /// connecting; without the retry that race is a hard failure.
  bool retry_refused = true;
  double retry_delay_ms = 150.0;       ///< Sleep before the single retry.
};

/// One event from a shard executing a scattered subplan: a batch of rows, a
/// CHECK validity-range violation, or the terminal query_done frame.
struct ShardEvent {
  enum class Kind {
    kRows,       ///< `rows` holds the decoded batch.
    kViolation,  ///< `payload` is the check_violation frame.
    kDone,       ///< `payload` is the query_done frame.
  };
  Kind kind = Kind::kDone;
  std::vector<Row> rows;
  JsonValue payload;
};

/// Blocking client for the popdb wire protocol (net/wire.h). One Client
/// owns one TCP connection and one server session; it is NOT thread safe —
/// use one Client per thread (sessions are cheap).
///
/// Example:
///   auto client = Client::Connect("127.0.0.1", port);
///   ClientQueryResult r = client.value().Query("SELECT ...");
///   client.value().Close();
class Client {
 public:
  /// Connects and performs the hello handshake. `timeout_ms` covers the
  /// TCP connect and each subsequent frame round trip (<= 0 = no timeout).
  static Result<Client> Connect(const std::string& host, int port,
                                double timeout_ms = 10000.0);

  /// Connects with explicit connect/frame timeouts and an optional single
  /// retry when the connect is refused (see ClientConnectOptions).
  static Result<Client> Connect(const std::string& host, int port,
                                const ClientConnectOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Runs `sql` synchronously: submits, then consumes row_batch frames
  /// until query_done. A transport failure or protocol error frame is
  /// reported in the result's status.
  ClientQueryResult Query(const std::string& sql,
                          ClientQueryOptions options = {});

  /// Runs one DML statement (INSERT/UPDATE/DELETE; `options.params` binds
  /// '?' markers) and returns the decoded write_done frame. Passing SELECT
  /// text fails with an unexpected-frame error — use Query().
  ClientWriteResult Write(const std::string& sql,
                          ClientQueryOptions options = {});

  /// Submits `sql` without waiting; returns the server-assigned query id.
  /// Collect the result later with Wait() (same connection), or Cancel()
  /// it from any connection.
  Result<int64_t> QueryAsync(const std::string& sql,
                             ClientQueryOptions options = {});

  /// Streams the result of a query started with QueryAsync.
  ClientQueryResult Wait(int64_t query_id, int64_t batch_rows = 0);

  /// Cancels by server query id. Returns true when the server still knew
  /// the query (it was in flight in some session).
  Result<bool> Cancel(int64_t query_id);

  /// Fetches the stored QueryTrace JSON for a finished query.
  Result<std::string> Trace(int64_t query_id);

  /// Fetches the server's Prometheus metrics text. With `cluster` set (and
  /// a coordinator on the other end) the exposition additionally carries
  /// every shard's samples, labeled shard="N".
  Result<std::string> Metrics(bool cluster = false);

  /// Fetches the server's span dump: its SpanTracer events as Chrome
  /// trace_event JSON plus the tracer clock, for cross-process stitching.
  /// With options.cluster set (coordinators only), the stitched
  /// cluster-wide trace instead.
  Result<ClientSpanDump> Spans(const ClientSpansOptions& options = {});

  /// Fetches the server's structured query log: the most recent `limit`
  /// entries (0 = all retained) as a JSON array string, oldest first.
  Result<std::string> QueryLogTail(int64_t limit = 0);

  /// Asks the server process to shut down (requires
  /// NetServerConfig::allow_shutdown_request on the server).
  Status RequestShutdown();

  /// Ships a pre-encoded `subplan` request (see docs/WIRE.md) to a shard
  /// and returns the shard-assigned query id from the subplan_ok reply.
  /// The shard then streams events; consume them with SubplanNext() until
  /// a kDone event (or an error). While a subplan is streaming, no other
  /// request may be issued on this connection — use a second Client for
  /// control traffic (Cancel by the returned id works from any session).
  Result<int64_t> SubplanStart(const std::string& request_payload);

  /// Reads the next streamed event of the in-flight subplan.
  Result<ShardEvent> SubplanNext();

  /// Sends goodbye and closes the socket. Safe to call twice.
  void Close();

  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }

  /// Test hook: sends a raw pre-encoded frame payload as-is.
  Status SendRaw(std::string_view payload);
  /// Test hook: sends `bytes` verbatim on the socket (no length prefix) —
  /// for exercising the server's malformed-framing paths.
  Status SendBytes(std::string_view bytes);
  /// Test hook: reads one frame payload.
  FrameResult ReadRaw();

 private:
  Client() = default;

  /// Sends `payload`, then reads frames until `done` returns true (error
  /// frames short-circuit). Returns the terminal frame's JSON.
  Result<JsonValue> RoundTrip(const std::string& payload);

  /// Reads row_batch frames into `out` until query_done / error.
  ClientQueryResult ConsumeResult(int64_t expect_query_id);

  int fd_ = -1;
  double timeout_ms_ = 10000.0;
  uint64_t session_id_ = 0;
};

}  // namespace popdb::net

#endif  // POPDB_NET_CLIENT_H_
