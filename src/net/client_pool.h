#ifndef POPDB_NET_CLIENT_POOL_H_
#define POPDB_NET_CLIENT_POOL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/client.h"

namespace popdb::net {

/// One shard's address.
struct Endpoint {
  std::string host;
  int port = 0;
};

/// A pool of connections to a fixed set of endpoints (the shard fleet).
/// Clients are checked out per shard index, used exclusively by the caller
/// (net::Client is not thread safe), and returned for reuse. A shard whose
/// connection died is simply re-dialed on the next Acquire; the pool also
/// tracks which endpoints answered their last dial so the coordinator can
/// export a `shards_up` gauge.
///
/// Thread safe; Acquire/Release may be called from gather threads.
class ClientPool {
 public:
  ClientPool(std::vector<Endpoint> endpoints, ClientConnectOptions options);

  /// Checks out a connected client for `shard` (index into the endpoint
  /// list). Reuses an idle pooled connection when one exists, otherwise
  /// dials (with the pool's connect options, including the refused-connect
  /// retry). Marks the endpoint up/down as a side effect.
  Result<std::unique_ptr<Client>> Acquire(int shard);

  /// Returns a healthy client to the pool for reuse. Call only after a
  /// clean exchange; drop (destroy) the client instead after any transport
  /// error, since mid-stream state would poison the next user.
  void Release(int shard, std::unique_ptr<Client> client);

  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }
  const Endpoint& endpoint(int shard) const { return endpoints_[shard]; }

  /// Number of endpoints whose most recent dial (or exchange) succeeded.
  int endpoints_up() const;

 private:
  const std::vector<Endpoint> endpoints_;
  const ClientConnectOptions options_;

  mutable std::mutex mu_;
  std::vector<std::vector<std::unique_ptr<Client>>> idle_;  // per shard
  std::vector<bool> up_;                                    // per shard
};

}  // namespace popdb::net

#endif  // POPDB_NET_CLIENT_POOL_H_
