#include "net/client.h"

#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "common/json.h"
#include "common/string_util.h"

namespace popdb::net {

namespace {

Status StatusFromErrorFrame(const JsonValue& frame) {
  const StatusCode code =
      StatusCodeFromWireName(frame.GetString("code", "internal"));
  return Status(code, frame.GetString("message", "server error"));
}

Status FrameTransportError(const FrameResult& frame) {
  switch (frame.status) {
    case FrameStatus::kEof:
      return Status::Internal("server closed the connection");
    case FrameStatus::kTimeout:
      return Status::DeadlineExceeded("timed out waiting for server frame");
    default:
      return Status::Internal(frame.error.empty() ? "frame read failed"
                                                  : frame.error);
  }
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port,
                               double timeout_ms) {
  ClientConnectOptions options;
  options.connect_timeout_ms = timeout_ms;
  options.frame_timeout_ms = timeout_ms;
  options.retry_refused = false;
  return Connect(host, port, options);
}

Result<Client> Client::Connect(const std::string& host, int port,
                               const ClientConnectOptions& options) {
  Result<int> fd = ConnectTcp(host, port, options.connect_timeout_ms);
  if (!fd.ok() && options.retry_refused &&
      fd.status().code() == StatusCode::kUnavailable) {
    // One retry covers the common startup race (peer not yet listening)
    // without turning a dead peer into a retry loop.
    if (options.retry_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options.retry_delay_ms));
    }
    fd = ConnectTcp(host, port, options.connect_timeout_ms);
  }
  if (!fd.ok()) return fd.status();

  Client client;
  client.fd_ = fd.value();
  client.timeout_ms_ = options.frame_timeout_ms;

  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("hello");
  w.Key("protocol").Int(kProtocolVersion);
  w.EndObject();
  Result<JsonValue> reply = client.RoundTrip(w.str());
  if (!reply.ok()) {
    client.Close();
    return reply.status();
  }
  if (reply.value().GetString("type", "") != "hello_ok") {
    client.Close();
    return Status::Internal("unexpected handshake reply");
  }
  client.session_id_ =
      static_cast<uint64_t>(reply.value().GetInt("session_id", 0));
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      timeout_ms_(other.timeout_ms_),
      session_id_(other.session_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    timeout_ms_ = other.timeout_ms_;
    session_id_ = other.session_id_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ < 0) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("goodbye");
  w.EndObject();
  // Best effort: the server also cleans the session up on plain EOF.
  if (WriteFrame(fd_, w.str(), timeout_ms_).ok()) {
    ReadFrame(fd_, kAbsoluteMaxFrameBytes, timeout_ms_);
  }
  CloseFd(fd_);
  fd_ = -1;
}

Status Client::SendRaw(std::string_view payload) {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  return WriteFrame(fd_, payload, timeout_ms_);
}

Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return Status::Internal("raw write failed");
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

FrameResult Client::ReadRaw() {
  return ReadFrame(fd_, kAbsoluteMaxFrameBytes, timeout_ms_);
}

Result<JsonValue> Client::RoundTrip(const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  Status sent = WriteFrame(fd_, payload, timeout_ms_);
  if (!sent.ok()) return sent;
  FrameResult frame = ReadFrame(fd_, kAbsoluteMaxFrameBytes, timeout_ms_);
  if (!frame.ok()) return FrameTransportError(frame);
  Result<JsonValue> parsed = JsonParse(frame.payload);
  if (!parsed.ok()) {
    return Status::Internal("bad server frame: " + parsed.status().message());
  }
  if (parsed.value().GetString("type", "") == "error") {
    return StatusFromErrorFrame(parsed.value());
  }
  return parsed;
}

ClientQueryResult Client::ConsumeResult(int64_t expect_query_id) {
  ClientQueryResult result;
  result.query_id = expect_query_id;
  while (true) {
    FrameResult frame = ReadFrame(fd_, kAbsoluteMaxFrameBytes, timeout_ms_);
    if (!frame.ok()) {
      result.status = FrameTransportError(frame);
      return result;
    }
    Result<JsonValue> parsed = JsonParse(frame.payload);
    if (!parsed.ok()) {
      result.status =
          Status::Internal("bad server frame: " + parsed.status().message());
      return result;
    }
    const JsonValue& reply = parsed.value();
    const std::string type = reply.GetString("type", "");
    if (type == "error") {
      result.status = StatusFromErrorFrame(reply);
      return result;
    }
    if (type == "row_batch") {
      if (const JsonValue* rows = reply.Find("rows");
          rows != nullptr && rows->kind() == JsonValue::Kind::kArray) {
        for (const JsonValue& row : rows->items()) {
          Result<Row> decoded = RowFromJson(row);
          if (!decoded.ok()) {
            result.status = decoded.status();
            return result;
          }
          result.rows.push_back(std::move(decoded).TakeValue());
        }
      }
      continue;
    }
    if (type == "query_done") {
      result.query_id = reply.GetInt("query_id", expect_query_id);
      const StatusCode code =
          StatusCodeFromWireName(reply.GetString("status", "internal"));
      result.status = code == StatusCode::kOk
                          ? Status::Ok()
                          : Status(code, reply.GetString("message", ""));
      result.outcome = reply.GetString("outcome", "");
      result.reopts = static_cast<int>(reply.GetInt("reopts", 0));
      result.total_ms = reply.GetNumber("total_ms", 0.0);
      result.queue_ms = reply.GetNumber("queue_ms", 0.0);
      result.plan_cache = reply.GetString("plan_cache", "");
      return result;
    }
    result.status =
        Status::Internal("unexpected frame type \"" + type + "\"");
    return result;
  }
}

namespace {

std::string EncodeQueryRequest(const std::string& sql,
                               const ClientQueryOptions& options,
                               bool async) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("query");
  w.Key("sql").String(sql);
  if (!options.params.empty()) {
    w.Key("params").BeginArray();
    for (const Value& v : options.params) AppendValueJson(v, &w);
    w.EndArray();
  }
  if (options.deadline_ms >= 0) {
    w.Key("deadline_ms").Double(options.deadline_ms);
  }
  if (options.batch_rows > 0) w.Key("batch_rows").Int(options.batch_rows);
  if (options.high_priority) w.Key("priority").String("high");
  if (!options.trace_token.empty()) {
    w.Key("trace_token").String(options.trace_token);
  }
  if (async) w.Key("async").Bool(true);
  w.EndObject();
  return w.str();
}

}  // namespace

ClientQueryResult Client::Query(const std::string& sql,
                                ClientQueryOptions options) {
  ClientQueryResult result;
  if (fd_ < 0) {
    result.status = Status::InvalidArgument("client is closed");
    return result;
  }
  Status sent = WriteFrame(fd_, EncodeQueryRequest(sql, options, false),
                           timeout_ms_);
  if (!sent.ok()) {
    result.status = sent;
    return result;
  }
  return ConsumeResult(-1);
}

ClientWriteResult Client::Write(const std::string& sql,
                                ClientQueryOptions options) {
  ClientWriteResult result;
  Result<JsonValue> reply = RoundTrip(EncodeQueryRequest(sql, options, false));
  if (!reply.ok()) {
    result.status = reply.status();
    return result;
  }
  if (reply.value().GetString("type", "") != "write_done") {
    result.status = Status::Internal("expected write_done frame (got \"" +
                                     reply.value().GetString("type", "") +
                                     "\"); use Query() for SELECT");
    return result;
  }
  result.query_id = reply.value().GetInt("query_id", -1);
  result.affected_rows = reply.value().GetInt("affected_rows", 0);
  result.stats_version = reply.value().GetInt("stats_version", 0);
  result.stats_folded = reply.value().GetBool("stats_folded", false);
  result.total_ms = reply.value().GetNumber("total_ms", 0.0);
  return result;
}

Result<int64_t> Client::QueryAsync(const std::string& sql,
                                   ClientQueryOptions options) {
  Result<JsonValue> reply =
      RoundTrip(EncodeQueryRequest(sql, options, true));
  if (!reply.ok()) return reply.status();
  if (reply.value().GetString("type", "") != "query_accepted") {
    return Status::Internal("expected query_accepted frame");
  }
  return reply.value().GetInt("query_id", -1);
}

ClientQueryResult Client::Wait(int64_t query_id, int64_t batch_rows) {
  ClientQueryResult result;
  result.query_id = query_id;
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("wait");
  w.Key("query_id").Int(query_id);
  if (batch_rows > 0) w.Key("batch_rows").Int(batch_rows);
  w.EndObject();
  Status sent = WriteFrame(fd_, w.str(), timeout_ms_);
  if (!sent.ok()) {
    result.status = sent;
    return result;
  }
  return ConsumeResult(query_id);
}

Result<bool> Client::Cancel(int64_t query_id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("cancel");
  w.Key("query_id").Int(query_id);
  w.EndObject();
  Result<JsonValue> reply = RoundTrip(w.str());
  if (!reply.ok()) return reply.status();
  return reply.value().GetBool("found", false);
}

Result<std::string> Client::Trace(int64_t query_id) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("trace");
  w.Key("query_id").Int(query_id);
  w.EndObject();
  Result<JsonValue> reply = RoundTrip(w.str());
  if (!reply.ok()) return reply.status();
  const JsonValue* trace = reply.value().Find("trace");
  if (trace == nullptr) return Status::Internal("trace_ok without trace");
  // The trace arrives as a parsed JSON object; re-render it for callers.
  // Simpler: the server embeds it as raw JSON, so re-extract from the
  // original payload is not possible here — serialize the parsed tree.
  return trace->ToJsonString();
}

Result<std::string> Client::Metrics(bool cluster) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("metrics");
  if (cluster) w.Key("cluster").Bool(true);
  w.EndObject();
  Result<JsonValue> reply = RoundTrip(w.str());
  if (!reply.ok()) return reply.status();
  return reply.value().GetString("text", "");
}

Result<ClientSpanDump> Client::Spans(const ClientSpansOptions& options) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("spans");
  if (options.cluster) w.Key("scope").String("cluster");
  if (options.clear) w.Key("clear").Bool(true);
  if (options.enable >= 0) w.Key("enable").Bool(options.enable != 0);
  w.EndObject();
  Result<JsonValue> reply = RoundTrip(w.str());
  if (!reply.ok()) return reply.status();
  const JsonValue* trace = reply.value().Find("trace");
  if (trace == nullptr) return Status::Internal("spans_ok without trace");
  ClientSpanDump dump;
  // The dump arrives as a parsed JSON array; re-serialize for the caller
  // (semantic round trip — pid/ts rewriting happens on parsed trees).
  dump.trace_json = trace->ToJsonString();
  dump.now_us = reply.value().GetInt("now_us", 0);
  dump.event_count = reply.value().GetInt("event_count", 0);
  return dump;
}

Result<std::string> Client::QueryLogTail(int64_t limit) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("query_log");
  if (limit > 0) w.Key("limit").Int(limit);
  w.EndObject();
  Result<JsonValue> reply = RoundTrip(w.str());
  if (!reply.ok()) return reply.status();
  const JsonValue* entries = reply.value().Find("entries");
  if (entries == nullptr) {
    return Status::Internal("query_log_ok without entries");
  }
  return entries->ToJsonString();
}

Result<int64_t> Client::SubplanStart(const std::string& request_payload) {
  Result<JsonValue> reply = RoundTrip(request_payload);
  if (!reply.ok()) return reply.status();
  if (reply.value().GetString("type", "") != "subplan_ok") {
    return Status::Internal("expected subplan_ok frame");
  }
  return reply.value().GetInt("query_id", -1);
}

Result<ShardEvent> Client::SubplanNext() {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  FrameResult frame = ReadFrame(fd_, kAbsoluteMaxFrameBytes, timeout_ms_);
  if (!frame.ok()) {
    // A dropped connection mid-stream means the shard process is gone;
    // report it as kUnavailable so the coordinator can fail the query
    // cleanly instead of treating it as a protocol bug.
    if (frame.status == FrameStatus::kEof ||
        frame.status == FrameStatus::kError) {
      return Status::Unavailable("shard connection lost mid-stream");
    }
    return FrameTransportError(frame);
  }
  Result<JsonValue> parsed = JsonParse(frame.payload);
  if (!parsed.ok()) {
    return Status::Internal("bad shard frame: " + parsed.status().message());
  }
  JsonValue& reply = parsed.value();
  const std::string type = reply.GetString("type", "");
  if (type == "error") return StatusFromErrorFrame(reply);
  ShardEvent event;
  if (type == "row_batch") {
    event.kind = ShardEvent::Kind::kRows;
    if (const JsonValue* rows = reply.Find("rows");
        rows != nullptr && rows->kind() == JsonValue::Kind::kArray) {
      for (const JsonValue& row : rows->items()) {
        Result<Row> decoded = RowFromJson(row);
        if (!decoded.ok()) return decoded.status();
        event.rows.push_back(std::move(decoded).TakeValue());
      }
    }
    return event;
  }
  if (type == "check_violation") {
    event.kind = ShardEvent::Kind::kViolation;
    event.payload = std::move(reply);
    return event;
  }
  if (type == "query_done") {
    event.kind = ShardEvent::Kind::kDone;
    event.payload = std::move(reply);
    return event;
  }
  return Status::Internal("unexpected shard frame type \"" + type + "\"");
}

Status Client::RequestShutdown() {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("shutdown");
  w.EndObject();
  Result<JsonValue> reply = RoundTrip(w.str());
  if (!reply.ok()) return reply.status();
  if (reply.value().GetString("type", "") != "shutdown_ok") {
    return Status::Internal("expected shutdown_ok frame");
  }
  // The server closes the connection after honoring shutdown.
  CloseFd(fd_);
  fd_ = -1;
  return Status::Ok();
}

}  // namespace popdb::net
