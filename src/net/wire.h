#ifndef POPDB_NET_WIRE_H_
#define POPDB_NET_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"
#include "common/value.h"

namespace popdb::net {

/// popdb wire protocol, version 1.
///
/// Transport: TCP. Every message in either direction is one *frame*:
///
///   +----------------+---------------------------+
///   | length (4B BE) | payload: one JSON object  |
///   +----------------+---------------------------+
///
/// `length` is an unsigned 32-bit big-endian byte count of the payload
/// (the prefix itself excluded). Payloads are UTF-8 JSON objects with a
/// required `"type"` member. Requests (client -> server):
///
///   hello     {type, protocol, client?}         -> hello_ok {session_id,..}
///   query     {type, sql, params?, deadline_ms?, batch_rows?, async?,
///              priority?}                       -> row_batch* + query_done,
///                                                  or query_accepted{query_id}
///                                                  when async; DML text
///                                                  (INSERT/UPDATE/DELETE)
///                                                  instead answers with one
///                                                  write_done {query_id,
///                                                  affected_rows,
///                                                  stats_version,
///                                                  stats_folded, total_ms}
///   wait      {type, query_id}                  -> row_batch* + query_done
///   cancel    {type, query_id}                  -> cancel_ok {found}
///   trace     {type, query_id}                  -> trace_ok {trace}
///   metrics   {type}                            -> metrics_ok {text}
///   goodbye   {type}                            -> goodbye_ok (conn closes)
///   shutdown  {type}                            -> shutdown_ok (server stops;
///                                                  gated by server config)
///   subplan   {type, query, plan, deadline_ms?, batch_rows?}
///                                               -> subplan_ok {query_id},
///                                                  then row_batch* streamed
///                                                  during execution, an
///                                                  optional check_violation
///                                                  {edge_set, observed_rows,
///                                                  exact, flavor, check_lo,
///                                                  check_hi}, and a terminal
///                                                  query_done {status,
///                                                  outcome, observations}
///                                                  (shard servers only; see
///                                                  docs/WIRE.md)
///
/// Any request can instead produce {type:"error", code, message}. Protocol
/// violations (oversized frame, malformed JSON, missing hello) produce an
/// error frame; framing-level violations additionally close the
/// connection, since the byte stream can no longer be trusted.
inline constexpr int kProtocolVersion = 1;

/// Hard ceiling a server will ever accept for one frame, independent of
/// configuration (64 MiB).
inline constexpr uint32_t kAbsoluteMaxFrameBytes = 64u << 20;

/// Wire name of a status code ("ok", "invalid_argument", ...).
const char* StatusCodeWireName(StatusCode code);

/// Inverse of StatusCodeWireName; unknown names map to kInternal.
StatusCode StatusCodeFromWireName(std::string_view name);

// --------------------------------------------------------------- sockets

/// A bound, listening TCP socket.
struct Listener {
  int fd = -1;
  int port = 0;  ///< Actual port (resolves port 0 = ephemeral).
};

/// Opens a listener on `host:port` (port 0 picks an ephemeral port).
Result<Listener> ListenTcp(const std::string& host, int port, int backlog);

/// Blocking connect with a timeout; returns the connected fd.
Result<int> ConnectTcp(const std::string& host, int port, double timeout_ms);

/// Half-closes both directions (wakes a peer or a thread blocked in
/// poll/recv on this fd) without releasing the descriptor.
void ShutdownFd(int fd);

/// Closes the descriptor (EINTR-safe).
void CloseFd(int fd);

// ---------------------------------------------------------------- frames

enum class FrameStatus {
  kOk = 0,
  kEof,       ///< Peer closed cleanly between frames.
  kTimeout,   ///< No (complete) frame within the timeout.
  kTooLarge,  ///< Length prefix exceeds the cap; payload not read.
  kStopped,   ///< The stop flag tripped while waiting.
  kError,     ///< Socket error or mid-frame EOF (stream corrupt).
};

struct FrameResult {
  FrameStatus status = FrameStatus::kError;
  std::string payload;  ///< Set when status == kOk.
  std::string error;    ///< Human-readable detail for kError/kTooLarge.

  bool ok() const { return status == FrameStatus::kOk; }
};

/// Reads one length-prefixed frame from `fd`. `timeout_ms <= 0` waits
/// forever; `stop` (optional) aborts the wait when set (server shutdown).
/// `bytes_read`, when non-null, is incremented by every byte consumed.
FrameResult ReadFrame(int fd, uint32_t max_frame_bytes, double timeout_ms,
                      const std::atomic<bool>* stop = nullptr,
                      std::atomic<int64_t>* bytes_read = nullptr);

/// Writes one frame (length prefix + payload). `timeout_ms <= 0` waits
/// forever. Partial writes are resumed; on timeout or error, the stream
/// is corrupt and the connection must be closed.
Status WriteFrame(int fd, std::string_view payload, double timeout_ms,
                  const std::atomic<bool>* stop = nullptr,
                  std::atomic<int64_t>* bytes_written = nullptr);

// ------------------------------------------------------------ row coding

/// Appends `value` as a JSON value. Doubles are rendered with round-trip
/// precision (%.17g) so rows received over the wire compare equal to the
/// in-process result; non-finite doubles degrade to null.
void AppendValueJson(const Value& value, JsonWriter* w);

/// Appends `row` as a JSON array of values.
void AppendRowJson(const Row& row, JsonWriter* w);

/// Decodes a JSON value into an engine Value (null/int/double/string;
/// booleans and nested containers are rejected).
Result<Value> ValueFromJson(const JsonValue& json);

/// Decodes a JSON array into a Row.
Result<Row> RowFromJson(const JsonValue& json);

}  // namespace popdb::net

#endif  // POPDB_NET_WIRE_H_
