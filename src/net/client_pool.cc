#include "net/client_pool.h"

#include <utility>

#include "common/string_util.h"

namespace popdb::net {

ClientPool::ClientPool(std::vector<Endpoint> endpoints,
                       ClientConnectOptions options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      idle_(endpoints_.size()),
      up_(endpoints_.size(), false) {}

Result<std::unique_ptr<Client>> ClientPool::Acquire(int shard) {
  if (shard < 0 || shard >= num_endpoints()) {
    return Status::InvalidArgument(
        StrFormat("shard %d out of range (%d endpoints)", shard,
                  num_endpoints()));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!idle_[shard].empty()) {
      std::unique_ptr<Client> client = std::move(idle_[shard].back());
      idle_[shard].pop_back();
      if (client->connected()) return client;
    }
  }
  const Endpoint& ep = endpoints_[shard];
  Result<Client> dialed = Client::Connect(ep.host, ep.port, options_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    up_[shard] = dialed.ok();
  }
  if (!dialed.ok()) return dialed.status();
  return std::make_unique<Client>(std::move(dialed).TakeValue());
}

void ClientPool::Release(int shard, std::unique_ptr<Client> client) {
  if (client == nullptr || !client->connected()) return;
  if (shard < 0 || shard >= num_endpoints()) return;
  std::lock_guard<std::mutex> lock(mu_);
  up_[shard] = true;
  idle_[shard].push_back(std::move(client));
}

int ClientPool::endpoints_up() const {
  std::lock_guard<std::mutex> lock(mu_);
  int up = 0;
  for (const bool b : up_) up += b ? 1 : 0;
  return up;
}

}  // namespace popdb::net
