#ifndef POPDB_NET_SERVER_H_
#define POPDB_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "net/wire.h"
#include "runtime/query_service.h"
#include "runtime/session.h"

namespace popdb::net {

/// Executes one `subplan` request on behalf of the server — the shard side
/// of scatter-gather execution (implemented by dist::ShardExecutor; the
/// interface lives here so src/net does not depend on src/dist).
///
/// Run() parses the request's serialized query + plan, executes it against
/// the shard's catalog, and streams result rows through `emit` (one call
/// per batch; a false return means the connection died — stop executing).
/// `cancel` is tripped by cancel-by-id requests, session teardown and
/// server shutdown. Must be thread safe: every connection worker may call
/// Run concurrently.
class SubplanBackend {
 public:
  /// Terminal outcome of one subplan run, rendered into the query_done
  /// frame (and the preceding check_violation frame, when a CHECK fired).
  struct RunResult {
    Status status;
    /// "ok", "reoptimize", "cancelled", "deadline", or "error".
    std::string outcome = "ok";
    /// Full check_violation frame payload, or empty when no CHECK fired.
    std::string violation_json;
    /// JSON array of {set, rows, exact} cardinality observations.
    std::string observations_json = "[]";
    int64_t rows_sent = 0;
    /// Serialized PlanProfileNode tree (core/explain.h ProfileToJson) of
    /// the executed fragment, or empty when no profile was captured. The
    /// coordinator merges these into the distributed EXPLAIN ANALYZE view.
    std::string profile_json;
    /// Shard-side wall-clock execution time for this subplan.
    double execute_ms = 0.0;
    /// Query name from the request, for trace/query-log attribution.
    std::string query_name = "subplan";
  };

  virtual ~SubplanBackend() = default;

  virtual RunResult Run(const JsonValue& request, CancelToken* cancel,
                        const std::function<bool(const std::vector<Row>&)>&
                            emit) = 0;
};

/// Cluster-wide observability hooks served by a coordinator-mode server
/// (implemented by dist::Coordinator; the interface lives here so src/net
/// does not depend on src/dist). Both calls fan out to every shard over the
/// coordinator's connection pool and must be thread safe.
class ClusterObservability {
 public:
  virtual ~ClusterObservability() = default;

  /// Harvests span dumps from every shard, stitches them with the
  /// coordinator's own spans into one Chrome trace_event JSON document
  /// (one pid row per process), and returns it.
  virtual Result<std::string> ClusterTraceJson() = 0;

  /// Scrapes every shard's Prometheus exposition and appends it to
  /// `local_text` with a `shard="N"` label injected into each sample.
  virtual Result<std::string> FederatedMetricsText(
      const std::string& local_text) = 0;
};

/// Configuration of a NetServer instance.
struct NetServerConfig {
  /// Numeric IPv4 address to bind (the default serves loopback only; bind
  /// 0.0.0.0 explicitly to expose the server).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;

  /// Connection workers: each serves one client connection at a time, so
  /// this bounds concurrently served sessions. Accepted connections beyond
  /// it wait in the pending queue.
  int num_workers = 4;
  int accept_backlog = 64;
  /// Accepted-but-unserved connections held while all workers are busy;
  /// beyond this the server closes new connections immediately (overload
  /// shedding).
  int max_pending_connections = 64;

  /// Per-frame payload cap; larger frames are rejected with an error frame
  /// and the connection is closed (clamped to kAbsoluteMaxFrameBytes).
  uint32_t max_frame_bytes = 1u << 20;

  /// Idle read timeout: how long a connection may sit between requests
  /// before the server closes it. <= 0 = no timeout.
  double read_timeout_ms = 0.0;
  /// Per-frame write timeout towards slow/dead clients; on expiry the
  /// connection is dropped. <= 0 = no timeout.
  double write_timeout_ms = 10000.0;

  /// Unfinished queries one session may hold (sync + async). Submissions
  /// beyond it are rejected with resource_exhausted before reaching the
  /// service queue.
  int max_inflight_per_session = 8;

  /// Default and maximum rows per row_batch frame (a query request may ask
  /// for a smaller batch; larger requests are clamped).
  int64_t default_batch_rows = 256;
  int64_t max_batch_rows = 8192;

  /// Honor the `shutdown` request type (used by the CI smoke client for a
  /// deterministic clean stop). Off by default: a remote kill switch is
  /// opt-in.
  bool allow_shutdown_request = false;

  /// Shard mode: executor for `subplan` requests. Null (the default)
  /// rejects them with unimplemented. Not owned; must outlive the server.
  SubplanBackend* subplan_backend = nullptr;
  /// Test/chaos knob: sleep this long after each emitted subplan row batch
  /// (sliced, cancellation-responsive) so tests can deterministically kill
  /// or cancel a shard mid-stream. <= 0 = no stall.
  double subplan_stall_ms = 0.0;

  /// Coordinator mode: cluster-wide observability hooks backing
  /// `spans {scope:"cluster"}` and `metrics {cluster:true}` requests. Null
  /// (the default) rejects cluster-scoped requests with unimplemented. Not
  /// owned; must outlive the server.
  ClusterObservability* cluster = nullptr;

  std::string server_name = "popdb";
};

/// TCP front end over a QueryService: accepts client connections, speaks
/// the length-prefixed JSON wire protocol (net/wire.h), parses SQL against
/// the service's catalog, and maps protocol requests onto Submit /
/// QueryTicket::Cancel / trace and metrics lookups.
///
/// Threading: one acceptor thread plus `num_workers` connection workers
/// (one live connection per worker; excess connections queue). Shutdown()
/// is cooperative: admission stops, every registered in-flight query is
/// cancelled, blocked socket I/O is woken via shutdown(2) and a shared
/// stop flag, and all threads are joined before it returns.
///
/// Example:
///   QueryService service(catalog, {});
///   TraceStore traces;                  // wire as config.trace_sink
///   NetServer server(&service, &traces, {});
///   server.Start();                     // serving on server.port()
///   ...
///   server.Shutdown();
class NetServer {
 public:
  /// `service` and `traces` are not owned and must outlive the server.
  /// `traces` may be null (the `trace` request then reports not_found).
  NetServer(QueryService* service, TraceStore* traces,
            NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads. Fails if
  /// the address cannot be bound; calling Start twice is an error.
  Status Start();

  /// Stops accepting, cancels in-flight queries, closes connections, joins
  /// all threads. Idempotent; also invoked by the destructor.
  void Shutdown();

  /// Bound port (valid after Start; resolves an ephemeral request).
  int port() const { return port_; }

  /// True once a client issued an honored `shutdown` request. The embedder
  /// decides when to act on it (typically by calling Shutdown()).
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Blocks until shutdown_requested() or `timeout_ms` passed (<= 0 waits
  /// forever); returns shutdown_requested().
  bool WaitForShutdownRequest(double timeout_ms = 0.0);

  SessionRegistry& sessions() { return sessions_; }

  const NetServerConfig& config() const { return config_; }

 private:
  struct ConnState;

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  /// Request handlers; each returns false when the connection must close.
  bool HandleFrame(ConnState* conn, const std::string& payload);
  bool HandleHello(ConnState* conn, const JsonValue& request);
  bool HandleQuery(ConnState* conn, const JsonValue& request);
  bool HandleSubplan(ConnState* conn, const JsonValue& request);
  bool HandleWait(ConnState* conn, const JsonValue& request);
  bool HandleCancel(ConnState* conn, const JsonValue& request);
  bool HandleTrace(ConnState* conn, const JsonValue& request);
  bool HandleSpans(ConnState* conn, const JsonValue& request);
  bool HandleQueryLog(ConnState* conn, const JsonValue& request);
  bool HandleMetrics(ConnState* conn, const JsonValue& request);
  bool HandleGoodbye(ConnState* conn);
  bool HandleShutdownRequest(ConnState* conn);

  /// Streams `ticket`'s result as row_batch frames plus the trailing
  /// query_done frame; releases the ticket from the registry.
  bool StreamResult(ConnState* conn, int64_t query_id, int64_t batch_rows);

  bool SendFrame(ConnState* conn, const std::string& payload);
  bool SendError(ConnState* conn, StatusCode code,
                 const std::string& message);

  QueryService* service_;
  TraceStore* traces_;
  NetServerConfig config_;

  SessionRegistry sessions_;

  // Net metrics, registered in the service's MetricsRegistry (which owns
  // them) so MetricsText() exposes the front end alongside the engine.
  Counter* connections_total_ = nullptr;
  Gauge* connections_active_ = nullptr;
  Gauge* sessions_open_ = nullptr;
  Counter* frames_read_ = nullptr;
  Counter* frames_written_ = nullptr;
  Counter* bytes_read_ = nullptr;
  Counter* bytes_written_ = nullptr;
  Counter* protocol_errors_ = nullptr;
  Counter* queries_total_ = nullptr;
  Counter* cancels_total_ = nullptr;
  Counter* connections_shed_ = nullptr;
  Counter* subplans_total_ = nullptr;
  Counter* writes_total_ = nullptr;

  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
  bool joined_ = false;
  int listen_fd_ = -1;
  int port_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;            ///< Pending-queue waiters.
  std::condition_variable shutdown_cv_;   ///< WaitForShutdownRequest.
  std::deque<int> pending_;               ///< Accepted, unserved fds.
  std::set<int> active_fds_;              ///< Fds inside ServeConnection.

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace popdb::net

#endif  // POPDB_NET_SERVER_H_
