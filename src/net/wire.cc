#include "net/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace popdb::net {

namespace {

/// Poll slice so blocked I/O notices the stop flag promptly.
constexpr int kPollSliceMs = 50;

double NowMsLocal() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Waits for `events` on `fd`. Returns 1 = ready, 0 = deadline passed or
/// stop tripped (sets *stopped), -1 = poll error.
int WaitFd(int fd, short events, double deadline_ms,
           const std::atomic<bool>* stop, bool* stopped) {
  *stopped = false;
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      *stopped = true;
      return 0;
    }
    int slice = kPollSliceMs;
    if (deadline_ms > 0) {
      const double remaining = deadline_ms - NowMsLocal();
      if (remaining <= 0) return 0;
      if (remaining < slice) slice = static_cast<int>(remaining) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc > 0) return 1;
  }
}

/// Reads exactly `len` bytes. Returns kOk, or the failure kind; `first`
/// selects whether a clean immediate EOF is kEof (frame boundary) or
/// kError (mid-frame truncation).
FrameStatus ReadExact(int fd, char* buf, size_t len, double deadline_ms,
                      const std::atomic<bool>* stop,
                      std::atomic<int64_t>* bytes_read, bool at_boundary,
                      std::string* error) {
  size_t got = 0;
  while (got < len) {
    bool stopped = false;
    const int ready = WaitFd(fd, POLLIN, deadline_ms, stop, &stopped);
    if (ready < 0) {
      *error = StrFormat("poll failed: %s", std::strerror(errno));
      return FrameStatus::kError;
    }
    if (ready == 0) {
      return stopped ? FrameStatus::kStopped : FrameStatus::kTimeout;
    }
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      *error = StrFormat("recv failed: %s", std::strerror(errno));
      return FrameStatus::kError;
    }
    if (n == 0) {
      if (at_boundary && got == 0) return FrameStatus::kEof;
      *error = "connection closed mid-frame";
      return FrameStatus::kError;
    }
    got += static_cast<size_t>(n);
    if (bytes_read != nullptr) {
      bytes_read->fetch_add(n, std::memory_order_relaxed);
    }
  }
  return FrameStatus::kOk;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(StrFormat("fcntl(O_NONBLOCK) failed: %s",
                                      std::strerror(errno)));
  }
  return Status::Ok();
}

Result<struct sockaddr_in> ResolveV4(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // Numeric IPv4 only: the engine serves loopback / explicit addresses;
  // name resolution stays out of the wire layer.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

const char* StatusCodeWireName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "internal";
}

StatusCode StatusCodeFromWireName(std::string_view name) {
  if (name == "ok") return StatusCode::kOk;
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "already_exists") return StatusCode::kAlreadyExists;
  if (name == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (name == "unimplemented") return StatusCode::kUnimplemented;
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "deadline_exceeded") return StatusCode::kDeadlineExceeded;
  if (name == "unavailable") return StatusCode::kUnavailable;
  return StatusCode::kInternal;
}

Result<Listener> ListenTcp(const std::string& host, int port, int backlog) {
  Result<struct sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket failed: %s",
                                      std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
             sizeof(addr.value())) < 0) {
    const Status s = Status::Internal(StrFormat(
        "bind %s:%d failed: %s", host.c_str(), port, std::strerror(errno)));
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    const Status s = Status::Internal(StrFormat("listen failed: %s",
                                                std::strerror(errno)));
    CloseFd(fd);
    return s;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  Listener listener;
  listener.fd = fd;
  listener.port = port;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    listener.port = ntohs(bound.sin_port);
  }
  return listener;
}

Result<int> ConnectTcp(const std::string& host, int port,
                       double timeout_ms) {
  Result<struct sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket failed: %s",
                                      std::strerror(errno)));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }
  const int rc =
      ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
                sizeof(addr.value()));
  if (rc < 0 && errno != EINPROGRESS) {
    const Status s =
        errno == ECONNREFUSED
            ? Status::Unavailable(StrFormat("connect %s:%d refused",
                                            host.c_str(), port))
            : Status::Internal(StrFormat("connect %s:%d failed: %s",
                                         host.c_str(), port,
                                         std::strerror(errno)));
    CloseFd(fd);
    return s;
  }
  if (rc < 0) {
    // Await the asynchronous connect result.
    const double deadline =
        timeout_ms > 0 ? NowMsLocal() + timeout_ms : 0.0;
    bool stopped = false;
    const int ready = WaitFd(fd, POLLOUT, deadline, nullptr, &stopped);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      Status s;
      if (ready == 0) {
        s = Status::DeadlineExceeded(
            StrFormat("connect %s:%d timed out", host.c_str(), port));
      } else if (soerr == ECONNREFUSED) {
        // Distinguishable so clients can retry a racing connect (a shard
        // that has not bound its listener yet).
        s = Status::Unavailable(
            StrFormat("connect %s:%d refused", host.c_str(), port));
      } else {
        s = Status::Internal(
            StrFormat("connect %s:%d failed: %s", host.c_str(), port,
                      std::strerror(soerr != 0 ? soerr : errno)));
      }
      CloseFd(fd);
      return s;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd < 0) return;
  while (::close(fd) < 0 && errno == EINTR) {
  }
}

FrameResult ReadFrame(int fd, uint32_t max_frame_bytes, double timeout_ms,
                      const std::atomic<bool>* stop,
                      std::atomic<int64_t>* bytes_read) {
  FrameResult result;
  const double deadline =
      timeout_ms > 0 ? NowMsLocal() + timeout_ms : 0.0;

  unsigned char header[4];
  result.status =
      ReadExact(fd, reinterpret_cast<char*>(header), sizeof(header),
                deadline, stop, bytes_read, /*at_boundary=*/true,
                &result.error);
  if (result.status != FrameStatus::kOk) return result;

  const uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                       (static_cast<uint32_t>(header[1]) << 16) |
                       (static_cast<uint32_t>(header[2]) << 8) |
                       static_cast<uint32_t>(header[3]);
  const uint32_t cap =
      max_frame_bytes < kAbsoluteMaxFrameBytes ? max_frame_bytes
                                               : kAbsoluteMaxFrameBytes;
  if (len > cap) {
    result.status = FrameStatus::kTooLarge;
    result.error = StrFormat("frame of %u bytes exceeds the %u-byte cap",
                             len, cap);
    return result;
  }
  result.payload.resize(len);
  if (len > 0) {
    result.status =
        ReadExact(fd, result.payload.data(), len, deadline, stop,
                  bytes_read, /*at_boundary=*/false, &result.error);
    if (result.status != FrameStatus::kOk) {
      result.payload.clear();
      return result;
    }
  }
  result.status = FrameStatus::kOk;
  return result;
}

Status WriteFrame(int fd, std::string_view payload, double timeout_ms,
                  const std::atomic<bool>* stop,
                  std::atomic<int64_t>* bytes_written) {
  if (payload.size() > kAbsoluteMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds 64 MiB");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string buf;
  buf.reserve(payload.size() + 4);
  buf.push_back(static_cast<char>((len >> 24) & 0xFF));
  buf.push_back(static_cast<char>((len >> 16) & 0xFF));
  buf.push_back(static_cast<char>((len >> 8) & 0xFF));
  buf.push_back(static_cast<char>(len & 0xFF));
  buf.append(payload);

  const double deadline =
      timeout_ms > 0 ? NowMsLocal() + timeout_ms : 0.0;
  size_t sent = 0;
  while (sent < buf.size()) {
    bool stopped = false;
    const int ready = WaitFd(fd, POLLOUT, deadline, stop, &stopped);
    if (ready < 0) {
      return Status::Internal(StrFormat("poll failed: %s",
                                        std::strerror(errno)));
    }
    if (ready == 0) {
      return stopped
                 ? Status::Cancelled("write aborted: server stopping")
                 : Status::DeadlineExceeded("write timed out");
    }
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, buf.data() + sent, buf.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Internal(StrFormat("send failed: %s",
                                        std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
    if (bytes_written != nullptr) {
      bytes_written->fetch_add(n, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

void AppendValueJson(const Value& value, JsonWriter* w) {
  switch (value.type()) {
    case ValueType::kNull:
      w->Null();
      return;
    case ValueType::kInt:
      w->Int(value.AsInt());
      return;
    case ValueType::kDouble: {
      const double d = value.AsDouble();
      if (!std::isfinite(d)) {
        w->Null();
      } else {
        // Round-trip precision: wire rows must compare equal to the
        // in-process result (JsonWriter::Double truncates to %.6g).
        w->Raw(StrFormat("%.17g", d));
      }
      return;
    }
    case ValueType::kString:
      w->String(value.AsString());
      return;
  }
}

void AppendRowJson(const Row& row, JsonWriter* w) {
  w->BeginArray();
  for (const Value& v : row) AppendValueJson(v, w);
  w->EndArray();
}

Result<Value> ValueFromJson(const JsonValue& json) {
  switch (json.kind()) {
    case JsonValue::Kind::kNull:
      return Value::Null();
    case JsonValue::Kind::kInt:
      return Value::Int(json.AsInt());
    case JsonValue::Kind::kDouble:
      return Value::Double(json.AsDouble());
    case JsonValue::Kind::kString:
      return Value::String(json.AsString());
    default:
      return Status::InvalidArgument(
          "unsupported JSON kind for a SQL value (expected null, number, "
          "or string)");
  }
}

Result<Row> RowFromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("row must be a JSON array");
  }
  Row row;
  row.reserve(json.items().size());
  for (const JsonValue& item : json.items()) {
    Result<Value> v = ValueFromJson(item);
    if (!v.ok()) return v.status();
    row.push_back(std::move(v).TakeValue());
  }
  return row;
}

}  // namespace popdb::net
