#include "exec/batch.h"

#include <utility>

namespace popdb {

void RowBatch::ApplyReserveHint() {
  if (reserve_hint <= 0) return;
  // The hint is the producer's un-scaled batch target; cap it by the now
  // known column count so wide batches don't reserve far past what a
  // width-aware fill will actually use.
  const size_t n = static_cast<size_t>(
      CapBatchRowsForWidth(reserve_hint, static_cast<int>(cols.size())));
  for (std::vector<Value>& c : cols) {
    if (c.capacity() < n) c.reserve(n);
  }
}

void RowBatch::Reset(int width) {
  if (static_cast<int>(cols.size()) != width) {
    cols.resize(static_cast<size_t>(width));
  }
  // Elements stay alive as the reuse pool (see the class invariants).
  ApplyReserveHint();
  sel.clear();
  use_sel = false;
  num_rows = 0;
}

void RowBatch::Clear() {
  sel.clear();
  use_sel = false;
  num_rows = 0;
}

void RowBatch::AppendRow(const Row& row) {
  if (num_rows == 0 && cols.size() != row.size()) {
    cols.assign(row.size(), {});
    ApplyReserveHint();
  }
  for (size_t c = 0; c < cols.size(); ++c) {
    PutCopy(static_cast<int>(c), num_rows, row[c]);
  }
  ++num_rows;
}

void RowBatch::AppendRowMove(Row&& row) {
  if (num_rows == 0 && cols.size() != row.size()) {
    cols.assign(row.size(), {});
    ApplyReserveHint();
  }
  for (size_t c = 0; c < cols.size(); ++c) {
    PutMove(static_cast<int>(c), num_rows, std::move(row[c]));
  }
  ++num_rows;
}

void RowBatch::MaterializeRow(int64_t i, Row* out) const {
  const size_t raw = static_cast<size_t>(RawIndex(i));
  out->resize(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) (*out)[c].AssignFrom(cols[c][raw]);
}

void RowBatch::MoveRowsInto(std::vector<Row>* out) {
  const int64_t n = ActiveRows();
  out->reserve(out->size() + static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const size_t raw = static_cast<size_t>(RawIndex(i));
    Row row(cols.size());
    for (size_t c = 0; c < cols.size(); ++c) {
      row[c].AssignFrom(std::move(cols[c][raw]));
    }
    out->push_back(std::move(row));
  }
  Clear();
}

void RowBatch::TruncateActive(int64_t k) {
  if (k >= ActiveRows()) return;
  if (use_sel) {
    sel.resize(static_cast<size_t>(k));
  } else {
    num_rows = k;
  }
}

void RowBatch::EnsureSel() {
  if (use_sel) return;
  sel.resize(static_cast<size_t>(num_rows));
  for (int64_t r = 0; r < num_rows; ++r) sel[static_cast<size_t>(r)] = static_cast<int32_t>(r);
  use_sel = true;
}

}  // namespace popdb
