#ifndef POPDB_EXEC_CHECK_H_
#define POPDB_EXEC_CHECK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/join.h"
#include "exec/operator.h"

namespace popdb {

/// Streaming CHECK operator (paper Figure 10). Counts rows flowing from
/// its child; triggers re-optimization as soon as the count exceeds the
/// upper bound of the check range, or at end-of-stream if the count falls
/// below the lower bound. Used for eager checkpoints (ECB under a TEMP,
/// ECWC below a materialization point, ECDC in a pipeline).
class CheckOp : public Operator {
 public:
  CheckOp(std::unique_ptr<Operator> child, CheckSpec spec);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  /// Batch-boundary evaluation: counts whole batches (one comparison per
  /// batch). For an enforced upper bound the child's batch target is
  /// clamped to the rows remaining before the violation threshold, so the
  /// violating row is always the last one pulled and the check fires with
  /// exactly the row engine's observed cardinality above any child.
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "CHECK"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  int64_t count() const { return count_; }

 private:
  ExecStatus Fire(ExecContext* ctx, bool exact);
  void RecordEvent(ExecContext* ctx, bool fired);

  std::unique_ptr<Operator> child_;
  CheckSpec spec_;
  int64_t count_ = 0;
  int64_t work_first_ = -1;
  bool event_recorded_ = false;
};

/// BUFCHECK (paper Figures 8 and 10): a CHECK fused with a bounded buffer,
/// usable on pipelined edges. Rows are buffered until the check's outcome
/// is certain, then released:
///   - count exceeds the upper bound  -> re-optimize (count is a lower
///     bound on the true cardinality; nothing was emitted),
///   - EOF with count below the lower bound -> re-optimize (exact count),
///   - lower-bound-only ranges ([lo, inf)) succeed the moment the lo-th
///     row arrives, after which rows stream through with no buffering.
/// The buffer never holds more than min(hi, lo)+1 rows, unlike the
/// unbounded TEMP the prototype used as a stand-in buffer.
class BufCheckOp : public Operator {
 public:
  BufCheckOp(std::unique_ptr<Operator> child, CheckSpec spec);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  bool HarvestInfo(HarvestedResult* out) const override;
  const char* name() const override { return "BUFCHECK"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  int64_t count() const { return count_; }

 private:
  ExecStatus Fire(ExecContext* ctx, bool exact);
  void RecordEvent(ExecContext* ctx, bool fired);

  std::unique_ptr<Operator> child_;
  CheckSpec spec_;
  std::vector<Row> buffer_;
  size_t buffer_pos_ = 0;
  int64_t count_ = 0;
  bool decided_ = false;
  bool child_eof_ = false;
  int64_t work_first_ = -1;
  bool event_recorded_ = false;
};

/// Re-optimizes when the actual execution work exceeds a budget — the
/// paper's closing observation that CHECK can guard "parameters other than
/// the cardinality ... such as memory consumption, execution time, or even
/// the overall system load" (Section 8). Compares ExecContext::work
/// against `work_budget` on every row and fires at most once.
class WorkBoundOp : public Operator {
 public:
  WorkBoundOp(std::unique_ptr<Operator> child, double work_budget,
              TableSet edge_set);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "WORKBOUND"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Operator> child_;
  double work_budget_;
  TableSet edge_set_;
  int64_t count_ = 0;
};

/// Lazy CHECK above a materialization point (TEMP, SORT): evaluates the
/// check range exactly once, right after the child completes its
/// materialization during Open, by reading the child's materialized
/// cardinality. No compensation is ever needed because nothing has flowed
/// above the materialization yet (Section 3.1).
class CheckMaterializedOp : public Operator {
 public:
  CheckMaterializedOp(std::unique_ptr<Operator> child, CheckSpec spec);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    return child_->NextBatch(ctx, out);
  }
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "CHECKM"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  /// Pure 1:1 forwarder above a materialization: a truncation adjusts
  /// both this wrapper and the materializing child.
  void ReconcileAbort(int64_t unconsumed) override {
    Operator::ReconcileAbort(unconsumed);
    child_->ReconcileAbort(unconsumed);
  }

 private:
  std::unique_ptr<Operator> child_;
  CheckSpec spec_;
};

/// Records every row it passes upward into ExecContext::returned_rows.
/// This is the paper's INSERT-into-side-table S used by eager checking
/// with deferred compensation (Section 3.3): if re-optimization strikes
/// after rows were pipelined to the application, the new plan compensates
/// with an anti-join against S.
class RidTrackOp : public Operator {
 public:
  RidTrackOp(std::unique_ptr<Operator> child, TableSet table_set)
      : Operator(table_set), child_(std::move(child)) {}

  ExecStatus OpenImpl(ExecContext* ctx) override { return child_->Open(ctx); }
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "INSERT(S)"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Operator> child_;
};

/// Anti-join (multiset set-difference) against the side table of rows that
/// were already returned to the application in a previous execution step.
/// Each previously returned row suppresses exactly one equal row of the
/// new stream, so re-executed pipelined plans return no false duplicates.
class AntiCompensateOp : public Operator {
 public:
  AntiCompensateOp(std::unique_ptr<Operator> child,
                   const std::vector<Row>& already_returned,
                   TableSet table_set);

  ExecStatus OpenImpl(ExecContext* ctx) override { return child_->Open(ctx); }
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "ANTIJOIN(S)"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Operator> child_;
  std::unordered_map<Row, int64_t, RowHash> remaining_;
};

}  // namespace popdb

#endif  // POPDB_EXEC_CHECK_H_
