#include "exec/scan.h"

#include <algorithm>

namespace popdb {

ExecStatus TableScanOp::OpenImpl(ExecContext* ctx) {
  (void)ctx;
  next_rid_ = begin_rid_;
  stop_rid_ = end_rid_ < 0 ? snapshot_.num_rows()
                           : std::min(end_rid_, snapshot_.num_rows());
  return ExecStatus::kOk;
}

ExecStatus TableScanOp::NextImpl(ExecContext* ctx, Row* out) {
  while (next_rid_ < stop_rid_) {
    if (ctx->CancelPending()) return ExecStatus::kCancelled;
    if (!snapshot_.alive(next_rid_)) {
      ++next_rid_;
      continue;
    }
    const Row& row = snapshot_.row(next_rid_);
    ++next_rid_;
    ++ctx->work;
    bool pass = true;
    for (const ResolvedPredicate& p : preds_) {
      if (!EvalPredicate(p, row)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      *out = row;
      return ExecStatus::kRow;
    }
  }
  return ExecStatus::kEof;
}

ExecStatus TableScanOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  const int64_t target =
      BatchTarget(ctx, snapshot_.table()->schema().num_columns());
  out->Clear();
  while (next_rid_ < stop_rid_ && out->num_rows < target) {
    if (ctx->CancelPending()) return FlushOrStatus(out, ExecStatus::kCancelled);
    if (!snapshot_.alive(next_rid_)) {
      ++next_rid_;
      continue;
    }
    const Row& row = snapshot_.row(next_rid_);
    ++next_rid_;
    ++ctx->work;
    bool pass = true;
    for (const ResolvedPredicate& p : preds_) {
      if (!EvalPredicate(p, row)) {
        pass = false;
        break;
      }
    }
    if (pass) out->AppendRow(row);
  }
  if (out->num_rows > 0) return ExecStatus::kRow;
  return ExecStatus::kEof;
}

void TableScanOp::CloseImpl(ExecContext* ctx) { (void)ctx; }

ExecStatus MatViewScanOp::OpenImpl(ExecContext* ctx) {
  (void)ctx;
  next_ = 0;
  return ExecStatus::kOk;
}

ExecStatus MatViewScanOp::NextImpl(ExecContext* ctx, Row* out) {
  if (next_ < rows_->size()) {
    ++ctx->work;
    *out = (*rows_)[next_];
    ++next_;
    return ExecStatus::kRow;
  }
  return ExecStatus::kEof;
}

ExecStatus MatViewScanOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  const int64_t target = BatchTarget(
      ctx, rows_->empty() ? 0 : static_cast<int>(rows_->front().size()));
  out->Clear();
  while (next_ < rows_->size() && out->num_rows < target) {
    ++ctx->work;
    out->AppendRow((*rows_)[next_]);
    ++next_;
  }
  if (out->num_rows > 0) return ExecStatus::kRow;
  return ExecStatus::kEof;
}

void MatViewScanOp::CloseImpl(ExecContext* ctx) { (void)ctx; }

}  // namespace popdb
