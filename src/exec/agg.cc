#include "exec/agg.h"

namespace popdb {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

HashAggOp::HashAggOp(std::unique_ptr<Operator> child,
                     std::vector<int> group_pos,
                     std::vector<ResolvedAgg> aggs)
    : Operator(0),
      child_(std::move(child)),
      group_pos_(std::move(group_pos)),
      aggs_(std::move(aggs)) {}

ExecStatus HashAggOp::OpenImpl(ExecContext* ctx) {
  ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;

  std::unordered_map<Row, std::vector<AggState>, RowHash> groups;
  Row row;
  while (true) {
    if (ctx->CancelPending()) return ExecStatus::kCancelled;
    s = child_->Next(ctx, &row);
    if (s == ExecStatus::kEof) break;
    if (s != ExecStatus::kRow) return s;
    ++ctx->work;
    Row key;
    key.reserve(group_pos_.size());
    for (int pos : group_pos_) key.push_back(row[static_cast<size_t>(pos)]);
    std::vector<AggState>& states = groups[std::move(key)];
    if (states.empty()) states.resize(aggs_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      AggState& st = states[a];
      ++st.count;
      if (aggs_[a].func == AggFunc::kCount) continue;
      const Value& v = row[static_cast<size_t>(aggs_[a].pos)];
      if (v.is_null()) continue;
      if (aggs_[a].func == AggFunc::kSum || aggs_[a].func == AggFunc::kAvg) {
        st.sum += v.AsNumeric();
      }
      if (st.min.is_null() || v < st.min) st.min = v;
      if (st.max.is_null() || v > st.max) st.max = v;
    }
  }
  child_->Close(ctx);

  results_.reserve(groups.size());
  for (auto& [key, states] : groups) {
    Row out = key;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggState& st = states[a];
      switch (aggs_[a].func) {
        case AggFunc::kCount:
          out.push_back(Value::Int(st.count));
          break;
        case AggFunc::kSum:
          out.push_back(Value::Double(st.sum));
          break;
        case AggFunc::kAvg:
          out.push_back(Value::Double(
              st.count == 0 ? 0.0 : st.sum / static_cast<double>(st.count)));
          break;
        case AggFunc::kMin:
          out.push_back(st.min);
          break;
        case AggFunc::kMax:
          out.push_back(st.max);
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  next_ = 0;
  return ExecStatus::kOk;
}

ExecStatus HashAggOp::NextImpl(ExecContext* ctx, Row* out) {
  if (next_ < results_.size()) {
    ++ctx->work;
    *out = results_[next_++];
    return ExecStatus::kRow;
  }
  return ExecStatus::kEof;
}

void HashAggOp::CloseImpl(ExecContext* ctx) { (void)ctx; }

}  // namespace popdb
