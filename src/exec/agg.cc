#include "exec/agg.h"

#include <algorithm>

#include "exec/parallel.h"

namespace popdb {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

HashAggOp::HashAggOp(std::unique_ptr<Operator> child,
                     std::vector<int> group_pos,
                     std::vector<ResolvedAgg> aggs)
    : Operator(0),
      child_(std::move(child)),
      group_pos_(std::move(group_pos)),
      aggs_(std::move(aggs)) {}

void HashAggOp::Accumulate(const Row& row, GroupMap* groups) const {
  Row key;
  key.reserve(group_pos_.size());
  for (int pos : group_pos_) key.push_back(row[static_cast<size_t>(pos)]);
  std::vector<AggState>& states = (*groups)[std::move(key)];
  if (states.empty()) states.resize(aggs_.size());
  for (size_t a = 0; a < aggs_.size(); ++a) {
    AggState& st = states[a];
    ++st.count;
    if (aggs_[a].func == AggFunc::kCount) continue;
    const Value& v = row[static_cast<size_t>(aggs_[a].pos)];
    if (v.is_null()) continue;
    if (aggs_[a].func == AggFunc::kSum || aggs_[a].func == AggFunc::kAvg) {
      st.sum += v.AsNumeric();
    }
    if (st.min.is_null() || v < st.min) st.min = v;
    if (st.max.is_null() || v > st.max) st.max = v;
  }
}

void HashAggOp::AccumulateFromBatch(const RowBatch& batch, int64_t i,
                                    GroupMap* groups) const {
  Row key;
  key.reserve(group_pos_.size());
  for (int pos : group_pos_) key.push_back(batch.At(pos, i));
  std::vector<AggState>& states = (*groups)[std::move(key)];
  if (states.empty()) states.resize(aggs_.size());
  for (size_t a = 0; a < aggs_.size(); ++a) {
    AggState& st = states[a];
    ++st.count;
    if (aggs_[a].func == AggFunc::kCount) continue;
    const Value& v = batch.At(aggs_[a].pos, i);
    if (v.is_null()) continue;
    if (aggs_[a].func == AggFunc::kSum || aggs_[a].func == AggFunc::kAvg) {
      st.sum += v.AsNumeric();
    }
    if (st.min.is_null() || v < st.min) st.min = v;
    if (st.max.is_null() || v > st.max) st.max = v;
  }
}

void HashAggOp::MergeState(const AggState& from, AggState* into) {
  into->count += from.count;
  into->sum += from.sum;
  if (!from.min.is_null() && (into->min.is_null() || from.min < into->min)) {
    into->min = from.min;
  }
  if (!from.max.is_null() && (into->max.is_null() || from.max > into->max)) {
    into->max = from.max;
  }
}

void HashAggOp::EmitResults(GroupMap* groups) {
  results_.reserve(groups->size());
  for (auto& [key, states] : *groups) {
    Row out = key;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggState& st = states[a];
      switch (aggs_[a].func) {
        case AggFunc::kCount:
          out.push_back(Value::Int(st.count));
          break;
        case AggFunc::kSum:
          out.push_back(Value::Double(st.sum));
          break;
        case AggFunc::kAvg:
          out.push_back(Value::Double(
              st.count == 0 ? 0.0 : st.sum / static_cast<double>(st.count)));
          break;
        case AggFunc::kMin:
          out.push_back(st.min);
          break;
        case AggFunc::kMax:
          out.push_back(st.max);
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  next_ = 0;
}

ExecStatus HashAggOp::OpenPreAggregated(ExecContext* ctx,
                                        MorselExchangeOp* exchange) {
  const int workers = std::max(1, ctx->dop);
  // One partial table per worker index; a worker never runs two morsels
  // concurrently, so each partial is single-threaded. The exchange charges
  // the per-row work the serial drain loop would have.
  std::vector<GroupMap> partial(static_cast<size_t>(workers));
  exchange->SetRowSink([this, &partial](int worker, const Row& row) {
    Accumulate(row, &partial[static_cast<size_t>(worker)]);
  });
  ExecStatus s = child_->Open(ctx);
  exchange->SetRowSink(nullptr);
  if (s != ExecStatus::kOk) return s;
  // Drain the (now empty) stream so the exchange records a normal
  // pull-to-EOF and feedback harvesting sees the exact cardinality.
  Row row;
  s = child_->Next(ctx, &row);
  if (s != ExecStatus::kEof) {
    return s == ExecStatus::kRow ? ExecStatus::kError : s;
  }
  child_->Close(ctx);

  // Merge in worker order; which rows each worker saw depends on morsel
  // claiming, so the output *order* is unspecified (the multiset is not).
  GroupMap groups;
  for (GroupMap& p : partial) {
    for (auto& [key, states] : p) {
      std::vector<AggState>& into = groups[key];
      if (into.empty()) {
        into = std::move(states);
      } else {
        for (size_t a = 0; a < aggs_.size(); ++a) {
          MergeState(states[a], &into[a]);
        }
      }
    }
  }
  EmitResults(&groups);
  return ExecStatus::kOk;
}

ExecStatus HashAggOp::OpenImpl(ExecContext* ctx) {
  results_.clear();
  next_ = 0;
  auto* exchange = dynamic_cast<MorselExchangeOp*>(child_.get());
  if (exchange != nullptr && exchange->policy().preaggregate &&
      ctx->tasks != nullptr && ctx->dop > 1) {
    return OpenPreAggregated(ctx, exchange);
  }

  ExecStatus s = child_->Open(ctx);
  if (s != ExecStatus::kOk) return s;
  GroupMap groups;
  if (ctx->batch_rows > 1) {
    RowBatch batch;
    while (true) {
      if (ctx->CancelPending()) return ExecStatus::kCancelled;
      s = child_->NextBatch(ctx, &batch);
      if (s == ExecStatus::kEof) break;
      if (s != ExecStatus::kRow) return s;
      const int64_t n = batch.ActiveRows();
      ctx->work += n;
      for (int64_t i = 0; i < n; ++i) AccumulateFromBatch(batch, i, &groups);
    }
  } else {
    Row row;
    while (true) {
      if (ctx->CancelPending()) return ExecStatus::kCancelled;
      s = child_->Next(ctx, &row);
      if (s == ExecStatus::kEof) break;
      if (s != ExecStatus::kRow) return s;
      ++ctx->work;
      Accumulate(row, &groups);
    }
  }
  child_->Close(ctx);
  EmitResults(&groups);
  return ExecStatus::kOk;
}

ExecStatus HashAggOp::NextImpl(ExecContext* ctx, Row* out) {
  if (next_ < results_.size()) {
    ++ctx->work;
    *out = results_[next_++];
    return ExecStatus::kRow;
  }
  return ExecStatus::kEof;
}

ExecStatus HashAggOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  const int64_t target = BatchTarget(
      ctx, results_.empty() ? 0 : static_cast<int>(results_.front().size()));
  out->Clear();
  while (next_ < results_.size() && out->num_rows < target) {
    ++ctx->work;
    out->AppendRow(results_[next_++]);
  }
  return out->num_rows > 0 ? ExecStatus::kRow : ExecStatus::kEof;
}

void HashAggOp::CloseImpl(ExecContext* ctx) { (void)ctx; }

}  // namespace popdb
