#include "exec/layout.h"

#include "common/status.h"
#include "exec/batch.h"

namespace popdb {

RowLayout::RowLayout(TableSet set, const std::vector<int>& table_widths)
    : set_(set) {
  for (int tid = 0; tid < static_cast<int>(table_widths.size()); ++tid) {
    if (!ContainsTable(set, tid)) continue;
    table_ids_.push_back(tid);
    offsets_.push_back(width_);
    width_ += table_widths[static_cast<size_t>(tid)];
  }
}

int RowLayout::Resolve(const ColRef& col) const {
  for (size_t i = 0; i < table_ids_.size(); ++i) {
    if (table_ids_[i] == col.table_id) return offsets_[i] + col.column;
  }
  return -1;
}

MergeSpec MergeSpec::Make(const RowLayout& left, const RowLayout& right,
                          const RowLayout& out,
                          const std::vector<int>& table_widths) {
  POPDB_DCHECK((left.table_set() & right.table_set()) == 0);
  POPDB_DCHECK(out.table_set() == (left.table_set() | right.table_set()));
  MergeSpec spec;
  spec.sources.reserve(static_cast<size_t>(out.width()));
  for (int tid = 0; tid < static_cast<int>(table_widths.size()); ++tid) {
    if (!ContainsTable(out.table_set(), tid)) continue;
    const bool from_left = ContainsTable(left.table_set(), tid);
    const RowLayout& src = from_left ? left : right;
    const int base = src.Resolve(ColRef{tid, 0});
    POPDB_DCHECK(base >= 0);
    for (int c = 0; c < table_widths[static_cast<size_t>(tid)]; ++c) {
      spec.sources.emplace_back(from_left, base + c);
    }
  }
  return spec;
}

Row MergeSpec::Merge(const Row& left, const Row& right) const {
  Row out;
  out.reserve(sources.size());
  for (const auto& [from_left, pos] : sources) {
    out.push_back((from_left ? left : right)[static_cast<size_t>(pos)]);
  }
  return out;
}

void MergeSpec::MergeBatchInto(const RowBatch& left, int64_t left_row,
                               const Row& right, RowBatch* out) const {
  const int64_t r = out->num_rows;
  const size_t raw = static_cast<size_t>(left.RawIndex(left_row));
  for (size_t c = 0; c < sources.size(); ++c) {
    const auto& [from_left, pos] = sources[c];
    out->PutCopy(static_cast<int>(c), r,
                 from_left ? left.cols[static_cast<size_t>(pos)][raw]
                           : right[static_cast<size_t>(pos)]);
  }
  out->num_rows = r + 1;
}

}  // namespace popdb
