#ifndef POPDB_EXEC_SORT_H_
#define POPDB_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace popdb {

/// One sort key: a resolved row position and direction.
struct SortKey {
  int pos = -1;
  bool descending = false;
};

/// Compares rows by `keys`; returns <0, 0, >0.
int CompareRowsByKeys(const Row& a, const Row& b,
                      const std::vector<SortKey>& keys);

/// Full sort. Materializes its input at Open (a natural materialization
/// point and thus a lazy-checkpoint site, Section 3.1). Inputs larger than
/// the memory budget are sorted as runs and merged — an extra pass whose
/// cost cliff the optimizer's cost model mirrors.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> child, std::vector<SortKey> keys,
         TableSet table_set);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  bool HarvestInfo(HarvestedResult* out) const override;
  const char* name() const override { return "SORT"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  int64_t materialized_count() const {
    return static_cast<int64_t>(rows_.size());
  }
  bool materialization_complete() const { return complete_; }
  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  bool complete_ = false;
  size_t next_ = 0;
};

/// TEMP: materializes its input at Open, then streams it. A natural lazy
/// checkpoint site and the buffer used to implement LCEM and ECB
/// checkpoints (the paper's prototype implements BUFCHECK as a TEMP over a
/// CHECK).
class TempOp : public Operator {
 public:
  TempOp(std::unique_ptr<Operator> child, TableSet table_set);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  bool HarvestInfo(HarvestedResult* out) const override;
  const char* name() const override { return "TEMP"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

  int64_t materialized_count() const {
    return static_cast<int64_t>(rows_.size());
  }
  bool materialization_complete() const { return complete_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<Row> rows_;
  bool complete_ = false;
  size_t next_ = 0;
};

}  // namespace popdb

#endif  // POPDB_EXEC_SORT_H_
