#include "exec/parallel.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace popdb {

// ------------------------------------------------------------ TaskGroup

bool ParallelTask::RunIfUnclaimed() {
  if (claimed_.exchange(true, std::memory_order_acq_rel)) return false;
  fn_();
  group_->OnTaskDone();
  return true;
}

void TaskGroup::OnTaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  if (outstanding_ == 0) cv_.notify_all();
}

void TaskGroup::Run(TaskRunner* runner, int parallelism,
                    const std::function<void(int)>& fn) {
  if (runner == nullptr || parallelism <= 1) {
    fn(0);
    return;
  }
  TaskGroup group;
  std::vector<std::shared_ptr<ParallelTask>> offered;
  offered.reserve(static_cast<size_t>(parallelism - 1));
  for (int i = 1; i < parallelism; ++i) {
    auto task = std::make_shared<ParallelTask>(&group, [&fn, i] { fn(i); });
    {
      std::lock_guard<std::mutex> lock(group.mu_);
      ++group.outstanding_;
    }
    if (runner->TrySubmit(task)) {
      offered.push_back(std::move(task));
    } else {
      // Backpressure: the task was never shared, the caller covers the
      // work itself.
      group.OnTaskDone();
    }
  }
  fn(0);
  // Steal back tasks no helper started. The caller just drained the morsel
  // supply, so a reclaimed worker function returns immediately; this is
  // what makes submission fire-and-forget without ever losing a task.
  for (const auto& task : offered) task->RunIfUnclaimed();
  std::unique_lock<std::mutex> lock(group.mu_);
  group.cv_.wait(lock, [&group] { return group.outstanding_ == 0; });
}

// ------------------------------------------------------ MorselExchangeOp

namespace {

/// Sliced sleep so a simulated I/O stall stays responsive to cancellation.
/// Returns false if the token tripped mid-stall.
bool StallWithCancel(double stall_ms, CancelToken* cancel) {
  double remaining = stall_ms;
  while (remaining > 0) {
    if (cancel != nullptr && cancel->Expired()) return false;
    const double slice = remaining < 1.0 ? remaining : 1.0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    remaining -= slice;
  }
  return true;
}

/// Lower is worse; the exchange reports the worst status any task hit.
int StatusSeverity(ExecStatus s) {
  switch (s) {
    case ExecStatus::kError:
      return 0;
    case ExecStatus::kCancelled:
      return 1;
    case ExecStatus::kReoptimize:
      return 2;
    default:
      return 3;
  }
}

void AccumulateStats(const OperatorStats& from, OperatorStats* into) {
  into->next_calls += from.next_calls;
  into->batches += from.batches;
  into->open_ns += from.open_ns;
  into->next_ns += from.next_ns;
  into->close_ns += from.close_ns;
  into->loops += from.loops;
  into->partitions += from.partitions;
  into->spills += from.spills;
}

}  // namespace

ExecStatus MorselExchangeOp::OpenImpl(ExecContext* ctx) {
  buffers_.clear();
  cursor_morsel_ = 0;
  cursor_pos_ = 0;
  morsels_run_ = 0;
  workers_used_ = 0;
  fragment_stats_ = OperatorStats{};

  const int64_t morsel = std::max<int64_t>(1, policy_.morsel_rows);
  const int64_t num_morsels =
      source_rows_ <= 0 ? 0 : (source_rows_ + morsel - 1) / morsel;
  if (num_morsels == 0) return ExecStatus::kOk;
  buffers_.resize(static_cast<size_t>(num_morsels));

  const bool parallel =
      ctx->tasks != nullptr && policy_.dop > 1 && num_morsels > 1;
  const int workers =
      parallel ? static_cast<int>(std::min<int64_t>(policy_.dop, num_morsels))
               : 1;

  std::atomic<int64_t> next_morsel{0};
  std::atomic<bool> abort{false};
  // Join-time aggregation of per-task results (guarded; tasks only touch
  // it once, after their morsel loop ends).
  std::mutex merge_mu;
  ExecStatus merged = ExecStatus::kOk;
  ReoptSignal merged_reopt;
  std::string merged_error;
  int64_t total_work = 0;
  int64_t total_sink_rows = 0;
  int64_t morsels_done = 0;
  int tasks_with_work = 0;

  const auto worker = [&](int widx) {
    TRACE_SPAN("morsel_worker", "exec", "worker", widx);
    // Private context per task: the shared CancelToken is thread safe, the
    // rest of ExecContext is not. Fragments never nest parallelism.
    ExecContext tctx;
    tctx.params = ctx->params;
    tctx.mem_rows = ctx->mem_rows;
    tctx.cancel = ctx->cancel;
    tctx.batch_rows = ctx->batch_rows;
    ExecStatus local = ExecStatus::kOk;
    int64_t local_morsels = 0;
    int64_t local_sink_rows = 0;
    OperatorStats local_frag_stats;
    while (!abort.load(std::memory_order_relaxed)) {
      const int64_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) break;
      if (policy_.morsel_stall_ms > 0 &&
          !StallWithCancel(policy_.morsel_stall_ms, tctx.cancel)) {
        local = ExecStatus::kCancelled;
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      const int64_t begin = m * morsel;
      const int64_t end = std::min(source_rows_, begin + morsel);
      std::unique_ptr<Operator> frag = factory_(begin, end);
      ExecStatus s;
      if (sink_) {
        s = frag->Open(&tctx);
        if (s == ExecStatus::kOk) {
          Row row;
          while ((s = frag->Next(&tctx, &row)) == ExecStatus::kRow) {
            ++tctx.work;  // The consumer's per-row charge happens here.
            ++local_sink_rows;
            sink_(widx, row);
          }
        }
        frag->Close(&tctx);
      } else {
        s = RunToCompletion(frag.get(), &tctx,
                            &buffers_[static_cast<size_t>(m)]);
      }
      AccumulateStats(frag->stats(), &local_frag_stats);
      ++local_morsels;
      if (s != ExecStatus::kEof && s != ExecStatus::kOk) {
        local = s;
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    total_work += tctx.work;
    total_sink_rows += local_sink_rows;
    morsels_done += local_morsels;
    if (local_morsels > 0) ++tasks_with_work;
    AccumulateStats(local_frag_stats, &fragment_stats_);
    if (StatusSeverity(local) < StatusSeverity(merged)) {
      merged = local;
      if (local == ExecStatus::kError) merged_error = tctx.error;
      if (local == ExecStatus::kReoptimize) merged_reopt = tctx.reopt;
    }
  };

  // Blocks until every morsel ran (or all tasks aborted), so the plan's
  // serial tail — and any re-optimization that follows — never overlaps
  // with fragment tasks.
  TaskGroup::Run(parallel ? ctx->tasks : nullptr, workers, worker);

  // Single-threaded again: fold the task totals into the parent context.
  ctx->work += total_work;
  ctx->morsels_dispatched += morsels_done;
  if (parallel) ctx->parallel_work += total_work;
  morsels_run_ = morsels_done;
  workers_used_ = tasks_with_work;
  if (merged == ExecStatus::kError) {
    ctx->error = merged_error;
    return ExecStatus::kError;
  }
  if (merged == ExecStatus::kCancelled) return ExecStatus::kCancelled;
  if (merged == ExecStatus::kReoptimize) {
    ctx->reopt = merged_reopt;
    return ExecStatus::kReoptimize;
  }
  if (sink_) {
    // Rows consumed inside the tasks never flow through Next; credit them
    // so harvested feedback still sees the exact fragment cardinality.
    CreditExternalRows(total_sink_rows);
  }
  return ExecStatus::kOk;
}

ExecStatus MorselExchangeOp::NextImpl(ExecContext* ctx, Row* out) {
  (void)ctx;  // Work was already charged by the fragment tasks.
  while (cursor_morsel_ < buffers_.size()) {
    std::vector<Row>& buf = buffers_[cursor_morsel_];
    if (cursor_pos_ < buf.size()) {
      *out = std::move(buf[cursor_pos_]);
      ++cursor_pos_;
      return ExecStatus::kRow;
    }
    std::vector<Row>().swap(buf);  // Free each morsel as it drains.
    ++cursor_morsel_;
    cursor_pos_ = 0;
  }
  return ExecStatus::kEof;
}

ExecStatus MorselExchangeOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  const int64_t target = BatchTarget(ctx);
  out->Clear();
  while (cursor_morsel_ < buffers_.size()) {
    std::vector<Row>& buf = buffers_[cursor_morsel_];
    while (cursor_pos_ < buf.size() && out->ActiveRows() < target) {
      out->AppendRowMove(std::move(buf[cursor_pos_]));
      ++cursor_pos_;
    }
    if (cursor_pos_ >= buf.size()) {
      std::vector<Row>().swap(buf);  // Free each morsel as it drains.
      ++cursor_morsel_;
      cursor_pos_ = 0;
    }
    if (out->ActiveRows() >= target) return ExecStatus::kRow;
  }
  return out->ActiveRows() > 0 ? ExecStatus::kRow : ExecStatus::kEof;
}

void MorselExchangeOp::CloseImpl(ExecContext* ctx) {
  (void)ctx;
  std::vector<std::vector<Row>>().swap(buffers_);
}

}  // namespace popdb
