#ifndef POPDB_EXEC_AGG_H_
#define POPDB_EXEC_AGG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace popdb {

/// Aggregate functions supported by HashAggOp.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// One aggregate over a resolved input position (`pos` ignored for COUNT).
struct ResolvedAgg {
  AggFunc func = AggFunc::kCount;
  int pos = -1;
};

class MorselExchangeOp;

/// Hash group-by aggregation. Output rows are `group positions` values
/// followed by one value per aggregate; the output is no longer a
/// canonical table-set row (table_set() == 0). Materializes at Open.
///
/// When the child is a MorselExchangeOp whose policy enables
/// `preaggregate`, rows are accumulated into per-task partial hash tables
/// inside the morsel workers and merged in worker order afterwards —
/// the classic parallel pre-aggregation. The merged row *multiset* equals
/// serial execution for COUNT/MIN/MAX and integer SUM; float SUM/AVG may
/// differ in the last bits because addition is reordered, which is why the
/// policy flag defaults to off.
class HashAggOp : public Operator {
 public:
  HashAggOp(std::unique_ptr<Operator> child, std::vector<int> group_pos,
            std::vector<ResolvedAgg> aggs);

  ExecStatus OpenImpl(ExecContext* ctx) override;
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override;
  const char* name() const override { return "GRPBY"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    Value min, max;
  };
  using GroupMap = std::unordered_map<Row, std::vector<AggState>, RowHash>;

  /// Folds one input row into a (possibly per-task partial) group table.
  void Accumulate(const Row& row, GroupMap* groups) const;
  /// Same fold reading the i-th active row of a batch in place (no row
  /// materialization); group insertion order matches the row path exactly.
  void AccumulateFromBatch(const RowBatch& batch, int64_t i,
                           GroupMap* groups) const;
  static void MergeState(const AggState& from, AggState* into);
  /// Renders the final group table into results_.
  void EmitResults(GroupMap* groups);
  /// Pre-aggregating open path over a parallel exchange child.
  ExecStatus OpenPreAggregated(ExecContext* ctx, MorselExchangeOp* exchange);

  std::unique_ptr<Operator> child_;
  std::vector<int> group_pos_;
  std::vector<ResolvedAgg> aggs_;
  std::vector<Row> results_;
  size_t next_ = 0;
};

}  // namespace popdb

#endif  // POPDB_EXEC_AGG_H_
