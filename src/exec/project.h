#ifndef POPDB_EXEC_PROJECT_H_
#define POPDB_EXEC_PROJECT_H_

#include <memory>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace popdb {

/// Projects input rows onto a list of positions. Output is no longer a
/// canonical table-set row.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<int> positions)
      : Operator(0), child_(std::move(child)), positions_(std::move(positions)) {}

  ExecStatus OpenImpl(ExecContext* ctx) override { return child_->Open(ctx); }
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "PROJECT"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<int> positions_;
  RowBatch in_batch_;           ///< Scratch input batch (vectorized path).
  std::vector<char> move_src_;  ///< Last use of a source column: move it.
};

/// Applies residual predicates to already-joined rows. The optimizer pushes
/// predicates into scans, so this only appears for predicates that could
/// not be pushed (and in tests).
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child,
           std::vector<ResolvedPredicate> preds, TableSet table_set)
      : Operator(table_set), child_(std::move(child)), preds_(std::move(preds)) {}

  ExecStatus OpenImpl(ExecContext* ctx) override { return child_->Open(ctx); }
  ExecStatus NextImpl(ExecContext* ctx, Row* out) override;
  ExecStatus NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  void CloseImpl(ExecContext* ctx) override { child_->Close(ctx); }
  const char* name() const override { return "FILTER"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<ResolvedPredicate> preds_;
};

}  // namespace popdb

#endif  // POPDB_EXEC_PROJECT_H_
